package repro

// Serve smoke: the full two-OS-process deployment. A real youtopia-serve
// binary is built and started, the remote quickstart runs against it as a
// separate process, the coordinated answers are asserted, and SIGTERM
// must drain gracefully. `make serve-smoke` runs exactly this test; it is
// also part of `make test` so drift fails CI twice over.

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve smoke skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	bin := filepath.Join(t.TempDir(), "youtopia-serve")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/youtopia-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build youtopia-serve: %v\n%s", err, out)
	}

	// Start the server on an ephemeral port and parse the bound address
	// from its banner.
	srv := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		serverDone <- srv.Wait()
	}()
	t.Cleanup(func() {
		srv.Process.Kill()
	})

	var addr string
	for line := range lines {
		if rest, ok := strings.CutPrefix(line, "youtopia-serve: listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatal("server never reported its address")
	}

	// The remote quickstart runs as its own OS process against the server.
	quick := exec.CommandContext(ctx, "go", "run", "./examples/remote", "-connect", addr)
	out, err := quick.CombinedOutput()
	if err != nil {
		t.Fatalf("remote quickstart: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"Mickey: COMMITTED",
		"Minnie: COMMITTED",
		"booked flight",
		"group commits",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, text)
		}
	}
	// Both users booked the same flight: every "booked flight" line names
	// the same flight number.
	var flights []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "booked flight "); i >= 0 {
			flights = append(flights, strings.Fields(line[i:])[2])
		}
	}
	if len(flights) != 2 || flights[0] != flights[1] {
		t.Errorf("expected two bookings on one flight, got %v:\n%s", flights, text)
	}

	// SIGTERM drains gracefully.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for line := range lines {
		tail = append(tail, line)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server exit: %v (output: %s)", err, strings.Join(tail, " / "))
	}
	joined := strings.Join(tail, "\n")
	if !strings.Contains(joined, "draining") || !strings.Contains(joined, "bye") {
		t.Errorf("graceful shutdown banner missing:\n%s", joined)
	}
}
