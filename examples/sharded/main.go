// Sharded quickstart: one logical database served by TWO youtopia-serve
// processes, each owning one shard of the user space. Alice lives on
// shard 1 and Bob on shard 0 (FNV hash placement — no overrides), so
// their gift-match pair can only resolve through the cross-shard
// entanglement path: offers flow to the shard-0 matchmaker, the group
// commits via two-phase group commit, and each booking lands on its
// owner's shard.
//
// Self-contained by default (it hosts both shard servers in-process; the
// clients still speak real TCP):
//
//	go run ./examples/sharded
//
// Against real processes — the deployment `make shard-smoke` exercises:
//
//	youtopia-serve -addr 127.0.0.1:7171 -shard 0 -peers 127.0.0.1:7171,127.0.0.1:7172 &
//	youtopia-serve -addr 127.0.0.1:7172 -shard 1 -peers 127.0.0.1:7171,127.0.0.1:7172 &
//	go run ./examples/sharded -connect 127.0.0.1:7171,127.0.0.1:7172
//
// Porting from the single-server quickstart is again one constructor:
// client.Dial(addr) became client.DialShardedPool(addr, ...) — the pool
// fetches the placement map and routes each script to its home shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	connect := flag.String("connect", "", "comma-separated shard addresses, shard 0 first (empty = host both shards in-process)")
	flag.Parse()

	var nodes []string
	if *connect != "" {
		nodes = strings.Split(*connect, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
	} else {
		// No deployment given: host two shard servers on loopback ports.
		var lns [2]net.Listener
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			must(err)
			lns[i] = ln
			nodes = append(nodes, ln.Addr().String())
		}
		m := shard.New(nodes)
		for i, ln := range lns {
			db, err := entangle.Open(entangle.Options{RunFrequency: 2})
			must(err)
			srv := server.New(db)
			must(srv.EnableSharding(m, i, server.ShardOptions{}))
			go srv.Serve(ln)
			defer func(srv *server.Server, db *entangle.DB) {
				srv.Shutdown(context.Background())
				db.Drain(context.Background())
				db.Close()
				srv.CloseSharding()
			}(srv, db)
		}
		fmt.Printf("in-process shards on %s\n", strings.Join(nodes, ", "))
	}

	// One pool over the whole deployment: the bootstrap connection fetches
	// the placement map, then the pool holds a connection per shard and
	// routes every script to the home shard of its first quoted literal.
	pool, err := client.DialShardedPool(nodes[0], client.Options{})
	must(err)
	defer pool.Close()
	place := pool.Placement()
	fmt.Printf("placement v%d: %d shards; Alice -> shard %d, Bob -> shard %d\n",
		place.Version, place.Shards, place.Home("Alice"), place.Home("Bob"))

	// Schema broadcasts to every shard; seed rows go to each engine
	// directly (every shard sees the full flight catalog).
	must(pool.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`))
	for i := 0; i < place.Shards; i++ {
		_, err = pool.GetShard(i).Exec(`
			INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
			INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		`)
		must(err)
	}

	script := func(me, them string) string {
		return fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
		SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
		WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
		AND ('%s', fno, fdate) IN ANSWER FlightRes
		CHOOSE 1;
		INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
		COMMIT;`, me, them, me)
	}
	h1, err := pool.SubmitScript(script("Alice", "Bob"))
	must(err)
	h2, err := pool.SubmitScript(script("Bob", "Alice"))
	must(err)

	fmt.Println("Alice:", h1.Wait().Status)
	fmt.Println("Bob:", h2.Wait().Status)

	// Each booking lives on its owner's shard — the atomically committed
	// pair is physically partitioned across the two processes.
	for _, user := range []string{"Alice", "Bob"} {
		home := place.Home(user)
		res, err := pool.GetShard(home).Query(
			fmt.Sprintf("SELECT name, fno, fdate FROM Bookings WHERE name='%s'", user))
		must(err)
		for _, row := range res.Rows {
			fmt.Printf("  shard %d: %s booked flight %s on %s\n", home, row[0], row[1], row[2])
		}
	}
	for i := 0; i < place.Shards; i++ {
		snap, err := pool.GetShard(i).Stats()
		must(err)
		fmt.Printf("shard %d: %d runs, %d group commits\n", i, snap.Runs, snap.GroupCommits)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
