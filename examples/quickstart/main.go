// Quickstart: two users coordinate on a flight with entangled SQL — the
// paper's §2 example end to end in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/entangle"
)

func main() {
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`))
	_, err = db.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
	`)
	must(err)

	// Mickey and Minnie each submit an entangled transaction: same flight,
	// destination LA. Neither sees the other's answer, but the system
	// guarantees a coordinated choice (mutual constraint satisfaction).
	script := func(me, them string) string {
		return fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
		SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
		WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
		AND ('%s', fno, fdate) IN ANSWER FlightRes
		CHOOSE 1;
		INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
		COMMIT;`, me, them, me)
	}
	h1, err := db.SubmitScript(script("Mickey", "Minnie"))
	must(err)
	h2, err := db.SubmitScript(script("Minnie", "Mickey"))
	must(err)

	fmt.Println("Mickey:", h1.Wait().Status)
	fmt.Println("Minnie:", h2.Wait().Status)

	res, err := db.Query("SELECT name, fno, fdate FROM Bookings")
	must(err)
	for _, row := range res.Rows {
		fmt.Printf("  %s booked flight %s on %s\n", row[0], row[1], row[2])
	}
	st := db.Stats()
	fmt.Printf("engine: %d runs, %d entanglement ops, %d group commits\n",
		st.Runs, st.EntangleOps, st.GroupCommits)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
