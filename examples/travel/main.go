// Travel: the paper's running example in full — the Figure 2 transaction
// with two entangled queries (flight, then hotel with @ArrivalDay and
// @StayLength host variables), the Figure 4 scheduling run (Donald waits
// for Daffy and times out), and a widowed-transaction scenario showing
// group commit keeping the database consistent.
//
//	go run ./examples/travel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/entangle"
	"repro/internal/eq"
)

func main() {
	db, err := entangle.Open(entangle.Options{
		RunFrequency:  3,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	setup(db)

	fmt.Println("== Figure 2: flight + hotel coordination (two entangled queries) ==")
	h1, err := db.SubmitScript(travelScript("Mickey", "Minnie"))
	must(err)
	h2, err := db.SubmitScript(travelScript("Minnie", "Mickey"))
	must(err)
	// Donald wants to travel with Daffy, who never shows up (Figure 4).
	h3, err := db.SubmitScript(flightOnlyScript("Donald", "Daffy", "2 SECONDS"))
	must(err)

	fmt.Println("Mickey:", h1.Wait().Status)
	fmt.Println("Minnie:", h2.Wait().Status)
	o3 := h3.Wait()
	fmt.Printf("Donald: %v after %d attempts (no partner, as in Figure 4)\n", o3.Status, o3.Attempts)

	showBookings(db)

	fmt.Println("\n== Widow prevention: Goofy aborts mid-booking; Pluto must not commit ==")
	h4, err := db.SubmitScript(flightOnlyScript("Pluto", "Goofy", "1 SECOND"))
	must(err)
	// Goofy coordinates, then hits an application error and rolls back.
	h5 := db.Submit(entangle.Program{
		Name:    "goofy",
		Timeout: time.Second,
		Body: func(tx *entangle.Tx) error {
			a := tx.Entangle(&entangle.EQ{
				Head:   []eq.Atom{entangle.Atom("FlightRes", entangle.Const(entangle.Str("Goofy")), entangle.Var("fno"), entangle.Var("fdate"))},
				Post:   []eq.Atom{entangle.Atom("FlightRes", entangle.Const(entangle.Str("Pluto")), entangle.Var("fno"), entangle.Var("fdate"))},
				Body:   []eq.Atom{entangle.Atom("Flights", entangle.Var("fno"), entangle.Var("fdate"), entangle.Var("dest"))},
				Where:  []eq.Constraint{{Left: entangle.Var("dest"), Op: eq.OpEq, Right: entangle.Const(entangle.Str("LA"))}},
				Choose: 1,
			})
			if a.Status != eq.Answered {
				return fmt.Errorf("no flight: %v", a.Status)
			}
			fmt.Println("  Goofy coordinated on flight", a.Bindings["fno"], "- but his card is declined!")
			tx.Rollback()
			return nil
		},
	})
	fmt.Println("Goofy:", h5.Wait().Status)
	o4 := h4.Wait()
	fmt.Printf("Pluto: %v (group commit prevented a widowed booking)\n", o4.Status)

	res, _ := db.Query("SELECT name FROM FlightBookings WHERE name='Pluto'")
	fmt.Printf("Pluto's bookings in the database: %d (must be 0)\n", len(res.Rows))
}

func setup(db *entangle.DB) {
	must(db.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Hotels (hid INT, location VARCHAR);
		CREATE TABLE FlightBookings (name VARCHAR, fno INT, fdate DATE);
		CREATE TABLE HotelBookings (name VARCHAR, hid INT, arrival DATE, nights INT);
	`))
	_, err := db.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Flights VALUES (124, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
		INSERT INTO Hotels VALUES (7, 'LA');
		INSERT INTO Hotels VALUES (8, 'LA');
	`)
	must(err)
}

// travelScript is the Figure 2 transaction: coordinate on a flight, book
// it, derive the stay length, coordinate on a hotel, book it.
func travelScript(me, them string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
	SELECT '%[1]s', fno AS @fno, fdate AS @ArrivalDay
	INTO ANSWER FlightRes
	WHERE fno, fdate IN
		(SELECT fno, fdate FROM Flights WHERE dest='LA')
	AND ('%[2]s', fno, fdate) IN ANSWER FlightRes
	CHOOSE 1;
	INSERT INTO FlightBookings VALUES ('%[1]s', @fno, @ArrivalDay);
	SET @StayLength = '2011-05-06' - @ArrivalDay;
	SELECT '%[1]s', hid AS @hid, @ArrivalDay, @StayLength
	INTO ANSWER HotelRes
	WHERE hid IN
		(SELECT hid FROM Hotels WHERE location='LA')
	AND ('%[2]s', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes
	CHOOSE 1;
	INSERT INTO HotelBookings VALUES ('%[1]s', @hid, @ArrivalDay, @StayLength);
	COMMIT;`, me, them)
}

func flightOnlyScript(me, them, timeout string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT %[3]s;
	SELECT '%[1]s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
	WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
	AND ('%[2]s', fno, fdate) IN ANSWER FlightRes
	CHOOSE 1;
	INSERT INTO FlightBookings VALUES ('%[1]s', @fno, @fdate);
	COMMIT;`, me, them, timeout)
}

func showBookings(db *entangle.DB) {
	flights, _ := db.Query("SELECT name, fno, fdate FROM FlightBookings")
	for _, row := range flights.Rows {
		fmt.Printf("  flight: %-8s #%s on %s\n", row[0], row[1], row[2])
	}
	hotels, _ := db.Query("SELECT name, hid, arrival, nights FROM HotelBookings")
	for _, row := range hotels.Rows {
		fmt.Printf("  hotel:  %-8s hotel %s from %s for %s nights\n", row[0], row[1], row[2], row[3])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
