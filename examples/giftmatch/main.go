// Giftmatch: charity donation matching — one of the coordination domains
// the paper's introduction cites ([3], Conitzer & Sandholm). A donor
// pledges to a charity only if a matcher pledges the same amount; both
// pledges land atomically (group commit) or not at all.
//
// This example uses the Go program API rather than SQL, and demonstrates
// the EmptyAnswer outcome (partners present but no agreeable amount).
//
//	go run ./examples/giftmatch
package main

import (
	"fmt"
	"log"
	"time"

	"repro/entangle"
	"repro/internal/eq"
	"repro/internal/types"
)

func main() {
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.ExecDDL(`
		CREATE TABLE Charities (cid INT, name VARCHAR);
		CREATE TABLE Tiers (cid INT, amount INT);
		CREATE TABLE Pledges (donor VARCHAR, cid INT, amount INT);
	`))
	_, err = db.Exec(`
		INSERT INTO Charities VALUES (1, 'Clean Water Fund');
		INSERT INTO Tiers VALUES (1, 50);
		INSERT INTO Tiers VALUES (1, 100);
		INSERT INTO Tiers VALUES (1, 250);
	`)
	must(err)

	// matchQuery: donor pledges ?amount to charity cid provided partner
	// pledges the same ?amount to the same charity; the tier table bounds
	// the choices, and maxAmount caps this donor's budget.
	matchQuery := func(donor, partner string, cid, maxAmount int64) *entangle.EQ {
		return &entangle.EQ{
			Head: []eq.Atom{entangle.Atom("GiftMatch",
				entangle.Const(entangle.Str(donor)), entangle.Const(entangle.Int(cid)), entangle.Var("amount"))},
			Post: []eq.Atom{entangle.Atom("GiftMatch",
				entangle.Const(entangle.Str(partner)), entangle.Const(entangle.Int(cid)), entangle.Var("amount"))},
			Body: []eq.Atom{entangle.Atom("Tiers", entangle.Var("c"), entangle.Var("amount"))},
			Where: []eq.Constraint{
				{Left: entangle.Var("c"), Op: eq.OpEq, Right: entangle.Const(entangle.Int(cid))},
				{Left: entangle.Var("amount"), Op: eq.OpLe, Right: entangle.Const(entangle.Int(maxAmount))},
			},
			Choose: 1,
		}
	}

	pledge := func(donor, partner string, cid, budget int64) entangle.Program {
		return entangle.Program{
			Name:    "pledge-" + donor,
			Timeout: 3 * time.Second,
			Body: func(tx *entangle.Tx) error {
				a := tx.Entangle(matchQuery(donor, partner, cid, budget))
				switch a.Status {
				case eq.Answered:
					amount := a.Bindings["amount"]
					fmt.Printf("  %s matched at $%s\n", donor, amount)
					_, err := tx.Insert("Pledges", entangle.Values(
						types.Str(donor), types.Int(cid), amount))
					return err
				case eq.EmptyAnswer:
					// Partner present but no mutually agreeable tier — the
					// Appendix B "success with empty answer": proceed
					// without pledging.
					fmt.Printf("  %s: no agreeable amount, no pledge made\n", donor)
					return nil
				default:
					return fmt.Errorf("%s: %v", donor, a.Status)
				}
			},
		}
	}

	fmt.Println("== Alice ($250 budget) and Bob ($100 budget) match a gift ==")
	h1 := db.Submit(pledge("Alice", "Bob", 1, 250))
	h2 := db.Submit(pledge("Bob", "Alice", 1, 100))
	fmt.Println("Alice:", h1.Wait().Status)
	fmt.Println("Bob:  ", h2.Wait().Status)

	res, _ := db.Query("SELECT donor, amount FROM Pledges")
	total := int64(0)
	for _, row := range res.Rows {
		total += row[1].Int64()
	}
	fmt.Printf("pledged: %d rows, $%d total (amounts must match)\n\n", len(res.Rows), total)

	fmt.Println("== Carol ($25 budget) and Dave ($30): no tier fits both ==")
	h3 := db.Submit(pledge("Carol", "Dave", 1, 25))
	h4 := db.Submit(pledge("Dave", "Carol", 1, 30))
	fmt.Println("Carol:", h3.Wait().Status)
	fmt.Println("Dave: ", h4.Wait().Status)
	res, _ = db.Query("SELECT donor FROM Pledges WHERE donor='Carol'")
	fmt.Printf("Carol's pledges: %d (empty answer, no pledge — but the transaction committed)\n", len(res.Rows))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
