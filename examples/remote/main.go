// Remote quickstart: the §2 flight coordination served over TCP. Mickey
// and Minnie are separate clients on separate connections; the server
// unifies their entangled answers — the paper's Figure 1 deployment.
//
// Self-contained by default (it starts a server on a loopback port and
// connects to it), which keeps the example runnable with a bare
//
//	go run ./examples/remote
//
// Against a real youtopia-serve process — two OS processes coordinating,
// which is what `make serve-smoke` exercises — point it at the server:
//
//	youtopia-serve -addr 127.0.0.1:7171 &
//	go run ./examples/remote -connect 127.0.0.1:7171
//
// Porting from the embedded quickstart is the one-constructor change:
// entangle.Open(...) became client.Dial(addr); Exec, SubmitScript, and
// Handle.Wait read the same.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	connect := flag.String("connect", "", "youtopia-serve address (empty = start an in-process server)")
	flag.Parse()

	addr := *connect
	if addr == "" {
		// No server given: host one on a loopback port. The clients below
		// still speak real TCP to it.
		db, err := entangle.Open(entangle.Options{
			RunFrequency: 2,
			Tracer:       obs.NewTracer(obs.TracerOptions{}),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(db)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer func() {
			srv.Shutdown(context.Background())
			db.Drain(context.Background())
			db.Close()
		}()
		addr = ln.Addr().String()
		fmt.Println("in-process server on", addr)
	}

	// Two users, two TCP connections. Trace: true mints a lifecycle trace
	// id per submitted query; the server merges the pair's ids when the
	// queries entangle, and -debug-addr's /traces/recent (or the shell's
	// \trace) shows the merged span tree.
	mickey, err := client.DialOptions(addr, client.Options{Trace: true})
	must(err)
	defer mickey.Close()
	minnie, err := client.DialOptions(addr, client.Options{Trace: true})
	must(err)
	defer minnie.Close()

	must(mickey.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`))
	_, err = mickey.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
	`)
	must(err)

	script := func(me, them string) string {
		return fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
		SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
		WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
		AND ('%s', fno, fdate) IN ANSWER FlightRes
		CHOOSE 1;
		INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
		COMMIT;`, me, them, me)
	}
	h1, err := mickey.SubmitScript(script("Mickey", "Minnie"))
	must(err)
	h2, err := minnie.SubmitScript(script("Minnie", "Mickey"))
	must(err)

	fmt.Println("Mickey:", h1.Wait().Status)
	fmt.Println("Minnie:", h2.Wait().Status)
	if h1.TraceID() == h2.TraceID() {
		fmt.Printf("coordination trace %d (one merged trace for both members)\n", h1.TraceID())
	}

	res, err := mickey.Query("SELECT name, fno, fdate FROM Bookings")
	must(err)
	for _, row := range res.Rows {
		fmt.Printf("  %s booked flight %s on %s\n", row[0], row[1], row[2])
	}
	snap, err := minnie.Stats()
	must(err)
	fmt.Printf("server: %d runs, %d entanglement ops, %d group commits\n",
		snap.Runs, snap.EntangleOps, snap.GroupCommits)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
