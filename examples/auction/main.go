// Auction: a circular swap — the Cyclic coordination structure of §5.2.2
// in an auction/trading setting ([10] in the paper's intro motivates
// expressive auctions). Three collectors each give one card and want
// another, forming a cycle: the trade happens only if all three
// transactions coordinate, and group commit makes the three-way swap
// atomic.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"time"

	"repro/entangle"
	"repro/internal/eq"
	"repro/internal/types"
)

func main() {
	db, err := entangle.Open(entangle.Options{RunFrequency: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.ExecDDL(`
		CREATE TABLE Cards (owner VARCHAR, card VARCHAR);
		CREATE TABLE Venues (vid INT, city VARCHAR);
		CREATE TABLE Trades (owner VARCHAR, gives VARCHAR, venue INT);
		CREATE INDEX cards_owner ON Cards (owner);
	`))
	_, err = db.Exec(`
		INSERT INTO Cards VALUES ('Ann', 'Charizard');
		INSERT INTO Cards VALUES ('Ben', 'Blastoise');
		INSERT INTO Cards VALUES ('Cyn', 'Venusaur');
		INSERT INTO Venues VALUES (1, 'Ithaca');
		INSERT INTO Venues VALUES (2, 'Seattle');
	`)
	must(err)

	// Each trader's entangled query: "I will meet at venue ?v if the next
	// trader in the ring also meets at ?v." The ring Ann -> Ben -> Cyn ->
	// Ann means all three must choose the same venue — a cyclic
	// coordinating set.
	meet := func(me, next string) *entangle.EQ {
		return &entangle.EQ{
			Head:   []eq.Atom{entangle.Atom("Swap", entangle.Const(entangle.Str(me)), entangle.Var("v"))},
			Post:   []eq.Atom{entangle.Atom("Swap", entangle.Const(entangle.Str(next)), entangle.Var("v"))},
			Body:   []eq.Atom{entangle.Atom("Venues", entangle.Var("v"), entangle.Var("city"))},
			Choose: 1,
		}
	}

	trade := func(me, next, gives string) entangle.Program {
		return entangle.Program{
			Name:    "trade-" + me,
			Timeout: 3 * time.Second,
			Body: func(tx *entangle.Tx) error {
				a := tx.Entangle(meet(me, next))
				if a.Status != eq.Answered {
					return fmt.Errorf("%s found no swap ring: %v", me, a.Status)
				}
				venue := a.Bindings["v"]
				// Hand over the card: indexed point lookup (row-granular
				// locks, so the three traders do not contend on the Cards
				// table), delete, record the trade.
				ids, rows, err := tx.LookupIDs("Cards", []string{"owner"}, entangle.Values(types.Str(me)))
				if err != nil {
					return err
				}
				for i, row := range rows {
					if row[1].Str64() == gives {
						if err := tx.Delete("Cards", ids[i]); err != nil {
							return err
						}
						break
					}
				}
				_, err = tx.Insert("Trades", entangle.Values(
					types.Str(me), types.Str(gives), venue))
				return err
			},
		}
	}

	fmt.Println("== Three-way card swap: Ann -> Ben -> Cyn -> Ann ==")
	h1 := db.Submit(trade("Ann", "Ben", "Charizard"))
	h2 := db.Submit(trade("Ben", "Cyn", "Blastoise"))
	h3 := db.Submit(trade("Cyn", "Ann", "Venusaur"))
	fmt.Println("Ann:", h1.Wait().Status)
	fmt.Println("Ben:", h2.Wait().Status)
	fmt.Println("Cyn:", h3.Wait().Status)

	res, _ := db.Query("SELECT owner, gives, venue FROM Trades")
	venue := ""
	for _, row := range res.Rows {
		fmt.Printf("  %s gives %s at venue %s\n", row[0], row[1], row[2])
		if venue == "" {
			venue = row[2].String()
		} else if venue != row[2].String() {
			log.Fatal("traders chose different venues!")
		}
	}
	left, _ := db.Query("SELECT owner FROM Cards")
	fmt.Printf("cards left unswapped: %d (must be 0 — the swap is atomic)\n\n", len(left.Rows))

	fmt.Println("== Broken ring: Dee waits on Eve, who never arrives ==")
	_, err = db.Exec("INSERT INTO Cards VALUES ('Dee', 'Mewtwo')")
	must(err)
	h4 := db.Submit(trade("Dee", "Eve", "Mewtwo"))
	o := h4.Wait()
	fmt.Printf("Dee: %v after %d attempts — and her card is still hers:\n", o.Status, o.Attempts)
	left, _ = db.Query("SELECT owner, card FROM Cards")
	for _, row := range left.Rows {
		fmt.Printf("  %s still owns %s\n", row[0], row[1])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
