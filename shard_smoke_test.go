package repro

// Shard smoke: the full partitioned deployment. Two real youtopia-serve
// processes join a 2-shard placement (-shard/-peers), the sharded
// quickstart runs against them as a third OS process and books a
// cross-shard gift-match pair atomically, then SIGTERM must drain both
// shards gracefully. `make shard-smoke` runs exactly this test; it is
// also part of `make test` so drift fails CI twice over.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports and releases them for the
// serve processes to rebind. The tiny rebind race is acceptable in a
// smoke test; -peers needs every address known before either process
// starts.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

type shardProc struct {
	cmd   *exec.Cmd
	lines chan string
	done  chan error
}

func startShardProc(t *testing.T, ctx context.Context, bin string, shardID int, addrs []string) *shardProc {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin,
		"-addr", addrs[shardID],
		"-shard", fmt.Sprint(shardID),
		"-peers", strings.Join(addrs, ","))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd, lines: make(chan string, 64), done: make(chan error, 1)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.lines <- sc.Text()
		}
		close(p.lines)
		p.done <- cmd.Wait()
	}()
	t.Cleanup(func() { cmd.Process.Kill() })
	return p
}

// waitBanner consumes lines until the listening banner, failing if the
// process exits first.
func (p *shardProc) waitBanner(t *testing.T, shardID int) {
	t.Helper()
	for line := range p.lines {
		if strings.Contains(line, "listening on ") {
			return
		}
	}
	t.Fatalf("shard %d exited before its listening banner: %v", shardID, <-p.done)
}

func TestShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shard smoke skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	bin := filepath.Join(t.TempDir(), "youtopia-serve")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/youtopia-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build youtopia-serve: %v\n%s", err, out)
	}

	addrs := freePorts(t, 2)
	procs := make([]*shardProc, 2)
	for i := range procs {
		procs[i] = startShardProc(t, ctx, bin, i, addrs)
	}
	for i, p := range procs {
		p.waitBanner(t, i)
	}

	// The sharded quickstart runs as a third OS process against the two
	// shard servers: Alice (shard 1) and Bob (shard 0) book a flight pair
	// that can only resolve through the cross-shard two-phase commit.
	quick := exec.CommandContext(ctx, "go", "run", "./examples/sharded", "-connect", strings.Join(addrs, ","))
	out, err := quick.CombinedOutput()
	if err != nil {
		t.Fatalf("sharded quickstart: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"placement v1: 2 shards",
		"Alice: COMMITTED",
		"Bob: COMMITTED",
		"shard 0: ",
		"shard 1: ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, text)
		}
	}
	// All-or-nothing across processes: both bookings exist and name the
	// same flight, one per shard.
	var flights []string
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "booked flight "); i >= 0 {
			flights = append(flights, strings.Fields(line[i:])[2])
		}
	}
	if len(flights) != 2 || flights[0] != flights[1] {
		t.Errorf("expected two bookings on one flight, got %v:\n%s", flights, text)
	}
	// Both engines stamped exactly one group commit.
	groups := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "1 group commits") {
			groups++
		}
	}
	if groups != 2 {
		t.Errorf("expected both shards to report 1 group commit:\n%s", text)
	}

	// SIGTERM drains both shards gracefully.
	for _, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range procs {
		var tail []string
		for line := range p.lines {
			tail = append(tail, line)
		}
		if err := <-p.done; err != nil {
			t.Fatalf("shard %d exit: %v (output: %s)", i, err, strings.Join(tail, " / "))
		}
		joined := strings.Join(tail, "\n")
		if !strings.Contains(joined, "draining") || !strings.Contains(joined, "bye") {
			t.Errorf("shard %d graceful shutdown banner missing:\n%s", i, joined)
		}
	}
}
