// Package repro is a from-scratch Go reproduction of "Entangled
// Transactions" (Gupta, Nikolic, Roy, Bender, Kot, Gehrke, Koch; PVLDB
// 4(7), 2011).
//
// The public API lives in repro/entangle; this root package holds the
// benchmark harness (bench_test.go) that regenerates every figure of the
// paper's evaluation. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
