package entangle

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// A drain must let a coordinating pair that is already pooled finish —
// today's behavior (plain Close) would fail both with ErrEngineClosed.
func TestDrainCompletesPooledPair(t *testing.T) {
	// RunFrequency high enough that the submissions alone never trigger a
	// run: the transactions sit in the dormant pool until Drain's forced
	// runs execute them.
	db := openTest(t, Options{RunFrequency: 100, RetryInterval: time.Hour})
	h1, err := db.SubmitScript(pairScript("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := db.SubmitScript(pairScript("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey after drain: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie after drain: %+v", o)
	}
	res, _ := db.Query("SELECT name FROM Bookings")
	if len(res.Rows) != 2 {
		t.Fatalf("bookings = %v", res.Rows)
	}
}

// A pooled transaction whose partner never arrives cannot complete; drain
// aborts it deterministically with ErrDraining rather than ErrEngineClosed.
func TestDrainAbortsPartnerlessDeterministically(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 100, RetryInterval: time.Hour})
	h, err := db.SubmitScript(pairScript("Donald", "Daffy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	o := h.Wait()
	if o.Status != StatusTimedOut || !errors.Is(o.Err, core.ErrDraining) {
		t.Fatalf("Donald after drain: %+v", o)
	}
	// Attempts > 0: the transaction got real runs before being cut off.
	if o.Attempts == 0 {
		t.Fatalf("expected at least one drain run, got %+v", o)
	}
}

// Submissions after Drain are rejected; an expired context aborts the
// remaining work and reports the context error.
func TestDrainRejectsNewWorkAndHonorsContext(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 100, RetryInterval: time.Hour})
	hPooled, err := db.SubmitScript(pairScript("Pluto", "Goofy"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain must still abort the pool
	if err := db.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with canceled ctx: %v", err)
	}
	if o := hPooled.Wait(); o.Status != StatusTimedOut || !errors.Is(o.Err, core.ErrDraining) {
		t.Fatalf("pooled after canceled drain: %+v", o)
	}
	h := db.Submit(Program{Body: func(tx *Tx) error { return nil }})
	if o := h.Wait(); !errors.Is(o.Err, core.ErrEngineClosed) {
		t.Fatalf("submit after drain: %+v", o)
	}
}

// Handle.Poll is non-blocking before completion and agrees with Wait after.
func TestHandlePoll(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 2})
	h, err := db.SubmitScript(pairScript("Chip", "Dale"))
	if err != nil {
		t.Fatal(err)
	}
	// The partner has not arrived; poll must not block (it may or may not
	// report done=false depending on scheduling, but it must return).
	h.Poll()
	h2, err := db.SubmitScript(pairScript("Dale", "Chip"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Dale: %+v", o)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if o, ok := h.Poll(); ok {
			if o.Status != StatusCommitted {
				t.Fatalf("Chip: %+v", o)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poll never reported completion")
		}
		time.Sleep(time.Millisecond)
	}
	if o := h.Wait(); o.Status != StatusCommitted {
		t.Fatalf("wait after poll: %+v", o)
	}
}

// The snapshot is plain data with JSON tags and tracks the engine counters.
func TestStatsSnapshotSerializes(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 2})
	h1, _ := db.SubmitScript(pairScript("Mickey", "Minnie"))
	h2, _ := db.SubmitScript(pairScript("Minnie", "Mickey"))
	h1.Wait()
	h2.Wait()
	snap := db.StatsSnapshot()
	if snap.Commits != db.Stats().Commits || snap.Commits == 0 {
		t.Fatalf("snapshot commits = %d, stats = %d", snap.Commits, db.Stats().Commits)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back StatsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatalf("round trip: %+v != %+v", back, snap)
	}
}
