package entangle_test

import (
	"fmt"
	"time"

	"repro/entangle"
	"repro/internal/eq"
)

// Example reproduces the paper's §2 scenario: Mickey and Minnie coordinate
// on a flight to LA through entangled SQL, and both bookings commit
// atomically as a group.
func Example() {
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`)
	db.Exec(`INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')`)

	script := func(me, them string) string {
		return fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
		SELECT '%s', fno AS @fno INTO ANSWER FlightRes
		WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
		AND ('%s', fno) IN ANSWER FlightRes
		CHOOSE 1;
		INSERT INTO Bookings VALUES ('%s', @fno);
		COMMIT;`, me, them, me)
	}
	h1, _ := db.SubmitScript(script("Mickey", "Minnie"))
	h2, _ := db.SubmitScript(script("Minnie", "Mickey"))
	fmt.Println("Mickey:", h1.Wait().Status)
	fmt.Println("Minnie:", h2.Wait().Status)

	res, _ := db.Query("SELECT name, fno FROM Bookings WHERE name='Mickey'")
	fmt.Println("Mickey booked flight", res.Rows[0][1])
	// Output:
	// Mickey: COMMITTED
	// Minnie: COMMITTED
	// Mickey booked flight 122
}

// ExampleDB_Submit shows an entangled transaction written directly in Go:
// two parties coordinate on a common value chosen from a table.
func ExampleDB_Submit() {
	db, _ := entangle.Open(entangle.Options{RunFrequency: 2})
	defer db.Close()
	db.ExecDDL(`CREATE TABLE Slots (t INT)`)
	db.Exec(`INSERT INTO Slots VALUES (15)`)

	meet := func(me, them string) entangle.Program {
		return entangle.Program{
			Timeout: 2 * time.Second,
			Body: func(tx *entangle.Tx) error {
				a := tx.Entangle(&entangle.EQ{
					Head:   []eq.Atom{entangle.Atom("Meet", entangle.Const(entangle.Str(me)), entangle.Var("t"))},
					Post:   []eq.Atom{entangle.Atom("Meet", entangle.Const(entangle.Str(them)), entangle.Var("t"))},
					Body:   []eq.Atom{entangle.Atom("Slots", entangle.Var("t"))},
					Choose: 1,
				})
				if a.Status != eq.Answered {
					return fmt.Errorf("no meeting: %v", a.Status)
				}
				fmt.Printf("%s meets at %s\n", me, a.Bindings["t"])
				return nil
			},
		}
	}
	h1 := db.Submit(meet("alice", "bob"))
	h2 := db.Submit(meet("bob", "alice"))
	h1.Wait()
	h2.Wait()
	// Unordered output:
	// alice meets at 15
	// bob meets at 15
}

// ExampleDB_Interactive shows the statement-at-a-time classical session.
func ExampleDB_Interactive() {
	db, _ := entangle.Open(entangle.Options{})
	defer db.Close()
	db.ExecDDL(`CREATE TABLE T (a INT)`)

	s := db.Interactive()
	defer s.Close()
	s.Exec("BEGIN TRANSACTION")
	s.Exec("INSERT INTO T VALUES (1)")
	s.Exec("SET @x = 1 + 1")
	s.Exec("INSERT INTO T VALUES (@x)")
	s.Exec("COMMIT")
	res, _ := s.Exec("SELECT a FROM T WHERE a >= 1")
	fmt.Println("rows:", len(res.Rows))
	// Output:
	// rows: 2
}

// ExampleDB_Submit_timeout shows the §3.1 timeout: a transaction whose
// entanglement partner never arrives leaves the system with a timeout.
func ExampleDB_Submit_timeout() {
	db, _ := entangle.Open(entangle.Options{RetryInterval: 5 * time.Millisecond})
	defer db.Close()
	db.ExecDDL(`CREATE TABLE Slots (t INT)`)
	db.Exec(`INSERT INTO Slots VALUES (9)`)

	h := db.Submit(entangle.Program{
		Timeout: 100 * time.Millisecond,
		Body: func(tx *entangle.Tx) error {
			tx.Entangle(&entangle.EQ{
				Head:   []eq.Atom{entangle.Atom("Meet", entangle.Const(entangle.Str("donald")), entangle.Var("t"))},
				Post:   []eq.Atom{entangle.Atom("Meet", entangle.Const(entangle.Str("daffy")), entangle.Var("t"))},
				Body:   []eq.Atom{entangle.Atom("Slots", entangle.Var("t"))},
				Choose: 1,
			})
			return nil
		},
	})
	fmt.Println(h.Wait().Status)
	// Output:
	// TIMED-OUT
}
