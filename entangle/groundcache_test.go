package entangle

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// Determinism regression for the cross-round grounding cache, mirroring
// TestSerialParallelDeterminism: the same seeded workload — every pair's
// first member submitted up front so it pends (and re-grounds) across
// several evaluation rounds before its partner arrives — must produce
// identical final table states with the cache off and on. Nothing writes
// Flights mid-run, so the cached run answers the pending re-groundings from
// the cache (asserted via Stats) while choosing exactly the groundings the
// re-grounding run chooses.
func runGroundCacheWorkload(t *testing.T, cached bool, pairs, seed int) (map[string][]string, Stats) {
	t.Helper()
	db, err := Open(Options{
		GroundCache:    cached,
		GroundWorkers:  1,
		RunFrequency:   1,
		RetryInterval:  time.Hour, // rounds driven by Flush only
		DefaultTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Flights VALUES (%d, 'LA')`, 120+seed+i)); err != nil {
			t.Fatal(err)
		}
	}

	script := func(me, them string) string {
		return fmt.Sprintf(`
			BEGIN TRANSACTION WITH TIMEOUT 30 SECONDS;
			SELECT '%s', fno AS @fno INTO ANSWER R
			WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
			AND ('%s', fno) IN ANSWER R
			CHOOSE 1;
			INSERT INTO Bookings VALUES ('%s', @fno);
			COMMIT;`, me, them, me)
	}

	// First members of every pair: partner-less, they pend and re-ground
	// across the flushed rounds below.
	var handles []*Handle
	for p := 0; p < pairs; p++ {
		h, err := db.SubmitScript(script(fmt.Sprintf("s%da%d", seed, p), fmt.Sprintf("s%db%d", seed, p)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i := 0; i < 3; i++ {
		db.Flush() // rounds of partner-less re-grounding (cache hits when on)
	}
	for p := 0; p < pairs; p++ {
		h, err := db.SubmitScript(script(fmt.Sprintf("s%db%d", seed, p), fmt.Sprintf("s%da%d", seed, p)))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	db.Flush()
	for i, h := range handles {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("cached=%v tx %d: %+v", cached, i, o)
		}
	}

	state := make(map[string][]string)
	for _, name := range db.Catalog().Names() {
		tbl, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		for _, row := range tbl.All() {
			rows = append(rows, row.String())
		}
		sort.Strings(rows)
		state[name] = rows
	}
	return state, db.Stats()
}

func TestSerialCachedDeterminism(t *testing.T) {
	const pairs = 6
	for seed := 1; seed <= 3; seed++ {
		serial, _ := runGroundCacheWorkload(t, false, pairs, seed)
		cachedState, st := runGroundCacheWorkload(t, true, pairs, seed)
		if st.GroundCacheHits == 0 {
			t.Fatalf("seed %d: cached run had no cache hits (%+v)", seed, st)
		}
		if len(serial) != len(cachedState) {
			t.Fatalf("seed %d: table sets differ: %v vs %v", seed, serial, cachedState)
		}
		for name, want := range serial {
			got := cachedState[name]
			if len(want) != len(got) {
				t.Fatalf("seed %d table %s: %d rows uncached vs %d cached", seed, name, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed %d table %s row %d: uncached %q vs cached %q", seed, name, i, want[i], got[i])
				}
			}
		}
		if n := len(cachedState["Bookings"]); n != 2*pairs {
			t.Fatalf("seed %d: %d bookings, want %d", seed, n, 2*pairs)
		}
	}
}
