package entangle

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eq"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`); err != nil {
		t.Fatal(err)
	}
	seed := []string{
		"INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')",
		"INSERT INTO Flights VALUES (123, '2011-05-04', 'LA')",
	}
	for _, s := range seed {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func pairScript(me, them string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT 2 SECONDS;
	SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
	WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
	AND ('%s', fno, fdate) IN ANSWER FlightRes
	CHOOSE 1;
	INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
	COMMIT;`, me, them, me)
}

func TestOpenExecQuery(t *testing.T) {
	db := openTest(t, Options{})
	res, err := db.Query("SELECT fno FROM Flights WHERE dest='LA'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSubmitScriptPairCommits(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 2})
	h1, err := db.SubmitScript(pairScript("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := db.SubmitScript(pairScript("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	res, _ := db.Query("SELECT name, fno FROM Bookings")
	if len(res.Rows) != 2 || !res.Rows[0][1].Equal(res.Rows[1][1]) {
		t.Fatalf("bookings = %v", res.Rows)
	}
	if st := db.Stats(); st.GroupCommits != 1 {
		t.Errorf("GroupCommits = %d", st.GroupCommits)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	db, err := Open(Options{Path: path, RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')")
	h1, _ := db.SubmitScript(pairScript("Mickey", "Minnie"))
	h2, _ := db.SubmitScript(pairScript("Minnie", "Mickey"))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	db.Close()

	// Reopen: recovery replays DDL + committed group.
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT name FROM Bookings")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("recovered bookings = %v", res.Rows)
	}
}

func TestCheckpointAndRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	db.ExecDDL("CREATE TABLE T (a INT)")
	db.Exec("INSERT INTO T VALUES (1)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Exec("INSERT INTO T VALUES (2)")
	db.Close()

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, _ := db2.Query("SELECT a FROM T")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExecRejectsEntangled(t *testing.T) {
	db := openTest(t, Options{})
	if _, err := db.Exec("SELECT 'x', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1"); err == nil {
		t.Fatal("entangled query through Exec accepted")
	}
}

func TestGoProgramAPI(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 2})
	prog := func(me, them string) Program {
		return Program{
			Name:    me,
			Timeout: 2 * time.Second,
			Body: func(tx *Tx) error {
				a := tx.Entangle(&EQ{
					Head:   []eq.Atom{Atom("R", Const(Str(me)), Var("f"))},
					Post:   []eq.Atom{Atom("R", Const(Str(them)), Var("f"))},
					Body:   []eq.Atom{Atom("Flights", Var("f"), Var("d"), Var("dest"))},
					Choose: 1,
				})
				if a.Status != eq.Answered {
					return fmt.Errorf("status %v", a.Status)
				}
				_, err := tx.Insert("Bookings", Values(Str(me), a.Bindings["f"], a.Bindings["d"]))
				return err
			},
		}
	}
	h1 := db.Submit(prog("A", "B"))
	h2 := db.Submit(prog("B", "A"))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("A: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("B: %+v", o)
	}
}

func TestRunDirect(t *testing.T) {
	db := openTest(t, Options{})
	o := db.RunDirect(Program{Body: func(tx *Tx) error {
		_, err := tx.Insert("Bookings", Values(Str("solo"), Int(122), Date("2011-05-03")))
		return err
	}})
	if o.Status != core.StatusCommitted {
		t.Fatalf("outcome = %+v", o)
	}
}
