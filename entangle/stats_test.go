package entangle

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Snapshot consistency: every StatsSnapshot taken while submissions and
// settlements race must be internally consistent — the settled counters
// (commits + timeouts + rollbacks + failures) can never exceed submitted,
// because both sides of that inequality move under the engine's stats
// lock and the snapshot reads the whole registry under it too. Run with
// -race; before the single-registry refactor each field was copied from
// its own atomic in sequence and this invariant had a window.
func TestStatsSnapshotConsistentUnderLoad(t *testing.T) {
	db := openTest(t, Options{RunFrequency: 2, RetryInterval: 2 * time.Millisecond})
	// The direct-exec seeding above commits without submitting, so the
	// invariant is on deltas from this baseline: only Submit-path traffic
	// runs from here on.
	base := db.StatsSnapshot()
	settledIn := func(s StatsSnapshot) int64 { return s.Commits + s.Timeouts + s.Rollbacks + s.Failures }

	const pairs = 24
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot reader: hammer StatsSnapshot while pairs settle.
	var bad []StatsSnapshot
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := db.StatsSnapshot()
			if settledIn(s)-settledIn(base) > s.Submitted-base.Submitted {
				bad = append(bad, s)
				return
			}
		}
	}()

	outcomes := make(chan Outcome, 2*pairs)
	for i := 0; i < pairs; i++ {
		me, them := fmt.Sprintf("A%d", i), fmt.Sprintf("B%d", i)
		for _, pair := range [][2]string{{me, them}, {them, me}} {
			wg.Add(1)
			go func(me, them string) {
				defer wg.Done()
				h, err := db.SubmitScript(pairScript(me, them))
				if err != nil {
					t.Error(err)
					return
				}
				outcomes <- h.Wait()
			}(pair[0], pair[1])
		}
	}
	for i := 0; i < 2*pairs; i++ {
		if o := <-outcomes; o.Status != StatusCommitted {
			t.Fatalf("pair member %d: %+v", i, o)
		}
	}
	close(stop)
	wg.Wait()

	if len(bad) > 0 {
		s := bad[0]
		t.Fatalf("inconsistent snapshot: settled=%d > submitted=%d (%+v)",
			settledIn(s)-settledIn(base), s.Submitted-base.Submitted, s)
	}
	final := db.StatsSnapshot()
	if got, want := settledIn(final)-settledIn(base), final.Submitted-base.Submitted; got != want {
		t.Fatalf("final snapshot not settled: %d of %d", got, want)
	}
	if final.Commits-base.Commits != 2*pairs {
		t.Fatalf("commits = %d, want %d", final.Commits-base.Commits, 2*pairs)
	}
}
