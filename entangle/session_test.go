package entangle

import (
	"errors"
	"testing"
	"time"
)

func TestInteractiveAutocommit(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	if _, err := s.Exec("INSERT INTO Bookings VALUES ('solo', 122, '2011-05-03')"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT name FROM Bookings")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInteractiveTransactionBlock(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	if _, err := s.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if !s.InTransaction() {
		t.Fatal("not in transaction after BEGIN")
	}
	if _, err := s.Exec("INSERT INTO Bookings VALUES ('a', 122, '2011-05-03')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SET @f = 123"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO Bookings VALUES ('b', @f, '2011-05-04')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT name, fno FROM Bookings")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInteractiveRollback(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	s.Exec("BEGIN TRANSACTION")
	s.Exec("INSERT INTO Bookings VALUES ('x', 1, '2011-05-03')")
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT name FROM Bookings")
	if len(res.Rows) != 0 {
		t.Fatalf("rollback leaked: %v", res.Rows)
	}
}

func TestInteractiveStatementErrorPoisonsBlock(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	s.Exec("BEGIN TRANSACTION")
	s.Exec("INSERT INTO Bookings VALUES ('x', 1, '2011-05-03')")
	if _, err := s.Exec("INSERT INTO Nope VALUES (1)"); err == nil {
		t.Fatal("statement against missing table accepted")
	}
	if s.InTransaction() {
		t.Fatal("failed statement should end the block")
	}
	res, _ := db.Query("SELECT name FROM Bookings")
	if len(res.Rows) != 0 {
		t.Fatalf("poisoned block leaked writes: %v", res.Rows)
	}
}

func TestInteractiveHoldsLocksUntilCommit(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	s.Exec("BEGIN TRANSACTION")
	if _, err := s.Exec("SELECT fno FROM Flights"); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer must block until the interactive reader commits
	// (Strict 2PL, table read locks).
	done := make(chan Outcome, 1)
	go func() {
		done <- db.RunDirect(Program{Body: func(tx *Tx) error {
			_, err := tx.Insert("Flights", Values(Int(999), Date("2011-06-01"), Str("SF")))
			return err
		}})
	}()
	select {
	case o := <-done:
		t.Fatalf("writer proceeded against interactive reader: %+v", o)
	case <-time.After(50 * time.Millisecond):
	}
	s.Exec("COMMIT")
	if o := <-done; o.Status != StatusCommitted {
		t.Fatalf("writer = %+v", o)
	}
}

func TestInteractiveRejectsEntangled(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	_, err := s.Exec(`SELECT 'a', fno INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1`)
	if !errors.Is(err, ErrInteractiveEntangle) {
		t.Fatalf("err = %v", err)
	}
}

func TestInteractiveErrors(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	if _, err := s.Exec("COMMIT"); err == nil {
		t.Error("COMMIT outside block accepted")
	}
	if _, err := s.Exec("ROLLBACK"); err == nil {
		t.Error("ROLLBACK outside block accepted")
	}
	s.Exec("BEGIN TRANSACTION")
	if _, err := s.Exec("BEGIN TRANSACTION"); err == nil {
		t.Error("nested BEGIN accepted")
	}
	if _, err := s.Exec("CREATE TABLE T2 (a INT)"); err == nil {
		t.Error("DDL inside block accepted")
	}
	// Close rolls back the open block.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.InTransaction() {
		t.Error("still in transaction after Close")
	}
}

func TestInteractiveDDLOutsideBlock(t *testing.T) {
	db := openTest(t, Options{})
	s := db.Interactive()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE Extra (a INT); CREATE INDEX ex_a ON Extra (a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO Extra VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query("SELECT a FROM Extra WHERE a = 7")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
