package entangle

import (
	"errors"
	"fmt"

	"repro/internal/eq"
	"repro/internal/sql"
	"repro/internal/txn"
)

// Interactive sessions: statement-at-a-time classical transactions, the
// §4 "interactive" mode for non-entangled work. Entangled queries remain
// non-interactive — a transaction that coordinates must be submitted whole
// (SubmitScript / Submit) so the run scheduler can manage its blocking and
// retries; the paper likewise defers interactive entanglement to future
// work.
//
//	s := db.Interactive()
//	s.Exec("BEGIN TRANSACTION")
//	s.Exec("INSERT INTO Flights VALUES (200, '2011-06-01', 'SF')")
//	s.Exec("SELECT fno FROM Flights WHERE dest='SF'")
//	s.Exec("COMMIT")

// ErrInteractiveEntangle is returned when an interactive session poses an
// entangled query.
var ErrInteractiveEntangle = errors.New("entangle: entangled queries are not interactive; submit the whole transaction via SubmitScript")

// InteractiveSession executes statements one at a time. Outside a
// transaction block each statement autocommits; between BEGIN and
// COMMIT/ROLLBACK statements share one classical transaction under Strict
// 2PL. Host variables (@x) persist for the lifetime of the session.
// Not safe for concurrent use.
type InteractiveSession struct {
	db      *DB
	session *sql.Session
	tx      *txn.Txn // non-nil inside an open transaction block
}

// Interactive opens a session.
func (db *DB) Interactive() *InteractiveSession {
	return &InteractiveSession{db: db, session: sql.NewSession()}
}

// InTransaction reports whether a transaction block is open.
func (s *InteractiveSession) InTransaction() bool { return s.tx != nil }

// classicalTx adapts txn.Txn to the sql executor's DataTx, rejecting
// entangled queries.
type classicalTx struct {
	*txn.Txn
}

func (c classicalTx) Entangle(q *eq.Query) *eq.Answer {
	return &eq.Answer{Status: eq.Errored, Err: ErrInteractiveEntangle}
}

// Exec executes one statement (or a semicolon-separated batch) and returns
// the last result. BEGIN/COMMIT/ROLLBACK control the transaction block.
// A statement error inside a block aborts the transaction, as a DBMS
// client would experience after a failed statement followed by ROLLBACK.
func (s *InteractiveSession) Exec(src string) (*Result, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		res, err := s.execOne(st)
		if err != nil {
			return nil, err
		}
		if res != nil {
			last = res
		}
	}
	return last, nil
}

func (s *InteractiveSession) execOne(st sql.Stmt) (*Result, error) {
	switch stmt := st.(type) {
	case *sql.BeginStmt:
		if s.tx != nil {
			return nil, fmt.Errorf("entangle: transaction already open")
		}
		// An open interactive block is one unit of work against the
		// checkpoint quiescence gate: a checkpoint waits for COMMIT or
		// ROLLBACK, so it can never tear this transaction's log records
		// away from its commit record.
		s.db.txm.Enter()
		tx, err := s.db.engine.BeginClassical()
		if err != nil {
			s.db.txm.Exit()
			return nil, err
		}
		s.tx = tx
		return &Result{}, nil
	case *sql.CommitStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("entangle: COMMIT outside a transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		s.db.txm.Exit()
		return &Result{}, err
	case *sql.RollbackStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("entangle: ROLLBACK outside a transaction")
		}
		err := s.tx.Abort()
		s.tx = nil
		s.db.txm.Exit()
		return &Result{}, err
	case *sql.CreateTableStmt, *sql.CreateIndexStmt:
		if s.tx != nil {
			return nil, fmt.Errorf("entangle: DDL inside a transaction block is not supported")
		}
		return &Result{}, sql.ExecDDL(s.db.txm, st)
	case *sql.EntangledSelectStmt:
		return nil, ErrInteractiveEntangle
	default:
		if s.tx != nil {
			res, err := s.session.Exec(classicalTx{s.tx}, s.db.cat, st)
			if err != nil {
				// Statement failure poisons the block: roll back.
				s.tx.Abort()
				s.tx = nil
				s.db.txm.Exit()
				return nil, err
			}
			return res, nil
		}
		// Autocommit statement: one self-contained unit of work.
		s.db.txm.Enter()
		defer s.db.txm.Exit()
		tx, err := s.db.engine.BeginClassical()
		if err != nil {
			return nil, err
		}
		res, err := s.session.Exec(classicalTx{tx}, s.db.cat, stmt)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		return res, nil
	}
}

// Close rolls back any open transaction block.
func (s *InteractiveSession) Close() error {
	if s.tx != nil {
		err := s.tx.Abort()
		s.tx = nil
		s.db.txm.Exit()
		return err
	}
	return nil
}
