package entangle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/wal"
)

// The sharded-deployment surface of a DB: one logical database served by
// several processes, each owning disjoint shards. The engine's commit
// path switches to the two-phase distributed group coordinator, and the
// recovery residue (in-doubt participants, logged coordinator decisions)
// becomes visible so the server can resolve crashed groups at startup.

// DistConfig and DistTransport are re-exported so servers wire sharding
// without importing internal/core.
type (
	DistConfig    = core.DistConfig
	DistTransport = core.DistTransport
)

// EnableDist switches the engine to the distributed commit path. Call
// right after Open, before any traffic.
func (db *DB) EnableDist(cfg DistConfig) { db.engine.EnableDist(cfg) }

// DeliverPrepare hands a coordinator's prepare to the engine (the server's
// shard_prepare op lands here).
func (db *DB) DeliverPrepare(p dist.Prepare) { db.engine.DeliverPrepare(p) }

// ApplyDecision applies a coordinator's group verdict to the engine's
// parked members (the server's shard_decide op lands here). Idempotent.
func (db *DB) ApplyDecision(group uint64, commit bool) { db.engine.ApplyDecision(group, commit) }

// LogDecision durably records a distributed group verdict in this node's
// WAL — the coordinator calls it BEFORE fanning the decision out.
func (db *DB) LogDecision(group uint64, commit bool) error {
	return db.txm.LogDecision(group, commit)
}

// InDoubt returns the transactions recovery left in-doubt (prepared, no
// local verdict), keyed to their distributed group ids. Empty on a clean
// start.
func (db *DB) InDoubt() map[wal.TxID]uint64 {
	if db.recovery == nil || len(db.recovery.InDoubt) == 0 {
		return nil
	}
	out := make(map[wal.TxID]uint64, len(db.recovery.InDoubt))
	for tx, g := range db.recovery.InDoubt {
		out[tx] = g
	}
	return out
}

// RecoveredDecisions returns the distributed-group verdicts this node's
// own WAL recorded — on the coordinator node, the authoritative answers
// for participants resolving in-doubt groups.
func (db *DB) RecoveredDecisions() map[uint64]bool {
	if db.recovery == nil || len(db.recovery.Decisions) == 0 {
		return nil
	}
	out := make(map[uint64]bool, len(db.recovery.Decisions))
	for g, c := range db.recovery.Decisions {
		out[g] = c
	}
	return out
}

// ResolveInDoubt applies a coordinator decision to every in-doubt
// transaction of the given group: commit redoes the withheld effects at a
// fresh CSN; abort just closes them out. Resolved transactions drop from
// the in-doubt set.
func (db *DB) ResolveInDoubt(group uint64, commit bool) error {
	if db.recovery == nil {
		return nil
	}
	for tx, g := range db.recovery.InDoubt {
		if g != group {
			continue
		}
		if commit {
			if err := db.txm.CommitRecovered(tx, db.recovery.InDoubtRecords[tx]); err != nil {
				return fmt.Errorf("entangle: resolve group %d: %w", group, err)
			}
		} else {
			if err := db.txm.AbortRecovered(tx); err != nil {
				return fmt.Errorf("entangle: resolve group %d: %w", group, err)
			}
		}
		delete(db.recovery.InDoubt, tx)
		delete(db.recovery.InDoubtRecords, tx)
	}
	return nil
}
