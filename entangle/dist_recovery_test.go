package entangle

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// prepareAndCrash builds a participant that dies between prepare and
// decision: a transaction inserts a row, logs its prepare record for the
// given group, and the WAL bytes at that instant are returned — the state
// a restart sees.
func prepareAndCrash(t *testing.T, group uint64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL("CREATE TABLE Pledges (name VARCHAR, amount INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO Pledges VALUES ('seed', 1)"); err != nil {
		t.Fatal(err)
	}
	txm := db.Engine().Txm()
	tx, err := txm.Begin(txn.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("Pledges", types.Tuple{types.Str("mickey"), types.Int(40)}); err != nil {
		t.Fatal(err)
	}
	if err := txm.Prepare(tx, group); err != nil {
		t.Fatal(err)
	}
	// "Crash": capture the log as it stands — prepare flushed, no verdict.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func reopenFrom(t *testing.T, data []byte) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "restart.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, path
}

func countPledges(t *testing.T, db *DB) int {
	t.Helper()
	res, err := db.Query("SELECT name FROM Pledges")
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// TestInDoubtResolvesToLoggedCommit kills a participant between prepare
// and commit, restarts it, and applies the coordinator's logged commit
// decision: the withheld effects must appear, exactly once, and survive a
// second restart.
func TestInDoubtResolvesToLoggedCommit(t *testing.T) {
	const group = 77
	data := prepareAndCrash(t, group)
	db, path := reopenFrom(t, data)

	inDoubt := db.InDoubt()
	if len(inDoubt) != 1 {
		t.Fatalf("InDoubt = %v, want one transaction", inDoubt)
	}
	for _, g := range inDoubt {
		if g != group {
			t.Fatalf("in-doubt group = %d, want %d", g, group)
		}
	}
	// Withheld: the prepared insert must not be visible before the verdict.
	if n := countPledges(t, db); n != 1 {
		t.Fatalf("pledges before resolution = %d, want 1 (seed only)", n)
	}

	if err := db.ResolveInDoubt(group, true); err != nil {
		t.Fatal(err)
	}
	if n := countPledges(t, db); n != 2 {
		t.Fatalf("pledges after commit resolution = %d, want 2", n)
	}
	if len(db.InDoubt()) != 0 {
		t.Fatalf("InDoubt not cleared: %v", db.InDoubt())
	}
	db.Close()

	// The resolution is durable: a further restart has the row and nothing
	// in doubt.
	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := countPledges(t, db2); n != 2 {
		t.Fatalf("pledges after second restart = %d, want 2", n)
	}
	if len(db2.InDoubt()) != 0 {
		t.Fatalf("in-doubt resurrected after resolution: %v", db2.InDoubt())
	}
}

// TestInDoubtResolvesToLoggedAbort is the abort half: the coordinator
// decided abort (or has no record — presumed abort); the withheld effects
// must never appear, and the abort is durable.
func TestInDoubtResolvesToLoggedAbort(t *testing.T) {
	const group = 78
	data := prepareAndCrash(t, group)
	db, path := reopenFrom(t, data)

	if len(db.InDoubt()) != 1 {
		t.Fatalf("InDoubt = %v, want one transaction", db.InDoubt())
	}
	if err := db.ResolveInDoubt(group, false); err != nil {
		t.Fatal(err)
	}
	if n := countPledges(t, db); n != 1 {
		t.Fatalf("pledges after abort resolution = %d, want 1", n)
	}
	db.Close()

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n := countPledges(t, db2); n != 1 {
		t.Fatalf("pledges after second restart = %d, want 1", n)
	}
	if len(db2.InDoubt()) != 0 {
		t.Fatalf("in-doubt survived abort resolution: %v", db2.InDoubt())
	}
}

// TestCoordinatorDecisionSurvivesRestart: the coordinator's own log hands
// the verdict back after a crash, which is what makes the participant's
// Status inquiry answerable.
func TestCoordinatorDecisionSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LogDecision(91, true); err != nil {
		t.Fatal(err)
	}
	if err := db.LogDecision(92, false); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	dec := db2.RecoveredDecisions()
	if commit, ok := dec[91]; !ok || !commit {
		t.Fatalf("group 91 decision = %v/%v, want commit", dec[91], ok)
	}
	if commit, ok := dec[92]; !ok || commit {
		t.Fatalf("group 92 decision = %v/%v, want abort", dec[92], ok)
	}
}

// TestPreparedTornTailSweep cuts the participant's crashed log at every
// byte offset: recovery must always succeed, the prepared transaction's
// effects must never be redone, and it is either in-doubt (prepare record
// survived whole) or an ordinary loser (prepare torn away).
func TestPreparedTornTailSweep(t *testing.T) {
	const group = 79
	data := prepareAndCrash(t, group)
	dir := t.TempDir()
	sawInDoubt := false
	for cut := 0; cut <= len(data); cut++ {
		cutPath := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		stats, err := wal.RecoverAll(cutPath, cat)
		if err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		if cat.Has("Pledges") {
			tbl, _ := cat.Get("Pledges")
			for _, row := range tbl.All() {
				if row[0].Str64() == "mickey" {
					t.Fatalf("cut at byte %d: prepared effects redone without a verdict", cut)
				}
			}
		}
		if len(stats.InDoubt) > 0 {
			sawInDoubt = true
			for _, g := range stats.InDoubt {
				if g != group {
					t.Fatalf("cut at byte %d: in-doubt group = %d, want %d", cut, g, group)
				}
			}
		}
	}
	if !sawInDoubt {
		t.Fatal("no cut produced an in-doubt transaction; the sweep never crossed the prepare record")
	}
}
