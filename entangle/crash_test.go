package entangle

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Crash-atomicity property: recovering the database from ANY prefix of the
// write-ahead log must yield a state where every entangled pair's bookings
// are all-or-nothing — the §4 recovery guarantee backed by atomic
// GroupCommit records. We simulate crashes by snapshotting the WAL file's
// bytes at random moments while a workload of entangled pairs runs, then
// recover each snapshot into a fresh catalog and check the invariant.

func TestCrashRecoveryGroupAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.wal")
	db, err := Open(Options{Path: path, RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
		INSERT INTO Flights VALUES (122, 'LA');
		INSERT INTO Flights VALUES (123, 'LA');
	`); err != nil {
		t.Fatal(err)
	}

	// Snapshot the WAL concurrently with the workload.
	var stop atomic.Bool
	var snapshots [][]byte
	var snapMu sync.Mutex
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for !stop.Load() {
			data, err := os.ReadFile(path)
			if err == nil {
				cp := make([]byte, len(data))
				copy(cp, data)
				snapMu.Lock()
				snapshots = append(snapshots, cp)
				snapMu.Unlock()
			}
		}
	}()

	const pairs = 40
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		a := fmt.Sprintf("a%d", p)
		b := fmt.Sprintf("b%d", p)
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			wg.Add(1)
			go func(me, them string) {
				defer wg.Done()
				script := fmt.Sprintf(`
				BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
				SELECT '%s', fno AS @fno INTO ANSWER R
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
				AND ('%s', fno) IN ANSWER R
				CHOOSE 1;
				INSERT INTO Bookings VALUES ('%s', @fno);
				COMMIT;`, me, them, me)
				h, err := db.SubmitScript(script)
				if err != nil {
					t.Error(err)
					return
				}
				if o := h.Wait(); o.Status != StatusCommitted {
					t.Errorf("%s: %+v", me, o)
				}
			}(pair[0], pair[1])
		}
	}
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()

	// Add the final log as one more "crash point".
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshots = append(snapshots, final)
	if len(snapshots) < 5 {
		t.Fatalf("only %d WAL snapshots captured; workload too fast for the test to mean anything", len(snapshots))
	}

	fullPairs := 0
	for i, snap := range snapshots {
		crashPath := filepath.Join(dir, fmt.Sprintf("crash-%d.wal", i))
		if err := os.WriteFile(crashPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		if _, err := wal.RecoverAll(crashPath, cat); err != nil {
			t.Fatalf("snapshot %d (%d bytes): %v", i, len(snap), err)
		}
		if !cat.Has("Bookings") {
			continue // crashed before DDL
		}
		tbl, _ := cat.Get("Bookings")
		byPair := make(map[string][]string)
		for _, row := range tbl.All() {
			name := row[0].Str64()
			byPair[name[1:]] = append(byPair[name[1:]], name)
		}
		for pid, members := range byPair {
			if len(members) != 2 {
				t.Fatalf("snapshot %d: pair %s recovered partially: %v (group commit violated)", i, pid, members)
			}
			fullPairs++
		}
	}
	if fullPairs == 0 {
		t.Log("warning: no snapshot contained committed pairs; invariant vacuously true")
	}
	// The final snapshot must contain all pairs.
	catFinal := storage.NewCatalog()
	if _, err := wal.RecoverAll(filepath.Join(dir, fmt.Sprintf("crash-%d.wal", len(snapshots)-1)), catFinal); err != nil {
		t.Fatal(err)
	}
	tbl, _ := catFinal.Get("Bookings")
	if tbl.Len() != 2*pairs {
		t.Fatalf("final recovery has %d bookings, want %d", tbl.Len(), 2*pairs)
	}
}

// TestCrashDuringGroupCommitBatch kills the database mid-batch: a single
// run commits two entanglement groups through one batched group-commit WAL
// flush, and we simulate a crash at EVERY byte offset of the resulting log
// — including the offsets inside the batched write, between and inside its
// two GroupCommit records. Recovery must deliver each coordinated group
// all-or-nothing at every crash point: a tear between the records loses the
// second group whole, a tear inside a record loses that group whole, and no
// crash point may ever resurrect half a pair.
func TestCrashDuringGroupCommitBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.wal")
	// RunFrequency 4 pools both pairs into ONE run, whose finalize phase
	// retires both groups in a single AppendBatch; the long retry interval
	// keeps the ticker from starting a smaller run early.
	db, err := Open(Options{Path: path, RunFrequency: 4, RetryInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
		INSERT INTO Flights VALUES (122, 'LA');
		INSERT INTO Flights VALUES (123, 'LA');
	`); err != nil {
		t.Fatal(err)
	}

	var handles []*Handle
	for _, pid := range []string{"p0", "p1"} {
		a, b := pid+"a", pid+"b"
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			script := fmt.Sprintf(`
				BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
				SELECT '%s', fno AS @fno INTO ANSWER R
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
				AND ('%s', fno) IN ANSWER R
				CHOOSE 1;
				INSERT INTO Bookings VALUES ('%s', @fno);
				COMMIT;`, pair[0], pair[1], pair[0])
			h, err := db.SubmitScript(script)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	for i, h := range handles {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("tx %d: %+v", i, o)
		}
	}
	stats := db.Stats()
	if stats.GroupCommits != 2 {
		t.Fatalf("GroupCommits = %d, want 2 (two pairs in one run)", stats.GroupCommits)
	}
	if stats.CommitBatches != 1 {
		t.Fatalf("CommitBatches = %d, want 1 (both groups in one batched flush)", stats.CommitBatches)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pairsAt := make(map[int]bool) // committed-pair counts observed across crash points
	for cut := 0; cut <= len(data); cut++ {
		crashPath := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(crashPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		if _, err := wal.RecoverAll(crashPath, cat); err != nil {
			t.Fatalf("crash at byte %d: recovery failed: %v", cut, err)
		}
		if !cat.Has("Bookings") {
			continue
		}
		tbl, _ := cat.Get("Bookings")
		byPair := make(map[string]int)
		for _, row := range tbl.All() {
			name := row[0].Str64()
			byPair[name[:2]]++
		}
		for pid, n := range byPair {
			if n != 2 {
				t.Fatalf("crash at byte %d: pair %s recovered %d of 2 members (group atomicity violated)", cut, pid, n)
			}
		}
		pairsAt[len(byPair)] = true
	}
	// The sweep must actually have crossed a mid-batch tear: some prefix
	// ends after the first GroupCommit record of the batch but before the
	// second, recovering exactly one whole pair; and the full log both.
	if !pairsAt[1] {
		t.Fatal("no crash point recovered exactly one pair; the mid-batch tear was never exercised")
	}
	if !pairsAt[2] {
		t.Fatal("full log did not recover both pairs")
	}
}
