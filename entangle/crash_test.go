package entangle

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Crash-atomicity property: recovering the database from ANY prefix of the
// write-ahead log must yield a state where every entangled pair's bookings
// are all-or-nothing — the §4 recovery guarantee backed by atomic
// GroupCommit records. We simulate crashes by snapshotting the WAL file's
// bytes at random moments while a workload of entangled pairs runs, then
// recover each snapshot into a fresh catalog and check the invariant.

func TestCrashRecoveryGroupAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.wal")
	db, err := Open(Options{Path: path, RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
		INSERT INTO Flights VALUES (122, 'LA');
		INSERT INTO Flights VALUES (123, 'LA');
	`); err != nil {
		t.Fatal(err)
	}

	// Snapshot the WAL concurrently with the workload.
	var stop atomic.Bool
	var snapshots [][]byte
	var snapMu sync.Mutex
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for !stop.Load() {
			data, err := os.ReadFile(path)
			if err == nil {
				cp := make([]byte, len(data))
				copy(cp, data)
				snapMu.Lock()
				snapshots = append(snapshots, cp)
				snapMu.Unlock()
			}
		}
	}()

	const pairs = 40
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		a := fmt.Sprintf("a%d", p)
		b := fmt.Sprintf("b%d", p)
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			wg.Add(1)
			go func(me, them string) {
				defer wg.Done()
				script := fmt.Sprintf(`
				BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
				SELECT '%s', fno AS @fno INTO ANSWER R
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
				AND ('%s', fno) IN ANSWER R
				CHOOSE 1;
				INSERT INTO Bookings VALUES ('%s', @fno);
				COMMIT;`, me, them, me)
				h, err := db.SubmitScript(script)
				if err != nil {
					t.Error(err)
					return
				}
				if o := h.Wait(); o.Status != StatusCommitted {
					t.Errorf("%s: %+v", me, o)
				}
			}(pair[0], pair[1])
		}
	}
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()

	// Add the final log as one more "crash point".
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snapshots = append(snapshots, final)
	if len(snapshots) < 5 {
		t.Fatalf("only %d WAL snapshots captured; workload too fast for the test to mean anything", len(snapshots))
	}

	fullPairs := 0
	for i, snap := range snapshots {
		crashPath := filepath.Join(dir, fmt.Sprintf("crash-%d.wal", i))
		if err := os.WriteFile(crashPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		if _, err := wal.RecoverAll(crashPath, cat); err != nil {
			t.Fatalf("snapshot %d (%d bytes): %v", i, len(snap), err)
		}
		if !cat.Has("Bookings") {
			continue // crashed before DDL
		}
		tbl, _ := cat.Get("Bookings")
		byPair := make(map[string][]string)
		for _, row := range tbl.All() {
			name := row[0].Str64()
			byPair[name[1:]] = append(byPair[name[1:]], name)
		}
		for pid, members := range byPair {
			if len(members) != 2 {
				t.Fatalf("snapshot %d: pair %s recovered partially: %v (group commit violated)", i, pid, members)
			}
			fullPairs++
		}
	}
	if fullPairs == 0 {
		t.Log("warning: no snapshot contained committed pairs; invariant vacuously true")
	}
	// The final snapshot must contain all pairs.
	catFinal := storage.NewCatalog()
	if _, err := wal.RecoverAll(filepath.Join(dir, fmt.Sprintf("crash-%d.wal", len(snapshots)-1)), catFinal); err != nil {
		t.Fatal(err)
	}
	tbl, _ := catFinal.Get("Bookings")
	if tbl.Len() != 2*pairs {
		t.Fatalf("final recovery has %d bookings, want %d", tbl.Len(), 2*pairs)
	}
}

// TestCrashDuringGroupCommitBatch kills the database mid-batch: a single
// run commits two entanglement groups through one batched group-commit WAL
// flush, and we simulate a crash at EVERY byte offset of the resulting log
// — including the offsets inside the batched write, between and inside its
// two GroupCommit records. Recovery must deliver each coordinated group
// all-or-nothing at every crash point: a tear between the records loses the
// second group whole, a tear inside a record loses that group whole, and no
// crash point may ever resurrect half a pair.
func TestCrashDuringGroupCommitBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.wal")
	// RunFrequency 4 pools both pairs into ONE run, whose finalize phase
	// retires both groups in a single AppendBatch; the long retry interval
	// keeps the ticker from starting a smaller run early.
	db, err := Open(Options{Path: path, RunFrequency: 4, RetryInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`
		INSERT INTO Flights VALUES (122, 'LA');
		INSERT INTO Flights VALUES (123, 'LA');
	`); err != nil {
		t.Fatal(err)
	}

	var handles []*Handle
	for _, pid := range []string{"p0", "p1"} {
		a, b := pid+"a", pid+"b"
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			script := fmt.Sprintf(`
				BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
				SELECT '%s', fno AS @fno INTO ANSWER R
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
				AND ('%s', fno) IN ANSWER R
				CHOOSE 1;
				INSERT INTO Bookings VALUES ('%s', @fno);
				COMMIT;`, pair[0], pair[1], pair[0])
			h, err := db.SubmitScript(script)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	for i, h := range handles {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("tx %d: %+v", i, o)
		}
	}
	stats := db.Stats()
	if stats.GroupCommits != 2 {
		t.Fatalf("GroupCommits = %d, want 2 (two pairs in one run)", stats.GroupCommits)
	}
	if stats.CommitBatches != 1 {
		t.Fatalf("CommitBatches = %d, want 1 (both groups in one batched flush)", stats.CommitBatches)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pairsAt := make(map[int]bool) // committed-pair counts observed across crash points
	for cut := 0; cut <= len(data); cut++ {
		crashPath := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(crashPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		if _, err := wal.RecoverAll(crashPath, cat); err != nil {
			t.Fatalf("crash at byte %d: recovery failed: %v", cut, err)
		}
		if !cat.Has("Bookings") {
			continue
		}
		tbl, _ := cat.Get("Bookings")
		byPair := make(map[string]int)
		for _, row := range tbl.All() {
			name := row[0].Str64()
			byPair[name[:2]]++
		}
		for pid, n := range byPair {
			if n != 2 {
				t.Fatalf("crash at byte %d: pair %s recovered %d of 2 members (group atomicity violated)", cut, pid, n)
			}
		}
		pairsAt[len(byPair)] = true
	}
	// The sweep must actually have crossed a mid-batch tear: some prefix
	// ends after the first GroupCommit record of the batch but before the
	// second, recovering exactly one whole pair; and the full log both.
	if !pairsAt[1] {
		t.Fatal("no crash point recovered exactly one pair; the mid-batch tear was never exercised")
	}
	if !pairsAt[2] {
		t.Fatal("full log did not recover both pairs")
	}
}

// TestCheckpointCSNSurvivesRestart is the regression test for the lost
// commit clock: a checkpoint truncates the log, so without the snapshot-
// header CSN a restart would reseed the clock at 0 and reuse sequence
// numbers that version visibility and ground-cache fingerprints already
// depend on. The clock must strictly advance across checkpoint + restart.
func TestCheckpointCSNSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "csn.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecDDL("CREATE TABLE T (a INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	csn0 := db.Engine().Txm().CSN()
	if csn0 == 0 {
		t.Fatal("commit clock did not advance before checkpoint")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// The truncated log alone carries no commits; the snapshot header must
	// reseed the clock.
	cat := storage.NewCatalog()
	stats, err := wal.RecoverAll(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotCSN != csn0 || stats.MaxCSN != csn0 {
		t.Fatalf("recovery stats SnapshotCSN=%d MaxCSN=%d, want both %d", stats.SnapshotCSN, stats.MaxCSN, csn0)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Engine().Txm().CSN(); got != csn0 {
		t.Fatalf("restart seeded clock at %d, want %d", got, csn0)
	}
	if _, err := db2.Exec("INSERT INTO T VALUES (99)"); err != nil {
		t.Fatal(err)
	}
	if got := db2.Engine().Txm().CSN(); got <= csn0 {
		t.Fatalf("clock did not strictly advance after restart: %d <= %d", got, csn0)
	}
	res, err := db2.Query("SELECT a FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("recovered %d rows, want 4", len(res.Rows))
	}
}

// TestCheckpointConcurrentCommitsAtomic hammers Checkpoint against a
// stream of two-table transactions (each commits matching rows to L and R)
// and treats every checkpoint boundary as a crash point: the (snapshot,
// log) file pair captured after each checkpoint must recover to a state
// where L and R agree exactly — a torn snapshot (L scanned pre-commit, R
// post-commit) with the repairing log records truncated away would break
// the invariant, and so would any committed write lost by truncation.
func TestCheckpointConcurrentCommitsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.wal")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE L (v INT);
		CREATE TABLE R (v INT);
	`); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				o := db.RunDirect(Program{Body: func(tx *Tx) error {
					if _, err := tx.Insert("L", Values(Int(v))); err != nil {
						return err
					}
					_, err := tx.Insert("R", Values(Int(v)))
					return err
				}})
				if o.Status != StatusCommitted {
					t.Errorf("writer %d insert %d: %+v", w, i, o)
					return
				}
				committed.Add(1)
				// Pace the stream so plenty of checkpoints land between
				// (and around) commits instead of the writers finishing
				// inside the first checkpoint.
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	// Checkpoint continuously while the writers commit, capturing the
	// (snapshot, log) pair right after each checkpoint — a crash at that
	// moment recovers exactly these bytes.
	type capture struct{ snap, log []byte }
	var captures []capture
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		case <-time.After(2 * time.Millisecond):
		}
		if err := db.Checkpoint(); err != nil {
			t.Errorf("checkpoint: %v", err)
			break
		}
		snap, err := os.ReadFile(wal.SnapshotPath(path))
		if err != nil {
			t.Fatal(err)
		}
		logBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		captures = append(captures, capture{snap, logBytes})
	}
	if t.Failed() {
		return
	}
	if len(captures) < 3 {
		t.Fatalf("only %d checkpoints raced the writers; test too weak", len(captures))
	}

	check := func(label string, snap, logBytes []byte, wantRows int) {
		cdir := t.TempDir()
		cpath := filepath.Join(cdir, "crash.wal")
		if err := os.WriteFile(cpath, logBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal.SnapshotPath(cpath), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		cat := storage.NewCatalog()
		if _, err := wal.RecoverAll(cpath, cat); err != nil {
			t.Fatalf("%s: recovery: %v", label, err)
		}
		rows := func(table string) map[int64]int {
			tbl, err := cat.Get(table)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			out := make(map[int64]int)
			for _, r := range tbl.All() {
				out[r[0].Int64()]++
			}
			return out
		}
		l, r := rows("L"), rows("R")
		if len(l) != len(r) {
			t.Fatalf("%s: torn commit recovered: %d L rows vs %d R rows", label, len(l), len(r))
		}
		for v, n := range l {
			if n != 1 || r[v] != 1 {
				t.Fatalf("%s: value %d recovered L=%d R=%d times", label, v, n, r[v])
			}
		}
		if wantRows >= 0 && len(l) != wantRows {
			t.Fatalf("%s: recovered %d committed pairs, want %d", label, len(l), wantRows)
		}
	}
	// Validate every crash point when few, a spread when many.
	stride := 1
	if len(captures) > 60 {
		stride = len(captures) / 60
	}
	for i := 0; i < len(captures); i += stride {
		check(fmt.Sprintf("capture %d", i), captures[i].snap, captures[i].log, -1)
	}
	// The final durable state must hold every committed write.
	finalSnap, err := os.ReadFile(wal.SnapshotPath(path))
	if err != nil {
		t.Fatal(err)
	}
	finalLog, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	check("final", finalSnap, finalLog, int(committed.Load()))
}
