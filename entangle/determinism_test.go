package entangle

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// Determinism regression for the concurrent run-evaluation pipeline: the
// same seeded workload of entangled pairs, executed once with serialized
// grounding (GroundWorkers=1) and once with a parallel pool, must produce
// identical eq.Solve choices — observable as the flight each participant
// booked — and identical final table states. The booking scripts leave the
// chosen grounding in the Bookings table, so choice divergence anywhere in
// the pipeline shows up as a table diff.

// runDeterministicWorkload executes `pairs` entangled pairs over a Flights
// table with several equally-eligible rows and returns the sorted final
// contents of every table.
func runDeterministicWorkload(t *testing.T, groundWorkers, pairs, seed int) map[string][]string {
	t.Helper()
	db, err := Open(Options{
		GroundWorkers:  groundWorkers,
		RunFrequency:   2,
		DefaultTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecDDL(`
		CREATE TABLE Flights (fno INT, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT);
	`); err != nil {
		t.Fatal(err)
	}
	// Several same-destination flights: every pair has multiple candidate
	// groundings, so Solve's choice is not forced.
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Flights VALUES (%d, 'LA')`, 120+seed+i)); err != nil {
			t.Fatal(err)
		}
	}

	handles := make([]*Handle, 0, 2*pairs)
	for p := 0; p < pairs; p++ {
		a := fmt.Sprintf("s%da%d", seed, p)
		b := fmt.Sprintf("s%db%d", seed, p)
		for _, pair := range [][2]string{{a, b}, {b, a}} {
			script := fmt.Sprintf(`
				BEGIN TRANSACTION WITH TIMEOUT 30 SECONDS;
				SELECT '%s', fno AS @fno INTO ANSWER R
				WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
				AND ('%s', fno) IN ANSWER R
				CHOOSE 1;
				INSERT INTO Bookings VALUES ('%s', @fno);
				COMMIT;`, pair[0], pair[1], pair[0])
			h, err := db.SubmitScript(script)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		// Both members of the pair are in the pool; RunFrequency=2 starts
		// the run, so scheduling is the same batch sequence in both modes.
		for _, h := range handles[len(handles)-2:] {
			if o := h.Wait(); o.Status != StatusCommitted {
				t.Fatalf("workers=%d pair %d: %+v", groundWorkers, p, o)
			}
		}
	}

	state := make(map[string][]string)
	for _, name := range db.Catalog().Names() {
		tbl, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		for _, row := range tbl.All() {
			rows = append(rows, row.String())
		}
		sort.Strings(rows)
		state[name] = rows
	}
	return state
}

func TestSerialParallelDeterminism(t *testing.T) {
	const pairs = 8
	for seed := 1; seed <= 3; seed++ {
		serial := runDeterministicWorkload(t, 1, pairs, seed)
		for _, workers := range []int{4, 16} {
			parallel := runDeterministicWorkload(t, workers, pairs, seed)
			if len(serial) != len(parallel) {
				t.Fatalf("seed %d: table sets differ: %v vs %v", seed, serial, parallel)
			}
			for name, want := range serial {
				got, ok := parallel[name]
				if !ok {
					t.Fatalf("seed %d: table %s missing from parallel run", seed, name)
				}
				if len(want) != len(got) {
					t.Fatalf("seed %d table %s: %d rows serial vs %d parallel", seed, name, len(want), len(got))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("seed %d table %s row %d: serial %q vs parallel(%d) %q",
							seed, name, i, want[i], workers, got[i])
					}
				}
			}
			// Both booked every participant exactly once.
			if n := len(parallel["Bookings"]); n != 2*pairs {
				t.Fatalf("seed %d workers %d: %d bookings, want %d", seed, workers, n, 2*pairs)
			}
		}
	}
}
