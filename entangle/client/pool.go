package client

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Pool is a fixed-size set of client connections for concurrent callers.
// One Client already multiplexes concurrent requests over one TCP
// connection, but every frame still crosses one socket and one flusher;
// a Pool spreads callers across connections round-robin so the server's
// per-connection dispatch (and the kernel's socket locks) stop being the
// ceiling.
//
// Handles and interactive sessions are connection-scoped server-side, so
// stateful objects stay bound to the Client that created them — Get hands
// out a Client when a caller needs that affinity, and the convenience
// methods (Exec, SubmitScript, ...) pick a connection per call, which is
// safe precisely because each returned Handle/Call keeps its connection.
type Pool struct {
	conns []*Client
	next  atomic.Uint64
}

// DialPool opens size connections to addr with default options.
func DialPool(addr string, size int) (*Pool, error) {
	return DialPoolOptions(addr, size, Options{})
}

// DialPoolOptions opens size connections to addr. All connections
// negotiate independently but against one server they agree; Codec
// reports the first connection's choice.
func DialPoolOptions(addr string, size int, opts Options) (*Pool, error) {
	if size <= 0 {
		return nil, errors.New("client: pool size must be positive")
	}
	p := &Pool{conns: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := DialOptions(addr, opts)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("client: pool conn %d: %w", i, err)
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Get returns one pooled connection (round-robin), skipping clients whose
// connection is currently down — each dead client keeps redialing in the
// background, and Get routes around it until it heals. If every client is
// down the round-robin pick is returned anyway: its next call blocks on
// the reconnect rather than failing fast, which is the right behavior for
// a momentary full outage. The Client stays owned by the pool — do not
// Close it.
func (p *Pool) Get() *Client {
	n := uint64(len(p.conns))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n]; c.Healthy() {
			return c
		}
	}
	return p.conns[start%n]
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// Codec reports the negotiated codec of the pool's connections.
func (p *Pool) Codec() string { return p.conns[0].Codec() }

// Close closes every pooled connection; the first error wins.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping checks liveness over one pooled connection.
func (p *Pool) Ping() error { return p.Get().Ping() }

// ExecDDL runs DDL over one pooled connection.
func (p *Pool) ExecDDL(script string) error { return p.Get().ExecDDL(script) }

// Exec runs a classical script over one pooled connection.
func (p *Pool) Exec(script string) (*Result, error) { return p.Get().Exec(script) }

// ExecAsync issues a pipelined Exec over one pooled connection.
func (p *Pool) ExecAsync(script string) *Call { return p.Get().ExecAsync(script) }

// Query runs a SELECT over one pooled connection.
func (p *Pool) Query(src string) (*Result, error) { return p.Get().Query(src) }

// QueryAsync issues a pipelined Query over one pooled connection.
func (p *Pool) QueryAsync(src string) *Call { return p.Get().QueryAsync(src) }

// SubmitScript submits a script over one pooled connection; the returned
// Handle stays bound to that connection.
func (p *Pool) SubmitScript(script string) (*Handle, error) {
	return p.Get().SubmitScript(script)
}
