package client

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
)

// Pool is a fixed-size set of client connections for concurrent callers.
// One Client already multiplexes concurrent requests over one TCP
// connection, but every frame still crosses one socket and one flusher;
// a Pool spreads callers across connections round-robin so the server's
// per-connection dispatch (and the kernel's socket locks) stop being the
// ceiling.
//
// Handles and interactive sessions are connection-scoped server-side, so
// stateful objects stay bound to the Client that created them — Get hands
// out a Client when a caller needs that affinity, and the convenience
// methods (Exec, SubmitScript, ...) pick a connection per call, which is
// safe precisely because each returned Handle/Call keeps its connection.
// A sharded Pool (DialShardedPool) additionally knows the deployment's
// placement map: conns[i] is then the connection to the server owning
// shard i, Route picks the connection by a script's routing key, and
// SubmitScript routes automatically — the home shard answers without a
// server-side forwarding hop. A down home connection falls back to any
// healthy member, whose server forwards on the client's behalf.
type Pool struct {
	conns     []*Client
	next      atomic.Uint64
	placement *shard.Map // nil for an unsharded pool
}

// DialPool opens size connections to addr with default options.
func DialPool(addr string, size int) (*Pool, error) {
	return DialPoolOptions(addr, size, Options{})
}

// DialPoolOptions opens size connections to addr. All connections
// negotiate independently but against one server they agree; Codec
// reports the first connection's choice.
func DialPoolOptions(addr string, size int, opts Options) (*Pool, error) {
	if size <= 0 {
		return nil, errors.New("client: pool size must be positive")
	}
	p := &Pool{conns: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := DialOptions(addr, opts)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("client: pool conn %d: %w", i, err)
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// DialShardedPool joins a sharded deployment: it fetches the placement
// map from addr (any member serves it) and opens one connection per
// shard, indexed by shard id. Against an unsharded server the placement
// map has one node and the pool degenerates to a single connection.
func DialShardedPool(addr string, opts Options) (*Pool, error) {
	boot, err := DialOptions(addr, opts)
	if err != nil {
		return nil, err
	}
	m, err := boot.Placement()
	if err != nil {
		boot.Close()
		return nil, fmt.Errorf("client: fetch placement: %w", err)
	}
	if len(m.Nodes) == 0 {
		boot.Close()
		return nil, errors.New("client: placement map names no nodes")
	}
	p := &Pool{conns: make([]*Client, 0, len(m.Nodes)), placement: m}
	reused := false
	for i, node := range m.Nodes {
		if node == addr && !reused {
			p.conns = append(p.conns, boot)
			reused = true
			continue
		}
		c, err := DialOptions(node, opts)
		if err != nil {
			if !reused {
				boot.Close()
			}
			p.Close()
			return nil, fmt.Errorf("client: shard %d (%s): %w", i, node, err)
		}
		p.conns = append(p.conns, c)
	}
	if !reused {
		boot.Close()
	}
	return p, nil
}

// Placement returns the pool's placement map (nil when unsharded).
func (p *Pool) Placement() *shard.Map { return p.placement }

// GetShard returns the connection owning shard s when it is healthy —
// home-shard affinity beats round-robin, because the home shard answers
// without a forwarding hop — and only falls back to the round-robin pick
// (which itself skips dead clients) when the home connection is down.
func (p *Pool) GetShard(s int) *Client {
	if n := len(p.conns); n > 0 {
		if c := p.conns[((s%n)+n)%n]; c.Healthy() {
			return c
		}
	}
	return p.Get()
}

// Route returns the connection for a script's home shard: the routing key
// (first quoted literal — the acting user) hashes to a shard, and the
// pool prefers that shard's connection. Unsharded pools round-robin.
func (p *Pool) Route(script string) *Client {
	if p.placement == nil || p.placement.Shards <= 1 {
		return p.Get()
	}
	return p.GetShard(p.placement.Home(shard.RouteKey(script)))
}

// Get returns one pooled connection (round-robin), skipping clients whose
// connection is currently down — each dead client keeps redialing in the
// background, and Get routes around it until it heals. If every client is
// down the round-robin pick is returned anyway: its next call blocks on
// the reconnect rather than failing fast, which is the right behavior for
// a momentary full outage. The Client stays owned by the pool — do not
// Close it.
func (p *Pool) Get() *Client {
	n := uint64(len(p.conns))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n]; c.Healthy() {
			return c
		}
	}
	return p.conns[start%n]
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// Codec reports the negotiated codec of the pool's connections.
func (p *Pool) Codec() string { return p.conns[0].Codec() }

// Close closes every pooled connection; the first error wins.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping checks liveness over one pooled connection.
func (p *Pool) Ping() error { return p.Get().Ping() }

// ExecDDL runs DDL over one pooled connection — or, in a sharded pool,
// over every connection: each shard owns its own catalog copy, so schema
// must exist everywhere before sharded traffic can route.
func (p *Pool) ExecDDL(script string) error {
	if p.placement == nil || p.placement.Shards <= 1 {
		return p.Get().ExecDDL(script)
	}
	for i, c := range p.conns {
		if err := c.ExecDDL(script); err != nil {
			return fmt.Errorf("client: ddl on shard %d: %w", i, err)
		}
	}
	return nil
}

// Exec runs a classical script over one pooled connection (the routing
// key's home shard when the pool is sharded).
func (p *Pool) Exec(script string) (*Result, error) { return p.Route(script).Exec(script) }

// ExecAsync issues a pipelined Exec over one pooled connection.
func (p *Pool) ExecAsync(script string) *Call { return p.Get().ExecAsync(script) }

// Query runs a SELECT over one pooled connection.
func (p *Pool) Query(src string) (*Result, error) { return p.Get().Query(src) }

// QueryAsync issues a pipelined Query over one pooled connection.
func (p *Pool) QueryAsync(src string) *Call { return p.Get().QueryAsync(src) }

// SubmitScript submits a script over one pooled connection — the routing
// key's home shard when the pool is sharded, so the submission lands on
// the engine owning its data without a server-side forwarding hop. The
// returned Handle stays bound to that connection.
func (p *Pool) SubmitScript(script string) (*Handle, error) {
	return p.Route(script).SubmitScript(script)
}
