package client

import (
	"encoding/json"
	"fmt"

	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/wire"
)

// The sharded-deployment surface of the client: the placement fetch and
// the server-to-server 2PC ops. Servers in a sharded deployment dial
// their peers with this very package, so the cross-shard protocol rides
// the same connection machinery (reconnects, write batching, codec
// negotiation) as ordinary client traffic.
//
// Retry discipline: offer/prepare/vote/decide are deliberately NOT
// transparently retried — the 2PC protocol already repairs every lost
// message (a lost offer re-offers on the scheduler's retry tick, a lost
// prepare or vote times the group out into a safe abort, a lost decide is
// recovered by the participant's status poll), and a blind transport
// retry could resurrect a message the protocol has moved past. Placement
// and status are read-only and retry freely.

// Placement fetches the server's versioned shard placement map.
func (c *Client) Placement() (*shard.Map, error) {
	resp, err := c.call(wire.Request{Op: wire.OpPlacement})
	if err != nil {
		return nil, err
	}
	return shard.Unmarshal(resp.Stats)
}

// SubmitScriptTraced is SubmitScript under a caller-supplied trace id (0 =
// honor Options.Trace). Servers forwarding a submission to its home shard
// use it to keep the client's minted id on the forwarded program.
func (c *Client) SubmitScriptTraced(script string, trace uint64) (*Handle, error) {
	if trace == 0 {
		trace = c.mintTrace()
	}
	resp, err := c.call(wire.Request{Op: wire.OpSubmit, SQL: script, Trace: trace})
	if err != nil {
		return nil, err
	}
	if resp.Trace != 0 {
		trace = resp.Trace
	}
	return &Handle{c: c, id: resp.Handle, trace: trace}, nil
}

// shardCall sends one 2PC message (JSON payload in Request.SQL).
func (c *Client) shardCall(op string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("client: encode %s: %w", op, err)
	}
	_, err = c.call(wire.Request{Op: op, SQL: string(raw)})
	return err
}

// ShardOffer advertises an unmatched entangled query to the coordinator.
func (c *Client) ShardOffer(o dist.Offer) error {
	return c.shardCall(wire.OpShardOffer, &o)
}

// ShardPrepare delivers a matched answer to a participant for
// revalidation and durable prepare.
func (c *Client) ShardPrepare(p dist.Prepare) error {
	return c.shardCall(wire.OpShardPrepare, &p)
}

// ShardVote reports a participant's prepare outcome to the coordinator.
func (c *Client) ShardVote(v dist.Vote) error {
	return c.shardCall(wire.OpShardVote, &v)
}

// ShardDecide delivers the coordinator's logged verdict to a participant.
func (c *Client) ShardDecide(d dist.Decide) error {
	return c.shardCall(wire.OpShardDecide, &d)
}

// ShardStatus inquires a group's verdict (in-doubt resolution). The group
// id travels in the request's Handle field — the same opaque-u64 shape.
func (c *Client) ShardStatus(group uint64) (dist.Status, error) {
	var st dist.Status
	resp, err := c.call(wire.Request{Op: wire.OpShardStatus, Handle: group})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Stats, &st); err != nil {
		return st, fmt.Errorf("client: decode status: %w", err)
	}
	return st, nil
}
