// Package client is the remote counterpart of package entangle: it speaks
// the internal/wire frame protocol to a youtopia-serve process and mirrors
// the DB surface — ExecDDL, Exec/Query, SubmitScript with Handle.Wait,
// interactive sessions — so a program ports from embedded to remote by
// changing one constructor:
//
//	db, _ := entangle.Open(entangle.Options{})     // embedded
//	db, _ := client.Dial("127.0.0.1:7171")         // remote
//
// A Client multiplexes one TCP connection: requests carry IDs, responses
// are correlated back, and a blocked Wait never stalls other calls. All
// methods are safe for concurrent use.
//
// Dial negotiates the binary codec (wire protocol v2) and falls back to
// JSON against servers that do not speak it; Options.Codec pins either.
// Requests are write-batched: callers encode into one output buffer and a
// flusher goroutine writes accumulated frames in one syscall, so
// pipelined callers — the Async methods, or many goroutines sharing one
// client — amortize both encoding and the syscall. For connection-level
// parallelism on top, see Pool.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/entangle"
	"repro/internal/types"
	"repro/internal/wire"
)

// Result mirrors entangle.Result for the fields that travel: columns,
// rows, and the affected-row count.
type Result = wire.Result

// Outcome re-exports the engine outcome type; Handle.Wait returns the same
// statuses (and sentinel errors, via errors.Is) as the embedded API.
type Outcome = entangle.Outcome

// ErrClosed is returned for calls on a closed client (or one whose
// connection died; the underlying cause is wrapped).
var ErrClosed = errors.New("client: connection closed")

// Options tunes Dial.
type Options struct {
	// DialTimeout bounds the TCP connect and the protocol handshake, so
	// Dial cannot hang against an endpoint that accepts connections but
	// never answers. Default 5s.
	DialTimeout time.Duration

	// Codec selects the wire codec: wire.CodecBinary (the default, "")
	// negotiates the binary fast path and falls back to JSON against a
	// server that does not offer it; wire.CodecJSON skips negotiation
	// entirely — every frame stays readable with netcat, and the
	// connection works against any protocol-v1 server.
	Codec string
}

// writeTimeout bounds one batched request write so a dead peer cannot
// park the flusher (and every caller behind it) forever.
const writeTimeout = 30 * time.Second

// readBufSize buffers response reads: a batch of pipelined responses
// costs one read syscall.
const readBufSize = 64 << 10

// Client is a remote DB handle over one TCP connection.
type Client struct {
	nc    net.Conn
	br    *bufio.Reader
	codec wire.Codec // fixed after Dial's handshake

	// Write batching (mirrors the server's conn): callers encode request
	// frames into outBuf under outMu; the flusher goroutine writes
	// accumulated frames in one syscall.
	outMu       sync.Mutex
	outCond     *sync.Cond
	outBuf      []byte
	outSpare    []byte
	outClosed   bool
	flusherDone chan struct{}

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error // terminal connection error, once set
}

// Dial connects to a youtopia-serve address ("host:port"), verifies
// protocol compatibility, and negotiates the binary codec when the server
// offers it.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions is Dial with explicit options.
func DialOptions(addr string, opts Options) (*Client, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	want := opts.Codec
	if want == "" {
		want = wire.CodecBinary
	}
	if want != wire.CodecJSON && want != wire.CodecBinary {
		return nil, fmt.Errorf("client: unknown codec %q", opts.Codec)
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{
		nc:          nc,
		br:          bufio.NewReaderSize(nc, readBufSize),
		codec:       wire.JSON,
		pending:     make(map[uint64]chan *wire.Response),
		flusherDone: make(chan struct{}),
	}
	c.outCond = sync.NewCond(&c.outMu)
	// The handshake runs synchronously under a deadline — no reader or
	// flusher goroutines yet, so the codec switch cannot race anything. A
	// peer that accepts TCP but never speaks the protocol fails the
	// handshake instead of hanging Dial.
	nc.SetDeadline(time.Now().Add(timeout))
	if err := c.handshake(want); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	go c.readLoop()
	go c.flusher()
	return c, nil
}

// syncCall writes one request frame and reads one response frame on the
// calling goroutine; only valid before readLoop starts.
func (c *Client) syncCall(codec wire.Codec, req wire.Request) (*wire.Response, error) {
	c.nextID++
	req.ID = c.nextID
	frame, err := codec.AppendRequestFrame(nil, &req)
	if err != nil {
		return nil, err
	}
	if _, err := c.nc.Write(frame); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := codec.DecodeResponse(payload, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// handshake negotiates the codec. The hello (like every pre-negotiation
// frame) travels as JSON, so it is safe against any server version:
//   - a binary-capable server answers with the codec both sides use next;
//   - a JSON-only server that knows OpHello answers CodecJSON;
//   - a protocol-v1 server answers "unknown op" — the client falls back
//     to the v1 version-checking ping and stays on JSON.
func (c *Client) handshake(want string) error {
	if want == wire.CodecJSON {
		return c.checkVersion(wire.OpPing)
	}
	resp, err := c.syncCall(wire.JSON, wire.Request{Op: wire.OpHello, Codec: want})
	if err != nil {
		return fmt.Errorf("client: hello: %w", err)
	}
	if !resp.OK {
		// A v1 server rejects the unknown op; fall back to its own
		// liveness/version check and keep speaking JSON.
		return c.checkVersion(wire.OpPing)
	}
	if resp.Version != wire.ProtocolVersion {
		return fmt.Errorf("client: protocol version mismatch: server %d, client %d",
			resp.Version, wire.ProtocolVersion)
	}
	switch resp.Codec {
	case wire.CodecBinary:
		c.codec = wire.Binary
	case wire.CodecJSON, "":
		// Negotiation succeeded but the server keeps this connection on
		// JSON (e.g. a JSON-only deployment).
	default:
		return fmt.Errorf("client: server chose unknown codec %q", resp.Codec)
	}
	return nil
}

// checkVersion is the v1 handshake: a ping whose response carries the
// protocol version.
func (c *Client) checkVersion(op string) error {
	resp, err := c.syncCall(wire.JSON, wire.Request{Op: op})
	if err != nil {
		return fmt.Errorf("client: ping: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("client: ping: %s", resp.Error)
	}
	if resp.Version != wire.ProtocolVersion {
		return fmt.Errorf("client: protocol version mismatch: server %d, client %d",
			resp.Version, wire.ProtocolVersion)
	}
	return nil
}

// Codec reports the negotiated codec name (wire.CodecBinary or
// wire.CodecJSON).
func (c *Client) Codec() string { return c.codec.Name() }

// Close tears down the connection. In-flight calls fail with ErrClosed.
// Programs already submitted keep running server-side to their own
// outcome.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	c.outMu.Lock()
	c.outClosed = true
	c.outCond.Broadcast()
	c.outMu.Unlock()
	err := c.nc.Close() // unblocks a mid-write flusher
	<-c.flusherDone
	return err
}

// readLoop delivers responses to their waiting callers until the
// connection dies, then fails everything pending.
func (c *Client) readLoop() {
	for {
		payload, err := wire.ReadFrame(c.br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			c.nc.Close()
			return
		}
		var resp wire.Response
		if err := c.codec.DecodeResponse(payload, &resp); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

// flusher writes accumulated request frames in one syscall per batch.
func (c *Client) flusher() {
	defer close(c.flusherDone)
	c.outMu.Lock()
	for {
		for len(c.outBuf) == 0 && !c.outClosed {
			c.outCond.Wait()
		}
		if len(c.outBuf) == 0 {
			c.outMu.Unlock()
			return
		}
		buf := c.outBuf
		c.outBuf = c.outSpare[:0]
		c.outSpare = nil
		c.outMu.Unlock()

		c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		_, err := c.nc.Write(buf)
		c.outMu.Lock()
		c.outSpare = buf[:0]
		if err != nil {
			c.outMu.Unlock()
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			c.nc.Close()
			c.outMu.Lock()
			c.outClosed = true
			c.outBuf = nil
		}
	}
}

// fail marks the client broken and releases every pending caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *wire.Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Call is one in-flight pipelined request: issue with an Async method (or
// startCall), then block on the result when it is actually needed. The
// issue side never waits on the network, so a caller can keep dozens of
// requests in flight on one connection — the server executes them
// concurrently and the client's flusher coalesces their frames.
type Call struct {
	c   *Client
	ch  chan *wire.Response
	err error // issue-side failure, reported at completion
}

// startCall registers the request and enqueues its frame for the flusher.
func (c *Client) startCall(req wire.Request) *Call {
	call := &Call{c: c}
	c.mu.Lock()
	if c.err != nil {
		call.err = c.err
		c.mu.Unlock()
		return call
	}
	c.nextID++
	req.ID = c.nextID
	call.ch = make(chan *wire.Response, 1)
	c.pending[req.ID] = call.ch
	c.mu.Unlock()

	c.outMu.Lock()
	if c.outClosed {
		c.outMu.Unlock()
		c.dropPending(req.ID)
		call.err, call.ch = ErrClosed, nil
		return call
	}
	buf, err := c.codec.AppendRequestFrame(c.outBuf, &req)
	if err != nil {
		c.outMu.Unlock()
		c.dropPending(req.ID)
		call.err, call.ch = fmt.Errorf("%w: %v", ErrClosed, err), nil
		c.fail(call.err)
		return call
	}
	c.outBuf = buf
	c.outCond.Signal()
	c.outMu.Unlock()
	return call
}

func (c *Client) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// response blocks for the raw response and unwraps server-side errors.
func (call *Call) response() (*wire.Response, error) {
	if call.err != nil {
		return nil, call.err
	}
	resp, ok := <-call.ch
	if !ok {
		call.c.mu.Lock()
		err := call.c.err
		call.c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if !resp.OK {
		if e := wire.ErrorForCode(resp.ErrCode, resp.Error); e != nil {
			return nil, e
		}
		return nil, errors.New(resp.Error)
	}
	return resp, nil
}

// Result blocks until the call completes and returns its query result.
func (call *Call) Result() (*Result, error) {
	resp, err := call.response()
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Err blocks until the call completes and reports only its error.
func (call *Call) Err() error {
	_, err := call.response()
	return err
}

// call is the synchronous form: issue and block.
func (c *Client) call(req wire.Request) (*wire.Response, error) {
	return c.startCall(req).response()
}

// Ping round-trips a liveness check.
func (c *Client) Ping() error {
	_, err := c.call(wire.Request{Op: wire.OpPing})
	return err
}

// ExecDDL runs CREATE TABLE / CREATE INDEX statements.
func (c *Client) ExecDDL(script string) error {
	_, err := c.call(wire.Request{Op: wire.OpDDL, SQL: script})
	return err
}

// Exec runs a classical statement (or bare script) in autocommit mode and
// returns the last statement's result, like entangle.DB.Exec.
func (c *Client) Exec(script string) (*Result, error) {
	return c.ExecAsync(script).Result()
}

// ExecAsync issues an Exec without waiting; pipelined requests complete
// independently and in any order.
func (c *Client) ExecAsync(script string) *Call {
	return c.startCall(wire.Request{Op: wire.OpExec, SQL: script})
}

// Query runs a single SELECT and returns its rows.
func (c *Client) Query(src string) (*Result, error) { return c.Exec(src) }

// QueryAsync issues a Query without waiting.
func (c *Client) QueryAsync(src string) *Call { return c.ExecAsync(src) }

// SubmitScript submits a SQL script (BEGIN...COMMIT blocks may contain
// entangled queries) to the server's run scheduler and returns immediately
// with a Handle.
func (c *Client) SubmitScript(script string) (*Handle, error) {
	resp, err := c.call(wire.Request{Op: wire.OpSubmit, SQL: script})
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, id: resp.Handle}, nil
}

// Stats fetches the engine counter snapshot.
func (c *Client) Stats() (entangle.StatsSnapshot, error) {
	var snap entangle.StatsSnapshot
	resp, err := c.call(wire.Request{Op: wire.OpStats})
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(resp.Stats, &snap); err != nil {
		return snap, fmt.Errorf("client: decode stats: %w", err)
	}
	return snap, nil
}

// Tables lists the catalog.
func (c *Client) Tables() ([]wire.TableInfo, error) {
	resp, err := c.call(wire.Request{Op: wire.OpTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Handle awaits a submitted program's outcome, mirroring entangle.Handle.
// The server delivers an outcome exactly once (and prunes its side of the
// handle), so retrieval is single-flighted here: concurrent Wait/Poll
// calls share one server request and every later call reads the cache.
type Handle struct {
	c  *Client
	id uint64

	fetchMu sync.Mutex // single-flights the outcome retrieval
	mu      sync.Mutex // guards out/got
	out     Outcome
	got     bool
}

func (h *Handle) cached() (Outcome, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.out, h.got
}

// Wait blocks until the program completes and returns its outcome. A
// connection failure while waiting reports StatusFailed with the transport
// error; the program itself still runs to completion server-side.
func (h *Handle) Wait() Outcome {
	h.fetchMu.Lock()
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpWait, Handle: h.id})
	return h.settle(resp, err)
}

// Poll reports the outcome without blocking server-side; ok is false while
// the program is still in flight (or while another goroutine's Wait is
// already fetching the outcome). A transport error reports ok=true with
// StatusFailed, like Wait.
func (h *Handle) Poll() (Outcome, bool) {
	if !h.fetchMu.TryLock() {
		// A Wait (or another Poll) is mid-retrieval; its result will land
		// in the cache. Report "not yet" rather than racing it.
		if o, ok := h.cached(); ok {
			return o, true
		}
		return Outcome{}, false
	}
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o, true
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpPoll, Handle: h.id})
	if err == nil && !resp.Done {
		return Outcome{}, false
	}
	return h.settle(resp, err), true
}

func (h *Handle) settle(resp *wire.Response, err error) Outcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.got {
		return h.out
	}
	switch {
	case err != nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: err}
	case resp.Outcome == nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: errors.New("client: response missing outcome")}
	default:
		h.out = resp.Outcome.ToOutcome()
	}
	h.got = true
	return h.out
}

// InteractiveSession mirrors entangle.InteractiveSession over the wire:
// statement-at-a-time classical transactions with BEGIN/COMMIT/ROLLBACK
// and persistent host variables. Not safe for concurrent use, like its
// embedded counterpart.
type InteractiveSession struct {
	c      *Client
	id     uint64
	err    error // session_open failure, reported on first Exec
	closed bool
}

// Interactive opens a session. Errors surface on the first Exec, matching
// the embedded API's signature.
func (c *Client) Interactive() *InteractiveSession {
	resp, err := c.call(wire.Request{Op: wire.OpSessionOpen})
	if err != nil {
		return &InteractiveSession{c: c, err: err}
	}
	return &InteractiveSession{c: c, id: resp.Session}
}

// Exec executes one statement (or a semicolon-separated batch) in the
// session and returns the last result.
func (s *InteractiveSession) Exec(src string) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, errors.New("client: session closed")
	}
	resp, err := s.c.call(wire.Request{Op: wire.OpSessionExec, Session: s.id, SQL: src})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Close ends the session; an open transaction block rolls back.
func (s *InteractiveSession) Close() error {
	if s.err != nil || s.closed {
		return nil
	}
	s.closed = true
	_, err := s.c.call(wire.Request{Op: wire.OpSessionClose, Session: s.id})
	return err
}

// Values re-exports tuple construction so remote programs read like
// embedded ones.
func Values(vs ...types.Value) types.Tuple { return entangle.Values(vs...) }
