// Package client is the remote counterpart of package entangle: it speaks
// the internal/wire frame protocol to a youtopia-serve process and mirrors
// the DB surface — ExecDDL, Exec/Query, SubmitScript with Handle.Wait,
// interactive sessions — so a program ports from embedded to remote by
// changing one constructor:
//
//	db, _ := entangle.Open(entangle.Options{})     // embedded
//	db, _ := client.Dial("127.0.0.1:7171")         // remote
//
// A Client multiplexes one TCP connection: requests carry IDs, responses
// are correlated back, and a blocked Wait never stalls other calls. All
// methods are safe for concurrent use.
//
// The client is self-healing. When its connection dies it reconnects
// automatically — exponential backoff with jitter, bounded by a dial
// budget — and re-binds its identity to the server, so submitted-program
// handles survive the reconnect. Calls interrupted by a connection failure
// are retried transparently when that is safe: the client stamps mutating
// requests (Exec, ExecDDL, SubmitScript, Wait, Poll) with idempotency ids
// and the server's per-client dedup window makes the retry exactly-once —
// a request that already executed has its recorded response replayed
// instead of running twice. Requests shed by server admission control
// (wire.ErrOverloaded) are retried with backoff for every op, since a shed
// request never dispatched. When the budget runs out the call fails with
// ErrRetriesExhausted (wrapping the last cause, so errors.Is sees both).
// Interactive sessions are the exception: they are connection-scoped
// server-side, so their calls fail over a reconnect rather than retry.
//
// Dial negotiates the binary codec (wire protocol v2) and falls back to
// JSON against servers that do not speak it; Options.Codec pins either.
// Requests are write-batched: callers encode into one output buffer and a
// flusher goroutine writes accumulated frames in one syscall, so
// pipelined callers — the Async methods, or many goroutines sharing one
// client — amortize both encoding and the syscall. For connection-level
// parallelism on top, see Pool.
package client

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/entangle"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wire"
)

// Result mirrors entangle.Result for the fields that travel: columns,
// rows, and the affected-row count.
type Result = wire.Result

// Outcome re-exports the engine outcome type; Handle.Wait returns the same
// statuses (and sentinel errors, via errors.Is) as the embedded API.
type Outcome = entangle.Outcome

// ErrClosed is returned for calls on a closed client (or one whose
// connection died mid-call and could not be retried; the underlying cause
// is wrapped).
var ErrClosed = errors.New("client: connection closed")

// ErrRetriesExhausted is returned when a call's transport retries or
// overload backoffs ran out of budget. The returned error wraps the last
// underlying cause, so errors.Is matches both this sentinel and (say)
// wire.ErrOverloaded.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

type exhaustedError struct{ cause error }

func (e *exhaustedError) Error() string {
	return "client: retries exhausted: " + e.cause.Error()
}
func (e *exhaustedError) Unwrap() error        { return e.cause }
func (e *exhaustedError) Is(target error) bool { return target == ErrRetriesExhausted }

// Options tunes Dial.
type Options struct {
	// DialTimeout bounds the TCP connect and the protocol handshake, so
	// Dial cannot hang against an endpoint that accepts connections but
	// never answers. Default 5s.
	DialTimeout time.Duration

	// Codec selects the wire codec: wire.CodecBinary (the default, "")
	// negotiates the binary fast path and falls back to JSON against a
	// server that does not offer it; wire.CodecJSON pins JSON — every
	// frame stays readable with netcat, and the connection works against
	// any protocol-v1 server.
	Codec string

	// WriteTimeout bounds one batched request write so a dead peer cannot
	// park the flusher (and every caller behind it) forever. Default 30s.
	WriteTimeout time.Duration

	// DialBudget is how many dial attempts one reconnect may spend before
	// giving up (default 8). The initial Dial always makes exactly one
	// attempt — fail-fast — so the budget only governs self-healing.
	DialBudget int

	// RetryBudget is how many transparent retries one call may consume
	// across connection failures and overload sheds before failing with
	// ErrRetriesExhausted (default 8).
	RetryBudget int

	// ReconnectBackoff is the first reconnect delay; attempts double it
	// (plus jitter) up to ReconnectMaxBackoff. Defaults 25ms and 1s.
	ReconnectBackoff    time.Duration
	ReconnectMaxBackoff time.Duration

	// Trace mints a lifecycle trace id for every Exec and SubmitScript
	// call and attaches it on the wire, so a server run with tracing
	// enabled records the query's span tree under an id this client knows
	// (Handle.TraceID, Call.TraceID). Off by default: an untraced request
	// is byte-identical to the PR 6 encoding and costs the server nothing.
	Trace bool
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Codec == "" {
		o.Codec = wire.CodecBinary
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.DialBudget <= 0 {
		o.DialBudget = 8
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 8
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 25 * time.Millisecond
	}
	if o.ReconnectMaxBackoff <= 0 {
		o.ReconnectMaxBackoff = time.Second
	}
	return o
}

// readBufSize buffers response reads: a batch of pipelined responses
// costs one read syscall.
const readBufSize = 64 << 10

// Client is a remote DB handle. It owns at most one live TCP connection at
// a time and transparently replaces it when it dies.
type Client struct {
	addr string
	opts Options
	id   string // stable random identity, carried on every hello

	mu        sync.Mutex
	cc        *conn       // live connection; nil while down
	flight    *dialFlight // in-progress reconnect, single-flighted
	closed    bool
	nextID    uint64 // request IDs, client-wide so retries never collide
	nextIdem  uint64 // idempotency ids
	noDedup   bool   // legacy server: no hello, no idempotency, no retry of mutations
	codecName string

	reconnects atomic.Int64
	retries    atomic.Int64
}

type dialFlight struct {
	done chan struct{}
	cc   *conn
	err  error
}

// conn is one TCP connection's transport state: pending-call registry,
// write batching, and the read loop. It dies as a unit — any transport
// error fails every pending call and hands control back to the Client.
type conn struct {
	cl    *Client
	nc    net.Conn
	br    *bufio.Reader
	codec wire.Codec // fixed after the handshake

	outMu       sync.Mutex
	outCond     *sync.Cond
	outBuf      []byte
	outSpare    []byte
	outClosed   bool
	flusherDone chan struct{}

	mu      sync.Mutex
	pending map[uint64]chan *wire.Response
	dead    bool
	err     error
}

// Dial connects to a youtopia-serve address ("host:port"), verifies
// protocol compatibility, and negotiates the binary codec when the server
// offers it.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions is Dial with explicit options. The initial dial is a single
// fail-fast attempt; automatic reconnection (with backoff and budget)
// begins once the first connection is established.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if opts.Codec != wire.CodecJSON && opts.Codec != wire.CodecBinary {
		return nil, fmt.Errorf("client: unknown codec %q", opts.Codec)
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, fmt.Errorf("client: identity: %w", err)
	}
	c := &Client{addr: addr, opts: opts, id: hex.EncodeToString(idb[:])}
	cc, name, noDedup, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.cc, c.codecName, c.noDedup = cc, name, noDedup
	return c, nil
}

// dialConn makes one connection attempt: TCP connect, handshake (identity
// bind + codec negotiation) under a deadline, then the reader and flusher
// start.
func (c *Client) dialConn() (*conn, string, bool, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, "", false, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	cc := &conn{
		cl:          c,
		nc:          nc,
		br:          bufio.NewReaderSize(nc, readBufSize),
		codec:       wire.JSON,
		pending:     make(map[uint64]chan *wire.Response),
		flusherDone: make(chan struct{}),
	}
	cc.outCond = sync.NewCond(&cc.outMu)
	// The handshake runs synchronously under a deadline — no reader or
	// flusher goroutines yet, so the codec switch cannot race anything. A
	// peer that accepts TCP but never speaks the protocol fails the
	// handshake instead of hanging.
	nc.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	name, noDedup, err := cc.handshake(c.opts.Codec, c.id)
	if err != nil {
		nc.Close()
		return nil, "", false, err
	}
	nc.SetDeadline(time.Time{})
	go cc.readLoop()
	go cc.flusher()
	return cc, name, noDedup, nil
}

// syncCall writes one request frame and reads one response frame on the
// calling goroutine; only valid before readLoop starts.
func (cc *conn) syncCall(codec wire.Codec, req wire.Request) (*wire.Response, error) {
	frame, err := codec.AppendRequestFrame(nil, &req)
	if err != nil {
		return nil, err
	}
	if _, err := cc.nc.Write(frame); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(cc.br)
	if err != nil {
		return nil, err
	}
	var resp wire.Response
	if err := codec.DecodeResponse(payload, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// handshake binds the client identity and negotiates the codec. The hello
// (like every pre-negotiation frame) travels as JSON, so it is safe
// against any server version:
//   - a binary-capable server answers with the codec both sides use next;
//   - a JSON-only server (or a JSON-pinned hello) answers CodecJSON;
//   - a protocol-v1 server answers "unknown op" — the client falls back
//     to the v1 version-checking ping, stays on JSON, and disables the
//     idempotency machinery (a v1 server has no dedup window).
func (cc *conn) handshake(want, clientID string) (codecName string, noDedup bool, err error) {
	resp, err := cc.syncCall(wire.JSON, wire.Request{ID: 1, Op: wire.OpHello, Codec: want, Client: clientID})
	if err != nil {
		return "", false, fmt.Errorf("client: hello: %w", err)
	}
	if !resp.OK {
		// A v1 server rejects the unknown op; fall back to its own
		// liveness/version check and keep speaking JSON.
		if err := cc.checkVersion(); err != nil {
			return "", false, err
		}
		return wire.CodecJSON, true, nil
	}
	if resp.Version != wire.ProtocolVersion {
		return "", false, fmt.Errorf("client: protocol version mismatch: server %d, client %d",
			resp.Version, wire.ProtocolVersion)
	}
	switch resp.Codec {
	case wire.CodecBinary:
		cc.codec = wire.Binary
		return wire.CodecBinary, false, nil
	case wire.CodecJSON, "":
		// Negotiation succeeded but the server keeps this connection on
		// JSON (e.g. a JSON-only deployment).
		return wire.CodecJSON, false, nil
	default:
		return "", false, fmt.Errorf("client: server chose unknown codec %q", resp.Codec)
	}
}

// checkVersion is the v1 handshake: a ping whose response carries the
// protocol version.
func (cc *conn) checkVersion() error {
	resp, err := cc.syncCall(wire.JSON, wire.Request{ID: 2, Op: wire.OpPing})
	if err != nil {
		return fmt.Errorf("client: ping: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("client: ping: %s", resp.Error)
	}
	if resp.Version != wire.ProtocolVersion {
		return fmt.Errorf("client: protocol version mismatch: server %d, client %d",
			resp.Version, wire.ProtocolVersion)
	}
	return nil
}

// Codec reports the negotiated codec name (wire.CodecBinary or
// wire.CodecJSON).
func (c *Client) Codec() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codecName
}

// Healthy reports whether the client currently holds a live connection.
// A false answer is not fatal — a background reconnect may be in
// progress — but Pool uses it to steer callers toward live connections.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && c.cc != nil
}

// Reconnects reports how many times this client has successfully replaced
// a dead connection.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Retries reports how many transparent call retries (transport failures
// and overload sheds) this client has performed.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Close tears down the connection. In-flight calls fail with ErrClosed.
// Programs already submitted keep running server-side to their own
// outcome.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		return cc.teardown(ErrClosed)
	}
	return nil
}

// connDied detaches a dead connection and starts a background reconnect,
// so the client heals even with no caller currently blocked on it (this
// is what lets Pool evict dead connections and redial in the background).
func (c *Client) connDied(cc *conn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	closed := c.closed
	c.mu.Unlock()
	if !closed {
		go func() { _, _ = c.reconnect() }()
	}
}

// reconnect returns a live connection, dialing one if needed. Concurrent
// callers single-flight one dial sequence: DialBudget attempts with
// exponential backoff plus jitter.
func (c *Client) reconnect() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.cc != nil {
		cc := c.cc
		c.mu.Unlock()
		return cc, nil
	}
	if f := c.flight; f != nil {
		c.mu.Unlock()
		<-f.done
		return f.cc, f.err
	}
	f := &dialFlight{done: make(chan struct{})}
	c.flight = f
	c.mu.Unlock()

	var cc *conn
	var name string
	var noDedup bool
	var err error
	backoff := c.opts.ReconnectBackoff
	for attempt := 0; attempt < c.opts.DialBudget; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff + time.Duration(mrand.Int63n(int64(backoff/2)+1)))
			if backoff *= 2; backoff > c.opts.ReconnectMaxBackoff {
				backoff = c.opts.ReconnectMaxBackoff
			}
		}
		if c.isClosed() {
			err = ErrClosed
			break
		}
		cc, name, noDedup, err = c.dialConn()
		if err == nil {
			break
		}
	}

	c.mu.Lock()
	c.flight = nil
	if err == nil {
		if c.closed {
			c.mu.Unlock()
			cc.teardown(ErrClosed)
			c.mu.Lock()
			cc, err = nil, ErrClosed
		} else {
			c.cc = cc
			c.codecName = name
			c.noDedup = noDedup
			c.reconnects.Add(1)
		}
	}
	c.mu.Unlock()
	f.cc, f.err = cc, err
	close(f.done)
	return cc, err
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// readLoop delivers responses to their waiting callers until the
// connection dies, then fails everything pending on it.
func (cc *conn) readLoop() {
	for {
		payload, err := wire.ReadFrame(cc.br)
		if err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		var resp wire.Response
		if err := cc.codec.DecodeResponse(payload, &resp); err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		cc.mu.Lock()
		ch := cc.pending[resp.ID]
		delete(cc.pending, resp.ID)
		cc.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

// flusher writes accumulated request frames in one syscall per batch.
func (cc *conn) flusher() {
	defer close(cc.flusherDone)
	cc.outMu.Lock()
	for {
		for len(cc.outBuf) == 0 && !cc.outClosed {
			cc.outCond.Wait()
		}
		if len(cc.outBuf) == 0 {
			cc.outMu.Unlock()
			return
		}
		buf := cc.outBuf
		cc.outBuf = cc.outSpare[:0]
		cc.outSpare = nil
		cc.outMu.Unlock()

		cc.nc.SetWriteDeadline(time.Now().Add(cc.cl.opts.WriteTimeout))
		_, err := cc.nc.Write(buf)
		cc.outMu.Lock()
		cc.outSpare = buf[:0]
		if err != nil {
			cc.outMu.Unlock()
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			cc.outMu.Lock()
		}
	}
}

// fail kills the connection as a unit: pending calls see a closed channel
// (their retry logic takes over), the socket closes, and the Client is
// told to heal. Idempotent.
func (cc *conn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.err = err
	pending := cc.pending
	cc.pending = make(map[uint64]chan *wire.Response)
	cc.mu.Unlock()

	cc.outMu.Lock()
	cc.outClosed = true
	cc.outBuf = nil
	cc.outCond.Broadcast()
	cc.outMu.Unlock()
	cc.nc.Close()

	for _, ch := range pending {
		close(ch)
	}
	cc.cl.connDied(cc)
}

// teardown is fail plus waiting out the flusher, for an orderly Close.
func (cc *conn) teardown(err error) error {
	cc.fail(err)
	<-cc.flusherDone
	return nil
}

// deadErr returns the connection's terminal error (ErrClosed if none yet).
func (cc *conn) deadErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return ErrClosed
}

// send registers the request's response channel and enqueues its frame.
// An encode failure is permanent for the request but leaves the
// connection healthy (the frame never entered the stream).
func (cc *conn) send(req *wire.Request, ch chan *wire.Response) error {
	cc.mu.Lock()
	if cc.dead {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.pending[req.ID] = ch
	cc.mu.Unlock()

	cc.outMu.Lock()
	if cc.outClosed {
		cc.outMu.Unlock()
		cc.dropPending(req.ID)
		return cc.deadErr()
	}
	buf, err := cc.codec.AppendRequestFrame(cc.outBuf, req)
	if err != nil {
		cc.outMu.Unlock()
		cc.dropPending(req.ID)
		return err
	}
	cc.outBuf = buf
	cc.outCond.Signal()
	cc.outMu.Unlock()
	return nil
}

func (cc *conn) dropPending(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// idempotentOp reports whether op is safe to retry under an idempotency
// id: the server dedups re-execution, so the retry is exactly-once.
func idempotentOp(op string) bool {
	switch op {
	case wire.OpExec, wire.OpDDL, wire.OpSubmit, wire.OpWait, wire.OpPoll:
		return true
	}
	return false
}

// naturallyRetryable reports ops safe to retry even without dedup:
// read-only, or creating connection-scoped state that dies with the
// failed connection anyway. The 2PC shard ops (offer/prepare/vote/decide)
// are deliberately absent: the protocol repairs its own lost messages
// (see shard.go), so a transport retry could only resurrect stale ones.
func naturallyRetryable(op string) bool {
	switch op {
	case wire.OpPing, wire.OpStats, wire.OpTables, wire.OpSessionOpen,
		wire.OpPlacement, wire.OpShardStatus:
		return true
	}
	return false
}

// Call is one in-flight pipelined request: issue with an Async method (or
// startCall), then block on the result when it is actually needed. The
// issue side never waits on the network, so a caller can keep dozens of
// requests in flight on one connection — the server executes them
// concurrently and the client's flusher coalesces their frames. The
// completion side owns retries: if the connection dies under the call (or
// the server sheds it), response() re-issues the same request — same ID,
// same idempotency id — on a healed connection, within the retry budget.
type Call struct {
	c   *Client
	req wire.Request
	ch  chan *wire.Response // nil: not (or no longer) issued
	err error               // issue-side terminal failure

	attempts int // retries consumed
}

// startCall assigns the request its IDs and makes a best-effort first
// issue. A down connection is not an error here — response() heals and
// issues.
func (c *Client) startCall(req wire.Request) *Call {
	call := &Call{c: c}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		call.err = ErrClosed
		return call
	}
	c.nextID++
	req.ID = c.nextID
	if !c.noDedup && idempotentOp(req.Op) {
		c.nextIdem++
		req.Idem = c.nextIdem
	}
	cc := c.cc
	c.mu.Unlock()
	call.req = req
	if cc != nil {
		call.issue(cc)
	}
	return call
}

// issue registers the call on cc with a fresh response channel.
func (call *Call) issue(cc *conn) error {
	ch := make(chan *wire.Response, 1)
	if err := cc.send(&call.req, ch); err != nil {
		return err
	}
	call.ch = ch
	return nil
}

// permanentIssueErr reports send failures that no retry can fix: the
// request itself cannot be encoded.
func permanentIssueErr(err error) bool {
	return errors.Is(err, wire.ErrEncode) || errors.Is(err, wire.ErrFrameTooLarge)
}

// retryable reports whether the call may be re-issued after a transport
// failure that lost its response: only when the server dedups it (idem id
// assigned) or re-execution is harmless.
func (call *Call) retryable() bool {
	return call.req.Idem != 0 || naturallyRetryable(call.req.Op)
}

// spend consumes one unit of retry budget; returns false once exhausted.
func (call *Call) spend() bool {
	call.attempts++
	if call.attempts > call.c.opts.RetryBudget {
		return false
	}
	call.c.retries.Add(1)
	return true
}

// response blocks for the raw response, healing the connection and
// retrying as the retry contract allows, and unwraps server-side errors.
func (call *Call) response() (*wire.Response, error) {
	if call.err != nil {
		return nil, call.err
	}
	for {
		if call.ch == nil {
			cc, err := call.c.reconnect()
			if err != nil {
				if errors.Is(err, ErrClosed) {
					return nil, err
				}
				return nil, &exhaustedError{cause: err}
			}
			if err := call.issue(cc); err != nil {
				if permanentIssueErr(err) {
					return nil, err
				}
				// The conn died between reconnect and issue; spend budget
				// and heal again.
				if !call.spend() {
					return nil, &exhaustedError{cause: err}
				}
				continue
			}
		}
		resp, ok := <-call.ch
		if !ok {
			// Transport death lost the response. Retry only when the
			// request cannot double-execute.
			call.ch = nil
			cause := ErrClosed
			if call.c.isClosed() {
				return nil, cause
			}
			if !call.retryable() {
				return nil, cause
			}
			if !call.spend() {
				return nil, &exhaustedError{cause: cause}
			}
			continue
		}
		if !resp.OK {
			err := wire.ErrorForCode(resp.ErrCode, resp.Error)
			if err == nil {
				err = errors.New(resp.Error)
			}
			if errors.Is(err, wire.ErrOverloaded) {
				// Shed by admission control before dispatch: safe to retry
				// any op, after a short growing backoff.
				call.ch = nil
				if !call.spend() {
					return nil, &exhaustedError{cause: err}
				}
				d := time.Duration(1<<uint(call.attempts)) * time.Millisecond
				if d > 100*time.Millisecond {
					d = 100 * time.Millisecond
				}
				time.Sleep(d + time.Duration(mrand.Int63n(int64(d)+1)))
				continue
			}
			return nil, err
		}
		return resp, nil
	}
}

// Result blocks until the call completes and returns its query result.
func (call *Call) Result() (*Result, error) {
	resp, err := call.response()
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Err blocks until the call completes and reports only its error.
func (call *Call) Err() error {
	_, err := call.response()
	return err
}

// call is the synchronous form: issue and block.
func (c *Client) call(req wire.Request) (*wire.Response, error) {
	return c.startCall(req).response()
}

// Ping round-trips a liveness check.
func (c *Client) Ping() error {
	_, err := c.call(wire.Request{Op: wire.OpPing})
	return err
}

// ExecDDL runs CREATE TABLE / CREATE INDEX statements.
func (c *Client) ExecDDL(script string) error {
	_, err := c.call(wire.Request{Op: wire.OpDDL, SQL: script})
	return err
}

// Exec runs a classical statement (or bare script) in autocommit mode and
// returns the last statement's result, like entangle.DB.Exec.
func (c *Client) Exec(script string) (*Result, error) {
	return c.ExecAsync(script).Result()
}

// ExecAsync issues an Exec without waiting; pipelined requests complete
// independently and in any order.
func (c *Client) ExecAsync(script string) *Call {
	return c.startCall(wire.Request{Op: wire.OpExec, SQL: script, Trace: c.mintTrace()})
}

// Query runs a single SELECT and returns its rows.
func (c *Client) Query(src string) (*Result, error) { return c.Exec(src) }

// QueryAsync issues a Query without waiting.
func (c *Client) QueryAsync(src string) *Call { return c.ExecAsync(src) }

// SubmitScript submits a SQL script (BEGIN...COMMIT blocks may contain
// entangled queries) to the server's run scheduler and returns immediately
// with a Handle.
func (c *Client) SubmitScript(script string) (*Handle, error) {
	trace := c.mintTrace()
	resp, err := c.call(wire.Request{Op: wire.OpSubmit, SQL: script, Trace: trace})
	if err != nil {
		return nil, err
	}
	if resp.Trace != 0 {
		trace = resp.Trace
	}
	return &Handle{c: c, id: resp.Handle, trace: trace}, nil
}

// mintTrace returns a fresh trace id when Options.Trace is set, else 0.
func (c *Client) mintTrace() uint64 {
	if !c.opts.Trace {
		return 0
	}
	return obs.MintID()
}

// Stats fetches the engine counter snapshot.
func (c *Client) Stats() (entangle.StatsSnapshot, error) {
	var snap entangle.StatsSnapshot
	resp, err := c.call(wire.Request{Op: wire.OpStats})
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(resp.Stats, &snap); err != nil {
		return snap, fmt.Errorf("client: decode stats: %w", err)
	}
	return snap, nil
}

// Tables lists the catalog.
func (c *Client) Tables() ([]wire.TableInfo, error) {
	resp, err := c.call(wire.Request{Op: wire.OpTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Metrics fetches the server's observability registry snapshot — the
// counters and latency-histogram percentiles behind the \metrics shell
// command and the /metrics debug endpoint.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := c.call(wire.Request{Op: wire.OpMetrics})
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(resp.Stats, &snap); err != nil {
		return snap, fmt.Errorf("client: decode metrics: %w", err)
	}
	return snap, nil
}

// Trace fetches one trace's recorded span tree by id. The id is resolved
// through entanglement merges server-side, so the id minted at submit
// time keeps working after its trace folded into a partner's.
func (c *Client) Trace(id uint64) (obs.Trace, error) {
	var tr obs.Trace
	resp, err := c.call(wire.Request{Op: wire.OpTrace, Handle: id})
	if err != nil {
		return tr, err
	}
	if err := json.Unmarshal(resp.Stats, &tr); err != nil {
		return tr, fmt.Errorf("client: decode trace: %w", err)
	}
	return tr, nil
}

// Handle awaits a submitted program's outcome, mirroring entangle.Handle.
// Handles are scoped to the client identity server-side, so a Handle keeps
// working across an automatic reconnect. The server delivers an outcome
// exactly once (and prunes its side of the handle), so retrieval is
// single-flighted here: concurrent Wait/Poll calls share one server
// request and every later call reads the cache.
type Handle struct {
	c     *Client
	id    uint64
	trace uint64 // minted trace id, updated to canonical on settle

	fetchMu sync.Mutex // single-flights the outcome retrieval
	mu      sync.Mutex // guards out/got/trace
	out     Outcome
	got     bool
}

// TraceID returns the lifecycle trace id attached to this submission (0
// when the client is not tracing). After the outcome arrives, the id is
// the canonical one — if the program entangled with a partner and their
// traces merged, both handles report the same id.
func (h *Handle) TraceID() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trace
}

func (h *Handle) cached() (Outcome, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.out, h.got
}

// Wait blocks until the program completes and returns its outcome. A
// connection failure while waiting is retried (the Wait is idempotent
// under its dedup id); if retries run out it reports StatusFailed with
// the transport error — the program itself still runs to completion
// server-side.
func (h *Handle) Wait() Outcome {
	h.fetchMu.Lock()
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpWait, Handle: h.id, Trace: h.TraceID()})
	return h.settle(resp, err)
}

// Poll reports the outcome without blocking server-side; ok is false while
// the program is still in flight (or while another goroutine's Wait is
// already fetching the outcome). A transport error reports ok=true with
// StatusFailed, like Wait.
func (h *Handle) Poll() (Outcome, bool) {
	if !h.fetchMu.TryLock() {
		// A Wait (or another Poll) is mid-retrieval; its result will land
		// in the cache. Report "not yet" rather than racing it.
		if o, ok := h.cached(); ok {
			return o, true
		}
		return Outcome{}, false
	}
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o, true
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpPoll, Handle: h.id, Trace: h.TraceID()})
	if err == nil && !resp.Done {
		return Outcome{}, false
	}
	return h.settle(resp, err), true
}

func (h *Handle) settle(resp *wire.Response, err error) Outcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.got {
		return h.out
	}
	if resp != nil && resp.Trace != 0 {
		h.trace = resp.Trace
	}
	switch {
	case err != nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: err}
	case resp.Outcome == nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: errors.New("client: response missing outcome")}
	default:
		h.out = resp.Outcome.ToOutcome()
	}
	h.got = true
	return h.out
}

// InteractiveSession mirrors entangle.InteractiveSession over the wire:
// statement-at-a-time classical transactions with BEGIN/COMMIT/ROLLBACK
// and persistent host variables. Not safe for concurrent use, like its
// embedded counterpart. Sessions are connection-scoped server-side: if the
// connection dies, the session's open transaction rolls back and further
// Execs fail — by design, they are never transparently retried.
type InteractiveSession struct {
	c      *Client
	id     uint64
	err    error // session_open failure, reported on first Exec
	closed bool
}

// Interactive opens a session. Errors surface on the first Exec, matching
// the embedded API's signature.
func (c *Client) Interactive() *InteractiveSession {
	resp, err := c.call(wire.Request{Op: wire.OpSessionOpen})
	if err != nil {
		return &InteractiveSession{c: c, err: err}
	}
	return &InteractiveSession{c: c, id: resp.Session}
}

// Exec executes one statement (or a semicolon-separated batch) in the
// session and returns the last result.
func (s *InteractiveSession) Exec(src string) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, errors.New("client: session closed")
	}
	resp, err := s.c.call(wire.Request{Op: wire.OpSessionExec, Session: s.id, SQL: src})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Close ends the session; an open transaction block rolls back.
func (s *InteractiveSession) Close() error {
	if s.err != nil || s.closed {
		return nil
	}
	s.closed = true
	_, err := s.c.call(wire.Request{Op: wire.OpSessionClose, Session: s.id})
	return err
}

// Values re-exports tuple construction so remote programs read like
// embedded ones.
func Values(vs ...types.Value) types.Tuple { return entangle.Values(vs...) }
