// Package client is the remote counterpart of package entangle: it speaks
// the internal/wire frame protocol to a youtopia-serve process and mirrors
// the DB surface — ExecDDL, Exec/Query, SubmitScript with Handle.Wait,
// interactive sessions — so a program ports from embedded to remote by
// changing one constructor:
//
//	db, _ := entangle.Open(entangle.Options{})     // embedded
//	db, _ := client.Dial("127.0.0.1:7171")         // remote
//
// A Client multiplexes one TCP connection: requests carry IDs, responses
// are correlated back, and a blocked Wait never stalls other calls. All
// methods are safe for concurrent use.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/entangle"
	"repro/internal/types"
	"repro/internal/wire"
)

// Result mirrors entangle.Result for the fields that travel: columns,
// rows, and the affected-row count.
type Result = wire.Result

// Outcome re-exports the engine outcome type; Handle.Wait returns the same
// statuses (and sentinel errors, via errors.Is) as the embedded API.
type Outcome = entangle.Outcome

// ErrClosed is returned for calls on a closed client (or one whose
// connection died; the underlying cause is wrapped).
var ErrClosed = errors.New("client: connection closed")

// Options tunes Dial.
type Options struct {
	// DialTimeout bounds the TCP connect and the protocol handshake (the
	// version-checking ping), so Dial cannot hang against an endpoint that
	// accepts connections but never answers. Default 5s.
	DialTimeout time.Duration
}

// Client is a remote DB handle over one TCP connection.
type Client struct {
	nc net.Conn

	writeMu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error // terminal connection error, once set
}

// Dial connects to a youtopia-serve address ("host:port") and verifies
// protocol compatibility with a ping.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions is Dial with explicit options.
func DialOptions(addr string, opts Options) (*Client, error) {
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{nc: nc, pending: make(map[uint64]chan *wire.Response)}
	// The handshake runs under a read deadline: a peer that accepts TCP but
	// never speaks the protocol fails the ping instead of hanging Dial.
	nc.SetReadDeadline(time.Now().Add(timeout))
	go c.readLoop()
	resp, err := c.roundTrip(wire.Request{Op: wire.OpPing})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: ping: %w", err)
	}
	if resp.Version != wire.ProtocolVersion {
		nc.Close()
		return nil, fmt.Errorf("client: protocol version mismatch: server %d, client %d",
			resp.Version, wire.ProtocolVersion)
	}
	nc.SetReadDeadline(time.Time{})
	return c, nil
}

// Close tears down the connection. In-flight calls fail with ErrClosed.
// Programs already submitted keep running server-side to their own
// outcome.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return c.nc.Close()
}

// readLoop delivers responses to their waiting callers until the
// connection dies, then fails everything pending.
func (c *Client) readLoop() {
	for {
		var resp wire.Response
		if err := wire.ReadInto(c.nc, &resp); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

// fail marks the client broken and releases every pending caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *wire.Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// roundTrip sends one request and blocks for its response.
func (c *Client) roundTrip(req wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *wire.Response, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := wire.WriteFrame(c.nc, req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		err = fmt.Errorf("%w: %v", ErrClosed, err)
		c.fail(err)
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	return resp, nil
}

// call is roundTrip plus server-error unwrapping.
func (c *Client) call(req wire.Request) (*wire.Response, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		if e := wire.ErrorForCode(resp.ErrCode, resp.Error); e != nil {
			return nil, e
		}
		return nil, errors.New(resp.Error)
	}
	return resp, nil
}

// Ping round-trips a liveness check.
func (c *Client) Ping() error {
	_, err := c.call(wire.Request{Op: wire.OpPing})
	return err
}

// ExecDDL runs CREATE TABLE / CREATE INDEX statements.
func (c *Client) ExecDDL(script string) error {
	_, err := c.call(wire.Request{Op: wire.OpDDL, SQL: script})
	return err
}

// Exec runs a classical statement (or bare script) in autocommit mode and
// returns the last statement's result, like entangle.DB.Exec.
func (c *Client) Exec(script string) (*Result, error) {
	resp, err := c.call(wire.Request{Op: wire.OpExec, SQL: script})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Query runs a single SELECT and returns its rows.
func (c *Client) Query(src string) (*Result, error) { return c.Exec(src) }

// SubmitScript submits a SQL script (BEGIN...COMMIT blocks may contain
// entangled queries) to the server's run scheduler and returns immediately
// with a Handle.
func (c *Client) SubmitScript(script string) (*Handle, error) {
	resp, err := c.call(wire.Request{Op: wire.OpSubmit, SQL: script})
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, id: resp.Handle}, nil
}

// Stats fetches the engine counter snapshot.
func (c *Client) Stats() (entangle.StatsSnapshot, error) {
	var snap entangle.StatsSnapshot
	resp, err := c.call(wire.Request{Op: wire.OpStats})
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(resp.Stats, &snap); err != nil {
		return snap, fmt.Errorf("client: decode stats: %w", err)
	}
	return snap, nil
}

// Tables lists the catalog.
func (c *Client) Tables() ([]wire.TableInfo, error) {
	resp, err := c.call(wire.Request{Op: wire.OpTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Handle awaits a submitted program's outcome, mirroring entangle.Handle.
// The server delivers an outcome exactly once (and prunes its side of the
// handle), so retrieval is single-flighted here: concurrent Wait/Poll
// calls share one server request and every later call reads the cache.
type Handle struct {
	c  *Client
	id uint64

	fetchMu sync.Mutex // single-flights the outcome retrieval
	mu      sync.Mutex // guards out/got
	out     Outcome
	got     bool
}

func (h *Handle) cached() (Outcome, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.out, h.got
}

// Wait blocks until the program completes and returns its outcome. A
// connection failure while waiting reports StatusFailed with the transport
// error; the program itself still runs to completion server-side.
func (h *Handle) Wait() Outcome {
	h.fetchMu.Lock()
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpWait, Handle: h.id})
	return h.settle(resp, err)
}

// Poll reports the outcome without blocking server-side; ok is false while
// the program is still in flight (or while another goroutine's Wait is
// already fetching the outcome). A transport error reports ok=true with
// StatusFailed, like Wait.
func (h *Handle) Poll() (Outcome, bool) {
	if !h.fetchMu.TryLock() {
		// A Wait (or another Poll) is mid-retrieval; its result will land
		// in the cache. Report "not yet" rather than racing it.
		if o, ok := h.cached(); ok {
			return o, true
		}
		return Outcome{}, false
	}
	defer h.fetchMu.Unlock()
	if o, ok := h.cached(); ok {
		return o, true
	}
	resp, err := h.c.call(wire.Request{Op: wire.OpPoll, Handle: h.id})
	if err == nil && !resp.Done {
		return Outcome{}, false
	}
	return h.settle(resp, err), true
}

func (h *Handle) settle(resp *wire.Response, err error) Outcome {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.got {
		return h.out
	}
	switch {
	case err != nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: err}
	case resp.Outcome == nil:
		h.out = Outcome{Status: entangle.StatusFailed, Err: errors.New("client: response missing outcome")}
	default:
		h.out = resp.Outcome.ToOutcome()
	}
	h.got = true
	return h.out
}

// InteractiveSession mirrors entangle.InteractiveSession over the wire:
// statement-at-a-time classical transactions with BEGIN/COMMIT/ROLLBACK
// and persistent host variables. Not safe for concurrent use, like its
// embedded counterpart.
type InteractiveSession struct {
	c      *Client
	id     uint64
	err    error // session_open failure, reported on first Exec
	closed bool
}

// Interactive opens a session. Errors surface on the first Exec, matching
// the embedded API's signature.
func (c *Client) Interactive() *InteractiveSession {
	resp, err := c.call(wire.Request{Op: wire.OpSessionOpen})
	if err != nil {
		return &InteractiveSession{c: c, err: err}
	}
	return &InteractiveSession{c: c, id: resp.Session}
}

// Exec executes one statement (or a semicolon-separated batch) in the
// session and returns the last result.
func (s *InteractiveSession) Exec(src string) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, errors.New("client: session closed")
	}
	resp, err := s.c.call(wire.Request{Op: wire.OpSessionExec, Session: s.id, SQL: src})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return &Result{}, nil
	}
	return resp.Result, nil
}

// Close ends the session; an open transaction block rolls back.
func (s *InteractiveSession) Close() error {
	if s.err != nil || s.closed {
		return nil
	}
	s.closed = true
	_, err := s.c.call(wire.Request{Op: wire.OpSessionClose, Session: s.id})
	return err
}

// Values re-exports tuple construction so remote programs read like
// embedded ones.
func Values(vs ...types.Value) types.Tuple { return entangle.Values(vs...) }
