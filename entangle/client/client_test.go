package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/wire"
)

// fakeServer speaks just enough protocol to handshake, then hands each
// connection to serve. It lets client-side behavior be tested without the
// real server (which lives above this package).
func fakeServer(t *testing.T, serve func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				payload, err := wire.ReadFrame(nc)
				if err != nil {
					return
				}
				var req wire.Request
				if wire.JSON.DecodeRequest(payload, &req) != nil || req.Op != wire.OpHello {
					return
				}
				wire.WriteFrame(nc, wire.Response{
					ID: req.ID, OK: true,
					Version: wire.ProtocolVersion, Codec: wire.CodecJSON,
				})
				serve(nc)
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// tight budgets so exhaustion tests finish in milliseconds.
var tight = Options{
	Codec:               wire.CodecJSON,
	RetryBudget:         3,
	DialBudget:          2,
	ReconnectBackoff:    time.Millisecond,
	ReconnectMaxBackoff: 2 * time.Millisecond,
}

// TestRetriesExhaustedTyped: a server that handshakes but kills every
// connection at the first real request forces the retry loop to its
// budget. The resulting error must expose both sentinels — the budget
// (ErrRetriesExhausted) and the cause (ErrClosed) — through errors.Is.
func TestRetriesExhaustedTyped(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		wire.ReadFrame(nc) // swallow one request, then the deferred Close resets it
	})
	c, err := DialOptions(addr, tight)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("INSERT INTO T VALUES (1)")
	if err == nil {
		t.Fatal("exec against conn-killing server succeeded")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want the ErrClosed cause to unwrap", err)
	}
}

// TestOverloadRetriesExhausted: a server that sheds every request drains
// the retry budget too, and the exhausted error unwraps to
// wire.ErrOverloaded so callers can tell shed-exhaustion from a dead
// connection.
func TestOverloadRetriesExhausted(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		for {
			payload, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			var req wire.Request
			if wire.JSON.DecodeRequest(payload, &req) != nil {
				return
			}
			wire.WriteFrame(nc, wire.Response{
				ID: req.ID, ErrCode: wire.ErrCodeOverloaded, Error: wire.ErrOverloaded.Error(),
			})
		}
	})
	c, err := DialOptions(addr, tight)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrRetriesExhausted) || !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping wire.ErrOverloaded", err)
	}
	if c.Retries() < int64(tight.RetryBudget) {
		t.Fatalf("retries = %d, want the full budget %d spent", c.Retries(), tight.RetryBudget)
	}
}

// TestNonIdempotentOpsFailOverReconnect: a session Exec is connection-
// scoped, so losing the connection mid-call must surface ErrClosed rather
// than silently retrying against a fresh session.
func TestNonIdempotentOpsFailOverReconnect(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		for {
			payload, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			var req wire.Request
			if wire.JSON.DecodeRequest(payload, &req) != nil {
				return
			}
			if req.Op == wire.OpSessionOpen {
				wire.WriteFrame(nc, wire.Response{ID: req.ID, OK: true, Session: 7})
				continue
			}
			return // any session exec: kill the connection, response lost
		}
	})
	c, err := DialOptions(addr, tight)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Interactive()
	_, err = s.Exec("SELECT 1")
	if err == nil || errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("session exec over dead conn = %v, want plain connection error, no retry", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestClosedClientFailsFast: calls after Close return ErrClosed without
// dialing anything.
func TestClosedClientFailsFast(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		for {
			payload, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			var req wire.Request
			if wire.JSON.DecodeRequest(payload, &req) != nil {
				return
			}
			wire.WriteFrame(nc, wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion})
		}
	})
	c, err := DialOptions(addr, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping after close = %v, want ErrClosed", err)
	}
	if c.Healthy() {
		t.Fatal("closed client reports healthy")
	}
}

// TestPoolGetSkipsDead pins the Pool routing fix: round-robin must route
// around clients whose connection is down, and fall back to plain
// round-robin only when every client is down.
func TestPoolGetSkipsDead(t *testing.T) {
	alive1 := &Client{cc: &conn{}}
	dead := &Client{} // no live conn
	alive2 := &Client{cc: &conn{}}
	p := &Pool{conns: []*Client{alive1, dead, alive2}}

	seen := map[*Client]int{}
	for i := 0; i < 90; i++ {
		seen[p.Get()]++
	}
	if seen[dead] != 0 {
		t.Fatalf("dead client handed out %d times", seen[dead])
	}
	if seen[alive1] == 0 || seen[alive2] == 0 {
		t.Fatalf("healthy clients unevenly skipped: %v %v", seen[alive1], seen[alive2])
	}

	// Full outage: Get must still return something (whose call will then
	// block on that client's reconnect) rather than spin or panic.
	down := &Pool{conns: []*Client{{}, {closed: true}}}
	if down.Get() == nil {
		t.Fatal("Get returned nil during full outage")
	}

	// Sharded affinity: GetShard must keep preferring the HOME shard's
	// connection when it is healthy, even while an unrelated mid-list
	// client is down — a dead shard 1 must not perturb routing to shards
	// 0 and 2 (the round-robin fallback would).
	for i := 0; i < 30; i++ {
		if got := p.GetShard(0); got != alive1 {
			t.Fatalf("GetShard(0) = %p, want home conn %p despite dead shard 1", got, alive1)
		}
		if got := p.GetShard(2); got != alive2 {
			t.Fatalf("GetShard(2) = %p, want home conn %p despite dead shard 1", got, alive2)
		}
	}
	// The dead home shard falls back to a healthy connection rather than
	// handing out a down client.
	for i := 0; i < 30; i++ {
		if got := p.GetShard(1); got == dead {
			t.Fatal("GetShard(1) handed out the dead home client")
		}
	}
}

// TestPoolRouteHomeShard pins routing: a sharded pool sends a script to
// the connection owning its routing key's shard.
func TestPoolRouteHomeShard(t *testing.T) {
	a, b := &Client{cc: &conn{}}, &Client{cc: &conn{}}
	m := &shard.Map{Version: 1, Shards: 2, Nodes: []string{"a", "b"},
		Overrides: map[string]int{"Mickey": 0, "Minnie": 1}}
	p := &Pool{conns: []*Client{a, b}, placement: m}
	if got := p.Route("SELECT * FROM Flights WHERE who = 'Mickey'"); got != a {
		t.Fatal("Mickey routed off shard 0")
	}
	if got := p.Route("SELECT * FROM Flights WHERE who = 'Minnie'"); got != b {
		t.Fatal("Minnie routed off shard 1")
	}
}
