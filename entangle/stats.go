package entangle

// StatsSnapshot is the engine counter set in serializable form: one JSON-
// tagged struct shared by the network server's stats frame and the shell's
// \stats meta command, so every surface reports the same quantities under
// the same names.
type StatsSnapshot struct {
	Submitted      int64 `json:"submitted"`
	Runs           int64 `json:"runs"`
	EvalRounds     int64 `json:"eval_rounds"`
	Commits        int64 `json:"commits"`
	GroupCommits   int64 `json:"group_commits"`
	CommitBatches  int64 `json:"commit_batches"`
	EntangleOps    int64 `json:"entangle_ops"`
	Requeues       int64 `json:"requeues"`
	Timeouts       int64 `json:"timeouts"`
	Rollbacks      int64 `json:"rollbacks"`
	Failures       int64 `json:"failures"`
	WidowsAverted  int64 `json:"widows_averted"`
	WriteConflicts int64 `json:"write_conflicts"`
	Vacuums        int64 `json:"vacuums"`
	VersionsPruned int64 `json:"versions_pruned"`

	GroundCacheHits   int64 `json:"ground_cache_hits"`
	GroundCacheMisses int64 `json:"ground_cache_misses"`
	IndexedGroundings int64 `json:"indexed_groundings"`

	GroundRowsStreamed  int64 `json:"ground_rows_streamed"`
	GroundPeakBatchRows int64 `json:"ground_peak_batch_rows"`

	SolveSteps     int64 `json:"solve_steps"`
	SolveFallbacks int64 `json:"solve_fallbacks"`

	// Service-layer counters, filled in by the network server's stats
	// frame (always zero for an embedded DB — the engine itself never
	// sheds, retries, or injects faults).
	Sheds          int64 `json:"sheds"`
	Retries        int64 `json:"retries"`
	Reconnects     int64 `json:"reconnects"`
	FaultsInjected int64 `json:"faults_injected"`
}

// SnapshotStats converts raw engine counters into the serializable form.
func SnapshotStats(s Stats) StatsSnapshot {
	return StatsSnapshot{
		Submitted:      s.Submitted,
		Runs:           s.Runs,
		EvalRounds:     s.EvalRounds,
		Commits:        s.Commits,
		GroupCommits:   s.GroupCommits,
		CommitBatches:  s.CommitBatches,
		EntangleOps:    s.EntangleOps,
		Requeues:       s.Requeues,
		Timeouts:       s.Timeouts,
		Rollbacks:      s.Rollbacks,
		Failures:       s.Failures,
		WidowsAverted:  s.WidowsAverted,
		WriteConflicts: s.WriteConflicts,
		Vacuums:        s.Vacuums,
		VersionsPruned: s.VersionsPruned,

		GroundCacheHits:   s.GroundCacheHits,
		GroundCacheMisses: s.GroundCacheMisses,
		IndexedGroundings: s.IndexedGroundings,

		GroundRowsStreamed:  s.GroundRowsStreamed,
		GroundPeakBatchRows: s.GroundPeakBatchRows,

		SolveSteps:     s.SolveSteps,
		SolveFallbacks: s.SolveFallbacks,
	}
}

// StatsSnapshot returns the engine counters in serializable form.
func (db *DB) StatsSnapshot() StatsSnapshot { return SnapshotStats(db.engine.Stats()) }
