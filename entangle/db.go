// Package entangle is the public API of the entangled-transactions engine —
// a from-scratch Go implementation of "Entangled Transactions" (Gupta,
// Nikolic, Roy, Bender, Kot, Gehrke, Koch; PVLDB 4(7), 2011).
//
// A DB bundles the full stack: multi-version (MVCC) heap storage with hash
// indexes and CSN-stamped version chains, a hierarchical lock manager for
// write serialization (plus read locks at the 2PL isolation levels), a
// write-ahead log with entanglement-aware crash recovery, classical ACID
// transactions (Serializable, ReadCommitted, and lock-free-read
// SnapshotIsolation), the entangled-query evaluator grounding against
// per-round snapshots, and the run-based entangled transaction scheduler
// with group commit.
//
// Quick start:
//
//	db, _ := entangle.Open(entangle.Options{})
//	defer db.Close()
//	db.ExecDDL(`CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR)`)
//	db.Exec(`INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')`)
//
//	h1, _ := db.SubmitScript(mickeyScript)  // BEGIN ... INTO ANSWER ... COMMIT
//	h2, _ := db.SubmitScript(minnieScript)
//	fmt.Println(h1.Wait().Status, h2.Wait().Status)
//
// Programs can also be written directly in Go against core.Tx via Submit.
package entangle

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eq"
	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// Re-exported names so that typical applications only import this package
// (plus internal/eq and internal/types for hand-built queries and values).
type (
	// Program is an entangled transaction body with its timeout.
	Program = core.Program
	// Tx is the handle a program body uses for data access.
	Tx = core.Tx
	// Handle awaits a submitted program's outcome.
	Handle = core.Handle
	// Outcome is a program's final disposition.
	Outcome = core.Outcome
	// Stats are the engine counters.
	Stats = core.Stats
	// Isolation selects the entangled isolation level.
	Isolation = core.Isolation
)

// Isolation levels and statuses, re-exported.
const (
	FullEntangled    = core.FullEntangled
	RelaxedReads     = core.RelaxedReads
	NoWidowGuard     = core.NoWidowGuard
	SnapshotIsolated = core.SnapshotIsolated

	StatusCommitted  = core.StatusCommitted
	StatusRolledBack = core.StatusRolledBack
	StatusTimedOut   = core.StatusTimedOut
	StatusFailed     = core.StatusFailed
)

// Options configures Open.
type Options struct {
	// Path is the write-ahead log file. Empty disables durability (pure
	// in-memory engine, as used by benchmarks).
	Path string
	// SyncWAL fsyncs commit records.
	SyncWAL bool
	// Isolation is the entangled isolation level (default FullEntangled).
	Isolation Isolation
	// RunFrequency f: start a run per f arrivals (§5.2.2; default 1).
	RunFrequency int
	// Connections bounds concurrently executing transactions (default 100,
	// the paper's default).
	Connections int
	// DefaultTimeout for programs without one (default 10s).
	DefaultTimeout time.Duration
	// RetryInterval for re-running pooled transactions (default 25ms).
	RetryInterval time.Duration
	// LockWaitTimeout bounds lock waits, like innodb_lock_wait_timeout
	// (default 2s).
	LockWaitTimeout time.Duration
	// StmtLatency simulates the per-statement client-DBMS round trip.
	StmtLatency time.Duration
	// GroundLatency simulates the per-query grounding round trip during
	// entangled-query evaluation (paid inside each grounding task, so it
	// overlaps across GroundWorkers).
	GroundLatency time.Duration
	// GroundWorkers bounds the pool that grounds a run's pending queries
	// concurrently. 1 forces the paper's serialized middle-tier evaluation;
	// 0 picks the default (max(8, NumCPU)). Any value produces the same
	// answers as the serial path — only wall-clock changes.
	GroundWorkers int
	// LockShards is the lock manager's shard count (default
	// lock.DefaultShards). Resources hash by table name to a shard, so
	// concurrent grounding and commit traffic on distinct tables does not
	// convoy on one mutex.
	LockShards int
	// GroundCache enables the cross-round grounding cache: a pending
	// entangled query is only re-grounded in a later evaluation round when
	// the CSN fingerprint of its grounded tables advanced (a commit touched
	// them) or the posing transaction itself wrote a grounded table. Off by
	// default, so the figure benchmarks reproduce the paper's re-ground-
	// every-round cost; Stats.GroundCacheHits/Misses report its behavior.
	GroundCache bool
	// GroundBatch is the streaming grounding pipeline's cursor pull
	// granularity in rows (0 = the default, 256). Each join level of a
	// grounding holds at most one batch of row references, so resident
	// grounding memory per query is O(join levels x GroundBatch) regardless
	// of table size; batch size never changes the enumeration.
	GroundBatch int
	// SolveBudget bounds the exact coordinating-set search per evaluation
	// round, in search nodes (0 = the default budget). Rounds that exhaust
	// the budget fall back to the greedy closure and are counted in
	// Stats.SolveFallbacks. Negative always runs the greedy closure — the
	// pre-exact solver, kept only for ablation benchmarks, which does NOT
	// guarantee a maximum-size answered set when coordination structures
	// compete.
	SolveBudget int
	// VacuumInterval enables periodic MVCC version garbage collection: the
	// engine prunes row versions older than the GC watermark (the oldest
	// active snapshot) on this cadence. Zero disables automatic vacuuming;
	// DB.Vacuum remains available for manual passes.
	VacuumInterval time.Duration
	// Trace receives schedule events (e.g. *isolation.Recorder).
	Trace core.TraceSink
	// Faults, when set, arms the WAL's failpoints from the given registry
	// (see internal/fault). Nil — the default — is zero-overhead.
	Faults *fault.Registry
	// Metrics, when set, is the observability registry all engine counters
	// and latency histograms register into (see internal/obs). Nil opens a
	// private registry — Stats/StatsSnapshot always work — that simply is
	// not shared with a debug endpoint.
	Metrics *obs.Registry
	// Tracer, when set, enables per-query lifecycle tracing: Exec and
	// SubmitScript mint a trace id per call (parse → submit → ground →
	// solve → validate → commit → answer spans), and traced ids arriving
	// over the wire are honored. Nil — the default — records nothing and
	// keeps the id==0 fast path allocation-free.
	Tracer *obs.Tracer
}

// DB is an open database.
type DB struct {
	cat      *storage.Catalog
	locks    *lock.Manager
	log      *wal.Log
	txm      *txn.Manager
	engine   *core.Engine
	path     string
	recovery *wal.RecoveryStats // nil when opened without a WAL
}

// Open creates (or recovers) a database. When Options.Path names an
// existing log/snapshot, the committed state — including the §4
// entanglement-aware group-rollback rule — is recovered before the engine
// starts.
func Open(opts Options) (*DB, error) {
	cat := storage.NewCatalog()
	lockTimeout := opts.LockWaitTimeout
	if lockTimeout <= 0 {
		lockTimeout = 2 * time.Second
	}
	locks := lock.NewSharded(lockTimeout, opts.LockShards)
	var log *wal.Log
	var recovery *wal.RecoveryStats
	var recoveredCSN uint64
	if opts.Path != "" {
		stats, err := wal.RecoverAll(opts.Path, cat)
		if err != nil {
			return nil, fmt.Errorf("entangle: recovery: %w", err)
		}
		recovery = stats
		recoveredCSN = stats.MaxCSN
		log, err = wal.Open(opts.Path, wal.Options{Sync: opts.SyncWAL, Faults: opts.Faults})
		if err != nil {
			return nil, err
		}
	}
	txm := txn.NewManager(cat, locks, log)
	// New commits must allocate CSNs past everything already recovered, so
	// recovered version order and fresh snapshots stay consistent.
	txm.SeedClock(recoveredCSN)
	if recovery != nil {
		// Fresh transaction ids must not collide with in-doubt predecessors
		// still awaiting their group decision.
		txm.SeedTx(recovery.MaxTx)
	}
	engine := core.NewEngine(txm, core.Options{
		Isolation:      opts.Isolation,
		RunFrequency:   opts.RunFrequency,
		Connections:    opts.Connections,
		DefaultTimeout: opts.DefaultTimeout,
		RetryInterval:  opts.RetryInterval,
		StmtLatency:    opts.StmtLatency,
		GroundLatency:  opts.GroundLatency,
		GroundWorkers:  opts.GroundWorkers,
		GroundCache:    opts.GroundCache,
		GroundBatch:    opts.GroundBatch,
		SolveBudget:    opts.SolveBudget,
		VacuumInterval: opts.VacuumInterval,
		Trace:          opts.Trace,
		Metrics:        opts.Metrics,
		Tracer:         opts.Tracer,
	})
	return &DB{cat: cat, locks: locks, log: log, txm: txm, engine: engine, path: opts.Path, recovery: recovery}, nil
}

// Close stops the engine and closes the log. Pending transactions fail
// with ErrEngineClosed; call Drain first for a graceful shutdown.
func (db *DB) Close() error {
	db.engine.Close()
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// Drain gracefully winds the engine down: new submissions are rejected,
// pooled transactions get final scheduling runs until everything completes
// or no further progress is possible, and the stragglers (transactions
// whose entanglement partner can no longer arrive) are deterministically
// aborted with StatusTimedOut/core.ErrDraining. Returns ctx.Err() if the
// deadline cut the drain short. Call Close afterwards to release the
// engine and the log; the server's SIGTERM path does exactly that.
func (db *DB) Drain(ctx context.Context) error { return db.engine.Drain(ctx) }

// Engine exposes the entangled transaction engine.
func (db *DB) Engine() *core.Engine { return db.engine }

// Catalog exposes the table catalog.
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Stats returns engine counters.
func (db *DB) Stats() Stats { return db.engine.Stats() }

// ExecDDL runs CREATE TABLE / CREATE INDEX statements (semicolon-separated
// script allowed).
func (db *DB) ExecDDL(script string) error {
	stmts, err := sql.Parse(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := sql.ExecDDL(db.txm, st); err != nil {
			return err
		}
	}
	return nil
}

// Result is a query result.
type Result = sql.Result

// Exec runs a single classical statement (or bare script) directly,
// outside the run scheduler, and returns the last statement's result.
// INSERT/UPDATE/DELETE statements each commit individually (autocommit),
// matching a direct client connection. With Options.Tracer set, the whole
// call runs under one freshly minted trace id.
func (db *DB) Exec(script string) (*Result, error) {
	return db.ExecTraced(script, db.mintTrace())
}

// ExecTraced is Exec under a caller-supplied trace id (0 = untraced) —
// the server passes the id that arrived on the wire so the trace spans
// the full request. The id's lifecycle belongs to this call: the trace is
// finished when it returns.
func (db *DB) ExecTraced(script string, trace uint64) (*Result, error) {
	tracer := db.engine.Tracer()
	var parseStart time.Time
	if trace != 0 {
		parseStart = time.Now()
		tracer.Begin(trace, parseStart)
		defer tracer.Finish(trace, time.Now())
	}
	stmts, err := sql.Parse(script)
	if trace != 0 {
		note := ""
		if err != nil {
			note = "error"
		}
		tracer.Span(trace, trace, "parse", parseStart, time.Since(parseStart), note)
	}
	if err != nil {
		return nil, err
	}
	session := sql.NewSession()
	var last *Result
	for _, st := range stmts {
		switch st.(type) {
		case *sql.CreateTableStmt, *sql.CreateIndexStmt:
			if err := sql.ExecDDL(db.txm, st); err != nil {
				return nil, err
			}
			continue
		case *sql.EntangledSelectStmt:
			return nil, fmt.Errorf("entangle: entangled queries require SubmitScript")
		}
		stmt := st
		var res *Result
		o := db.engine.RunDirect(core.Program{Trace: trace, Body: func(tx *core.Tx) error {
			var err error
			res, err = session.Exec(tx, db.cat, stmt)
			return err
		}})
		if o.Status != core.StatusCommitted {
			if o.Err != nil {
				return nil, o.Err
			}
			return nil, fmt.Errorf("entangle: statement %v", o.Status)
		}
		last = res
	}
	return last, nil
}

// Query runs a single SELECT and returns its rows.
func (db *DB) Query(src string) (*Result, error) { return db.Exec(src) }

// Submit queues a Go-level entangled transaction.
func (db *DB) Submit(p Program) *Handle { return db.engine.Submit(p) }

// RunDirect executes a non-entangled program immediately (the classical
// path). A program submitted here with a nonzero Trace has its trace
// finished on return.
func (db *DB) RunDirect(p Program) Outcome {
	o := db.engine.RunDirect(p)
	if p.Trace != 0 {
		db.engine.Tracer().Finish(p.Trace, time.Now())
	}
	return o
}

// SubmitScript compiles a SQL script and routes it appropriately: scripts
// wrapped in BEGIN TRANSACTION go through the entangled scheduler; bare
// scripts run as autocommit programs through the scheduler too (so their
// entangled queries, if any, can coordinate). With Options.Tracer set,
// the submission mints a trace id; Handle outcomes finish the trace.
func (db *DB) SubmitScript(script string) (*Handle, error) {
	return db.SubmitScriptTraced(script, db.mintTrace())
}

// SubmitScriptTraced is SubmitScript under a caller-supplied trace id
// (0 = untraced). Compilation is recorded as the trace's parse span; the
// engine records the remaining lifecycle and finishes the trace when the
// program settles.
func (db *DB) SubmitScriptTraced(script string, trace uint64) (*Handle, error) {
	tracer := db.engine.Tracer()
	var parseStart time.Time
	if trace != 0 {
		parseStart = time.Now()
		tracer.Begin(trace, parseStart)
	}
	prog, err := sql.BuildProgram(db.cat, script)
	if trace != 0 {
		note := ""
		if err != nil {
			note = "error"
		}
		tracer.Span(trace, trace, "parse", parseStart, time.Since(parseStart), note)
		if err != nil {
			// The program never reaches the engine; the trace ends here.
			tracer.Finish(trace, time.Now())
		}
	}
	if err != nil {
		return nil, err
	}
	prog.Trace = trace
	return db.engine.Submit(prog), nil
}

// mintTrace returns a fresh trace id when tracing is enabled, else 0.
func (db *DB) mintTrace() uint64 {
	if db.engine.Tracer() == nil {
		return 0
	}
	return obs.MintID()
}

// Metrics exposes the engine's observability registry (never nil — a
// private registry backs it when Options.Metrics was unset).
func (db *DB) Metrics() *obs.Registry { return db.engine.Metrics() }

// Tracer exposes the lifecycle tracer (nil when tracing is disabled).
func (db *DB) Tracer() *obs.Tracer { return db.engine.Tracer() }

// Vacuum prunes MVCC row versions no active snapshot can reach and
// returns the number of versions reclaimed. The watermark is the oldest
// active snapshot (or the current commit clock when none is active).
func (db *DB) Vacuum() int { return db.txm.Vacuum() }

// Checkpoint snapshots the database and truncates the log. The checkpoint
// quiesces the transaction manager first: in-flight work (scheduler runs,
// direct transactions, open interactive blocks, DDL) drains while new work
// blocks, so no commit can land between the snapshot scan and the log
// truncation — a racing commit would otherwise be torn across tables in
// the snapshot while its log records were erased. The snapshot header
// records the commit clock, and recovery restarts the clock from
// max(snapshot CSN, log CSNs), so sequence numbers are never reused across
// a checkpointed restart.
//
// Checkpoint blocks until in-flight work drains; an interactive session
// holding an open BEGIN block stalls it (and new work) until that block
// ends. Do NOT call Checkpoint from inside a Program body or an open
// interactive block — it would wait on its own unit of work and deadlock.
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return fmt.Errorf("entangle: no WAL configured")
	}
	return db.txm.Quiesced(func(csn uint64) error {
		return wal.Checkpoint(db.log, db.cat, csn)
	})
}

// Flush synchronously executes one scheduling run (deterministic testing).
func (db *DB) Flush() { db.engine.Flush() }

// Convenience re-exports for building programs in Go.

// Values constructs a tuple.
func Values(vs ...types.Value) types.Tuple { return types.Tuple(vs) }

// Int, Str, Date, Bool build values.
func Int(v int64) types.Value   { return types.Int(v) }
func Str(v string) types.Value  { return types.Str(v) }
func Date(s string) types.Value { return types.MustDate(s) }
func Bool(v bool) types.Value   { return types.Bool(v) }

// Query builders for hand-written entangled queries.

// Atom builds an ANSWER or database atom; use Var and Const for terms.
func Atom(rel string, args ...eq.Term) eq.Atom { return eq.Atom{Rel: rel, Args: args} }

// Var is a query variable term.
func Var(name string) eq.Term { return eq.V(name) }

// Const is a constant term.
func Const(v types.Value) eq.Term { return eq.C(v) }

// EQ is the entangled query type, re-exported.
type EQ = eq.Query
