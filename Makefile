GO ?= go

.PHONY: all build test race vet bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark family: a fast sanity pass that the
# figure harnesses still run end to end (not a measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: build vet test race
