GO ?= go

.PHONY: all build test race vet staticcheck examples serve-smoke obs-smoke shard-smoke chaos bench-smoke bench-json pprof pprof-ground ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis gate. CI installs staticcheck; locally the target skips
# with a notice when the binary is absent so `make ci` stays runnable in
# minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Examples smoke: build and run every example end to end (also covered by
# `make test` through TestExamplesRunEndToEnd; this target is the direct
# entry point).
examples:
	$(GO) test -run TestExamplesRunEndToEnd -count=1 .

# Serving smoke: build the real youtopia-serve binary, start it, run the
# remote quickstart against it as a second OS process, assert the
# coordinated answers, and check SIGTERM drains gracefully (also covered
# by `make test`; this target is the direct entry point and the CI gate).
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v .

# Observability smoke: the real youtopia-serve binary with -debug-addr,
# traced TCP clients coordinating a pair, then /metrics, /traces/recent,
# and the pprof index asserted over the debug HTTP surface (also covered
# by `make test`; this target is the direct entry point and the CI gate).
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 -v .

# Sharding smoke: two real youtopia-serve processes joined into a 2-shard
# placement (-shard/-peers), the sharded quickstart booking a cross-shard
# gift-match pair atomically through the two-phase group commit, then a
# graceful SIGTERM drain of both shards (also covered by `make test`;
# this target is the direct entry point and the CI gate).
shard-smoke:
	$(GO) test -run TestShardSmoke -count=1 -v .

# Chaos smoke: the fault-injection suite under the race detector — the
# PR 8 acceptance soak (coordination groups stay all-or-nothing while
# connections reset and the server sheds) plus the WAL torn-write sweeps
# and the client self-healing tests. The seed is fixed inside the tests
# so failures reproduce; override with CHAOS_SEED=<n> to explore.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestRetry|TestHandleSurvives|TestOverloadShed|TestShedRetry|TestFault' ./internal/server ./internal/wal
	$(GO) test -race -count=1 ./internal/fault ./entangle/client

# One iteration of every benchmark family: a fast sanity pass that the
# figure harnesses still run end to end (not a measurement). Output is
# written to bench-smoke.txt, which CI uploads as an artifact; a failing
# run fails the target (no pipe, so no swallowed exit status).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . > bench-smoke.txt 2>&1 || (cat bench-smoke.txt; exit 1)
	@cat bench-smoke.txt

# Machine-readable perf trajectory: one iteration of every benchmark family
# — the sharded-throughput rows report the 1-shard vs 2-shard scaling
# factor (scaling-x) alongside the metered server-throughput latency
# percentiles — rendered as BENCH_pr10.json (benchmark name -> experiment
# seconds; benchmarks without the exp-seconds metric fall back to ns/op
# converted to seconds; B/op, allocs/op, and custom metrics like ops/sec,
# answer-p99-ms, or scaling-x appear under "name:metric" keys). CI derives
# the same file from bench-smoke.txt and uploads it as an artifact.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x . > bench-smoke.txt 2>&1 || (cat bench-smoke.txt; exit 1)
	$(GO) run ./cmd/benchjson < bench-smoke.txt > BENCH_pr10.json
	@cat BENCH_pr10.json

# Fuzz smoke: a short randomized run of each wire-protocol fuzz target
# (frame reader and binary codec) on top of the committed seed corpus.
# One -fuzz pattern per invocation — Go's fuzzer requires exactly one
# matching target when fuzzing.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzBinaryFrame$$' -fuzztime 10s ./internal/wire

# CPU + heap profile of the Figure 6(b) grounding hot path (the cold vs
# cached sweep); inspect with `go tool pprof cpu.prof` / `mem.prof`.
pprof:
	$(GO) test -run '^$$' -bench BenchmarkFigure6bGroundCache -benchtime 2x -cpuprofile cpu.prof -memprofile mem.prof .
	@echo "inspect with: $(GO) tool pprof cpu.prof   (or mem.prof)"

# CPU + heap profile of a 10x-scale grounding round through the streaming
# pipeline (BenchmarkFigure6bScale): the batch-cursor pull path end to end.
# The heap profile should show no row clones on the scan path; inspect with
# `go tool pprof ground-cpu.prof` / `ground-mem.prof`.
pprof-ground:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure6bScale/scale=10x' -benchtime 5x -cpuprofile ground-cpu.prof -memprofile ground-mem.prof .
	@echo "inspect with: $(GO) tool pprof ground-cpu.prof   (or ground-mem.prof)"

ci: build vet staticcheck test race
