GO ?= go

.PHONY: all build test race vet staticcheck examples bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis gate. CI installs staticcheck; locally the target skips
# with a notice when the binary is absent so `make ci` stays runnable in
# minimal environments.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Examples smoke: build and run every example end to end (also covered by
# `make test` through TestExamplesRunEndToEnd; this target is the direct
# entry point).
examples:
	$(GO) test -run TestExamplesRunEndToEnd -count=1 .

# One iteration of every benchmark family: a fast sanity pass that the
# figure harnesses still run end to end (not a measurement). Output is
# written to bench-smoke.txt, which CI uploads as an artifact; a failing
# run fails the target (no pipe, so no swallowed exit status).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . > bench-smoke.txt 2>&1 || (cat bench-smoke.txt; exit 1)
	@cat bench-smoke.txt

ci: build vet staticcheck test race
