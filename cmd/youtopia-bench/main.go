// Command youtopia-bench regenerates the paper's evaluation figures
// (Figure 6 a/b/c of "Entangled Transactions", PVLDB 4(7), 2011) against
// the Go engine and prints the series the paper plots.
//
// Usage:
//
//	youtopia-bench -exp all -n 10000            # full-size paper runs
//	youtopia-bench -exp 6a -n 1000              # quick concurrency sweep
//	youtopia-bench -exp 6b -p 10,50,100 -f 1,10,50
//	youtopia-bench -exp 6c -k 2,4,6,8,10 -f 10,50
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: 6a, 6b, 6c, or all")
		n       = flag.Int("n", 1000, "transactions per data point (paper: 10000)")
		users   = flag.Int("users", 1000, "users in the social graph")
		latency = flag.Duration("latency", 200*time.Microsecond, "simulated per-statement round trip")
		seed    = flag.Int64("seed", 1, "workload seed")
		conns   = flag.String("connections", "10,20,30,40,50,60,70,80,90,100", "connection counts for 6a")
		pend    = flag.String("p", "10,25,50,75,100", "pending-transaction counts for 6b")
		freqs6b = flag.String("f6b", "1,10,50", "run frequencies for 6b")
		sizes   = flag.String("k", "2,3,4,5,6,7,8,9,10", "coordinating-set sizes for 6c")
		freqs6c = flag.String("f6c", "10,50", "run frequencies for 6c")
		workers = flag.Int("workers", 1, "grounding pool size (1 = paper's serialized middle tier, matching the published figures; 0 = engine parallel default)")
		gcache  = flag.Bool("groundcache", false, "enable the cross-round grounding cache (pending queries re-ground only when their tables' CSN fingerprint advances)")
		solveB  = flag.Int("solvebudget", 0, "exact coordinating-set search budget in nodes (0 = default; negative = greedy-closure ablation)")
	)
	flag.Parse()

	cfg := harness.Config{N: *n, Users: *users, StmtLatency: *latency, Seed: *seed, GroundWorkers: *workers, GroundCache: *gcache, SolveBudget: *solveB}
	fmt.Printf("youtopia-bench: N=%d users=%d latency=%v seed=%d workers=%d groundcache=%v solvebudget=%d\n\n", *n, *users, *latency, *seed, *workers, *gcache, *solveB)

	run6a := func() {
		series, err := harness.Figure6a(cfg, ints(*conns))
		fatalIf(err)
		harness.PrintSeries(os.Stdout, "Figure 6(a): Concurrent transactions — total time for "+
			strconv.Itoa(*n)+" transactions", "connections", series)
		printOverheadDecomposition(series)
		fmt.Println()
	}
	run6b := func() {
		series, err := harness.Figure6b(cfg, ints(*pend), ints(*freqs6b))
		fatalIf(err)
		harness.PrintSeries(os.Stdout, "Figure 6(b): Pending transactions — total time vs p", "p", series)
		fmt.Println()
	}
	run6c := func() {
		series, err := harness.Figure6c(cfg, ints(*sizes), ints(*freqs6c))
		fatalIf(err)
		harness.PrintSeries(os.Stdout, "Figure 6(c): Entanglement complexity — total time vs coordinating-set size", "k", series)
		fmt.Println()
	}

	switch *exp {
	case "6a":
		run6a()
	case "6b":
		run6b()
	case "6c":
		run6c()
	case "all":
		run6a()
		run6b()
		run6c()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// printOverheadDecomposition reproduces the §5.2.2 claim: the Entangled-T
// overhead over NoSocial-T roughly equals the Entangled-Q overhead over
// NoSocial-Q — entangled transactions cost no more than classical
// transactions plus query evaluation.
func printOverheadDecomposition(series []harness.Series) {
	byName := make(map[string]harness.Series)
	for _, s := range series {
		byName[s.Name] = s
	}
	et, nt := byName["Entangled-T"], byName["NoSocial-T"]
	eq, nq := byName["Entangled-Q"], byName["NoSocial-Q"]
	if len(et.Points) == 0 || len(nt.Points) == 0 || len(eq.Points) == 0 || len(nq.Points) == 0 {
		return
	}
	fmt.Println("\nOverhead decomposition (§5.2.2): (Entangled-T − NoSocial-T) vs (Entangled-Q − NoSocial-Q)")
	fmt.Printf("%-12s%16s%16s\n", "connections", "T-overhead", "Q-overhead")
	for i := range et.Points {
		fmt.Printf("%-12.0f%15.3fs%15.3fs\n",
			et.Points[i].X,
			et.Points[i].Seconds-nt.Points[i].Seconds,
			eq.Points[i].Seconds-nq.Points[i].Seconds)
	}
}

func ints(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		fatalIf(err)
		out = append(out, v)
	}
	return out
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-bench:", err)
		os.Exit(1)
	}
}
