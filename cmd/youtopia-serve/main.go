// Command youtopia-serve exposes the entangled-transaction engine over
// TCP: the first deployment shape where two OS processes — two users —
// coordinate through an entangled query, as in the paper's Figure 1.
//
//	youtopia-serve -addr 127.0.0.1:7171 -wal /var/lib/youtopia/wal
//
// Clients connect with entangle/client (or youtopia-shell -connect, or
// anything speaking the internal/wire frame protocol). SIGINT/SIGTERM
// triggers a graceful drain: listeners close, in-flight requests finish,
// pooled transactions get their final scheduling runs, then the WAL
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/entangle"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

// armFault parses one -fault spec, "name:kind:prob[:delay]", and arms the
// failpoint: e.g. "server.conn.write:reset:0.01" resets 1% of connection
// writes, "server.dispatch:delay:0.05:2ms" stalls 5% of dispatches 2ms.
// Kinds: error, reset, drop, delay.
func armFault(reg *fault.Registry, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return fmt.Errorf("fault spec %q: want name:kind:prob[:delay]", spec)
	}
	prob, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || prob <= 0 || prob > 1 {
		return fmt.Errorf("fault spec %q: probability must be in (0,1]", spec)
	}
	act := fault.Action{}
	switch parts[1] {
	case "error":
		act.Kind = fault.KindError
	case "reset":
		act.Kind = fault.KindReset
	case "drop":
		act.Kind = fault.KindDrop
	case "delay":
		act.Kind = fault.KindDelay
		act.Delay = time.Millisecond
		if len(parts) > 3 {
			if act.Delay, err = time.ParseDuration(parts[3]); err != nil {
				return fmt.Errorf("fault spec %q: %v", spec, err)
			}
		}
	default:
		return fmt.Errorf("fault spec %q: unknown kind %q (error|reset|drop|delay)", spec, parts[1])
	}
	reg.Enable(parts[0], fault.Trigger{Prob: prob}, act)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7171", "listen address")
		walPath     = flag.String("wal", "", "write-ahead log path (empty = in-memory)")
		syncWAL     = flag.Bool("sync", false, "fsync commit records")
		freq        = flag.Int("f", 1, "run frequency (arrivals per run)")
		conns       = flag.Int("connections", 0, "engine connection limit (0 = default 100)")
		groundCache = flag.Bool("ground-cache", true, "enable the cross-round grounding cache")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		jsonOnly    = flag.Bool("json-only", false, "refuse binary codec negotiation; every connection stays on JSON frames (debuggable with netcat/tcpdump)")
		maxInFlight = flag.Int("max-in-flight", 0, "admission control: max requests executing across all connections; excess is shed with a retryable error (0 = default 1024, negative = unbounded)")
		perConnPend = flag.Int("per-conn-pending", 0, "max parked Wait/session requests per connection before shedding (0 = default 64)")
		faultSeed   = flag.Int64("fault-seed", 1, "failpoint RNG seed (with -fault; fixed seed = reproducible chaos)")
		debugAddr   = flag.String("debug-addr", "", "observability HTTP address (/metrics, /traces/recent, /debug/pprof, /debug/vars); empty = off")
		slowQuery   = flag.Duration("slow-query", 0, "log the full span tree of any traced query slower than this (0 = off)")
		slowSpan    = flag.Duration("slow-span", 0, "log any single lifecycle span (e.g. one grounding round) slower than this (0 = off)")
		traceRing   = flag.Int("trace-ring", 0, "recent-trace ring size (0 = default 256)")
		shardID     = flag.Int("shard", 0, "this process's shard id (with -peers)")
		peerList    = flag.String("peers", "", "sharded deployment: comma-separated addresses of every shard in order (Nodes[i] serves shard i; entry -shard must be this process's address). Shard 0 hosts the group coordinator. Empty = unsharded")
	)
	var faultSpecs []string
	flag.Func("fault", "arm a failpoint, name:kind:prob[:delay] (repeatable); e.g. server.conn.write:reset:0.01, wal.sync.error:error:0.001, server.dispatch:delay:0.05:2ms", func(s string) error {
		faultSpecs = append(faultSpecs, s)
		return nil
	})
	flag.Parse()

	// A fault registry exists only when chaos is requested; otherwise every
	// failpoint stays a nil no-op.
	var reg *fault.Registry
	if len(faultSpecs) > 0 {
		reg = fault.NewRegistry(*faultSeed)
		for _, spec := range faultSpecs {
			if err := armFault(reg, spec); err != nil {
				fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
				os.Exit(2)
			}
		}
		fmt.Printf("youtopia-serve: chaos armed (%d failpoints, seed %d)\n", len(faultSpecs), *faultSeed)
	}

	// Observability: the registry always exists when a debug address is
	// requested; the tracer also turns on when slow-query/slow-span
	// logging is wanted without the HTTP surface.
	var metrics *obs.Registry
	var tracer *obs.Tracer
	if *debugAddr != "" || *slowQuery > 0 || *slowSpan > 0 {
		metrics = obs.NewRegistry()
		tracer = obs.NewTracer(obs.TracerOptions{
			RingSize:  *traceRing,
			SlowQuery: *slowQuery,
			SlowSpan:  *slowSpan,
			Shard:     *shardID,
			Log:       os.Stderr,
		})
	}

	db, err := entangle.Open(entangle.Options{
		Path:         *walPath,
		SyncWAL:      *syncWAL,
		RunFrequency: *freq,
		Connections:  *conns,
		GroundCache:  *groundCache,
		Faults:       reg,
		Metrics:      metrics,
		Tracer:       tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
		os.Exit(1)
	}

	srv := server.NewWithOptions(db, server.Options{
		MaxInFlight:    *maxInFlight,
		PerConnPending: *perConnPend,
		Faults:         reg,
	})
	srv.JSONOnly = *jsonOnly

	// Sharded deployment: join the placement map, host the coordinator on
	// shard 0, and resolve any in-doubt groups recovery surfaced against
	// the coordinator's logged decisions (in the background — the
	// coordinator may still be starting; in-doubt effects stay withheld
	// until their verdict arrives).
	if *peerList != "" {
		nodes := strings.Split(*peerList, ",")
		for i := range nodes {
			nodes[i] = strings.TrimSpace(nodes[i])
		}
		if err := srv.EnableSharding(shard.New(nodes), *shardID, server.ShardOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
			os.Exit(2)
		}
		fmt.Printf("youtopia-serve: shard %d of %d (coordinator %s)\n", *shardID, len(nodes), nodes[0])
		if len(db.InDoubt()) > 0 {
			go func() {
				if err := srv.ResolveInDoubtGroups(time.Minute); err != nil {
					fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
				} else {
					fmt.Println("youtopia-serve: in-doubt groups resolved")
				}
			}()
		}
	}

	if *debugAddr != "" {
		// The debug /metrics document joins three layers under one fetch:
		// the obs registry (counters + percentiles), the legacy stats
		// snapshot with service counters folded in (same shape as the
		// wire's stats frame), and the fault firing ring — firings carry
		// trace ids, so a chaos artifact correlates against /traces/recent.
		statsFn := func() any {
			snap := db.StatsSnapshot()
			svc := srv.ServiceStats()
			snap.Sheds = svc.Sheds
			snap.Retries = svc.Retries
			snap.Reconnects = svc.Reconnects
			snap.FaultsInjected = svc.FaultsInjected
			return struct {
				Engine  entangle.StatsSnapshot `json:"engine"`
				Firings []fault.Firing         `json:"fault_firings,omitempty"`
			}{Engine: snap, Firings: reg.Firings()}
		}
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "youtopia-serve: debug listen:", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(dln, obs.DebugMux(metrics, tracer, statsFn)); err != nil {
				fmt.Fprintln(os.Stderr, "youtopia-serve: debug server:", err)
			}
		}()
		fmt.Printf("youtopia-serve: debug listening on %s\n", dln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	// Report the bound address once a listener is up (":0" resolves to a
	// real port), so scripts and the smoke test can parse it.
	var bound string
	for i := 0; i < 100; i++ {
		if addrs := srv.Addrs(); len(addrs) > 0 {
			bound = addrs[0].String()
			break
		}
		select {
		case err := <-serveErr:
			fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
			os.Exit(1)
		case <-time.After(10 * time.Millisecond):
		}
	}
	fmt.Printf("youtopia-serve: listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("youtopia-serve: signal received, draining")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
		db.Close()
		os.Exit(1)
	}

	// Graceful drain. Network and engine drain run concurrently on one
	// budget: a client parked in Wait on a transaction whose partner never
	// arrives is settled only by the engine drain (deterministic
	// StatusTimedOut/ErrDraining), which in turn lets the network side
	// finish that in-flight request — sequencing them would deadlock until
	// the budget expired. New submissions fail once the engine starts
	// draining; that is the point of SIGTERM.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	engineDrained := make(chan error, 1)
	go func() { engineDrained <- db.Drain(drainCtx) }()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: network drain:", err)
	}
	if err := <-engineDrained; err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: engine drain:", err)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: close:", err)
		os.Exit(1)
	}
	srv.CloseSharding()
	fmt.Println("youtopia-serve: bye")
}
