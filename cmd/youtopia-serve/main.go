// Command youtopia-serve exposes the entangled-transaction engine over
// TCP: the first deployment shape where two OS processes — two users —
// coordinate through an entangled query, as in the paper's Figure 1.
//
//	youtopia-serve -addr 127.0.0.1:7171 -wal /var/lib/youtopia/wal
//
// Clients connect with entangle/client (or youtopia-shell -connect, or
// anything speaking the internal/wire frame protocol). SIGINT/SIGTERM
// triggers a graceful drain: listeners close, in-flight requests finish,
// pooled transactions get their final scheduling runs, then the WAL
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/entangle"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7171", "listen address")
		walPath     = flag.String("wal", "", "write-ahead log path (empty = in-memory)")
		syncWAL     = flag.Bool("sync", false, "fsync commit records")
		freq        = flag.Int("f", 1, "run frequency (arrivals per run)")
		conns       = flag.Int("connections", 0, "engine connection limit (0 = default 100)")
		groundCache = flag.Bool("ground-cache", true, "enable the cross-round grounding cache")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
		jsonOnly    = flag.Bool("json-only", false, "refuse binary codec negotiation; every connection stays on JSON frames (debuggable with netcat/tcpdump)")
	)
	flag.Parse()

	db, err := entangle.Open(entangle.Options{
		Path:         *walPath,
		SyncWAL:      *syncWAL,
		RunFrequency: *freq,
		Connections:  *conns,
		GroundCache:  *groundCache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
		os.Exit(1)
	}

	srv := server.New(db)
	srv.JSONOnly = *jsonOnly
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	// Report the bound address once a listener is up (":0" resolves to a
	// real port), so scripts and the smoke test can parse it.
	var bound string
	for i := 0; i < 100; i++ {
		if addrs := srv.Addrs(); len(addrs) > 0 {
			bound = addrs[0].String()
			break
		}
		select {
		case err := <-serveErr:
			fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
			os.Exit(1)
		case <-time.After(10 * time.Millisecond):
		}
	}
	fmt.Printf("youtopia-serve: listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("youtopia-serve: signal received, draining")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "youtopia-serve:", err)
		db.Close()
		os.Exit(1)
	}

	// Graceful drain. Network and engine drain run concurrently on one
	// budget: a client parked in Wait on a transaction whose partner never
	// arrives is settled only by the engine drain (deterministic
	// StatusTimedOut/ErrDraining), which in turn lets the network side
	// finish that in-flight request — sequencing them would deadlock until
	// the budget expired. New submissions fail once the engine starts
	// draining; that is the point of SIGTERM.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	engineDrained := make(chan error, 1)
	go func() { engineDrained <- db.Drain(drainCtx) }()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: network drain:", err)
	}
	if err := <-engineDrained; err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: engine drain:", err)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-serve: close:", err)
		os.Exit(1)
	}
	fmt.Println("youtopia-serve: bye")
}
