// Command youtopia-gen inspects the synthetic workload generator: it
// prints the social graph's degree distribution (the Slashdot substitute —
// see DESIGN.md §3), the coordination-pair pool, and sample programs of
// each workload kind.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/social"
	"repro/internal/workload"
)

func main() {
	var (
		users = flag.Int("users", 1000, "users in the graph")
		m     = flag.Int("m", 3, "preferential-attachment parameter")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	g, err := social.Generate(*users, *m, *seed)
	if err != nil {
		fmt.Println("youtopia-gen:", err)
		return
	}
	fmt.Printf("social graph: %d users, %d edges, max degree %d\n",
		g.N(), len(g.Edges()), g.MaxDegree())

	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("\ndegree distribution (log-binned):")
	binTop := 4
	count := 0
	for _, d := range degrees {
		for d > binTop {
			if count > 0 {
				fmt.Printf("  degree <= %4d: %5d users\n", binTop, count)
				count = 0
			}
			binTop *= 2
		}
		count += hist[d]
	}
	if count > 0 {
		fmt.Printf("  degree <= %4d: %5d users\n", binTop, count)
	}

	d, err := workload.NewDataset(workload.Config{Users: *users, AttachM: *m, Seed: *seed})
	if err != nil {
		fmt.Println("youtopia-gen:", err)
		return
	}
	cfg := d.Config()
	fmt.Printf("\ndataset: %d cities, %d destinations, %d flights\n",
		cfg.Cities, cfg.Destinations, cfg.Cities*cfg.Destinations)
	fmt.Println("\nsample coordination pairs (vertex-disjoint, same hometown):")
	for i := 0; i < 5; i++ {
		u, v := d.NextPair()
		fmt.Printf("  user %4d <-> user %4d (hometown %s)\n", u, v, workload.CityName(d.Hometown[u]))
	}
	fmt.Println("\nworkload kinds:")
	for _, k := range []workload.Kind{
		workload.NoSocialT, workload.SocialT, workload.EntangledT,
		workload.NoSocialQ, workload.SocialQ, workload.EntangledQ,
	} {
		fmt.Printf("  %-12s entangled=%v autocommit=%v\n", k, k.Entangled(), k.Autocommit())
	}

	fmt.Println("\ncompeting structures (overlapping coordination; exact-solver territory):")
	for _, c := range []struct {
		kind    workload.CompetingKind
		buyers  int
		contest string
	}{
		{workload.HubContest, 0, "two hubs contend for one spoke (deterministic tie)"},
		{workload.MarketContest, 4, "N buyers, one seller, one award"},
		{workload.ChainContest, 0, "pair vs 3-cycle through a shared member (greedy answers 2, exact 3)"},
	} {
		progs, err := d.BuildCompeting(c.kind, c.buyers, 0)
		if err != nil {
			fmt.Println("youtopia-gen:", err)
			return
		}
		fmt.Printf("  %-16s %d programs — %s\n", c.kind, len(progs), c.contest)
	}
}
