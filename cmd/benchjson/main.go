// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name to experiment seconds, so the perf
// trajectory across PRs is machine-readable (CI uploads BENCH_pr3.json as
// an artifact).
//
// Benchmarks reporting the exp-seconds metric (the figure families) use it
// directly; plain benchmarks fall back to ns/op converted to seconds. Every
// other reported metric — B/op and allocs/op from ReportAllocs, and custom
// ReportMetric series like ops/sec or peak-batch-rows — is emitted under
// "<name>:<metric>", so memory trajectories are tracked alongside time.
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	out := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		var expSecs, nsOp float64
		var haveExp, haveNs bool
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch metric := fields[i+1]; metric {
			case "exp-seconds":
				expSecs, haveExp = v, true
			case "ns/op":
				nsOp, haveNs = v, true
			default:
				out[name+":"+metric] = v
			}
		}
		switch {
		case haveExp:
			out[name] = expSecs
		case haveNs:
			out[name] = nsOp / 1e9
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(enc))
}
