// Command youtopia-shell is a small interactive shell over the entangled
// transaction engine: classical SQL executes immediately; scripts between
// BEGIN TRANSACTION and COMMIT/ROLLBACK are submitted to the run scheduler,
// so two shells (or one shell with \async) can coordinate through
// entangled queries.
//
// By default the engine runs embedded in the shell process. With
// -connect host:port the shell becomes a remote client of a
// youtopia-serve process instead — same SQL, same meta commands — and two
// shells connected to one server coordinate across OS processes.
//
// Meta commands:
//
//	\tables          list tables
//	\stats           engine counters (JSON snapshot)
//	\metrics         observability registry (counters + latency percentiles)
//	\trace <id>      one traced query's span tree (ids print on submit)
//	\checkpoint      snapshot + truncate the WAL (embedded -wal mode only)
//	\async           submit the next BEGIN...COMMIT block without waiting
//	\wait            wait for all outstanding async transactions
//	\quit            exit
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wire"
)

// result is the column/row shape both backends produce.
type result struct {
	Columns      []string
	Rows         []types.Tuple
	RowsAffected int
}

// waiter abstracts entangle.Handle and client.Handle.
type waiter interface{ Wait() entangle.Outcome }

// traceOf reports a handle's trace id; both handle types carry one when
// tracing is enabled (0 otherwise).
func traceOf(h waiter) uint64 {
	if t, ok := h.(interface{ TraceID() uint64 }); ok {
		return t.TraceID()
	}
	return 0
}

// backend is the shell's engine surface, satisfied embedded and remote.
type backend interface {
	// Exec runs classical statements through an interactive session (host
	// variables persist; BEGIN/COMMIT blocks without entangled queries are
	// legal too, but the shell routes whole blocks through Submit).
	Exec(src string) (*result, error)
	// Submit routes a whole script through the run scheduler.
	Submit(script string) (waiter, error)
	Tables() ([]wire.TableInfo, error)
	Stats() (entangle.StatsSnapshot, error)
	// Metrics is the observability registry snapshot (\metrics).
	Metrics() (obs.Snapshot, error)
	// Trace fetches one traced query's span tree by id (\trace <id>).
	Trace(id uint64) (obs.Trace, error)
	// Checkpoint snapshots the database and truncates the WAL (embedded
	// mode only; requires -wal).
	Checkpoint() error
	Close() error
}

// localBackend embeds the engine in the shell process.
type localBackend struct {
	db *entangle.DB
	is *entangle.InteractiveSession
}

func (l *localBackend) Exec(src string) (*result, error) {
	res, err := l.is.Exec(src)
	if err != nil || res == nil {
		return nil, err
	}
	return &result{Columns: res.Columns, Rows: res.Rows, RowsAffected: res.RowsAffected}, nil
}

func (l *localBackend) Submit(script string) (waiter, error) { return l.db.SubmitScript(script) }

func (l *localBackend) Tables() ([]wire.TableInfo, error) {
	return wire.TableInfos(l.db.Catalog()), nil
}

func (l *localBackend) Stats() (entangle.StatsSnapshot, error) { return l.db.StatsSnapshot(), nil }

func (l *localBackend) Metrics() (obs.Snapshot, error) { return l.db.Metrics().Snapshot(), nil }

func (l *localBackend) Trace(id uint64) (obs.Trace, error) {
	tr, ok := l.db.Tracer().Get(id)
	if !ok {
		return tr, fmt.Errorf("unknown trace %d", id)
	}
	return tr, nil
}

func (l *localBackend) Checkpoint() error { return l.db.Checkpoint() }

func (l *localBackend) Close() error {
	l.is.Close()
	return l.db.Close()
}

// remoteBackend speaks to a youtopia-serve process.
type remoteBackend struct {
	c  *client.Client
	is *client.InteractiveSession
}

func (r *remoteBackend) Exec(src string) (*result, error) {
	res, err := r.is.Exec(src)
	if err != nil && r.sessionLost(err) {
		// The connection died underneath the session (and the client may
		// have self-healed since). Sessions are connection-scoped and
		// deliberately never retried, so the old one is gone for good:
		// open a fresh session and rerun the statement. Host variables and
		// any open transaction were rolled back with the old session —
		// tell the user rather than silently losing them.
		r.is = r.c.Interactive()
		fmt.Println("  (connection was reset: opened a new session; host variables cleared)")
		res, err = r.is.Exec(src)
	}
	if err != nil || res == nil {
		return nil, err
	}
	return &result{Columns: res.Columns, Rows: res.Rows, RowsAffected: res.RowsAffected}, nil
}

// sessionLost reports whether err means the interactive session's backing
// connection died: either the server forgot the id after a reconnect
// (typed unknown_session) or the call itself rode the dying connection.
// Recovery is a single attempt — if the whole client was Close()d, the
// fresh session fails with the same error and that is what the user sees.
func (r *remoteBackend) sessionLost(err error) bool {
	return errors.Is(err, wire.ErrUnknownSession) || errors.Is(err, client.ErrClosed)
}

func (r *remoteBackend) Submit(script string) (waiter, error) { return r.c.SubmitScript(script) }

func (r *remoteBackend) Tables() ([]wire.TableInfo, error) { return r.c.Tables() }

func (r *remoteBackend) Stats() (entangle.StatsSnapshot, error) { return r.c.Stats() }

func (r *remoteBackend) Metrics() (obs.Snapshot, error) { return r.c.Metrics() }

func (r *remoteBackend) Trace(id uint64) (obs.Trace, error) { return r.c.Trace(id) }

func (r *remoteBackend) Checkpoint() error {
	return fmt.Errorf("\\checkpoint is embedded-mode only (the server owns its WAL)")
}

func (r *remoteBackend) Close() error {
	r.is.Close()
	return r.c.Close()
}

func main() {
	var (
		walPath = flag.String("wal", "", "write-ahead log path (empty = in-memory; embedded mode only)")
		freq    = flag.Int("f", 1, "run frequency (arrivals per run; embedded mode only)")
		connect = flag.String("connect", "", "connect to a youtopia-serve address instead of running embedded")
	)
	flag.Parse()

	var (
		be  backend
		err error
	)
	if *connect != "" {
		var c *client.Client
		// The shell is the debugging surface, so its connection stays on
		// JSON frames — a tcpdump of a shell session reads as text even
		// when the server offers the binary codec.
		// Tracing is on: the shell is the debugging surface, and a traced
		// request against a server without a tracer costs nothing (the
		// server drops the id).
		c, err = client.DialOptions(*connect, client.Options{Codec: wire.CodecJSON, Trace: true})
		if err == nil {
			be = &remoteBackend{c: c, is: c.Interactive()}
			fmt.Printf("connected to %s\n", *connect)
		}
	} else {
		var db *entangle.DB
		// The embedded shell always traces: the ring is bounded and an
		// interactive session never notices the per-query span cost.
		db, err = entangle.Open(entangle.Options{Path: *walPath, RunFrequency: *freq,
			Tracer: obs.NewTracer(obs.TracerOptions{})})
		if err == nil {
			be = &localBackend{db: db, is: db.Interactive()}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-shell:", err)
		os.Exit(1)
	}
	defer be.Close()

	fmt.Println("Youtopia entangled-transaction shell. \\quit to exit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		buf      strings.Builder
		inTxn    bool
		async    bool
		pending  []waiter
		pendName []string
	)
	prompt := func() {
		if inTxn {
			fmt.Print("   ...> ")
		} else {
			fmt.Print("youtopia> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			prompt()
			continue
		case strings.HasPrefix(line, "\\"):
			switch strings.Fields(line)[0] {
			case "\\quit", "\\q":
				return
			case "\\tables":
				tables, err := be.Tables()
				if err != nil {
					fmt.Println("  error:", err)
					break
				}
				for _, tbl := range tables {
					fmt.Printf("  %s %s (%d rows)\n", tbl.Name, tbl.Schema, tbl.Rows)
				}
			case "\\stats":
				snap, err := be.Stats()
				if err != nil {
					fmt.Println("  error:", err)
					break
				}
				data, _ := json.MarshalIndent(snap, "  ", "  ")
				fmt.Println("  " + string(data))
			case "\\metrics":
				snap, err := be.Metrics()
				if err != nil {
					fmt.Println("  error:", err)
					break
				}
				data, _ := json.MarshalIndent(snap, "  ", "  ")
				fmt.Println("  " + string(data))
			case "\\trace":
				fields := strings.Fields(line)
				if len(fields) != 2 {
					fmt.Println("  usage: \\trace <id>")
					break
				}
				id, perr := strconv.ParseUint(fields[1], 10, 64)
				if perr != nil {
					fmt.Println("  error:", perr)
					break
				}
				tr, err := be.Trace(id)
				if err != nil {
					fmt.Println("  error:", err)
					break
				}
				for _, l := range strings.Split(strings.TrimRight(obs.FormatTrace(&tr), "\n"), "\n") {
					fmt.Println("  " + l)
				}
			case "\\checkpoint":
				if err := be.Checkpoint(); err != nil {
					fmt.Println("  error:", err)
					break
				}
				fmt.Println("  checkpoint complete (snapshot written, log truncated)")
			case "\\async":
				async = true
				fmt.Println("  next transaction will be submitted asynchronously")
			case "\\wait":
				for i, h := range pending {
					o := h.Wait()
					fmt.Printf("  [%s] %v (attempts=%d, err=%v)\n", pendName[i], o.Status, o.Attempts, o.Err)
				}
				pending, pendName = nil, nil
			default:
				fmt.Println("  unknown meta command", line)
			}
			prompt()
			continue
		}

		buf.WriteString(line)
		buf.WriteByte('\n')
		upper := strings.ToUpper(line)
		if strings.HasPrefix(upper, "BEGIN") {
			inTxn = true
		}
		terminated := strings.HasSuffix(strings.TrimSuffix(strings.TrimSpace(line), ";"), "COMMIT") ||
			strings.HasSuffix(strings.TrimSuffix(strings.TrimSpace(line), ";"), "ROLLBACK")
		if inTxn && !terminated {
			prompt()
			continue
		}
		if !inTxn && !strings.HasSuffix(line, ";") {
			prompt()
			continue
		}
		script := buf.String()
		buf.Reset()
		wasTxn := inTxn
		inTxn = false

		if wasTxn {
			h, err := be.Submit(script)
			if err != nil {
				fmt.Println("  error:", err)
			} else if async {
				pending = append(pending, h)
				pendName = append(pendName, fmt.Sprintf("txn-%d", len(pending)))
				if id := traceOf(h); id != 0 {
					fmt.Printf("  submitted asynchronously (trace %d); \\wait to collect\n", id)
				} else {
					fmt.Println("  submitted asynchronously; \\wait to collect")
				}
			} else {
				o := h.Wait()
				if id := traceOf(h); id != 0 {
					fmt.Printf("  %v (attempts=%d, trace=%d)\n", o.Status, o.Attempts, id)
				} else {
					fmt.Printf("  %v (attempts=%d)\n", o.Status, o.Attempts)
				}
				if o.Err != nil {
					fmt.Println("  error:", o.Err)
				}
			}
			async = false
		} else {
			res, err := be.Exec(script)
			switch {
			case err != nil:
				fmt.Println("  error:", err)
			case res != nil && len(res.Columns) > 0:
				fmt.Println("  " + strings.Join(res.Columns, " | "))
				for _, row := range res.Rows {
					cells := make([]string, len(row))
					for i, v := range row {
						cells[i] = v.String()
					}
					fmt.Println("  " + strings.Join(cells, " | "))
				}
				fmt.Printf("  (%d rows)\n", len(res.Rows))
			case res != nil:
				fmt.Printf("  ok (%d rows affected)\n", res.RowsAffected)
			default:
				fmt.Println("  ok")
			}
		}
		prompt()
	}
}
