// Command youtopia-shell is a small interactive shell over the entangled
// transaction engine: classical SQL executes immediately; scripts between
// BEGIN TRANSACTION and COMMIT/ROLLBACK are submitted to the run scheduler,
// so two shells (or one shell with \async) can coordinate through
// entangled queries.
//
// Meta commands:
//
//	\tables          list tables
//	\stats           engine counters
//	\async           submit the next BEGIN...COMMIT block without waiting
//	\wait            wait for all outstanding async transactions
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/entangle"
)

func main() {
	var (
		walPath = flag.String("wal", "", "write-ahead log path (empty = in-memory)")
		freq    = flag.Int("f", 1, "run frequency (arrivals per run)")
	)
	flag.Parse()

	db, err := entangle.Open(entangle.Options{Path: *walPath, RunFrequency: *freq})
	if err != nil {
		fmt.Fprintln(os.Stderr, "youtopia-shell:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("Youtopia entangled-transaction shell. \\quit to exit.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	// Classical statements run through an interactive session, so host
	// variables persist across statements. Transactions containing
	// entangled queries must be entered as whole BEGIN...COMMIT blocks,
	// which are submitted to the run scheduler.
	interactive := db.Interactive()
	defer interactive.Close()

	var (
		buf      strings.Builder
		inTxn    bool
		async    bool
		pending  []*entangle.Handle
		pendName []string
	)
	prompt := func() {
		if inTxn {
			fmt.Print("   ...> ")
		} else {
			fmt.Print("youtopia> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			prompt()
			continue
		case strings.HasPrefix(line, "\\"):
			switch strings.Fields(line)[0] {
			case "\\quit", "\\q":
				return
			case "\\tables":
				for _, name := range db.Catalog().Names() {
					tbl, _ := db.Catalog().Get(name)
					fmt.Printf("  %s %s (%d rows)\n", name, tbl.Schema(), tbl.Len())
				}
			case "\\stats":
				fmt.Printf("  %+v\n", db.Stats())
			case "\\async":
				async = true
				fmt.Println("  next transaction will be submitted asynchronously")
			case "\\wait":
				for i, h := range pending {
					o := h.Wait()
					fmt.Printf("  [%s] %v (attempts=%d, err=%v)\n", pendName[i], o.Status, o.Attempts, o.Err)
				}
				pending, pendName = nil, nil
			default:
				fmt.Println("  unknown meta command", line)
			}
			prompt()
			continue
		}

		buf.WriteString(line)
		buf.WriteByte('\n')
		upper := strings.ToUpper(line)
		if strings.HasPrefix(upper, "BEGIN") {
			inTxn = true
		}
		terminated := strings.HasSuffix(strings.TrimSuffix(strings.TrimSpace(line), ";"), "COMMIT") ||
			strings.HasSuffix(strings.TrimSuffix(strings.TrimSpace(line), ";"), "ROLLBACK")
		if inTxn && !terminated {
			prompt()
			continue
		}
		if !inTxn && !strings.HasSuffix(line, ";") {
			prompt()
			continue
		}
		script := buf.String()
		buf.Reset()
		wasTxn := inTxn
		inTxn = false

		if wasTxn {
			h, err := db.SubmitScript(script)
			if err != nil {
				fmt.Println("  error:", err)
			} else if async {
				pending = append(pending, h)
				pendName = append(pendName, fmt.Sprintf("txn-%d", len(pending)))
				fmt.Println("  submitted asynchronously; \\wait to collect")
			} else {
				o := h.Wait()
				fmt.Printf("  %v (attempts=%d)\n", o.Status, o.Attempts)
				if o.Err != nil {
					fmt.Println("  error:", o.Err)
				}
			}
			async = false
		} else {
			res, err := interactive.Exec(script)
			switch {
			case err != nil:
				fmt.Println("  error:", err)
			case res != nil && len(res.Columns) > 0:
				fmt.Println("  " + strings.Join(res.Columns, " | "))
				for _, row := range res.Rows {
					cells := make([]string, len(row))
					for i, v := range row {
						cells[i] = v.String()
					}
					fmt.Println("  " + strings.Join(cells, " | "))
				}
				fmt.Printf("  (%d rows)\n", len(res.Rows))
			case res != nil:
				fmt.Printf("  ok (%d rows affected)\n", res.RowsAffected)
			default:
				fmt.Println("  ok")
			}
		}
		prompt()
	}
}
