package repro

// Examples smoke test: every example program must build and run end to end
// against the current API. This is wired into CI (`make test` at the repo
// root) so example drift fails the build instead of rotting silently.

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	examples, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, entry := range examples {
		if !entry.IsDir() {
			continue
		}
		name := entry.Name()
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
