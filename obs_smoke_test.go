package repro

// Observability smoke: the real youtopia-serve binary started with
// -debug-addr, driven by traced TCP clients, then inspected over the
// debug HTTP surface — /metrics must carry the engine counters and
// latency percentiles of the work just performed, /traces/recent must
// hold the pair coordination's merged trace, and the pprof index must
// serve. `make obs-smoke` runs exactly this test; CI uploads the two
// JSON payloads as the chaos-correlation artifacts.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/obs"
)

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("obs smoke skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	bin := filepath.Join(t.TempDir(), "youtopia-serve")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/youtopia-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build youtopia-serve: %v\n%s", err, out)
	}

	srv := exec.CommandContext(ctx, bin,
		"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-f", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Process.Kill() })

	// Both banners carry ephemeral addresses; collect the two. Flags are
	// checked before Scan so the loop exits without blocking on a further
	// line once the second banner has arrived.
	var addr, debugAddr string
	sc := bufio.NewScanner(stdout)
	for (addr == "" || debugAddr == "") && sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "youtopia-serve: listening on "); ok {
			addr = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "youtopia-serve: debug listening on "); ok {
			debugAddr = strings.TrimSpace(rest)
		}
	}
	go io.Copy(io.Discard, stdout)
	if addr == "" || debugAddr == "" {
		t.Fatalf("banners missing: addr=%q debug=%q", addr, debugAddr)
	}

	// Drive a traced pair coordination through two TCP connections.
	c1, err := client.DialOptions(addr, client.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.DialOptions(addr, client.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')`); err != nil {
		t.Fatal(err)
	}
	pair := func(me, them string) string {
		return fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
		SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
		WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
		AND ('%s', fno, fdate) IN ANSWER FlightRes
		CHOOSE 1;
		INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
		COMMIT;`, me, them, me)
	}
	h1, err := c1.SubmitScript(pair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.SubmitScript(pair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	canon := h1.TraceID()
	if canon == 0 || canon != h2.TraceID() {
		t.Fatalf("canonical trace ids: %d vs %d", canon, h2.TraceID())
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// /metrics: registry counters + percentiles + the engine stats block.
	var metrics struct {
		Metrics obs.Snapshot `json:"metrics"`
		Stats   struct {
			Engine entangle.StatsSnapshot `json:"engine"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if metrics.Metrics.Counters["group_commits"] < 1 {
		t.Fatalf("group_commits = %d, want >= 1", metrics.Metrics.Counters["group_commits"])
	}
	if hs := metrics.Metrics.Histograms["answer_latency"]; hs.Count < 2 || hs.P50MS <= 0 {
		t.Fatalf("answer_latency snapshot: %+v", hs)
	}
	if metrics.Stats.Engine.GroupCommits < 1 {
		t.Fatalf("engine stats block missing: %+v", metrics.Stats.Engine)
	}

	// /traces/recent: the merged coordination trace with both actors.
	var recent []obs.Trace
	if err := json.Unmarshal(get("/traces/recent"), &recent); err != nil {
		t.Fatalf("/traces/recent JSON: %v", err)
	}
	var tr *obs.Trace
	for i := range recent {
		if recent[i].ID == canon {
			tr = &recent[i]
		}
	}
	if tr == nil {
		t.Fatalf("trace %d not in /traces/recent (%d traces)", canon, len(recent))
	}
	actors := map[uint64]bool{}
	for _, s := range tr.Spans {
		actors[s.Actor] = true
	}
	if len(tr.Aliases) != 1 || len(actors) != 2 {
		t.Fatalf("merged trace shape: aliases=%v actors=%v", tr.Aliases, actors)
	}

	// pprof serves from the same mux.
	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index did not serve")
	}
}
