package shard

import (
	"fmt"
	"testing"

	"repro/internal/social"
)

func TestHomeDeterministicAndTotal(t *testing.T) {
	m := New([]string{"a:1", "b:2"})
	for _, key := range []string{"", "Mickey", "Minnie", "O''Brien"} {
		h := m.Home(key)
		if h != m.Home(key) {
			t.Fatalf("Home(%q) not deterministic", key)
		}
		if h < 0 || h >= m.Shards {
			t.Fatalf("Home(%q) = %d out of range", key, h)
		}
		if got := m.NodeFor(key); got != m.Nodes[h] {
			t.Fatalf("NodeFor(%q) = %q, want %q", key, got, m.Nodes[h])
		}
	}
	// The zero map routes everything to shard 0.
	var z *Map
	if z.Home("anything") != 0 {
		t.Fatal("nil map must route to shard 0")
	}
}

func TestOverridesWin(t *testing.T) {
	m := New([]string{"a:1", "b:2"})
	key := "Mickey"
	other := 1 - m.Home(key)
	m.Overrides = map[string]int{key: other}
	if m.Home(key) != other {
		t.Fatalf("override ignored: Home(%q) = %d, want %d", key, m.Home(key), other)
	}
	// Out-of-range overrides are ignored, not fatal.
	m.Overrides[key] = 99
	if h := m.Home(key); h < 0 || h >= m.Shards {
		t.Fatalf("bad override leaked: %d", h)
	}
}

func TestRouteKey(t *testing.T) {
	cases := []struct{ script, want string }{
		{"SELECT 'Mickey', 1 INTO ANSWER X", "Mickey"},
		{"  BEGIN TRANSACTION;\nSELECT 'Minnie', fno", "Minnie"},
		{"SELECT 'O''Brien', 1", "O'Brien"},
		{"SELECT 1, 2 FROM T", ""},
		{"SELECT 'unterminated", "unterminated"},
		{"", ""},
	}
	for _, c := range cases {
		if got := RouteKey(c.script); got != c.want {
			t.Errorf("RouteKey(%q) = %q, want %q", c.script, got, c.want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m := New([]string{"a:1", "b:2"})
	m.Overrides = map[string]int{"Mickey": 1}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.Shards != m.Shards || got.Home("Mickey") != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Fatal("bad payload must error")
	}
}

// Colocate must (a) place every friend pair on one shard far more often
// than hash placement does, (b) stay balanced within the slack bound, and
// (c) be deterministic.
func TestColocateFriends(t *testing.T) {
	g, err := social.Generate(200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	name := func(u int) string { return fmt.Sprintf("u%d", u) }
	const shards = 2
	over := Colocate(g, name, shards)
	again := Colocate(g, name, shards)
	if len(over) != len(again) {
		t.Fatalf("non-deterministic: %d vs %d overrides", len(over), len(again))
	}
	for k, v := range over {
		if again[k] != v {
			t.Fatalf("non-deterministic override for %s: %d vs %d", k, v, again[k])
		}
	}
	m := &Map{Version: 2, Shards: shards, Overrides: over}
	hashOnly := &Map{Version: 1, Shards: shards}
	loc, hashLoc := 0, 0
	load := make([]int, shards)
	seen := map[int]bool{}
	for _, e := range g.Edges() {
		u, v := name(e[0]), name(e[1])
		if m.Home(u) == m.Home(v) {
			loc++
		}
		if hashOnly.Home(u) == hashOnly.Home(v) {
			hashLoc++
		}
		for _, x := range []int{e[0], e[1]} {
			if !seen[x] {
				seen[x] = true
				load[m.Home(name(x))]++
			}
		}
	}
	if loc <= hashLoc {
		t.Fatalf("colocation no better than hashing: %d vs %d local edges", loc, hashLoc)
	}
	total := len(g.Edges())
	if loc*100 < total*70 {
		t.Fatalf("only %d/%d edges local after colocation", loc, total)
	}
	cap := (g.N()+shards-1)/shards + (g.N()+shards-1)/shards/4
	for s, n := range load {
		if n > cap {
			t.Fatalf("shard %d overloaded: %d > %d", s, n, cap)
		}
	}
}
