// Package shard is the placement layer of the partitioned engine: a
// versioned map from routing keys (the paper's user names — the first
// quoted literal of a submitted script) to the shard, and so the
// youtopia-serve process, that owns them. The map is deliberately separate
// from the storage engine it routes to (EMBANKS-style layering): engines
// know nothing about placement, servers consult it to forward or
// coordinate, and clients fetch it to route directly.
//
// Placement is deterministic hash placement (FNV-1a mod shards) with an
// optional override table. The override table is how the social-graph-
// aware assignment plugs in: Colocate walks friendship edges and pins
// likely-entangled friends to the same shard, emitting only the keys whose
// hash shard would differ.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/social"
)

// Map is one version of the placement: Nodes[i] serves shard i. A key's
// home shard is Overrides[key] when present, else hash(key) mod Shards.
// The zero Map (Shards == 0) means "not sharded"; Home then reports
// shard 0 so single-process callers need no special case.
type Map struct {
	Version   int            `json:"version"`
	Shards    int            `json:"shards"`
	Nodes     []string       `json:"nodes,omitempty"`
	Overrides map[string]int `json:"overrides,omitempty"`
}

// New builds a single-version hash placement over the given node
// addresses, one shard per node.
func New(nodes []string) *Map {
	return &Map{Version: 1, Shards: len(nodes), Nodes: append([]string(nil), nodes...)}
}

// Hash is the deterministic key hash every component agrees on (FNV-1a).
func Hash(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// Home returns the shard owning key.
func (m *Map) Home(key string) int {
	if m == nil || m.Shards <= 1 {
		return 0
	}
	if s, ok := m.Overrides[key]; ok && s >= 0 && s < m.Shards {
		return s
	}
	return int(Hash(key) % uint32(m.Shards))
}

// NodeFor returns the address serving key's home shard ("" when the map
// carries no node list).
func (m *Map) NodeFor(key string) string {
	if m == nil || len(m.Nodes) == 0 {
		return ""
	}
	return m.Nodes[m.Home(key)%len(m.Nodes)]
}

// Clone returns a deep copy (servers hand maps to concurrent readers).
func (m *Map) Clone() *Map {
	if m == nil {
		return nil
	}
	c := &Map{Version: m.Version, Shards: m.Shards, Nodes: append([]string(nil), m.Nodes...)}
	if m.Overrides != nil {
		c.Overrides = make(map[string]int, len(m.Overrides))
		for k, v := range m.Overrides {
			c.Overrides[k] = v
		}
	}
	return c
}

// Marshal renders the map as the JSON payload the placement op serves.
func (m *Map) Marshal() ([]byte, error) { return json.Marshal(m) }

// Unmarshal parses a placement payload.
func Unmarshal(raw []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: bad placement payload: %w", err)
	}
	if m.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", m.Shards)
	}
	return &m, nil
}

// RouteKey extracts the routing key of a script: the first single-quoted
// SQL string literal (the paper's workload identifies the acting user by
// name in the first SELECT ... INTO ANSWER atom). Doubled quotes ('') are
// the SQL escape and belong to the literal. Scripts without a literal
// route to "" — hash shard of the empty string — so routing is total.
func RouteKey(script string) string {
	for i := 0; i < len(script); i++ {
		if script[i] != '\'' {
			continue
		}
		var b strings.Builder
		for j := i + 1; j < len(script); j++ {
			if script[j] != '\'' {
				b.WriteByte(script[j])
				continue
			}
			if j+1 < len(script) && script[j+1] == '\'' {
				b.WriteByte('\'')
				j++
				continue
			}
			return b.String()
		}
		return b.String() // unterminated literal: best effort
	}
	return ""
}

// Colocate computes placement overrides that pin friends to the same
// shard: likely-entangled pairs (graph edges) then resolve their group
// locally instead of across shards. The pass is greedy and deterministic —
// edges in ascending order, each unassigned endpoint joining its partner's
// shard (or both joining the less-loaded shard) subject to a per-shard
// capacity of ceil(n/shards * slack). Returned overrides include only keys
// whose hash shard differs from the assignment, keeping the table small.
func Colocate(g *social.Graph, name func(int) string, shards int) map[string]int {
	if g == nil || shards <= 1 {
		return nil
	}
	n := g.N()
	cap := (n + shards - 1) / shards
	cap += cap / 4 // 25% slack before a shard refuses new members
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]int, shards)
	place := func(u, s int) bool {
		if load[s] >= cap {
			return false
		}
		assign[u] = s
		load[s]++
		return true
	}
	leastLoaded := func() int {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		return best
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		switch {
		case assign[u] >= 0 && assign[v] < 0:
			place(v, assign[u])
		case assign[v] >= 0 && assign[u] < 0:
			place(u, assign[v])
		case assign[u] < 0 && assign[v] < 0:
			s := leastLoaded()
			if place(u, s) {
				place(v, s)
			}
		}
	}
	for u := range assign {
		if assign[u] < 0 {
			place(u, leastLoaded())
		}
	}
	// Refinement sweeps (deterministic label propagation): move a node to
	// the shard holding most of its friends when that strictly increases
	// its local-edge count and the target shard has room. Hubs settle where
	// their neighbourhoods are, fixing the edges the greedy pass cut.
	for sweep := 0; sweep < 4; sweep++ {
		moved := false
		for u := 0; u < n; u++ {
			counts := make([]int, shards)
			for _, v := range g.Friends(u) {
				counts[assign[v]]++
			}
			best := assign[u]
			for s := 0; s < shards; s++ {
				if counts[s] > counts[best] {
					best = s
				}
			}
			if best != assign[u] && load[best] < cap {
				load[assign[u]]--
				load[best]++
				assign[u] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	over := make(map[string]int)
	for u, s := range assign {
		key := name(u)
		if int(Hash(key)%uint32(shards)) != s {
			over[key] = s
		}
	}
	if len(over) == 0 {
		return nil
	}
	return over
}

// Keys returns the override keys in sorted order (diagnostics, tests).
func (m *Map) Keys() []string {
	ks := make([]string, 0, len(m.Overrides))
	for k := range m.Overrides {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
