package workload

import (
	"fmt"

	"repro/entangle"
	"repro/internal/eq"
)

// Coordination structures for the entanglement-complexity experiment
// (Figure 6(c)). Structure sizes are the paper's "size of coordinating
// set" k.

// Structure selects the coordination topology.
type Structure int

// Structures of §5.2.2.
const (
	// SpokeHub: one hub transaction with k-1 entangled queries, each
	// coordinating with a different spoke transaction.
	SpokeHub Structure = iota
	// Cycle: k transactions with one entangled query each, forming a
	// cyclic dependency chain — all must be answered together.
	Cycle
)

func (s Structure) String() string {
	if s == SpokeHub {
		return "Spoke-hub"
	}
	return "Cycle"
}

// pairQuery coordinates two named participants on a destination from a
// shared hometown over a private answer relation (one relation per
// hub-spoke pair / cycle keeps structures independent).
func pairQuery(rel string, me, them int, hometown string) *eq.Query {
	return &eq.Query{
		Head: []eq.Atom{eq.NewAtom(rel, eq.CInt(int64(me)), eq.V("dest"))},
		Post: []eq.Atom{eq.NewAtom(rel, eq.CInt(int64(them)), eq.V("dest"))},
		Body: []eq.Atom{eq.NewAtom("Flight", eq.V("src"), eq.V("dest"), eq.V("fid"))},
		Where: []eq.Constraint{
			{Left: eq.V("src"), Op: eq.OpEq, Right: eq.CStr(hometown)},
		},
		Choose: 1,
	}
}

// bookDest books uid onto the flight from town to dest.
func bookDest(tx *entangle.Tx, uid int, town, dest string) error {
	fid, err := lookupFlight(tx, town, dest)
	if err != nil {
		return err
	}
	return reserve(tx, uid, fid)
}

// BuildStructure produces the programs of one coordination structure of
// size k (k >= 2): k programs whose entangled queries must all coordinate
// for any of them to commit (transitively, via group commit). gid makes
// the structure's answer relations unique.
func (d *Dataset) BuildStructure(s Structure, k, gid int) ([]entangle.Program, error) {
	if k < 2 {
		return nil, fmt.Errorf("workload: structure size %d < 2", k)
	}
	group, err := d.SameTownGroup(k)
	if err != nil {
		return nil, err
	}
	town := CityName(d.Hometown[group[0]])
	timeout := 2 * DefaultTimeout
	var out []entangle.Program

	switch s {
	case SpokeHub:
		hub := group[0]
		spokes := group[1:]
		out = append(out, entangle.Program{
			Name:    "hub",
			Timeout: timeout,
			Body: func(tx *entangle.Tx) error {
				// The hub coordinates with each spoke in turn — the §3.1
				// multi-entangled-query shape.
				for i, sp := range spokes {
					rel := fmt.Sprintf("Spoke_%d_%d", gid, i)
					a := tx.Entangle(pairQuery(rel, hub, sp, town))
					if a.Status != eq.Answered {
						return fmt.Errorf("hub query %d: %v", i, a.Status)
					}
					if err := bookDest(tx, hub, town, a.Bindings["dest"].Str64()); err != nil {
						return err
					}
				}
				return nil
			},
		})
		for i, sp := range spokes {
			rel := fmt.Sprintf("Spoke_%d_%d", gid, i)
			sp := sp
			out = append(out, entangle.Program{
				Name:    "spoke",
				Timeout: timeout,
				Body: func(tx *entangle.Tx) error {
					a := tx.Entangle(pairQuery(rel, sp, hub, town))
					if a.Status != eq.Answered {
						return fmt.Errorf("spoke: %v", a.Status)
					}
					return bookDest(tx, sp, town, a.Bindings["dest"].Str64())
				},
			})
		}
	case Cycle:
		rel := fmt.Sprintf("Cycle_%d", gid)
		for i := range group {
			me := group[i]
			next := group[(i+1)%len(group)]
			out = append(out, entangle.Program{
				Name:    "cycle",
				Timeout: timeout,
				Body: func(tx *entangle.Tx) error {
					a := tx.Entangle(pairQuery(rel, me, next, town))
					if a.Status != eq.Answered {
						return fmt.Errorf("cycle member: %v", a.Status)
					}
					return bookDest(tx, me, town, a.Bindings["dest"].Str64())
				},
			})
		}
	default:
		return nil, fmt.Errorf("workload: unknown structure %v", s)
	}
	return out, nil
}

// VerifyReserve checks post-conditions after running workloads: every
// Reserve row references a real flight, and returns the booking count.
func VerifyReserve(db *entangle.DB) (int, error) {
	res, err := db.Query("SELECT uid, fid FROM Reserve")
	if err != nil {
		return 0, err
	}
	flights, err := db.Query("SELECT fid FROM Flight")
	if err != nil {
		return 0, err
	}
	valid := make(map[int64]bool, len(flights.Rows))
	for _, f := range flights.Rows {
		valid[f[0].Int64()] = true
	}
	for _, r := range res.Rows {
		if !valid[r[1].Int64()] {
			return 0, fmt.Errorf("workload: reservation for unknown flight %v", r[1])
		}
	}
	return len(res.Rows), nil
}
