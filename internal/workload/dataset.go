// Package workload generates the six workloads of the paper's evaluation
// (§5.2: NoSocial/Social/Entangled, each in transactional -T and
// non-transactional -Q form) over the Appendix D travel schema
//
//	User(uid, hometown)  Friends(uid1, uid2)
//	Flight(source, destination, fid)  Reserve(uid, fid)
//
// plus the Spoke-hub and Cyclic coordination structures of the
// entanglement-complexity experiment (Figure 6(c)) and the
// pending-transaction batches of Figure 6(b).
package workload

import (
	"fmt"
	"math/rand"

	"repro/entangle"
	"repro/internal/social"
	"repro/internal/types"
)

// Config sizes a dataset.
type Config struct {
	// Users in the social graph (default 1000).
	Users int
	// Cities users live in (default 8).
	Cities int
	// Destinations reachable from every city (default 6).
	Destinations int
	// AttachM is the preferential-attachment parameter (default 3).
	AttachM int
	// Seed drives all randomness (default 1).
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Users <= 0 {
		out.Users = 1000
	}
	if out.Cities <= 0 {
		out.Cities = 8
	}
	if out.Destinations <= 0 {
		out.Destinations = 6
	}
	if out.AttachM <= 0 {
		out.AttachM = 3
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Dataset is a generated social travel scenario.
type Dataset struct {
	cfg      Config
	Graph    *social.Graph
	Hometown []int // user -> city index
	rng      *rand.Rand

	samePairs [][2]int // vertex-disjoint same-hometown friend pairs, shuffled
	pairNext  int
	orphanSeq int
}

// NewDataset builds the graph, hometown assignment, and coordination-pair
// pool. Deterministic for a given config.
func NewDataset(cfg Config) (*Dataset, error) {
	c := cfg.withDefaults()
	g, err := social.Generate(c.Users, c.AttachM, c.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed + 1))
	d := &Dataset{cfg: c, Graph: g, rng: rng}
	d.Hometown = make([]int, c.Users)
	for u := range d.Hometown {
		d.Hometown[u] = rng.Intn(c.Cities)
	}
	// Greedy vertex-disjoint matching over same-hometown edges: no user
	// appears in two coordination pairs, so concurrent pairs can never
	// steal each other's partners on the shared Rendezvous relation.
	used := make([]bool, c.Users)
	for _, e := range g.Edges() {
		if d.Hometown[e[0]] == d.Hometown[e[1]] && !used[e[0]] && !used[e[1]] {
			used[e[0]] = true
			used[e[1]] = true
			d.samePairs = append(d.samePairs, e)
		}
	}
	if len(d.samePairs) == 0 {
		return nil, fmt.Errorf("workload: no same-hometown friend pairs; increase Users or decrease Cities")
	}
	rng.Shuffle(len(d.samePairs), func(i, j int) {
		d.samePairs[i], d.samePairs[j] = d.samePairs[j], d.samePairs[i]
	})
	return d, nil
}

// Config returns the effective configuration.
func (d *Dataset) Config() Config { return d.cfg }

// CityName renders city i as a three-letter-ish code.
func CityName(i int) string { return fmt.Sprintf("CITY%03d", i) }

// DestName renders destination j.
func DestName(j int) string { return fmt.Sprintf("DEST%03d", j) }

// FlightID computes the deterministic flight id for (city, destination).
func (d *Dataset) FlightID(city, dest int) int64 {
	return int64(city*d.cfg.Destinations + dest + 1000)
}

// Setup creates and seeds the Appendix D schema in db.
func (d *Dataset) Setup(db *entangle.DB) error {
	if err := db.ExecDDL(`
		CREATE TABLE User (uid INT, hometown VARCHAR);
		CREATE TABLE Friends (uid1 INT, uid2 INT);
		CREATE TABLE Flight (source VARCHAR, destination VARCHAR, fid INT);
		CREATE TABLE Reserve (uid INT, fid INT);
		CREATE INDEX user_uid ON User (uid);
		CREATE INDEX friends_u1 ON Friends (uid1);
		CREATE INDEX flight_route ON Flight (source, destination);
	`); err != nil {
		return err
	}
	o := db.RunDirect(entangle.Program{
		Name:      "seed",
		NoLatency: true,
		Body: func(tx *entangle.Tx) error {
			for u := 0; u < d.cfg.Users; u++ {
				if _, err := tx.Insert("User", entangle.Values(
					types.Int(int64(u)), types.Str(CityName(d.Hometown[u])))); err != nil {
					return err
				}
			}
			for _, e := range d.Graph.Edges() {
				for _, pair := range [][2]int{e, {e[1], e[0]}} {
					if _, err := tx.Insert("Friends", entangle.Values(
						types.Int(int64(pair[0])), types.Int(int64(pair[1])))); err != nil {
						return err
					}
				}
			}
			for c := 0; c < d.cfg.Cities; c++ {
				for j := 0; j < d.cfg.Destinations; j++ {
					if _, err := tx.Insert("Flight", entangle.Values(
						types.Str(CityName(c)), types.Str(DestName(j)),
						types.Int(d.FlightID(c, j)))); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if o.Status != entangle.StatusCommitted {
		return fmt.Errorf("workload: seed failed: %v (%v)", o.Status, o.Err)
	}
	return nil
}

// NextPair returns the next same-hometown friend pair, cycling through the
// shuffled pool.
func (d *Dataset) NextPair() (u, v int) {
	e := d.samePairs[d.pairNext%len(d.samePairs)]
	d.pairNext++
	return e[0], e[1]
}

// RandomUser returns a uniformly random user.
func (d *Dataset) RandomUser() int { return d.rng.Intn(d.cfg.Users) }

// RandomDest returns a uniformly random destination index.
func (d *Dataset) RandomDest() int { return d.rng.Intn(d.cfg.Destinations) }

// SameTownGroup returns k users sharing one hometown (for the Figure 6(c)
// structures): the first pair's town anchors the group; additional members
// are any users from that town.
func (d *Dataset) SameTownGroup(k int) ([]int, error) {
	u, v := d.NextPair()
	town := d.Hometown[u]
	group := []int{u, v}
	for w := 0; w < d.cfg.Users && len(group) < k; w++ {
		if w != u && w != v && d.Hometown[w] == town {
			group = append(group, w)
		}
	}
	if len(group) < k {
		return nil, fmt.Errorf("workload: town %d has fewer than %d users", town, k)
	}
	return group[:k], nil
}
