package workload

import (
	"fmt"
	"time"

	"repro/entangle"
	"repro/internal/eq"
	"repro/internal/types"
)

// Kind enumerates the six §5.2 workloads.
type Kind int

// Workload kinds. The -T variants are transactions; the -Q variants run
// the same code without a transaction block (autocommit).
const (
	NoSocialT Kind = iota
	SocialT
	EntangledT
	NoSocialQ
	SocialQ
	EntangledQ
)

func (k Kind) String() string {
	switch k {
	case NoSocialT:
		return "NoSocial-T"
	case SocialT:
		return "Social-T"
	case EntangledT:
		return "Entangled-T"
	case NoSocialQ:
		return "NoSocial-Q"
	case SocialQ:
		return "Social-Q"
	case EntangledQ:
		return "Entangled-Q"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Entangled reports whether the kind contains entangled queries (and so
// must go through the run scheduler).
func (k Kind) Entangled() bool { return k == EntangledT || k == EntangledQ }

// Autocommit reports whether the kind is a -Q (non-transactional) variant.
func (k Kind) Autocommit() bool { return k >= NoSocialQ }

// DefaultTimeout for workload transactions.
const DefaultTimeout = 30 * time.Second

// lookupHometown reads the user's hometown (first statement of every
// Appendix D workload).
func lookupHometown(tx *entangle.Tx, uid int) (string, error) {
	rows, err := tx.Lookup("User", []string{"uid"}, entangle.Values(types.Int(int64(uid))))
	if err != nil {
		return "", err
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("workload: no user %d", uid)
	}
	return rows[0][1].Str64(), nil
}

// lookupFlight finds the flight id for a route.
func lookupFlight(tx *entangle.Tx, source, dest string) (types.Value, error) {
	rows, err := tx.Lookup("Flight", []string{"source", "destination"},
		entangle.Values(types.Str(source), types.Str(dest)))
	if err != nil {
		return types.Null(), err
	}
	if len(rows) == 0 {
		return types.Null(), fmt.Errorf("workload: no flight %s -> %s", source, dest)
	}
	return rows[0][2], nil
}

// reserve books the flight.
func reserve(tx *entangle.Tx, uid int, fid types.Value) error {
	_, err := tx.Insert("Reserve", entangle.Values(types.Int(int64(uid)), fid))
	return err
}

// NoSocial builds the individual travel-booking workload (Appendix D,
// first template): hometown lookup, flight lookup, reservation.
func (d *Dataset) NoSocial(kind Kind, uid, dest int) entangle.Program {
	return entangle.Program{
		Name:       kind.String(),
		Timeout:    DefaultTimeout,
		Autocommit: kind.Autocommit(),
		Body: func(tx *entangle.Tx) error {
			town, err := lookupHometown(tx, uid)
			if err != nil {
				return err
			}
			fid, err := lookupFlight(tx, town, DestName(dest))
			if err != nil {
				return err
			}
			return reserve(tx, uid, fid)
		},
	}
}

// Social builds the friends-aware booking (Appendix D, second template):
// additionally fetch a same-hometown friend who might be flying.
func (d *Dataset) Social(kind Kind, uid, dest int) entangle.Program {
	return entangle.Program{
		Name:       kind.String(),
		Timeout:    DefaultTimeout,
		Autocommit: kind.Autocommit(),
		Body: func(tx *entangle.Tx) error {
			town, err := lookupHometown(tx, uid)
			if err != nil {
				return err
			}
			// "SELECT uid2 FROM Friends, User u1, User u2 WHERE ... LIMIT 1"
			// — one join statement server-side: a friends index probe plus
			// a hometown check, not a round trip per friend.
			friends, err := tx.Lookup("Friends", []string{"uid1"}, entangle.Values(types.Int(int64(uid))))
			if err != nil {
				return err
			}
			if len(friends) > 0 {
				if _, err := tx.Lookup("User", []string{"uid", "hometown"},
					entangle.Values(friends[0][1], types.Str(town))); err != nil {
					return err
				}
			}
			fid, err := lookupFlight(tx, town, DestName(dest))
			if err != nil {
				return err
			}
			return reserve(tx, uid, fid)
		},
	}
}

// rendezvousQuery coordinates uid with friend on a common destination
// reachable from their (shared) hometown: the Appendix D entangled
// template, with the destination chosen by entanglement.
//
//	Head: Rendezvous(uid, ?dest)
//	Post: Rendezvous(friend, ?dest)
//	Body: Flight(?src, ?dest, ?fid), ?src = hometown
func rendezvousQuery(rel string, uid, friend int, hometown string) *eq.Query {
	return &eq.Query{
		Head: []eq.Atom{eq.NewAtom(rel, eq.CInt(int64(uid)), eq.V("dest"))},
		Post: []eq.Atom{eq.NewAtom(rel, eq.CInt(int64(friend)), eq.V("dest"))},
		Body: []eq.Atom{eq.NewAtom("Flight", eq.V("src"), eq.V("dest"), eq.V("fid"))},
		Where: []eq.Constraint{
			{Left: eq.V("src"), Op: eq.OpEq, Right: eq.CStr(hometown)},
		},
		Choose: 1,
	}
}

// Entangled builds the coordinated booking (Appendix D, third template):
// coordinate with a friend on a destination, then book the flight there.
func (d *Dataset) Entangled(kind Kind, uid, friend int) entangle.Program {
	return d.entangledOn("Rendezvous", kind, uid, friend)
}

func (d *Dataset) entangledOn(rel string, kind Kind, uid, friend int) entangle.Program {
	return entangle.Program{
		Name:       kind.String(),
		Timeout:    DefaultTimeout,
		Autocommit: kind.Autocommit(),
		Body: func(tx *entangle.Tx) error {
			town, err := lookupHometown(tx, uid)
			if err != nil {
				return err
			}
			a := tx.Entangle(rendezvousQuery(rel, uid, friend, town))
			if a.Status != eq.Answered {
				return fmt.Errorf("workload: rendezvous %v", a.Status)
			}
			dest := a.Bindings["dest"].Str64()
			fid, err := lookupFlight(tx, town, dest)
			if err != nil {
				return err
			}
			return reserve(tx, uid, fid)
		},
	}
}

// Build constructs one program of the given kind. For entangled kinds the
// second user is the coordination partner; for the others it is ignored.
func (d *Dataset) Build(kind Kind, uid, partnerOrDest int) entangle.Program {
	switch kind {
	case NoSocialT, NoSocialQ:
		return d.NoSocial(kind, uid, partnerOrDest%d.cfg.Destinations)
	case SocialT, SocialQ:
		return d.Social(kind, uid, partnerOrDest%d.cfg.Destinations)
	default:
		return d.Entangled(kind, uid, partnerOrDest)
	}
}

// Batch produces n programs of the given kind. Entangled batches consist
// of complete coordination pairs (n rounded up to even), mirroring §5.2.2:
// "transactions were submitted in batches designed so that each
// transaction would find a coordination partner within the same batch".
func (d *Dataset) Batch(kind Kind, n int) []entangle.Program {
	var out []entangle.Program
	if kind.Entangled() {
		for len(out) < n {
			u, v := d.NextPair()
			out = append(out, d.Entangled(kind, u, v), d.Entangled(kind, v, u))
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, d.Build(kind, d.RandomUser(), d.RandomDest()))
	}
	return out
}

// OrphanPair returns an entangled transaction whose partner is withheld
// (for the Figure 6(b) pending-transaction experiment) together with the
// partner program to be submitted at the very end of the experiment. Each
// orphan pair coordinates on a private answer relation so that long-lived
// orphans cannot accidentally coordinate with the main stream.
func (d *Dataset) OrphanPair() (orphan, partner entangle.Program) {
	u, v := d.NextPair()
	d.orphanSeq++
	rel := fmt.Sprintf("Orphan_%d", d.orphanSeq)
	orphan = d.entangledOn(rel, EntangledT, u, v)
	partner = d.entangledOn(rel, EntangledT, v, u)
	// Orphans pend for the whole experiment; give them room.
	orphan.Timeout = 10 * DefaultTimeout
	partner.Timeout = 10 * DefaultTimeout
	return orphan, partner
}
