package workload

import (
	"fmt"

	"repro/entangle"
	"repro/internal/eq"
)

// Competing coordination structures: unlike the disjoint §5.2.2 families
// (BuildStructure), these groups OVERLAP — multiple structures contend for
// one participant's single grounding, so the coordinating-set search has a
// real choice to make. The greedy closure answers whichever structure
// submits first; the exact solver guarantees the maximum-size answered
// set. Losing participants receive an empty answer (their combined query
// was formable — Appendix B) and commit without booking, so every program
// in a competing group completes either way; what differs is how many are
// *answered*, observable as Reserve rows and in Stats.

// CompetingKind selects a competing-structure family.
type CompetingKind int

// Competing families.
const (
	// HubContest: two hubs contend for one spoke. The spoke's
	// postcondition ("someone claims my destination") is producible by
	// either hub, but only one can win. Both outcomes answer 2 queries;
	// the tie is broken deterministically (earliest grounding, then
	// earliest submission).
	HubContest CompetingKind = iota
	// MarketContest: one seller awards a single companion seat; N buyers
	// want it. The seller's groundings enumerate every same-hometown user
	// as a candidate, exactly one buyer is awarded, and the rest proceed
	// empty-handed — the many-to-one marketplace shape.
	MarketContest
	// ChainContest: a pair and a 3-cycle contend for one shared member.
	// Greedy closure answers the pair (2 queries, first-submitted); only
	// the exact solver finds the maximum — the 3-cycle (3 queries).
	ChainContest
)

func (k CompetingKind) String() string {
	switch k {
	case HubContest:
		return "Hub-contest"
	case MarketContest:
		return "Market-contest"
	case ChainContest:
		return "Chain-contest"
	default:
		return fmt.Sprintf("CompetingKind(%d)", int(k))
	}
}

// roleQuery builds a competing-structure query over the per-group answer
// relation rel: the head tags this participant's role, the postcondition
// demands some chosen head with role postRole at the same destination, and
// the body enumerates destinations reachable from town (optionally pinned
// to one destination, which is what makes structures contend on disjoint
// destination ranges).
func roleQuery(rel, role, postRole, town, dest string) *eq.Query {
	q := &eq.Query{
		Head: []eq.Atom{eq.NewAtom(rel, eq.CStr(role), eq.V("d"))},
		Post: []eq.Atom{eq.NewAtom(rel, eq.CStr(postRole), eq.V("d"))},
		Body: []eq.Atom{eq.NewAtom("Flight", eq.V("src"), eq.V("d"), eq.V("fid"))},
		Where: []eq.Constraint{
			{Left: eq.V("src"), Op: eq.OpEq, Right: eq.CStr(town)},
		},
		Choose: 1,
	}
	if dest != "" {
		q.Where = append(q.Where, eq.Constraint{Left: eq.V("d"), Op: eq.OpEq, Right: eq.CStr(dest)})
	}
	return q
}

// competeProgram wraps a competing-structure query: an answered
// participant books the coordinated destination; an empty answer means the
// participant lost the contest and proceeds without booking (query
// success, per Appendix B). Anything else is an error.
func competeProgram(name string, uid int, town string, q *eq.Query) entangle.Program {
	return entangle.Program{
		Name:    name,
		Timeout: 2 * DefaultTimeout,
		Body: func(tx *entangle.Tx) error {
			a := tx.Entangle(q)
			switch a.Status {
			case eq.Answered:
				return bookDest(tx, uid, town, a.Bindings["d"].Str64())
			case eq.EmptyAnswer:
				return nil // lost the contest; proceed without booking
			default:
				return fmt.Errorf("%s: %v", name, a.Status)
			}
		},
	}
}

// BuildCompeting produces the programs of one competing structure. k is
// the number of buyers for MarketContest (minimum 1) and is ignored by the
// fixed-size families. gid makes the group's answer relation unique.
//
// Answered-query counts per group (equal to Reserve rows booked):
//
//	HubContest:    2 (spoke + one hub; deterministic tie-break)
//	MarketContest: 2 (seller + the awarded buyer)
//	ChainContest:  3 exact (the 3-cycle) — greedy closure finds only 2
func (d *Dataset) BuildCompeting(kind CompetingKind, k, gid int) ([]entangle.Program, error) {
	switch kind {
	case HubContest:
		return d.buildHubContest(gid)
	case MarketContest:
		return d.buildMarketContest(k, gid)
	case ChainContest:
		return d.buildChainContest(gid)
	default:
		return nil, fmt.Errorf("workload: unknown competing kind %v", kind)
	}
}

// buildHubContest: spoke S, hubs H1 and H2. Both hubs produce the claim S
// needs, on disjoint destinations, and each needs S's offer in return — S
// can coordinate with exactly one of them.
func (d *Dataset) buildHubContest(gid int) ([]entangle.Program, error) {
	if d.cfg.Destinations < 2 {
		return nil, fmt.Errorf("workload: hub contest needs >= 2 destinations")
	}
	group, err := d.SameTownGroup(3)
	if err != nil {
		return nil, err
	}
	town := CityName(d.Hometown[group[0]])
	rel := fmt.Sprintf("Hub_%d", gid)
	progs := []entangle.Program{
		competeProgram("spoke", group[0], town, roleQuery(rel, "offer", "claim", town, "")),
	}
	for i, hub := range group[1:] {
		progs = append(progs, competeProgram("hub", hub, town,
			roleQuery(rel, "claim", "offer", town, DestName(i))))
	}
	return progs, nil
}

// buildChainContest: shared member S, pair hub A (destination 0), and a
// 3-cycle B -> C closing back through S (destination 1). Answering the
// pair satisfies 2 queries, answering the cycle 3 — the instance where the
// maximum coordinating set requires backtracking over producer choices.
func (d *Dataset) buildChainContest(gid int) ([]entangle.Program, error) {
	if d.cfg.Destinations < 2 {
		return nil, fmt.Errorf("workload: chain contest needs >= 2 destinations")
	}
	group, err := d.SameTownGroup(4)
	if err != nil {
		return nil, err
	}
	town := CityName(d.Hometown[group[0]])
	rel := fmt.Sprintf("Chain_%d", gid)
	pairDest, chainDest := DestName(0), DestName(1)
	return []entangle.Program{
		// S: coordinates at any destination with whoever claims it.
		competeProgram("shared", group[0], town, roleQuery(rel, "offer", "claim", town, "")),
		// A: the pair — claims destination 0 and needs S's offer there.
		competeProgram("pair-hub", group[1], town, roleQuery(rel, "claim", "offer", town, pairDest)),
		// B and C: the 3-cycle at destination 1 — B claims for S but needs
		// C's link; C links but needs S's offer.
		competeProgram("chain-hub", group[2], town, roleQuery(rel, "claim", "link", town, chainDest)),
		competeProgram("chain-closer", group[3], town, roleQuery(rel, "link", "offer", town, chainDest)),
	}, nil
}

// buildMarketContest: one seller, k buyers. The seller's groundings range
// over every same-hometown user (the User relation in the body) crossed
// with the reachable destinations; each buyer wants the award for itself.
// Exactly one buyer can be awarded — the earliest candidate in grounding
// enumeration order.
func (d *Dataset) buildMarketContest(k, gid int) ([]entangle.Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("workload: market contest needs >= 1 buyer")
	}
	group, err := d.SameTownGroup(k + 1)
	if err != nil {
		return nil, err
	}
	seller, buyers := group[0], group[1:]
	town := CityName(d.Hometown[seller])
	rel := fmt.Sprintf("Mkt_%d", gid)

	sellerQ := &eq.Query{
		Head: []eq.Atom{eq.NewAtom(rel, eq.CStr("award"), eq.V("b"), eq.V("d"))},
		Post: []eq.Atom{eq.NewAtom(rel, eq.CStr("want"), eq.V("b"), eq.V("d"))},
		Body: []eq.Atom{
			eq.NewAtom("User", eq.V("b"), eq.V("t")),
			eq.NewAtom("Flight", eq.V("src"), eq.V("d"), eq.V("fid")),
		},
		Where: []eq.Constraint{
			{Left: eq.V("t"), Op: eq.OpEq, Right: eq.CStr(town)},
			{Left: eq.V("src"), Op: eq.OpEq, Right: eq.CStr(town)},
			{Left: eq.V("b"), Op: eq.OpNe, Right: eq.CInt(int64(seller))},
		},
		Choose: 1,
	}
	progs := []entangle.Program{competeProgram("seller", seller, town, sellerQ)}
	for _, b := range buyers {
		b := b
		buyerQ := &eq.Query{
			Head: []eq.Atom{eq.NewAtom(rel, eq.CStr("want"), eq.CInt(int64(b)), eq.V("d"))},
			Post: []eq.Atom{eq.NewAtom(rel, eq.CStr("award"), eq.CInt(int64(b)), eq.V("d"))},
			Body: []eq.Atom{eq.NewAtom("Flight", eq.V("src"), eq.V("d"), eq.V("fid"))},
			Where: []eq.Constraint{
				{Left: eq.V("src"), Op: eq.OpEq, Right: eq.CStr(town)},
			},
			Choose: 1,
		}
		progs = append(progs, competeProgram("buyer", b, town, buyerQ))
	}
	return progs, nil
}
