package workload

import (
	"sync"
	"testing"

	"repro/entangle"
)

func testDataset(t *testing.T) (*Dataset, *entangle.DB) {
	t.Helper()
	d, err := NewDataset(Config{Users: 300, Cities: 4, Destinations: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := d.Setup(db); err != nil {
		t.Fatal(err)
	}
	return d, db
}

func runAll(t *testing.T, db *entangle.DB, progs []entangle.Program) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]entangle.Outcome, len(progs))
	for i, p := range progs {
		wg.Add(1)
		go func(i int, p entangle.Program) {
			defer wg.Done()
			if p.Autocommit && !hasEntangle(p) {
				errs[i] = db.RunDirect(p)
				return
			}
			if hasEntangle(p) {
				errs[i] = db.Submit(p).Wait()
			} else {
				errs[i] = db.RunDirect(p)
			}
		}(i, p)
	}
	wg.Wait()
	for i, o := range errs {
		if o.Status != entangle.StatusCommitted {
			t.Fatalf("program %d (%s): %+v", i, progs[i].Name, o)
		}
	}
}

// hasEntangle approximates "routes through the scheduler" by name.
func hasEntangle(p entangle.Program) bool {
	return p.Name == "Entangled-T" || p.Name == "Entangled-Q" ||
		p.Name == "hub" || p.Name == "spoke" || p.Name == "cycle"
}

func TestDatasetDeterministic(t *testing.T) {
	a, err := NewDataset(Config{Users: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewDataset(Config{Users: 100, Seed: 3})
	for i := 0; i < 10; i++ {
		au, av := a.NextPair()
		bu, bv := b.NextPair()
		if au != bu || av != bv {
			t.Fatalf("pair %d differs: (%d,%d) vs (%d,%d)", i, au, av, bu, bv)
		}
	}
}

func TestSetupSeedsSchema(t *testing.T) {
	d, db := testDataset(t)
	users, err := db.Query("SELECT uid FROM User")
	if err != nil {
		t.Fatal(err)
	}
	if len(users.Rows) != 300 {
		t.Fatalf("users = %d", len(users.Rows))
	}
	flights, _ := db.Query("SELECT fid FROM Flight")
	if len(flights.Rows) != d.Config().Cities*d.Config().Destinations {
		t.Fatalf("flights = %d", len(flights.Rows))
	}
	// Friendship is symmetric in the table.
	fr, _ := db.Query("SELECT uid1, uid2 FROM Friends")
	if len(fr.Rows) != 2*len(d.Graph.Edges()) {
		t.Fatalf("friends rows = %d, edges = %d", len(fr.Rows), len(d.Graph.Edges()))
	}
}

func TestPairsShareHometown(t *testing.T) {
	d, _ := NewDataset(Config{Users: 300, Cities: 4, Seed: 5})
	for i := 0; i < 50; i++ {
		u, v := d.NextPair()
		if d.Hometown[u] != d.Hometown[v] {
			t.Fatalf("pair (%d,%d) in different towns", u, v)
		}
	}
}

func TestNoSocialWorkloads(t *testing.T) {
	d, db := testDataset(t)
	runAll(t, db, d.Batch(NoSocialT, 10))
	runAll(t, db, d.Batch(NoSocialQ, 10))
	n, err := VerifyReserve(db)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("reservations = %d", n)
	}
}

func TestSocialWorkloads(t *testing.T) {
	d, db := testDataset(t)
	runAll(t, db, d.Batch(SocialT, 10))
	runAll(t, db, d.Batch(SocialQ, 10))
	if n, err := VerifyReserve(db); err != nil || n != 20 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestEntangledWorkloadPairsCommit(t *testing.T) {
	d, db := testDataset(t)
	runAll(t, db, d.Batch(EntangledT, 10))
	if n, err := VerifyReserve(db); err != nil || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	st := db.Stats()
	if st.GroupCommits != 5 {
		t.Errorf("GroupCommits = %d, want 5", st.GroupCommits)
	}
	// Coordinated pairs booked flights to the same destination: Reserve
	// rows come in pairs with equal fid.
	res, _ := db.Query("SELECT uid, fid FROM Reserve")
	fidCount := make(map[int64]int)
	for _, r := range res.Rows {
		fidCount[r[1].Int64()]++
	}
	odd := 0
	for _, c := range fidCount {
		if c%2 == 1 {
			odd++
		}
	}
	if odd > 0 {
		t.Errorf("%d flights booked an odd number of times; pairs did not coordinate", odd)
	}
}

func TestEntangledQWorkload(t *testing.T) {
	d, db := testDataset(t)
	runAll(t, db, d.Batch(EntangledQ, 6))
	if n, err := VerifyReserve(db); err != nil || n != 6 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if st := db.Stats(); st.GroupCommits != 0 {
		t.Errorf("-Q workload performed group commits: %d", st.GroupCommits)
	}
}

func TestBatchEntangledIsEvenAndPaired(t *testing.T) {
	d, _ := NewDataset(Config{Users: 300, Cities: 4, Seed: 9})
	b := d.Batch(EntangledT, 7)
	if len(b)%2 != 0 || len(b) < 7 {
		t.Fatalf("batch size = %d", len(b))
	}
}

func TestSpokeHubStructure(t *testing.T) {
	d, db := testDataset(t)
	for _, k := range []int{2, 4, 6} {
		progs, err := d.BuildStructure(SpokeHub, k, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(progs) != k {
			t.Fatalf("programs = %d, want %d", len(progs), k)
		}
		runAll(t, db, progs)
	}
	if _, err := VerifyReserve(db); err != nil {
		t.Fatal(err)
	}
}

func TestCycleStructure(t *testing.T) {
	d, db := testDataset(t)
	for _, k := range []int{2, 3, 5} {
		progs, err := d.BuildStructure(Cycle, k, 100+k)
		if err != nil {
			t.Fatal(err)
		}
		runAll(t, db, progs)
	}
	if _, err := VerifyReserve(db); err != nil {
		t.Fatal(err)
	}
}

func TestStructureErrors(t *testing.T) {
	d, _ := NewDataset(Config{Users: 300, Cities: 4, Seed: 9})
	if _, err := d.BuildStructure(Cycle, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := d.BuildStructure(Structure(99), 3, 0); err == nil {
		t.Error("unknown structure accepted")
	}
}

func TestOrphanPairBlocksThenCompletes(t *testing.T) {
	d, db := testDataset(t)
	orphan, partner := d.OrphanPair()
	h1 := db.Submit(orphan)
	db.Flush() // orphan runs alone and returns to the pool
	h2 := db.Submit(partner)
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("orphan: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("partner: %+v", o)
	}
	if o := h1.Wait(); o.Attempts < 2 {
		t.Errorf("orphan attempts = %d, want >= 2", o.Attempts)
	}
}

func TestKindStringsAndPredicates(t *testing.T) {
	cases := map[Kind]string{
		NoSocialT: "NoSocial-T", SocialT: "Social-T", EntangledT: "Entangled-T",
		NoSocialQ: "NoSocial-Q", SocialQ: "Social-Q", EntangledQ: "Entangled-Q",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
	if !EntangledT.Entangled() || NoSocialT.Entangled() {
		t.Error("Entangled() predicate wrong")
	}
	if !NoSocialQ.Autocommit() || SocialT.Autocommit() {
		t.Error("Autocommit() predicate wrong")
	}
}
