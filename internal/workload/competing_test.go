package workload

import (
	"testing"

	"repro/entangle"
)

// competingDB opens an engine sized so one competing group lands in one
// evaluation round (RunFrequency = group size), with the given solver
// budget (0 = exact with default budget, negative = greedy ablation).
func competingDB(t *testing.T, runFreq, solveBudget int) (*Dataset, *entangle.DB) {
	t.Helper()
	d, err := NewDataset(Config{Users: 300, Cities: 4, Destinations: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db, err := entangle.Open(entangle.Options{RunFrequency: runFreq, SolveBudget: solveBudget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := d.Setup(db); err != nil {
		t.Fatal(err)
	}
	return d, db
}

// runCompeting submits one competing group and waits for every program to
// commit (losers commit empty-handed), returning the booking count.
func runCompeting(t *testing.T, db *entangle.DB, progs []entangle.Program) int {
	t.Helper()
	handles := make([]*entangle.Handle, len(progs))
	for i, p := range progs {
		handles[i] = db.Submit(p)
	}
	for i, h := range handles {
		if o := h.Wait(); o.Status != entangle.StatusCommitted {
			t.Fatalf("program %d (%s): %+v", i, progs[i].Name, o)
		}
	}
	n, err := VerifyReserve(db)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestChainContestExactAnswersMore is the engine-level acceptance check
// for the tentpole: on the pair-vs-3-cycle contention the exact solver
// answers (and books) 3, the greedy ablation only 2 — and all programs
// commit under both.
func TestChainContestExactAnswersMore(t *testing.T) {
	d, db := competingDB(t, 4, 0)
	progs, err := d.BuildCompeting(ChainContest, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := runCompeting(t, db, progs); got != 3 {
		t.Fatalf("exact solver booked %d, want 3 (the 3-cycle)", got)
	}
	if st := db.Stats(); st.SolveFallbacks != 0 || st.SolveSteps == 0 {
		t.Fatalf("solver stats not plumbed: %+v", st)
	}

	dg, dbg := competingDB(t, 4, -1)
	progsG, err := dg.BuildCompeting(ChainContest, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := runCompeting(t, dbg, progsG); got != 2 {
		t.Fatalf("greedy ablation booked %d, want 2 (the pair)", got)
	}
}

// TestHubContestDeterministicWinner: both hubs can win; the tie must break
// the same way on every fresh engine (earliest grounding / submission).
func TestHubContestDeterministicWinner(t *testing.T) {
	var ref map[string]int
	for iter := 0; iter < 3; iter++ {
		d, db := competingDB(t, 3, 0)
		progs, err := d.BuildCompeting(HubContest, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := runCompeting(t, db, progs); got != 2 {
			t.Fatalf("iteration %d: booked %d, want 2 (spoke + one hub)", iter, got)
		}
		// The winner is identified by the booked (uid, fid) rows: hub i is
		// pinned to DestName(i), so a different winner books a different
		// flight. Every fresh engine must produce the identical set.
		res, err := db.Query("SELECT uid, fid FROM Reserve")
		if err != nil {
			t.Fatal(err)
		}
		booked := make(map[string]int)
		for _, row := range res.Rows {
			booked[row[0].String()+"/"+row[1].String()]++
		}
		if ref == nil {
			ref = booked
			continue
		}
		if len(booked) != len(ref) {
			t.Fatalf("iteration %d: bookings %v differ from first run %v", iter, booked, ref)
		}
		for k, n := range ref {
			if booked[k] != n {
				t.Fatalf("iteration %d: bookings %v differ from first run %v", iter, booked, ref)
			}
		}
	}
}

// TestMarketContestAwardsExactlyOne: N buyers, one award. Every program
// commits; exactly the seller and one buyer book.
func TestMarketContestAwardsExactlyOne(t *testing.T) {
	d, db := competingDB(t, 5, 0)
	progs, err := d.BuildCompeting(MarketContest, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 5 {
		t.Fatalf("market group has %d programs, want 5", len(progs))
	}
	if got := runCompeting(t, db, progs); got != 2 {
		t.Fatalf("market contest booked %d, want 2 (seller + awarded buyer)", got)
	}
}

// TestCompetingGroupsIsolated: two chain-contest groups with distinct
// relations must not interfere — each books its own maximum.
func TestCompetingGroupsIsolated(t *testing.T) {
	d, db := competingDB(t, 8, 0)
	var progs []entangle.Program
	for gid := 0; gid < 2; gid++ {
		ps, err := d.BuildCompeting(ChainContest, 0, gid)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, ps...)
	}
	if got := runCompeting(t, db, progs); got != 6 {
		t.Fatalf("two chain contests booked %d, want 6", got)
	}
}
