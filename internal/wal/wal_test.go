package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func tmpLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func usersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "uid", Type: types.KindInt},
		types.Column{Name: "hometown", Type: types.KindString},
	)
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, path := tmpLog(t)
	recs := []*Record{
		Begin(1),
		CreateTable("User", usersSchema()),
		Insert(1, "User", 0, types.Tuple{types.Int(36513), types.Str("SFO")}),
		Update(1, "User", 0, types.Tuple{types.Int(36513), types.Str("SFO")}, types.Tuple{types.Int(36513), types.Str("LAX")}),
		Delete(1, "User", 0, types.Tuple{types.Int(36513), types.Str("LAX")}),
		Entangle(7, []TxID{1, 2}),
		GroupCommit([]TxID{1, 2}, 0),
		Abort(3),
		Commit(4, 0),
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.LSN() != int64(len(recs)) {
		t.Errorf("LSN = %d", l.LSN())
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Type != w.Type || r.Tx != w.Tx || r.Table != w.Table || r.RowID != w.RowID {
			t.Errorf("record %d: got %+v want %+v", i, r, w)
		}
		if !r.Row.Equal(w.Row) || !r.Old.Equal(w.Old) {
			t.Errorf("record %d images differ", i)
		}
		if len(r.Group) != len(w.Group) {
			t.Errorf("record %d group differs: %v vs %v", i, r.Group, w.Group)
		}
	}
}

func TestReadAllMissingFile(t *testing.T) {
	recs, err := ReadAll(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: %v %v", recs, err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	l, path := tmpLog(t)
	if err := l.Append(Begin(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Commit(1, 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Truncate mid-record to simulate a torn write.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecBegin {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestCorruptFinalRecordTreatedAsTorn(t *testing.T) {
	l, path := tmpLog(t)
	l.Append(Begin(1))
	l.Append(Commit(1, 0))
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip a bit in the last record's payload
	os.WriteFile(path, data, 0o644)
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 surviving record, got %d", len(recs))
	}
}

func TestCorruptMidLogReported(t *testing.T) {
	l, path := tmpLog(t)
	l.Append(Begin(1))
	l.Append(Commit(1, 0))
	l.Close()
	data, _ := os.ReadFile(path)
	data[9] ^= 0xFF // corrupt the first record's payload
	os.WriteFile(path, data, 0o644)
	if _, err := ReadAll(path); err == nil {
		t.Fatal("mid-log corruption not reported")
	}
}

func seedLogForRecovery(t *testing.T, l *Log) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	// tx1: committed insert.
	must(l.Append(Begin(1)))
	must(l.Append(Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")})))
	must(l.Append(Commit(1, 0)))
	// tx2: aborted insert (no commit record).
	must(l.Append(Begin(2)))
	must(l.Append(Insert(2, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")})))
	must(l.Append(Abort(2)))
	// tx3: in-flight at crash (no outcome record).
	must(l.Append(Begin(3)))
	must(l.Append(Insert(3, "User", 2, types.Tuple{types.Int(3), types.Str("LAX")})))
}

func TestRecoverRedoOnlyCommitted(t *testing.T) {
	l, path := tmpLog(t)
	seedLogForRecovery(t, l)
	cat := storage.NewCatalog()
	stats, err := Recover(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cat.Get("User")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1", tbl.Len())
	}
	row, ok := tbl.Get(0)
	if !ok || row[0].Int64() != 1 {
		t.Fatalf("recovered row = %v", row)
	}
	if stats.TxCommitted != 1 || stats.TxRolledBack != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRecoverUpdateDelete(t *testing.T) {
	l, path := tmpLog(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	must(l.Append(Begin(1)))
	must(l.Append(Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")})))
	must(l.Append(Insert(1, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")})))
	must(l.Append(Commit(1, 0)))
	must(l.Append(Begin(2)))
	must(l.Append(Update(2, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")}, types.Tuple{types.Int(1), types.Str("LAX")})))
	must(l.Append(Delete(2, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")})))
	must(l.Append(Commit(2, 0)))
	cat := storage.NewCatalog()
	if _, err := Recover(path, cat); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Get("User")
	if tbl.Len() != 1 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	row, _ := tbl.Get(0)
	if row[1].Str64() != "LAX" {
		t.Fatalf("row = %v", row)
	}
}

// TestRecoverPartialGroupRolledBack checks the §4 rule: if members of an
// entanglement group commit individually and one is missing its commit at
// the crash, the entire group is rolled back.
func TestRecoverPartialGroupRolledBack(t *testing.T) {
	l, path := tmpLog(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	must(l.Append(Begin(1)))
	must(l.Append(Begin(2)))
	must(l.Append(Entangle(100, []TxID{1, 2})))
	must(l.Append(Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")})))
	must(l.Append(Insert(2, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")})))
	// Buggy individual commit of tx1 only; crash before tx2 commits.
	must(l.Append(Commit(1, 0)))
	cat := storage.NewCatalog()
	stats, err := Recover(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Get("User")
	if tbl.Len() != 0 {
		t.Fatalf("widowed group survived recovery: %d rows", tbl.Len())
	}
	if stats.GroupsRolledBack != 1 || stats.GroupsRecovered != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestRecoverTransitiveGroup checks that the group rule applies through
// transitive entanglement: 1~2 and 2~3 form one group.
func TestRecoverTransitiveGroup(t *testing.T) {
	l, path := tmpLog(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	for tx := TxID(1); tx <= 3; tx++ {
		must(l.Append(Begin(tx)))
	}
	must(l.Append(Entangle(100, []TxID{1, 2})))
	must(l.Append(Entangle(101, []TxID{2, 3})))
	must(l.Append(Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("A")})))
	must(l.Append(Insert(2, "User", 1, types.Tuple{types.Int(2), types.Str("B")})))
	must(l.Append(Insert(3, "User", 2, types.Tuple{types.Int(3), types.Str("C")})))
	must(l.Append(Commit(1, 0)))
	must(l.Append(Commit(2, 0)))
	// tx3 never commits -> all three roll back.
	cat := storage.NewCatalog()
	if _, err := Recover(path, cat); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Get("User")
	if tbl.Len() != 0 {
		t.Fatalf("transitive group not rolled back: %d rows", tbl.Len())
	}
}

func TestRecoverGroupCommitAtomic(t *testing.T) {
	l, path := tmpLog(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	must(l.Append(Begin(1)))
	must(l.Append(Begin(2)))
	must(l.Append(Entangle(100, []TxID{1, 2})))
	must(l.Append(Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")})))
	must(l.Append(Insert(2, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")})))
	must(l.Append(GroupCommit([]TxID{1, 2}, 0)))
	cat := storage.NewCatalog()
	stats, err := Recover(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Get("User")
	if tbl.Len() != 2 {
		t.Fatalf("group commit rows = %d, want 2", tbl.Len())
	}
	if stats.GroupsRecovered != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestCheckpointAndRecoverAll(t *testing.T) {
	l, path := tmpLog(t)
	cat := storage.NewCatalog()
	tbl, _ := cat.Create("User", usersSchema())
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(CreateTable("User", usersSchema())))
	must(l.Append(Begin(1)))
	id, _ := tbl.Insert(types.Tuple{types.Int(1), types.Str("SFO")})
	must(l.Append(Insert(1, "User", id, types.Tuple{types.Int(1), types.Str("SFO")})))
	must(l.Append(Commit(1, 0)))

	// Checkpoint: snapshot current state, truncate log.
	must(Checkpoint(l, cat, 7))
	if l.LSN() != 0 {
		t.Errorf("LSN after checkpoint = %d", l.LSN())
	}

	// Post-checkpoint committed work goes to the (now empty) log.
	must(l.Append(Begin(2)))
	id2, _ := tbl.Insert(types.Tuple{types.Int(2), types.Str("NYC")})
	must(l.Append(Insert(2, "User", id2, types.Tuple{types.Int(2), types.Str("NYC")})))
	must(l.Append(Commit(2, 0)))

	// Crash: recover into a fresh catalog.
	fresh := storage.NewCatalog()
	stats, err := RecoverAll(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := fresh.Get("User")
	if got.Len() != 2 {
		t.Fatalf("recovered rows = %d, want 2 (stats %+v)", got.Len(), stats)
	}
}

func TestSnapshotMissingIsNotError(t *testing.T) {
	cat := storage.NewCatalog()
	csn, ok, err := LoadSnapshot(filepath.Join(t.TempDir(), "x.log"), cat)
	if err != nil || ok || csn != 0 {
		t.Fatalf("csn=%d ok=%v err=%v", csn, ok, err)
	}
}

func TestSnapshotCRCDetected(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	cat := storage.NewCatalog()
	tbl, _ := cat.Create("User", usersSchema())
	tbl.Insert(types.Tuple{types.Int(1), types.Str("SFO")})
	if err := WriteSnapshot(logPath, cat, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(SnapshotPath(logPath))
	data[len(data)-1] ^= 0xFF
	os.WriteFile(SnapshotPath(logPath), data, 0o644)
	if _, _, err := LoadSnapshot(logPath, storage.NewCatalog()); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := tmpLog(t)
	l.Close()
	if err := l.Append(Begin(1)); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestSyncModeCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Begin(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Commit(1, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(path)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestAppendBatchSingleFlush(t *testing.T) {
	l, path := tmpLog(t)
	defer l.Close()
	batch := []*Record{
		GroupCommit([]TxID{1, 2}, 0),
		GroupCommit([]TxID{3, 4}, 0),
		Commit(5, 0),
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := l.Flushes(); got != 1 {
		t.Fatalf("Flushes = %d, want 1 for the whole batch", got)
	}
	if got := l.LSN(); got != 3 {
		t.Fatalf("LSN = %d, want 3", got)
	}
	recs, err := ReadAll(path)
	if err != nil || len(recs) != 3 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].Type != RecGroupCommit || recs[2].Type != RecCommit {
		t.Fatalf("batch order not preserved: %v %v %v", recs[0].Type, recs[1].Type, recs[2].Type)
	}
}

func TestAppendBatchTornTail(t *testing.T) {
	l, path := tmpLog(t)
	if err := l.AppendBatch([]*Record{
		GroupCommit([]TxID{1, 2}, 0),
		GroupCommit([]TxID{3, 4}, 0),
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash can tear the batched write at any byte. Every prefix must
	// parse to a whole-record prefix of the batch: 0, 1, or 2 records —
	// never an error, never a partial record.
	for cut := 0; cut <= len(data); cut++ {
		p := filepath.Join(t.TempDir(), "cut.wal")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAll(p)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) > 2 {
			t.Fatalf("cut %d: %d records from a 2-record batch", cut, len(recs))
		}
		for _, r := range recs {
			if r.Type != RecGroupCommit || len(r.Group) != 2 {
				t.Fatalf("cut %d: partial record surfaced: %+v", cut, r)
			}
		}
	}
}

func TestFailedWriteLatchesLog(t *testing.T) {
	l, _ := tmpLog(t)
	// Force a write error by closing the fd out from under the log, as a
	// disk failure would.
	l.f.Close()
	if err := l.Append(Commit(1, 0)); err == nil {
		t.Fatal("append on failed fd succeeded")
	}
	// The log must now be latched: no further appends, loudly.
	err := l.Append(Commit(2, 0))
	if err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append after failure = %v, want latched log-failed error", err)
	}
}

// TestSnapshotCarriesCSN: the checkpoint CSN written into the snapshot
// header round-trips through LoadSnapshot and RecoverAll, including over a
// truncated (empty) log — the crash shape that used to reset the clock.
func TestSnapshotCarriesCSN(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	cat := storage.NewCatalog()
	tbl, _ := cat.Create("User", usersSchema())
	tbl.Insert(types.Tuple{types.Int(1), types.Str("SFO")})
	const csn = 42
	if err := WriteSnapshot(logPath, cat, csn); err != nil {
		t.Fatal(err)
	}
	fresh := storage.NewCatalog()
	got, ok, err := LoadSnapshot(logPath, fresh)
	if err != nil || !ok || got != csn {
		t.Fatalf("LoadSnapshot csn=%d ok=%v err=%v, want csn %d", got, ok, err, uint64(csn))
	}
	ftbl, _ := fresh.Get("User")
	if ftbl.Len() != 1 {
		t.Fatalf("restored %d rows, want 1", ftbl.Len())
	}
	// Restored rows are stamped at the snapshot CSN.
	if last := ftbl.LastCSN(); last != csn {
		t.Fatalf("restored LastCSN = %d, want %d", last, csn)
	}

	// RecoverAll over a snapshot + empty log seeds MaxCSN from the header.
	fresh2 := storage.NewCatalog()
	stats, err := RecoverAll(logPath, fresh2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxCSN != csn || stats.SnapshotCSN != csn {
		t.Fatalf("RecoverAll MaxCSN=%d SnapshotCSN=%d, want both %d", stats.MaxCSN, stats.SnapshotCSN, uint64(csn))
	}
	// A log with a newer commit wins over the snapshot header.
	l, err := Open(logPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Begin(9)); err != nil {
		t.Fatal(err)
	}
	id, _ := tbl.Insert(types.Tuple{types.Int(2), types.Str("NYC")})
	if err := l.Append(Insert(9, "User", id, types.Tuple{types.Int(2), types.Str("NYC")})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Commit(9, csn+5)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	fresh3 := storage.NewCatalog()
	stats, err = RecoverAll(logPath, fresh3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxCSN != csn+5 {
		t.Fatalf("RecoverAll MaxCSN=%d, want %d", stats.MaxCSN, csn+5)
	}
}

// TestSnapshotV1Fallback: a database checkpointed by the pre-CSN version
// (v1 format: no magic, uvarint row counts) must still open — the rows
// load and the missing clock falls back to 0 / the log's MaxCSN.
func TestSnapshotV1Fallback(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	// Hand-craft a v1 snapshot: uvarint #tables | name | schema tuple |
	// uvarint #rows | (varint id, row tuple)*, CRC-prefixed.
	var buf []byte
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len("User")))
	buf = append(buf, "User"...)
	buf = types.EncodeTuple(buf, schemaToTuple(usersSchema()))
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendVarint(buf, 3)
	buf = types.EncodeTuple(buf, types.Tuple{types.Int(1), types.Str("SFO")})
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	if err := os.WriteFile(SnapshotPath(logPath), append(crc[:], buf...), 0o644); err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	csn, ok, err := LoadSnapshot(logPath, cat)
	if err != nil || !ok || csn != 0 {
		t.Fatalf("v1 snapshot: csn=%d ok=%v err=%v", csn, ok, err)
	}
	tbl, err := cat.Get("User")
	if err != nil || tbl.Len() != 1 {
		t.Fatalf("v1 snapshot restored %v rows (err=%v), want 1", tbl, err)
	}
}
