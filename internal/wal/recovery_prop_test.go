package wal

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// Property test: for random interleaved transaction histories, recovery
// reproduces exactly the effects of the committed transactions — aborted
// and in-flight transactions vanish, and entanglement groups are
// all-or-nothing.

// modelTxn is one scripted transaction in the random history.
type modelTxn struct {
	id      TxID
	writes  []modelWrite
	outcome int // 0 = commit, 1 = abort, 2 = in-flight at crash
	group   int // -1 = no group; otherwise entanglement group id
}

type modelWrite struct {
	key   int64 // logical row key
	value int64
}

func genHistory(rng *rand.Rand, nTxns int) []modelTxn {
	txns := make([]modelTxn, nTxns)
	groupID := 0
	for i := range txns {
		txns[i] = modelTxn{id: TxID(i + 1), outcome: rng.Intn(3), group: -1}
		nw := 1 + rng.Intn(3)
		for w := 0; w < nw; w++ {
			txns[i].writes = append(txns[i].writes, modelWrite{
				key:   int64(i*10 + w),
				value: rng.Int63n(1000),
			})
		}
	}
	// Pair some adjacent transactions into entanglement groups.
	for i := 0; i+1 < nTxns; i += 2 {
		if rng.Intn(2) == 0 {
			txns[i].group = groupID
			txns[i+1].group = groupID
			groupID++
		}
	}
	return txns
}

func TestRecoveryPropertyRandomHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.KindInt},
		types.Column{Name: "v", Type: types.KindInt},
	)
	for iter := 0; iter < 100; iter++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("h%d.wal", iter))
		log, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(CreateTable("T", schema)); err != nil {
			t.Fatal(err)
		}
		// Live table mirrors what the engine would do (apply + log).
		cat := storage.NewCatalog()
		tbl, _ := cat.Create("T", schema)

		txns := genHistory(rng, 4+rng.Intn(6))
		for i := range txns {
			log.Append(Begin(txns[i].id))
		}
		// Entangle records.
		groups := make(map[int][]TxID)
		for _, tx := range txns {
			if tx.group >= 0 {
				groups[tx.group] = append(groups[tx.group], tx.id)
			}
		}
		for gid, members := range groups {
			log.Append(Entangle(TxID(1000+gid), members))
		}
		// Interleave writes randomly.
		type step struct{ tx, w int }
		var steps []step
		for i, tx := range txns {
			for w := range tx.writes {
				steps = append(steps, step{i, w})
			}
		}
		rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
		rowIDs := make(map[[2]int]storage.RowID)
		for _, s := range steps {
			tx := txns[s.tx]
			w := tx.writes[s.w]
			row := types.Tuple{types.Int(w.key), types.Int(w.value)}
			id, err := tbl.Insert(row)
			if err != nil {
				t.Fatal(err)
			}
			rowIDs[[2]int{s.tx, s.w}] = id
			log.Append(Insert(tx.id, "T", id, row))
		}
		// Outcomes. A group commits atomically only if all its members
		// want to commit; otherwise nobody in the group commits.
		groupCommits := make(map[int]bool)
		for gid, members := range groups {
			ok := true
			for _, tx := range txns {
				if tx.group == gid && tx.outcome != 0 {
					ok = false
				}
			}
			if ok {
				log.Append(GroupCommit(members, 0))
				groupCommits[gid] = true
			}
		}
		for _, tx := range txns {
			if tx.group >= 0 {
				if !groupCommits[tx.group] && tx.outcome == 1 {
					log.Append(Abort(tx.id))
				}
				continue
			}
			switch tx.outcome {
			case 0:
				log.Append(Commit(tx.id, 0))
			case 1:
				log.Append(Abort(tx.id))
			}
		}
		log.Close()

		// Recover and compare against the model.
		fresh := storage.NewCatalog()
		if _, err := Recover(path, fresh); err != nil {
			t.Fatal(err)
		}
		got, _ := fresh.Get("T")
		want := make(map[int64]int64) // key -> value for committed writes
		for _, tx := range txns {
			committed := tx.outcome == 0 && tx.group < 0 || (tx.group >= 0 && groupCommits[tx.group])
			if !committed {
				continue
			}
			for _, w := range tx.writes {
				want[w.key] = w.value
			}
		}
		if got.Len() != len(want) {
			t.Fatalf("iter %d: recovered %d rows, want %d", iter, got.Len(), len(want))
		}
		for _, row := range got.All() {
			k, v := row[0].Int64(), row[1].Int64()
			if want[k] != v {
				t.Fatalf("iter %d: key %d recovered %d, want %d", iter, k, v, want[k])
			}
		}
	}
}
