package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/storage"
	"repro/internal/types"
)

// Checkpointing: a checkpoint writes a full snapshot of the catalog to a
// sidecar file and truncates the log, bounding recovery time. The snapshot
// must be taken at a quiescent point — no in-flight transactions — which
// the transaction manager enforces (txn.Manager.Quiesced): a commit racing
// the snapshot scan would tear it (table A pre-commit, table B
// post-commit) while the truncate erased the log records that could have
// repaired it.
//
// Snapshot file format (v2):
//
//	crc32(body) | "ESNP" version | uvarint CSN | uvarint #tables | tables
//
// per table:
//
//	uvarint len(name) | name | schema tuple | uint64 LE #rows | rows
//
// The commit-clock CSN in the header is load-bearing: after a checkpoint
// truncates the log, recovery sees no commit records, so without the
// header the clock would restart at 0 and reuse sequence numbers that
// ground-cache fingerprints and snapshot visibility already depend on.
// RecoverAll seeds the clock from max(snapshot CSN, log MaxCSN). The row
// count is a fixed-width placeholder patched after one encoding scan —
// the former two-scan count could disagree with the encoding scan under a
// racing writer, corrupting the file.

// snapshot header magic + format version.
var snapMagic = [5]byte{'E', 'S', 'N', 'P', 2}

// SnapshotPath returns the sidecar snapshot path for a log path.
func SnapshotPath(logPath string) string { return logPath + ".snap" }

// WriteSnapshot serializes every table in cat to the snapshot file for
// logPath, atomically (write temp + rename), recording csn — the commit
// clock the snapshot is consistent at — in the header. The caller must
// guarantee quiescence.
func WriteSnapshot(logPath string, cat *storage.Catalog, csn uint64) error {
	var buf []byte
	buf = append(buf, snapMagic[:]...)
	buf = binary.AppendUvarint(buf, csn)
	names := cat.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		tbl, err := cat.Get(name)
		if err != nil {
			return err
		}
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = types.EncodeTuple(buf, schemaToTuple(tbl.Schema()))
		// One scan: reserve a fixed-width count and patch it once the rows
		// are encoded.
		cntOff := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		var nRows uint64
		tbl.Scan(func(id storage.RowID, row types.Tuple) bool {
			buf = binary.AppendVarint(buf, int64(id))
			buf = types.EncodeTuple(buf, row)
			nRows++
			return true
		})
		binary.LittleEndian.PutUint64(buf[cntOff:cntOff+8], nRows)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	out := append(crc[:], buf...)
	tmp := SnapshotPath(logPath) + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return os.Rename(tmp, SnapshotPath(logPath))
}

// LoadSnapshot restores tables from the snapshot file into cat and returns
// the commit-clock CSN recorded at checkpoint time. Missing snapshot is
// not an error (ok=false). Restored rows are stamped committed at the
// snapshot CSN, so version order and table LastCSN survive the restart.
func LoadSnapshot(logPath string, cat *storage.Catalog) (csn uint64, ok bool, err error) {
	data, err := os.ReadFile(SnapshotPath(logPath))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < 4 {
		return 0, false, fmt.Errorf("wal: snapshot too short")
	}
	want := binary.LittleEndian.Uint32(data[:4])
	body := data[4:]
	if crc32.ChecksumIEEE(body) != want {
		return 0, false, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	v1 := len(body) < len(snapMagic) || [5]byte(body[:5]) != snapMagic
	pos := 0
	var snapCSN uint64
	if !v1 {
		pos = len(snapMagic)
		var w int
		snapCSN, w = binary.Uvarint(body[pos:])
		if w <= 0 {
			return 0, false, fmt.Errorf("wal: snapshot malformed CSN")
		}
		pos += w
	}
	// v1 files (pre-CSN format: no magic, uvarint row counts) are still
	// readable so a database checkpointed by the previous version opens;
	// they carry no clock, so recovery falls back to the log's MaxCSN.
	nTables, w := binary.Uvarint(body[pos:])
	if w <= 0 {
		return 0, false, fmt.Errorf("wal: snapshot malformed")
	}
	pos += w
	for t := uint64(0); t < nTables; t++ {
		n, w := binary.Uvarint(body[pos:])
		if w <= 0 || uint64(len(body)-pos-w) < n {
			return 0, false, fmt.Errorf("wal: snapshot malformed table name")
		}
		pos += w
		name := string(body[pos : pos+int(n)])
		pos += int(n)
		schemaTuple, used, err := types.DecodeTuple(body[pos:])
		if err != nil {
			return 0, false, err
		}
		pos += used
		schema, err := tupleToSchema(schemaTuple)
		if err != nil {
			return 0, false, err
		}
		var tbl *storage.Table
		if cat.Has(name) {
			tbl, _ = cat.Get(name)
			tbl.Truncate()
		} else {
			tbl, err = cat.Create(name, schema)
			if err != nil {
				return 0, false, err
			}
		}
		var nRows uint64
		if v1 {
			n, w := binary.Uvarint(body[pos:])
			if w <= 0 {
				return 0, false, fmt.Errorf("wal: snapshot malformed row count")
			}
			nRows, pos = n, pos+w
		} else {
			if len(body)-pos < 8 {
				return 0, false, fmt.Errorf("wal: snapshot malformed row count")
			}
			nRows = binary.LittleEndian.Uint64(body[pos : pos+8])
			pos += 8
		}
		for r := uint64(0); r < nRows; r++ {
			id, w := binary.Varint(body[pos:])
			if w <= 0 {
				return 0, false, fmt.Errorf("wal: snapshot malformed row id")
			}
			pos += w
			row, used, err := types.DecodeTuple(body[pos:])
			if err != nil {
				return 0, false, err
			}
			pos += used
			if err := tbl.InsertAtCSN(storage.RowID(id), row, snapCSN); err != nil {
				return 0, false, err
			}
		}
	}
	return snapCSN, true, nil
}

// Checkpoint writes a snapshot of cat — consistent at commit clock csn —
// and truncates the log. Snapshots carry rows but not indexes, so index
// DDL is re-appended to the fresh log for replay. Must be called at a
// quiescent point: no in-flight transactions and no commit that could land
// between the snapshot scan and the truncate (txn.Manager.Quiesced
// provides exactly this).
func Checkpoint(l *Log, cat *storage.Catalog, csn uint64) error {
	if err := WriteSnapshot(l.Path(), cat, csn); err != nil {
		return err
	}
	if err := l.Truncate(); err != nil {
		return err
	}
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			return err
		}
		for _, ix := range tbl.Indexes() {
			if err := l.Append(CreateIndex(tbl.Name(), ix.Name, ix.Columns)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RecoverAll restores from snapshot (if any) then replays the log. The
// returned MaxCSN — the value the commit clock must restart past — is the
// maximum of the snapshot's checkpoint CSN and the highest CSN replayed
// from the log, so a checkpoint directly before the crash (empty log) can
// never rewind the clock into sequence numbers already handed out.
func RecoverAll(logPath string, cat *storage.Catalog) (*RecoveryStats, error) {
	snapCSN, _, err := LoadSnapshot(logPath, cat)
	if err != nil {
		return nil, err
	}
	stats, err := Recover(logPath, cat)
	if err != nil {
		return nil, err
	}
	if snapCSN > stats.MaxCSN {
		stats.MaxCSN = snapCSN
	}
	stats.SnapshotCSN = snapCSN
	return stats, nil
}
