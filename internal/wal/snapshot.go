package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/storage"
	"repro/internal/types"
)

// Checkpointing: a checkpoint writes a full snapshot of the catalog to a
// sidecar file and truncates the log, bounding recovery time. The paper's
// prototype leans on the DBMS for this; we implement the equivalent
// fuzzy-free (quiescent) checkpoint — the entangled transaction scheduler
// checkpoints between runs, when no transaction is active.

// SnapshotPath returns the sidecar snapshot path for a log path.
func SnapshotPath(logPath string) string { return logPath + ".snap" }

// WriteSnapshot serializes every table in cat to the snapshot file for
// logPath, atomically (write temp + rename).
func WriteSnapshot(logPath string, cat *storage.Catalog) error {
	var buf []byte
	names := cat.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		tbl, err := cat.Get(name)
		if err != nil {
			return err
		}
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = types.EncodeTuple(buf, schemaToTuple(tbl.Schema()))
		rows := make(map[storage.RowID]types.Tuple)
		tbl.Scan(func(id storage.RowID, row types.Tuple) bool {
			rows[id] = row.Clone()
			return true
		})
		buf = binary.AppendUvarint(buf, uint64(len(rows)))
		tbl.Scan(func(id storage.RowID, row types.Tuple) bool {
			buf = binary.AppendVarint(buf, int64(id))
			buf = types.EncodeTuple(buf, row)
			return true
		})
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	out := append(crc[:], buf...)
	tmp := SnapshotPath(logPath) + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return os.Rename(tmp, SnapshotPath(logPath))
}

// LoadSnapshot restores tables from the snapshot file into cat. Missing
// snapshot is not an error (ok=false).
func LoadSnapshot(logPath string, cat *storage.Catalog) (bool, error) {
	data, err := os.ReadFile(SnapshotPath(logPath))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < 4 {
		return false, fmt.Errorf("wal: snapshot too short")
	}
	want := binary.LittleEndian.Uint32(data[:4])
	body := data[4:]
	if crc32.ChecksumIEEE(body) != want {
		return false, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	pos := 0
	nTables, w := binary.Uvarint(body[pos:])
	if w <= 0 {
		return false, fmt.Errorf("wal: snapshot malformed")
	}
	pos += w
	for t := uint64(0); t < nTables; t++ {
		n, w := binary.Uvarint(body[pos:])
		if w <= 0 || uint64(len(body)-pos-w) < n {
			return false, fmt.Errorf("wal: snapshot malformed table name")
		}
		pos += w
		name := string(body[pos : pos+int(n)])
		pos += int(n)
		schemaTuple, used, err := types.DecodeTuple(body[pos:])
		if err != nil {
			return false, err
		}
		pos += used
		schema, err := tupleToSchema(schemaTuple)
		if err != nil {
			return false, err
		}
		var tbl *storage.Table
		if cat.Has(name) {
			tbl, _ = cat.Get(name)
			tbl.Truncate()
		} else {
			tbl, err = cat.Create(name, schema)
			if err != nil {
				return false, err
			}
		}
		nRows, w := binary.Uvarint(body[pos:])
		if w <= 0 {
			return false, fmt.Errorf("wal: snapshot malformed row count")
		}
		pos += w
		for r := uint64(0); r < nRows; r++ {
			id, w := binary.Varint(body[pos:])
			if w <= 0 {
				return false, fmt.Errorf("wal: snapshot malformed row id")
			}
			pos += w
			row, used, err := types.DecodeTuple(body[pos:])
			if err != nil {
				return false, err
			}
			pos += used
			if err := tbl.InsertAt(storage.RowID(id), row); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// Checkpoint writes a snapshot of cat and truncates the log. Snapshots
// carry rows but not indexes, so index DDL is re-appended to the fresh log
// for replay. Must be called at a quiescent point (no in-flight
// transactions).
func Checkpoint(l *Log, cat *storage.Catalog) error {
	if err := WriteSnapshot(l.Path(), cat); err != nil {
		return err
	}
	if err := l.Truncate(); err != nil {
		return err
	}
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			return err
		}
		for _, ix := range tbl.Indexes() {
			if err := l.Append(CreateIndex(tbl.Name(), ix.Name, ix.Columns)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RecoverAll restores from snapshot (if any) then replays the log.
func RecoverAll(logPath string, cat *storage.Catalog) (*RecoveryStats, error) {
	if _, err := LoadSnapshot(logPath, cat); err != nil {
		return nil, err
	}
	return Recover(logPath, cat)
}
