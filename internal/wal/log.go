package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/types"
)

// Log is an append-only write-ahead log. All appends are serialized; Sync
// durability is optional (the experiments disable fsync, as the paper's
// measurements are not I/O-bound — the entanglement overhead is the object
// of study).
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	sync    bool
	buf     []byte
	lsn     int64 // records appended since open
	appends int64
	flushes int64 // physical writes (a batch counts once)
	failed  error // first write/sync error; latches the log (fail-stop)

	// Failpoints (nil without a fault registry; see internal/fault).
	ptAppendErr   *fault.Point // "wal.append.error": write fails, nothing lands
	ptAppendShort *fault.Point // "wal.append.short": torn write of KeepBytes
	ptSyncErr     *fault.Point // "wal.sync.error": fsync fails after the write
}

// Options configures a Log.
type Options struct {
	// Sync forces an fsync after every commit-class record.
	Sync bool
	// Faults, when set, arms the log's failpoints ("wal.append.error",
	// "wal.append.short", "wal.sync.error") from the given registry.
	Faults *fault.Registry
}

// Open opens (creating if needed) the log file at path.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{f: f, path: path, sync: opts.Sync}
	if opts.Faults != nil {
		l.ptAppendErr = opts.Faults.Point("wal.append.error")
		l.ptAppendShort = opts.Faults.Point("wal.append.short")
		l.ptSyncErr = opts.Faults.Point("wal.sync.error")
	}
	return l, nil
}

// frameInto appends r's length-prefixed, CRC-framed encoding to buf. The
// payload is encoded in place after a reserved 8-byte frame header, then
// the header is patched with the payload's length and CRC — no per-record
// scratch allocation, so a batch append reuses the Log's single buffer for
// every frame.
func frameInto(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = r.encode(buf)
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.ChecksumIEEE(payload))
	return buf
}

// flushClass reports whether a record type demands a durability flush.
// Prepare and decision records are flush class too: a participant must not
// vote yes on a prepare that could vanish in a crash, and a coordinator
// must not fan out a decision its log has not made durable.
func flushClass(t RecordType) bool {
	switch t {
	case RecCommit, RecGroupCommit, RecAbort, RecPrepare, RecDecideCommit, RecDecideAbort:
		return true
	}
	return false
}

// Append writes one record to the log. Commit, GroupCommit, and Abort
// records are flushed (and fsynced when Options.Sync is set) before
// returning, which is the WAL durability rule.
func (l *Log) Append(r *Record) error {
	return l.AppendBatch([]*Record{r})
}

// AppendBatch writes a batch of records with a single buffered write and at
// most one fsync — the group-commit flush the run scheduler uses to retire
// every commit unit of a run at once instead of paying one serialized flush
// per entanglement group. Each record keeps its own frame and CRC, so a
// crash mid-batch tears the batch only at a record boundary (plus at most
// one torn record at the tail, which recovery discards): individual commit
// units remain atomic, they are just made durable together.
//
// A write or sync error latches the log failed (fail-stop, as a DBMS
// panics on a WAL write failure): a short write can leave a torn frame
// mid-file, and appending valid records after it would make every later
// record unrecoverable (ReadAll tolerates a torn tail, not a torn middle)
// while their commits were acknowledged. Latched, every later append fails
// loudly instead, and the on-disk log stays a recoverable prefix.
func (l *Log) AppendBatch(rs []*Record) error {
	if len(rs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log failed: %w", l.failed)
	}
	l.buf = l.buf[:0]
	needSync := false
	for _, r := range rs {
		l.buf = frameInto(l.buf, r)
		needSync = needSync || flushClass(r.Type)
	}
	if err := l.ptAppendErr.Fire(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	if act, hit := l.ptAppendShort.Eval(); hit {
		// Torn write: only a prefix of the batch reaches the file, exactly
		// as a crash mid-write would leave it. The log latches failed so
		// no later append can bury the torn tail mid-file.
		keep := act.KeepBytes
		if keep > len(l.buf) {
			keep = len(l.buf)
		}
		if _, err := l.f.Write(l.buf[:keep]); err != nil {
			l.failed = err
			return fmt.Errorf("wal: append: %w", err)
		}
		err := l.ptAppendShort.ErrFor(act)
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	l.lsn += int64(len(rs))
	l.appends += int64(len(rs))
	l.flushes++
	if l.sync && needSync {
		if err := l.ptSyncErr.Fire(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: sync: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Flushes returns the number of physical write calls issued — with batched
// group commit this is what a run pays, not the record count.
func (l *Log) Flushes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes
}

// LSN returns the number of records appended since the log was opened.
func (l *Log) LSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// ReadAll parses every intact record in the file at path. A torn tail
// (truncated or CRC-corrupt final record) terminates the scan without
// error, as in standard recovery; corruption mid-log is reported.
func ReadAll(path string) ([]*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	var out []*Record
	pos := 0
	for pos < len(data) {
		if len(data)-pos < 8 {
			break // torn frame header at tail
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		want := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if len(data)-pos-8 < n {
			break // torn payload at tail
		}
		payload := data[pos+8 : pos+8+n]
		if crc32.ChecksumIEEE(payload) != want {
			if pos+8+n == len(data) {
				break // corrupt final record: treat as torn
			}
			return nil, fmt.Errorf("wal: CRC mismatch at offset %d", pos)
		}
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		pos += 8 + n
	}
	return out, nil
}

// Truncate discards the log contents (used after a checkpoint snapshot).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.lsn = 0
	return nil
}

// Convenience constructors for the record kinds.

// Begin returns a BEGIN record.
func Begin(tx TxID) *Record { return &Record{Type: RecBegin, Tx: tx} }

// Insert returns an INSERT record with the new row image.
func Insert(tx TxID, table string, rowID storage.RowID, row types.Tuple) *Record {
	return &Record{Type: RecInsert, Tx: tx, Table: table, RowID: int64(rowID), Row: row}
}

// Delete returns a DELETE record with the old row image.
func Delete(tx TxID, table string, rowID storage.RowID, old types.Tuple) *Record {
	return &Record{Type: RecDelete, Tx: tx, Table: table, RowID: int64(rowID), Row: old}
}

// Update returns an UPDATE record with both images.
func Update(tx TxID, table string, rowID storage.RowID, old, new types.Tuple) *Record {
	return &Record{Type: RecUpdate, Tx: tx, Table: table, RowID: int64(rowID), Old: old, Row: new}
}

// Commit returns a COMMIT record for a single (non-entangled) transaction,
// carrying the commit sequence number its versions were stamped with (0 for
// a read-only commit).
func Commit(tx TxID, csn uint64) *Record { return &Record{Type: RecCommit, Tx: tx, CSN: csn} }

// Abort returns an ABORT record.
func Abort(tx TxID) *Record { return &Record{Type: RecAbort, Tx: tx} }

// GroupCommit returns a record committing an entire entanglement group
// atomically at one commit sequence number.
func GroupCommit(group []TxID, csn uint64) *Record {
	return &Record{Type: RecGroupCommit, Group: group, CSN: csn}
}

// Entangle returns a record noting that the transactions in group
// participated in entanglement operation op.
func Entangle(op TxID, group []TxID) *Record {
	return &Record{Type: RecEntangle, Tx: op, Group: group}
}

// Prepare returns a two-phase-commit participant prepare record: tx is
// parked in-doubt as a member of the given distributed group.
func Prepare(tx TxID, group uint64) *Record {
	return &Record{Type: RecPrepare, Tx: tx, Group: []TxID{TxID(group)}}
}

// DecideCommit returns the coordinator's commit decision for a
// distributed group — logged before any commit fan-out.
func DecideCommit(group uint64) *Record {
	return &Record{Type: RecDecideCommit, Group: []TxID{TxID(group)}}
}

// DecideAbort returns the coordinator's abort decision for a distributed
// group.
func DecideAbort(group uint64) *Record {
	return &Record{Type: RecDecideAbort, Group: []TxID{TxID(group)}}
}

// CreateTable returns a DDL record for catalog replay.
func CreateTable(name string, schema *types.Schema) *Record {
	return &Record{Type: RecCreateTable, Table: name, Row: schemaToTuple(schema)}
}

// CreateIndex returns a DDL record replaying an index build: the index
// name followed by its column names, flattened into the row image.
func CreateIndex(table, index string, columns []string) *Record {
	row := types.Tuple{types.Str(index)}
	for _, c := range columns {
		row = append(row, types.Str(c))
	}
	return &Record{Type: RecCreateIndex, Table: table, Row: row}
}
