package wal

import (
	"fmt"

	"repro/internal/storage"
)

// RecoveryStats summarizes what recovery did.
type RecoveryStats struct {
	RecordsScanned   int
	TxCommitted      int    // transactions whose effects were redone
	TxRolledBack     int    // transactions discarded (no commit, or widowed group)
	GroupsRecovered  int    // entanglement groups redone atomically
	GroupsRolledBack int    // groups rolled back because a member lacked a commit
	MaxCSN           uint64 // highest CSN seen (snapshot header or log); seeds the clock
	SnapshotCSN      uint64 // commit clock recorded in the checkpoint snapshot (0 if none)
	MaxTx            TxID   // highest transaction id seen; seeds the tx-id counter

	// Two-phase commit residue. A transaction with a prepare record but no
	// local commit/abort is in-doubt: its effects are NOT redone, its
	// records are retained so a later coordinator decision can be applied
	// (txn.Manager.CommitRecovered / AbortRecovered). Decisions carries the
	// distributed-group verdicts this log itself recorded — on a
	// coordinator node that is the authoritative answer for in-doubt
	// participants asking.
	InDoubt        map[TxID]uint64    // in-doubt participant tx -> distributed group id
	InDoubtRecords map[TxID][]*Record // their data records, in log order
	Decisions      map[uint64]bool    // group id -> committed (coordinator log)
}

// Recover rebuilds database state from the log at path into cat. Tables
// referenced by data records must either exist in cat already or be created
// by CreateTable records earlier in the log.
//
// The redo set is computed with the paper's entanglement-aware rule:
//
//  1. A transaction with a Commit record (or covered by a GroupCommit) is a
//     tentative winner.
//  2. Entangle records induce groups (transitively). A group is durable only
//     if every member is a tentative winner; otherwise every member of the
//     group is rolled back — the §4 recovery rule that prevents widowed
//     transactions from surviving a crash.
//
// Effects of winners are replayed in log order, stamped with each winner's
// logged CSN. Because writers hold exclusive row locks to commit (under
// every isolation level, including snapshot isolation), conflicting writes
// of winners appear in the log in commit-CSN order, so redo-only replay
// rebuilds each row's version chain exactly as the live system ordered it.
func Recover(path string, cat *storage.Catalog) (*RecoveryStats, error) {
	records, err := ReadAll(path)
	if err != nil {
		return nil, err
	}
	stats := &RecoveryStats{RecordsScanned: len(records)}

	// Pass 1: analysis — committed set (with each winner's CSN, so replay
	// can rebuild version order) and entanglement groups.
	committed := make(map[TxID]bool)
	commitCSN := make(map[TxID]uint64)
	seen := make(map[TxID]bool)
	prepared := make(map[TxID]uint64) // tx -> distributed group id
	aborted := make(map[TxID]bool)
	stats.Decisions = make(map[uint64]bool)
	uf := newUnionFind()
	for _, r := range records {
		if r.Tx > stats.MaxTx {
			stats.MaxTx = r.Tx
		}
		switch r.Type {
		case RecBegin:
			seen[r.Tx] = true
		case RecCommit:
			committed[r.Tx] = true
			commitCSN[r.Tx] = r.CSN
			if r.CSN > stats.MaxCSN {
				stats.MaxCSN = r.CSN
			}
		case RecGroupCommit:
			for _, tx := range r.Group {
				committed[tx] = true
				commitCSN[tx] = r.CSN
				if tx > stats.MaxTx {
					stats.MaxTx = tx
				}
			}
			if r.CSN > stats.MaxCSN {
				stats.MaxCSN = r.CSN
			}
		case RecEntangle:
			for _, tx := range r.Group {
				seen[tx] = true
				uf.union(r.Group[0], tx)
				if tx > stats.MaxTx {
					stats.MaxTx = tx
				}
			}
		case RecInsert, RecDelete, RecUpdate:
			seen[r.Tx] = true
		case RecPrepare:
			if len(r.Group) == 1 {
				seen[r.Tx] = true
				prepared[r.Tx] = uint64(r.Group[0])
			}
		case RecAbort:
			aborted[r.Tx] = true
		case RecDecideCommit:
			if len(r.Group) == 1 {
				stats.Decisions[uint64(r.Group[0])] = true
			}
		case RecDecideAbort:
			if len(r.Group) == 1 {
				stats.Decisions[uint64(r.Group[0])] = false
			}
		}
	}

	// In-doubt set: prepared, never resolved locally. Their effects are
	// withheld from redo; the records are kept so the decision can be
	// applied once known.
	stats.InDoubt = make(map[TxID]uint64)
	stats.InDoubtRecords = make(map[TxID][]*Record)
	for tx, group := range prepared {
		if !committed[tx] && !aborted[tx] {
			stats.InDoubt[tx] = group
		}
	}
	for _, r := range records {
		if _, ok := stats.InDoubt[r.Tx]; !ok {
			continue
		}
		switch r.Type {
		case RecInsert, RecDelete, RecUpdate:
			stats.InDoubtRecords[r.Tx] = append(stats.InDoubtRecords[r.Tx], r)
		}
	}

	// Pass 2: entanglement-aware demotion. Any group containing a
	// non-committed member loses entirely.
	groupLost := make(map[TxID]bool) // keyed by group root
	for tx := range seen {
		if root, ok := uf.find(tx); ok && !committed[tx] {
			groupLost[root] = true
		}
	}
	winners := make(map[TxID]bool)
	for tx := range committed {
		if root, ok := uf.find(tx); ok && groupLost[root] {
			continue
		}
		winners[tx] = true
	}

	// Stats about groups.
	groupMembers := make(map[TxID][]TxID)
	for tx := range seen {
		if root, ok := uf.find(tx); ok {
			groupMembers[root] = append(groupMembers[root], tx)
		}
	}
	for root := range groupMembers {
		if groupLost[root] {
			stats.GroupsRolledBack++
		} else {
			stats.GroupsRecovered++
		}
	}

	// Pass 3: redo winners (and DDL) in log order.
	for _, r := range records {
		switch r.Type {
		case RecCreateTable:
			if cat.Has(r.Table) {
				continue
			}
			schema, err := tupleToSchema(r.Row)
			if err != nil {
				return nil, err
			}
			if _, err := cat.Create(r.Table, schema); err != nil {
				return nil, err
			}
		case RecCreateIndex:
			tbl, err := cat.Get(r.Table)
			if err != nil {
				return nil, fmt.Errorf("wal: recover index: %w", err)
			}
			if len(r.Row) < 2 {
				return nil, fmt.Errorf("wal: malformed index record for %s", r.Table)
			}
			cols := make([]string, 0, len(r.Row)-1)
			for _, v := range r.Row[1:] {
				cols = append(cols, v.Str64())
			}
			// Idempotent vs. snapshots that already carry data: rebuilding
			// an index that exists (same name) is an error we tolerate by
			// skipping.
			if err := tbl.CreateIndex(r.Row[0].Str64(), cols...); err != nil && !tbl.HasIndexOn(cols...) {
				return nil, fmt.Errorf("wal: recover index: %w", err)
			}
		case RecInsert:
			if !winners[r.Tx] {
				continue
			}
			tbl, err := cat.Get(r.Table)
			if err != nil {
				return nil, fmt.Errorf("wal: recover insert: %w", err)
			}
			if err := tbl.InsertAtCSN(storage.RowID(r.RowID), r.Row, commitCSN[r.Tx]); err != nil {
				return nil, fmt.Errorf("wal: recover insert: %w", err)
			}
		case RecDelete:
			if !winners[r.Tx] {
				continue
			}
			tbl, err := cat.Get(r.Table)
			if err != nil {
				return nil, fmt.Errorf("wal: recover delete: %w", err)
			}
			if _, err := tbl.DeleteCSN(storage.RowID(r.RowID), commitCSN[r.Tx]); err != nil {
				return nil, fmt.Errorf("wal: recover delete: %w", err)
			}
		case RecUpdate:
			if !winners[r.Tx] {
				continue
			}
			tbl, err := cat.Get(r.Table)
			if err != nil {
				return nil, fmt.Errorf("wal: recover update: %w", err)
			}
			if _, err := tbl.UpdateCSN(storage.RowID(r.RowID), r.Row, commitCSN[r.Tx]); err != nil {
				return nil, fmt.Errorf("wal: recover update: %w", err)
			}
		}
	}

	stats.TxCommitted = len(winners)
	for tx := range seen {
		if _, inDoubt := stats.InDoubt[tx]; !winners[tx] && !inDoubt {
			stats.TxRolledBack++
		}
	}
	return stats, nil
}

// unionFind is a tiny union-find over TxIDs for entanglement groups.
type unionFind struct {
	parent map[TxID]TxID
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[TxID]TxID)} }

// find returns the root of tx and whether tx participates in any group.
func (u *unionFind) find(tx TxID) (TxID, bool) {
	p, ok := u.parent[tx]
	if !ok {
		return tx, false
	}
	if p == tx {
		return tx, true
	}
	root, _ := u.find(p)
	u.parent[tx] = root
	return root, true
}

func (u *unionFind) union(a, b TxID) {
	ra, okA := u.find(a)
	if !okA {
		u.parent[a] = a
		ra = a
	}
	rb, okB := u.find(b)
	if !okB {
		u.parent[b] = b
		rb = b
	}
	if ra != rb {
		u.parent[rb] = ra
	}
}
