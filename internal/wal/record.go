// Package wal implements the write-ahead log and crash recovery for the
// engine, including the entanglement-aware recovery rule from §4 of the
// paper ("Persistence and Recovery"): if transactions entangle and only
// some of them manage to commit before a crash, the whole group must be
// rolled back during recovery.
//
// The log is an append-only file of length-prefixed, CRC-protected records.
// Commit of an entanglement group is a single atomic GroupCommit record, so
// the pathological partial-group commit can only arise if a buggy caller
// commits group members individually — recovery still detects and rolls
// back such groups.
package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// TxID identifies a transaction in the log.
type TxID uint64

// RecordType enumerates log record kinds.
type RecordType uint8

// Log record kinds.
const (
	RecBegin RecordType = iota + 1
	RecInsert
	RecDelete
	RecUpdate
	RecCommit
	RecAbort
	RecGroupCommit
	RecEntangle
	RecCreateTable
	RecCreateIndex
	// Two-phase distributed group commit (sharded deployments). A prepare
	// record parks a participant transaction: its writes are already in the
	// log (logged at operation time), so the prepare record alone marks it
	// in-doubt at recovery until a decision record — written by the group
	// coordinator before any commit/abort fan-out — resolves it.
	RecPrepare      // Tx = participant, Group = [group id]
	RecDecideCommit // Group = [group id]
	RecDecideAbort  // Group = [group id]
)

func (rt RecordType) String() string {
	switch rt {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecGroupCommit:
		return "GROUP-COMMIT"
	case RecEntangle:
		return "ENTANGLE"
	case RecCreateTable:
		return "CREATE-TABLE"
	case RecCreateIndex:
		return "CREATE-INDEX"
	case RecPrepare:
		return "PREPARE"
	case RecDecideCommit:
		return "DECIDE-COMMIT"
	case RecDecideAbort:
		return "DECIDE-ABORT"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(rt))
	}
}

// Record is one log entry. Field usage depends on Type:
//
//   - Begin/Abort: Tx.
//   - Commit: Tx, CSN (commit sequence number; 0 for read-only commits).
//   - Insert: Tx, Table, Row (new image), RowID.
//   - Delete: Tx, Table, Row (old image), RowID.
//   - Update: Tx, Table, RowID, Old, Row (new image).
//   - GroupCommit: Group (all transaction ids committing atomically), CSN.
//   - Entangle: Tx = entanglement op id, Group = participating transactions.
//   - CreateTable: Table, Schema columns flattened into Row as
//     name/type pairs.
//
// The CSN on commit-class records lets recovery rebuild the version order
// of the MVCC store exactly as the live system produced it, and reseed the
// commit clock past the highest recovered CSN.
type Record struct {
	Type  RecordType
	Tx    TxID
	Table string
	RowID int64
	Row   types.Tuple
	Old   types.Tuple
	Group []TxID
	CSN   uint64
}

// encode appends the record payload (without framing) to buf.
func (r *Record) encode(buf []byte) []byte {
	buf = append(buf, byte(r.Type))
	buf = binary.AppendUvarint(buf, uint64(r.Tx))
	buf = binary.AppendUvarint(buf, uint64(len(r.Table)))
	buf = append(buf, r.Table...)
	buf = binary.AppendVarint(buf, r.RowID)
	buf = types.EncodeTuple(buf, r.Row)
	buf = types.EncodeTuple(buf, r.Old)
	buf = binary.AppendUvarint(buf, uint64(len(r.Group)))
	for _, id := range r.Group {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	buf = binary.AppendUvarint(buf, r.CSN)
	return buf
}

// decodeRecord parses one record payload.
func decodeRecord(buf []byte) (*Record, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("wal: empty record")
	}
	r := &Record{Type: RecordType(buf[0])}
	pos := 1
	tx, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return nil, fmt.Errorf("wal: bad tx id")
	}
	pos += w
	r.Tx = TxID(tx)
	n, w := binary.Uvarint(buf[pos:])
	if w <= 0 || uint64(len(buf)-pos-w) < n {
		return nil, fmt.Errorf("wal: bad table name")
	}
	pos += w
	r.Table = string(buf[pos : pos+int(n)])
	pos += int(n)
	rowID, w := binary.Varint(buf[pos:])
	if w <= 0 {
		return nil, fmt.Errorf("wal: bad row id")
	}
	pos += w
	r.RowID = rowID
	row, used, err := types.DecodeTuple(buf[pos:])
	if err != nil {
		return nil, fmt.Errorf("wal: row image: %w", err)
	}
	pos += used
	if len(row) > 0 {
		r.Row = row
	}
	old, used, err := types.DecodeTuple(buf[pos:])
	if err != nil {
		return nil, fmt.Errorf("wal: old image: %w", err)
	}
	pos += used
	if len(old) > 0 {
		r.Old = old
	}
	gn, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return nil, fmt.Errorf("wal: bad group length")
	}
	pos += w
	for i := uint64(0); i < gn; i++ {
		id, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("wal: bad group member")
		}
		pos += w
		r.Group = append(r.Group, TxID(id))
	}
	// Trailing CSN field. Absent in logs written before CSN stamping was
	// introduced — treat those records as CSN 0 ("committed since
	// forever"), which is exactly how replay loads pre-MVCC state.
	if pos < len(buf) {
		csn, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("wal: bad csn")
		}
		r.CSN = csn
	}
	return r, nil
}

// schemaToTuple flattens a schema into a tuple of alternating column name
// and kind values, for CreateTable records.
func schemaToTuple(s *types.Schema) types.Tuple {
	out := make(types.Tuple, 0, 2*len(s.Columns))
	for _, c := range s.Columns {
		out = append(out, types.Str(c.Name), types.Int(int64(c.Type)))
	}
	return out
}

// tupleToSchema reverses schemaToTuple.
func tupleToSchema(t types.Tuple) (*types.Schema, error) {
	if len(t)%2 != 0 {
		return nil, fmt.Errorf("wal: malformed schema tuple")
	}
	cols := make([]types.Column, 0, len(t)/2)
	for i := 0; i < len(t); i += 2 {
		cols = append(cols, types.Column{
			Name: t[i].Str64(),
			Type: types.Kind(t[i+1].Int64()),
		})
	}
	return types.NewSchema(cols...), nil
}
