package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/types"
)

// Failpoint-driven torn-write sweeps. PR 1's TestAppendBatchTornTail cut the
// on-disk bytes after the fact; here the tear is injected through the
// "wal.append.short" failpoint at write time, which additionally pins the
// fail-stop contract (the latch) that post-hoc truncation cannot see: a torn
// append must leave the log refusing further appends, or later records would
// bury the tear mid-file and become unrecoverable.

// groupBatch is the victim batch: a two-member entanglement group made
// durable by one batched append, as the run scheduler's group commit does.
func groupBatch() []*Record {
	return []*Record{
		Begin(3),
		Begin(4),
		Entangle(101, []TxID{3, 4}),
		Insert(3, "User", 10, types.Tuple{types.Int(3), types.Str("LAX")}),
		Insert(4, "User", 11, types.Tuple{types.Int(4), types.Str("ORD")}),
		GroupCommit([]TxID{3, 4}, 9),
	}
}

// encodedSize measures a batch's on-disk size by writing it cleanly once.
func encodedSize(t *testing.T, rs []*Record) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "probe.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(rs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(data)
}

// seedCommittedGroup appends the durable prefix: one fully committed
// two-member group that every recovery below must preserve.
func seedCommittedGroup(t *testing.T, l *Log) {
	t.Helper()
	if err := l.AppendBatch([]*Record{
		CreateTable("User", usersSchema()),
		Begin(1),
		Begin(2),
		Entangle(100, []TxID{1, 2}),
		Insert(1, "User", 0, types.Tuple{types.Int(1), types.Str("SFO")}),
		Insert(2, "User", 1, types.Tuple{types.Int(2), types.Str("NYC")}),
		GroupCommit([]TxID{1, 2}, 5),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultShortWriteSweep tears the final group-commit batch at every byte
// offset via the failpoint and recovers each time: the committed prefix
// group always survives intact, the torn group is all-or-nothing, and the
// log is latched after the tear.
func TestFaultShortWriteSweep(t *testing.T) {
	batch := groupBatch()
	total := encodedSize(t, batch)
	for cut := 0; cut <= total; cut++ {
		reg := fault.NewRegistry(1)
		path := filepath.Join(t.TempDir(), "wal.log")
		l, err := Open(path, Options{Faults: reg})
		if err != nil {
			t.Fatal(err)
		}
		seedCommittedGroup(t, l)
		reg.Enable("wal.append.short", fault.Trigger{OneShot: true},
			fault.Action{Kind: fault.KindShortWrite, KeepBytes: cut})

		err = l.AppendBatch(groupBatch())
		if cut < total {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("cut %d: torn append err = %v, want injected", cut, err)
			}
		} else if err != nil && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Fail-stop latch: the log must refuse everything after a tear.
		if lerr := l.Append(Commit(99, 0)); lerr == nil || !strings.Contains(lerr.Error(), "log failed") {
			t.Fatalf("cut %d: append after tear = %v, want latched log", cut, lerr)
		}
		l.Close()

		cat := storage.NewCatalog()
		if _, err := Recover(path, cat); err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		tbl, err := cat.Get("User")
		if err != nil {
			t.Fatalf("cut %d: table lost: %v", cut, err)
		}
		// Durable prefix group: always both rows.
		for _, id := range []storage.RowID{0, 1} {
			if _, ok := tbl.Get(id); !ok {
				t.Fatalf("cut %d: committed prefix row %d lost", cut, id)
			}
		}
		// Torn group: both rows or neither, never one.
		_, a := tbl.Get(10)
		_, b := tbl.Get(11)
		if a != b {
			t.Fatalf("cut %d: torn group half-applied (row10=%v row11=%v)", cut, a, b)
		}
		if a && cut < total {
			// The batch's GroupCommit is its last record; any true tear
			// must lose it and with it the whole group.
			t.Fatalf("cut %d of %d: torn group recovered as committed", cut, total)
		}
	}
}

// TestFaultTearAtCheckpointBoundary tears the first post-checkpoint batch:
// the snapshot+log boundary from PR 5. Recovery must always keep every
// snapshotted row, never rewind the commit clock below the checkpoint CSN,
// and apply the torn post-checkpoint group all-or-nothing.
func TestFaultTearAtCheckpointBoundary(t *testing.T) {
	const ckptCSN = 7
	batch := groupBatch()
	total := encodedSize(t, batch)
	for cut := 0; cut <= total; cut++ {
		reg := fault.NewRegistry(1)
		path := filepath.Join(t.TempDir(), "wal.log")
		l, err := Open(path, Options{Faults: reg})
		if err != nil {
			t.Fatal(err)
		}
		// Build the pre-checkpoint state in a live catalog, then checkpoint:
		// snapshot + truncated log, exactly PR 5's boundary.
		cat := storage.NewCatalog()
		tbl, _ := cat.Create("User", usersSchema())
		tbl.Insert(types.Tuple{types.Int(1), types.Str("SFO")})
		tbl.Insert(types.Tuple{types.Int(2), types.Str("NYC")})
		seedCommittedGroup(t, l)
		if err := Checkpoint(l, cat, ckptCSN); err != nil {
			t.Fatal(err)
		}

		reg.Enable("wal.append.short", fault.Trigger{OneShot: true},
			fault.Action{Kind: fault.KindShortWrite, KeepBytes: cut})
		if err := l.AppendBatch(groupBatch()); cut < total && !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("cut %d: torn append err = %v", cut, err)
		}
		l.Close()

		fresh := storage.NewCatalog()
		stats, err := RecoverAll(path, fresh)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if stats.MaxCSN < ckptCSN {
			t.Fatalf("cut %d: clock rewound: MaxCSN %d < checkpoint %d", cut, stats.MaxCSN, ckptCSN)
		}
		ftbl, err := fresh.Get("User")
		if err != nil {
			t.Fatalf("cut %d: table lost: %v", cut, err)
		}
		if ftbl.Len() < 2 {
			t.Fatalf("cut %d: snapshot rows lost: %d", cut, ftbl.Len())
		}
		_, a := ftbl.Get(10)
		_, b := ftbl.Get(11)
		if a != b {
			t.Fatalf("cut %d: post-checkpoint group half-applied", cut)
		}
		if a {
			if stats.MaxCSN != 9 {
				t.Fatalf("cut %d: group applied but MaxCSN %d != 9", cut, stats.MaxCSN)
			}
		} else if ftbl.Len() != 2 {
			t.Fatalf("cut %d: rows = %d, want the 2 snapshot rows", cut, ftbl.Len())
		}
	}
}

// TestFaultAppendErrorLatches: a failed write leaves nothing on disk and
// latches the log.
func TestFaultAppendErrorLatches(t *testing.T) {
	reg := fault.NewRegistry(1)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seedCommittedGroup(t, l)
	reg.Enable("wal.append.error", fault.Trigger{OneShot: true}, fault.Action{Kind: fault.KindError})
	if err := l.Append(Commit(9, 0)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append err = %v, want injected", err)
	}
	if err := l.Append(Commit(10, 0)); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append after injected failure = %v, want latched", err)
	}
	recs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // the seed batch only; the failed commit never landed
		t.Fatalf("records on disk = %d, want 7", len(recs))
	}
}

// TestFaultSyncErrorLatches: an fsync failure after a durable-class write
// latches the log even though the bytes landed — the durability promise was
// not kept, so acknowledging later commits would be a lie.
func TestFaultSyncErrorLatches(t *testing.T) {
	reg := fault.NewRegistry(1)
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Sync: true, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg.Enable("wal.sync.error", fault.Trigger{OneShot: true}, fault.Action{Kind: fault.KindError})
	if err := l.Append(Commit(1, 1)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync-failed append err = %v, want injected", err)
	}
	if err := l.Append(Commit(2, 2)); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append after sync failure = %v, want latched", err)
	}
	// A non-durable record (Begin) would not have synced anyway, but the
	// latch is unconditional: fail-stop means fail-stop.
	if err := l.Append(Begin(3)); err == nil {
		t.Fatal("non-durable append slipped past the latch")
	}
}
