package wal

import (
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

// BenchmarkAppendBatch measures the group-commit append hot path. The
// in-place framing (payloads encoded directly into the Log's reused batch
// buffer, header patched afterwards) keeps allocs/op flat at the buffer's
// steady state instead of one payload allocation per record per append.
func BenchmarkAppendBatch(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	row := types.Tuple{types.Int(1), types.Str("LA"), types.MustDate("2011-05-03")}
	recs := make([]*Record, 0, 16)
	for i := 0; i < 16; i++ {
		recs = append(recs, Insert(TxID(i), "Flights", storage.RowID(i), row))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}
