// Package fault is a deterministic failpoint substrate. Production code
// declares named fault.Points at interesting places (frame writes, WAL
// appends, dispatch); tests arm a subset of them with a trigger (probability,
// every-Nth, one-shot) and an action (error, delay, connection reset, short
// write). Everything is seeded, so a chaos run with a fixed seed replays the
// same fault schedule.
//
// The substrate is build-tag-free and costs nearly nothing when idle: a nil
// *Point is a valid, permanently-disabled point (Fire on a nil receiver
// returns immediately), and a registered-but-disarmed point is a single
// atomic load. Code that may run without any registry at all keeps nil Point
// fields and never pays more than a nil check.
package fault

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error returned by error-action failpoints. Injected
// errors wrap it, so tests can assert errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// Kind selects what an armed failpoint does when its trigger fires.
type Kind int

const (
	// KindError makes the hook return an injected error.
	KindError Kind = iota
	// KindDelay sleeps for Action.Delay, then proceeds normally.
	KindDelay
	// KindDrop swallows a write (reports success, sends nothing) and kills
	// the connection so the peer observes a silent loss then a reset.
	KindDrop
	// KindReset hard-closes the connection (RST where the platform allows).
	KindReset
	// KindShortWrite writes only the first Action.KeepBytes bytes of the
	// buffer, then fails. On a conn this also resets; on a WAL append it
	// leaves a torn tail.
	KindShortWrite
)

// Action is what happens when an armed point's trigger fires.
type Action struct {
	Kind Kind
	// Err overrides the returned error for KindError (wrapped around
	// ErrInjected via injectedError); nil means a generic injected error.
	Err error
	// Delay is the sleep duration for KindDelay.
	Delay time.Duration
	// KeepBytes is how many leading bytes a KindShortWrite lets through.
	KeepBytes int
}

// Trigger decides when an armed point fires.
type Trigger struct {
	// Prob fires with the given probability per call (0 < Prob <= 1),
	// using the point's seeded RNG.
	Prob float64
	// EveryNth fires on every Nth call (1 = every call).
	EveryNth int
	// After skips the first After calls before the trigger is considered.
	After int
	// OneShot disarms the point after its first firing.
	OneShot bool
}

// Firing is one recorded fault injection: which point fired and the
// lifecycle trace id active at the firing site (0 when the request was
// untraced). The registry keeps a bounded ring of these so a chaos run's
// fault schedule can be correlated against the trace ring — "this query
// was slow because server.dispatch injected into it" becomes a join on
// trace id instead of guesswork.
type Firing struct {
	Point string `json:"point"`
	Trace uint64 `json:"trace,omitempty"`
}

// maxFirings bounds the registry's firing ring; older entries drop first.
const maxFirings = 1024

// Registry holds the named failpoints of one system instance. A nil
// *Registry is valid and permanently inert.
type Registry struct {
	seed  int64
	mu    sync.Mutex
	pts   map[string]*Point
	ring  []Firing
	fired atomic.Int64
}

// NewRegistry creates a registry whose armed points derive their randomness
// from seed, so identical seeds replay identical fault schedules.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, pts: make(map[string]*Point)}
}

// Point returns the named failpoint, creating it disarmed if needed.
// On a nil registry it returns nil, which is a valid inert point.
func (r *Registry) Point(name string) *Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pts[name]
	if p == nil {
		p = &Point{name: name, reg: r}
		r.pts[name] = p
	}
	return p
}

// Enable arms the named point with a trigger and action, creating it if
// needed. It returns the point for convenience.
func (r *Registry) Enable(name string, t Trigger, a Action) *Point {
	p := r.Point(name)
	p.mu.Lock()
	p.trig = t
	p.act = a
	p.calls = 0
	h := fnv.New64a()
	h.Write([]byte(name))
	p.rng = rand.New(rand.NewSource(r.seed ^ int64(h.Sum64())))
	p.mu.Unlock()
	p.armed.Store(true)
	return p
}

// Disable disarms the named point (a no-op if it was never created).
func (r *Registry) Disable(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.pts[name]
	r.mu.Unlock()
	if p != nil {
		p.armed.Store(false)
	}
}

// DisableAll disarms every point in the registry.
func (r *Registry) DisableAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.pts {
		p.armed.Store(false)
	}
}

// Fired reports how many faults this registry has injected in total.
func (r *Registry) Fired() int64 {
	if r == nil {
		return 0
	}
	return r.fired.Load()
}

// record appends one firing to the bounded ring.
func (r *Registry) record(point string, trace uint64) {
	r.fired.Add(1)
	r.mu.Lock()
	r.ring = append(r.ring, Firing{Point: point, Trace: trace})
	if over := len(r.ring) - maxFirings; over > 0 {
		r.ring = append(r.ring[:0], r.ring[over:]...)
	}
	r.mu.Unlock()
}

// Firings returns a copy of the recorded firing ring, oldest first.
// Nil-safe.
func (r *Registry) Firings() []Firing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Firing(nil), r.ring...)
}

// Point is one named failpoint. The zero of usefulness is a nil *Point:
// every method is safe and inert on a nil receiver.
type Point struct {
	name  string
	reg   *Registry
	armed atomic.Bool

	mu    sync.Mutex
	trig  Trigger
	act   Action
	calls int
	rng   *rand.Rand
}

// Name returns the point's registered name ("" for a nil point).
func (p *Point) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Eval is the core hook: it decides whether the point fires now and, for
// KindDelay, performs the sleep inline. It returns the action and true when
// the caller must apply a non-delay action, and false on the fast path.
func (p *Point) Eval() (Action, bool) { return p.EvalTagged(0) }

// EvalTagged is Eval with the caller's active lifecycle trace id attached
// to the recorded firing (0 = untraced, identical to Eval). Sites that
// know which request they are injecting into — the server's dispatch
// hook, most usefully — pass the request's trace so chaos runs can be
// joined against the trace ring.
func (p *Point) EvalTagged(trace uint64) (Action, bool) {
	if p == nil || !p.armed.Load() {
		return Action{}, false
	}
	p.mu.Lock()
	if !p.armed.Load() { // re-check: lost a race with Disable
		p.mu.Unlock()
		return Action{}, false
	}
	p.calls++
	if p.calls <= p.trig.After {
		p.mu.Unlock()
		return Action{}, false
	}
	hit := false
	if p.trig.Prob > 0 {
		hit = p.rng.Float64() < p.trig.Prob
	} else if p.trig.EveryNth > 0 {
		hit = (p.calls-p.trig.After)%p.trig.EveryNth == 0
	} else {
		hit = true // armed with no rate limit: always fire
	}
	if !hit {
		p.mu.Unlock()
		return Action{}, false
	}
	if p.trig.OneShot {
		p.armed.Store(false)
	}
	act := p.act
	p.mu.Unlock()
	p.reg.record(p.name, trace)
	if act.Kind == KindDelay {
		time.Sleep(act.Delay)
		return Action{}, false
	}
	return act, true
}

// Fire evaluates the point and returns an error for error-like actions
// (KindError, KindShortWrite, KindReset, KindDrop all map to an injected
// error here; use Eval directly where those kinds need bespoke handling,
// e.g. on a net.Conn). Delays happen inline. Nil receiver: no-op.
func (p *Point) Fire() error { return p.FireTagged(0) }

// FireTagged is Fire with the caller's active trace id attached to the
// recorded firing.
func (p *Point) FireTagged(trace uint64) error {
	act, hit := p.EvalTagged(trace)
	if !hit {
		return nil
	}
	return p.errorFor(act)
}

// ErrFor builds the injected error for an action returned by Eval, for
// hooks that apply part of the action themselves (e.g. a short write)
// before failing.
func (p *Point) ErrFor(act Action) error { return p.errorFor(act) }

func (p *Point) errorFor(act Action) error {
	if act.Err != nil {
		return &injectedError{point: p.name, cause: act.Err}
	}
	return &injectedError{point: p.name}
}

type injectedError struct {
	point string
	cause error
}

func (e *injectedError) Error() string {
	if e.cause != nil {
		return "fault " + e.point + ": " + e.cause.Error()
	}
	return "fault " + e.point + ": injected failure"
}

func (e *injectedError) Unwrap() error {
	if e.cause != nil {
		return e.cause
	}
	return ErrInjected
}

// Is lets errors.Is(err, fault.ErrInjected) hold even when a cause is set.
func (e *injectedError) Is(target error) bool { return target == ErrInjected }
