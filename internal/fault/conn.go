package fault

import (
	"net"
)

// Conn wraps a net.Conn with read- and write-side failpoints. The server
// installs it around accepted connections when a fault registry is
// configured; each Write evaluates the write point and each Read the read
// point, so faults land at frame boundaries (the wire layer issues one
// Write per flushed batch and reads are length-prefixed).
//
// Actions:
//   - KindDelay: sleep, then do the real I/O.
//   - KindError: fail the call with an injected error without touching the
//     socket (the peer sees silence; our side sees a failed call).
//   - KindReset: hard-close the socket (SetLinger(0) on TCP → RST) and fail.
//   - KindShortWrite (write side): write the first KeepBytes bytes, then
//     reset — the peer sees a truncated frame then a dead conn.
//   - KindDrop (write side): report success, send nothing, and reset —
//     the peer silently loses the frame.
type Conn struct {
	net.Conn
	readPt  *Point
	writePt *Point
}

// WrapConn installs failpoints around nc. Nil points are inert.
func WrapConn(nc net.Conn, readPt, writePt *Point) *Conn {
	return &Conn{Conn: nc, readPt: readPt, writePt: writePt}
}

func (c *Conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// Read applies the read-side failpoint, then delegates.
func (c *Conn) Read(p []byte) (int, error) {
	act, hit := c.readPt.Eval()
	if hit {
		switch act.Kind {
		case KindReset, KindDrop, KindShortWrite:
			c.reset()
			return 0, c.readPt.errorFor(act)
		default:
			return 0, c.readPt.errorFor(act)
		}
	}
	return c.Conn.Read(p)
}

// Write applies the write-side failpoint, then delegates.
func (c *Conn) Write(p []byte) (int, error) {
	act, hit := c.writePt.Eval()
	if !hit {
		return c.Conn.Write(p)
	}
	switch act.Kind {
	case KindShortWrite:
		keep := act.KeepBytes
		if keep > len(p) {
			keep = len(p)
		}
		n, _ := c.Conn.Write(p[:keep])
		c.reset()
		return n, c.writePt.errorFor(act)
	case KindDrop:
		// Pretend the frame went out, then kill the conn: the peer loses
		// the frame silently and later observes the reset.
		c.reset()
		return len(p), nil
	case KindReset:
		c.reset()
		return 0, c.writePt.errorFor(act)
	default: // KindError
		return 0, c.writePt.errorFor(act)
	}
}
