package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestNilPointIsInert(t *testing.T) {
	var p *Point
	if err := p.Fire(); err != nil {
		t.Fatalf("nil point fired: %v", err)
	}
	if _, hit := p.Eval(); hit {
		t.Fatal("nil point evaluated hot")
	}
	var r *Registry
	if r.Point("x") != nil {
		t.Fatal("nil registry returned a point")
	}
	if r.Fired() != 0 {
		t.Fatal("nil registry counted faults")
	}
	r.Disable("x") // must not panic
}

func TestDisarmedPointIsInert(t *testing.T) {
	r := NewRegistry(1)
	p := r.Point("never.armed")
	for i := 0; i < 100; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
	if r.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", r.Fired())
	}
}

func TestOneShot(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("p", Trigger{OneShot: true}, Action{Kind: KindError})
	if err := r.Point("p").Fire(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: %v, want ErrInjected", err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Point("p").Fire(); err != nil {
			t.Fatalf("one-shot fired twice: %v", err)
		}
	}
	if got := r.Fired(); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestEveryNthAndAfter(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("p", Trigger{EveryNth: 3, After: 2}, Action{Kind: KindError})
	var hits []int
	for i := 1; i <= 11; i++ {
		if r.Point("p").Fire() != nil {
			hits = append(hits, i)
		}
	}
	// calls 1,2 skipped; then every 3rd of the remainder: 5, 8, 11.
	want := []int{5, 8, 11}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
}

func TestProbabilityDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.Enable("p", Trigger{Prob: 0.5}, Action{Kind: KindError})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Point("p").Fire() != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestErrorWrapping(t *testing.T) {
	r := NewRegistry(1)
	cause := errors.New("boom")
	r.Enable("p", Trigger{}, Action{Kind: KindError, Err: cause})
	err := r.Point("p").Fire()
	if !errors.Is(err, cause) {
		t.Fatalf("err %v does not wrap cause", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v does not match ErrInjected", err)
	}
}

func TestDelayInline(t *testing.T) {
	r := NewRegistry(1)
	r.Enable("p", Trigger{OneShot: true}, Action{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := r.Point("p").Fire(); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestConnShortWrite(t *testing.T) {
	client, server := pipeConns(t)
	r := NewRegistry(1)
	r.Enable("w", Trigger{OneShot: true}, Action{Kind: KindShortWrite, KeepBytes: 3})
	fc := WrapConn(server, nil, r.Point("w"))

	n, err := fc.Write([]byte("hello world"))
	if n != 3 {
		t.Fatalf("short write wrote %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v", err)
	}
	buf := make([]byte, 16)
	got, _ := io.ReadFull(client, buf[:3])
	if got != 3 || string(buf[:3]) != "hel" {
		t.Fatalf("peer read %q (%d bytes), want %q", buf[:got], got, "hel")
	}
	// The conn was reset after the truncated prefix: next read must fail.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestConnReset(t *testing.T) {
	client, server := pipeConns(t)
	r := NewRegistry(1)
	r.Enable("w", Trigger{OneShot: true}, Action{Kind: KindReset})
	fc := WrapConn(server, nil, r.Point("w"))

	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write err = %v", err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestConnDropPretendsSuccess(t *testing.T) {
	client, server := pipeConns(t)
	r := NewRegistry(1)
	r.Enable("w", Trigger{OneShot: true}, Action{Kind: KindDrop})
	fc := WrapConn(server, nil, r.Point("w"))

	n, err := fc.Write([]byte("lost"))
	if n != 4 || err != nil {
		t.Fatalf("drop write = (%d, %v), want (4, nil)", n, err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err = client.Read(make([]byte, 16))
	if n != 0 || err == nil {
		t.Fatalf("peer read = (%d, %v), want dropped frame then reset", n, err)
	}
}

func TestConnPassThroughWhenDisarmed(t *testing.T) {
	client, server := pipeConns(t)
	r := NewRegistry(1)
	fc := WrapConn(server, r.Point("r"), r.Point("w"))
	go fc.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("pass-through read %q, %v", buf, err)
	}
}

func BenchmarkDisabledPoint(b *testing.B) {
	r := NewRegistry(1)
	p := r.Point("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Fire(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNilPoint(b *testing.B) {
	var p *Point
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Fire(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFiringsTaggedAndBounded(t *testing.T) {
	r := NewRegistry(1)
	p := r.Enable("server.dispatch", Trigger{EveryNth: 2}, Action{Kind: KindError})
	if err := p.FireTagged(11); err != nil { // call 1: miss
		t.Fatalf("call 1 fired: %v", err)
	}
	if err := p.FireTagged(22); err == nil { // call 2: hit
		t.Fatal("call 2 did not fire")
	}
	_ = p.Fire()                             // call 3: miss
	if err := p.FireTagged(44); err == nil { // call 4: hit, traced
		t.Fatal("call 4 did not fire")
	}
	got := r.Firings()
	want := []Firing{{Point: "server.dispatch", Trace: 22}, {Point: "server.dispatch", Trace: 44}}
	if len(got) != len(want) {
		t.Fatalf("firings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d = %v, want %v", i, got[i], want[i])
		}
	}
	if r.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", r.Fired())
	}

	// The ring stays bounded and keeps the newest firings.
	r2 := NewRegistry(2)
	p2 := r2.Enable("spam", Trigger{}, Action{Kind: KindError})
	for i := 0; i < maxFirings+50; i++ {
		_ = p2.FireTagged(uint64(i + 1))
	}
	ring := r2.Firings()
	if len(ring) != maxFirings {
		t.Fatalf("ring length %d, want %d", len(ring), maxFirings)
	}
	if ring[len(ring)-1].Trace != uint64(maxFirings+50) {
		t.Fatalf("newest firing trace %d, want %d", ring[len(ring)-1].Trace, maxFirings+50)
	}
	if ring[0].Trace != 51 {
		t.Fatalf("oldest retained trace %d, want 51", ring[0].Trace)
	}

	var nilReg *Registry
	if nilReg.Firings() != nil {
		t.Fatal("nil registry returned firings")
	}
}
