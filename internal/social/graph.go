// Package social generates the synthetic social network that stands in for
// the Slashdot dataset (soc-Slashdot0902) used by the paper's workload
// generator — see DESIGN.md §3 for the substitution rationale. The paper
// only uses the friendship relation to pick coordination partners, so a
// seeded preferential-attachment graph with the same heavy-tailed degree
// shape preserves the workload's behaviour.
package social

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected friendship graph over users 0..N-1.
type Graph struct {
	n   int
	adj [][]int
}

// Generate builds a preferential-attachment (Barabási–Albert style) graph:
// each new node attaches to m existing nodes chosen proportionally to
// degree. Deterministic for a given seed.
func Generate(n, m int, seed int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("social: need at least 2 users, got %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("social: attachment degree must be >= 1, got %d", m)
	}
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{n: n, adj: make([][]int, n)}
	// repeated holds node ids once per incident edge endpoint — sampling
	// uniformly from it is degree-proportional sampling.
	var repeated []int

	// Seed clique over the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.addEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			v := repeated[rng.Intn(len(repeated))]
			if v != u && !chosen[v] {
				chosen[v] = true
			}
		}
		picks := make([]int, 0, len(chosen))
		for v := range chosen {
			picks = append(picks, v)
		}
		sort.Ints(picks) // map order must not leak into the edge sequence
		for _, v := range picks {
			g.addEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for u := range g.adj {
		sort.Ints(g.adj[u])
	}
	return g, nil
}

func (g *Graph) addEdge(u, v int) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// N returns the number of users.
func (g *Graph) N() int { return g.n }

// Friends returns u's friend list (sorted, no duplicates by construction).
func (g *Graph) Friends(u int) []int { return g.adj[u] }

// Degree returns u's number of friends.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns every undirected edge once, as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// DegreeHistogram maps degree to count, for verifying the heavy tail.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := range g.adj {
		h[len(g.adj[u])]++
	}
	return h
}

// MaxDegree returns the largest degree (the hubs a heavy-tailed graph must
// have).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if len(g.adj[u]) > max {
			max = len(g.adj[u])
		}
	}
	return max
}
