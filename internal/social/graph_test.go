package social

import (
	"testing"
	"testing/quick"
)

func TestGenerateBasicInvariants(t *testing.T) {
	g, err := Generate(500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Symmetry and no self-loops.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Friends(u) {
			if v == u {
				t.Fatalf("self loop at %d", u)
			}
			found := false
			for _, w := range g.Friends(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge %d-%d", u, v)
			}
		}
	}
	// Every non-seed node has at least m friends.
	for u := 4; u < g.N(); u++ {
		if g.Degree(u) < 3 {
			t.Fatalf("node %d has degree %d < 3", u, g.Degree(u))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(200, 2, 42)
	b, _ := Generate(200, 2, 42)
	for u := 0; u < 200; u++ {
		fa, fb := a.Friends(u), b.Friends(u)
		if len(fa) != len(fb) {
			t.Fatalf("node %d: %v vs %v", u, fa, fb)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("node %d differs", u)
			}
		}
	}
	c, _ := Generate(200, 2, 43)
	same := true
	for u := 0; u < 200 && same; u++ {
		if len(a.Friends(u)) != len(c.Friends(u)) {
			same = false
		}
	}
	if same {
		// Extremely unlikely to match on every degree.
		t.Log("warning: different seeds produced identical degree sequences")
	}
}

func TestHeavyTail(t *testing.T) {
	g, _ := Generate(2000, 2, 7)
	// Preferential attachment must produce hubs: max degree far above the
	// attachment parameter.
	if g.MaxDegree() < 20 {
		t.Errorf("max degree = %d; expected a heavy tail", g.MaxDegree())
	}
	// And most nodes stay near minimum degree.
	h := g.DegreeHistogram()
	low := 0
	for d, c := range h {
		if d <= 4 {
			low += c
		}
	}
	if low < 1000 {
		t.Errorf("only %d/2000 nodes with degree <= 4; not heavy-tailed", low)
	}
}

func TestEdgesEachOnce(t *testing.T) {
	g, _ := Generate(100, 2, 3)
	seen := make(map[[2]int]bool)
	total := 0
	for _, e := range g.Edges() {
		if e[0] >= e[1] {
			t.Fatalf("unordered edge %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		total++
	}
	// Sum of degrees = 2 * edges.
	deg := 0
	for u := 0; u < g.N(); u++ {
		deg += g.Degree(u)
	}
	if deg != 2*total {
		t.Errorf("degree sum %d != 2*edges %d", deg, 2*total)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Generate(10, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	// m >= n clamps rather than failing.
	g, err := Generate(3, 5, 0)
	if err != nil || g.N() != 3 {
		t.Errorf("clamp failed: %v", err)
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 10 + int(nRaw)%200
		m := 1 + int(mRaw)%4
		g, err := Generate(n, m, seed)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			prev := -1
			for _, v := range g.Friends(u) {
				if v == u || v == prev {
					return false // self loop or duplicate
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
