package server

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/obs"
)

// The PR 9 acceptance scenario: a traced pair coordination across two TCP
// clients produces ONE trace — the two minted ids merge when the queries
// entangle — and its span tree shows both members' submit → ground →
// commit lifecycles. The trace is asserted through /traces/recent, the
// same endpoint -debug-addr serves.
func TestTracedPairMergesIntoOneTrace(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerOptions{})
	reg := obs.NewRegistry()
	addr, db := startServer(t, entangle.Options{RunFrequency: 2, Metrics: reg, Tracer: tracer})

	mickey, err := client.DialOptions(addr, client.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mickey.Close()
	minnie, err := client.DialOptions(addr, client.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer minnie.Close()
	setupFlights(t, mickey)

	h1, err := mickey.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := minnie.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	mint1, mint2 := h1.TraceID(), h2.TraceID()
	if mint1 == 0 || mint2 == 0 || mint1 == mint2 {
		t.Fatalf("minted trace ids: %d / %d", mint1, mint2)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}

	// After the outcomes, both handles report the same canonical id — the
	// traces merged when the pair entangled.
	canon := h1.TraceID()
	if canon == 0 || canon != h2.TraceID() {
		t.Fatalf("canonical ids diverge: %d vs %d", canon, h2.TraceID())
	}
	if canon != mint1 && canon != mint2 {
		t.Fatalf("canonical id %d is neither minted id (%d, %d)", canon, mint1, mint2)
	}

	// Assert through the debug HTTP surface, exactly as `youtopia-serve
	// -debug-addr` exposes it.
	hs := httptest.NewServer(obs.DebugMux(db.Metrics(), db.Tracer(), nil))
	defer hs.Close()
	res, err := hs.Client().Get(hs.URL + "/traces/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var recent []obs.Trace
	if err := json.NewDecoder(res.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	var found *obs.Trace
	matches := 0
	for i := range recent {
		if recent[i].ID == canon {
			matches++
			found = &recent[i]
		}
	}
	if matches != 1 {
		t.Fatalf("/traces/recent holds %d entries for trace %d, want exactly 1", matches, canon)
	}
	if len(found.Aliases) != 1 {
		t.Fatalf("merged trace aliases: %v", found.Aliases)
	}

	// Both members' lifecycles, keyed by their original minted ids, must
	// appear in the one span tree: submit, at least one grounding round,
	// and the group commit.
	for _, member := range []uint64{mint1, mint2} {
		names := map[string]bool{}
		for _, s := range found.Spans {
			if s.Actor == member {
				names[s.Name] = true
			}
		}
		for _, want := range []string{"submit", "ground", "commit"} {
			if !names[want] {
				t.Errorf("member %d missing %q span (has %v)\nfull trace:\n%s",
					member, want, names, obs.FormatTrace(found))
			}
		}
	}

	// The same tree is reachable over the wire (\trace <id>), through
	// either original id.
	wireTrace, err := minnie.Trace(mint2)
	if err != nil {
		t.Fatal(err)
	}
	if wireTrace.ID != canon || len(wireTrace.Spans) != len(found.Spans) {
		t.Fatalf("wire trace: id=%d spans=%d, debug mux: id=%d spans=%d",
			wireTrace.ID, len(wireTrace.Spans), canon, len(found.Spans))
	}

	// And the metrics op reports the coordination in the same registry the
	// debug mux snapshots.
	snap, err := mickey.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["group_commits"] < 1 || snap.Counters["entangle_ops"] < 1 {
		t.Fatalf("metrics counters: %v", snap.Counters)
	}
	if snap.Histograms["answer_latency"].Count < 2 {
		t.Fatalf("answer_latency count %d, want >= 2", snap.Histograms["answer_latency"].Count)
	}
}
