package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/shard"
)

// shardedPair is a two-shard deployment over loopback TCP: two servers,
// two engines with disjoint storage, shard 0 hosting the matchmaker. The
// placement map pins the test users explicitly so every test controls
// which shard is home.
type shardedPair struct {
	addrs [2]string
	dbs   [2]*entangle.DB
	srvs  [2]*Server
	place *shard.Map
}

func startShardedPair(t *testing.T, groupTimeout time.Duration,
	dbOpts func(i int) entangle.Options, srvOpts func(i int) Options) *shardedPair {
	t.Helper()
	sp := &shardedPair{}
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		sp.addrs[i] = ln.Addr().String()
	}
	sp.place = shard.New(sp.addrs[:])
	sp.place.Overrides = map[string]int{
		"Mickey": 0, "Goofy": 0, "Daisy": 0,
		"Minnie": 1, "Donald": 1, "Pluto": 1,
	}
	for i := range sp.srvs {
		opts := entangle.Options{RetryInterval: 10 * time.Millisecond}
		if dbOpts != nil {
			opts = dbOpts(i)
		}
		db, err := entangle.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		var so Options
		if srvOpts != nil {
			so = srvOpts(i)
		}
		srv := NewWithOptions(db, so)
		if err := srv.EnableSharding(sp.place, i, ShardOptions{
			GroupTimeout:  groupTimeout,
			SweepInterval: 20 * time.Millisecond,
			StatusGrace:   200 * time.Millisecond,
			StatusTick:    50 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		served := make(chan error, 1)
		go func(ln net.Listener) { served <- srv.Serve(ln) }(lns[i])
		sp.dbs[i], sp.srvs[i] = db, srv
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			if err := <-served; err != nil && !errors.Is(err, ErrServerClosed) {
				t.Errorf("serve: %v", err)
			}
			db.Close()
			srv.CloseSharding()
		})
	}
	return sp
}

// seed creates the flight schema and seed rows on every shard — each
// engine owns its own catalog copy of the shared tables.
func (sp *shardedPair) seed(t *testing.T, p *client.Pool) {
	t.Helper()
	if err := p.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.GetShard(i).Exec(`
			INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
			INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		`); err != nil {
			t.Fatal(err)
		}
	}
}

func bookingsOn(t *testing.T, c *client.Client, name string) []string {
	t.Helper()
	res, err := c.Query(fmt.Sprintf("SELECT fno FROM Bookings WHERE name='%s'", name))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].String())
	}
	return out
}

// TestShardedPairCommitsAcrossServers is the PR milestone: a giftmatch-
// style flight pair whose members live on different serve processes is
// answered atomically — both commit the same flight, each on its own
// shard, through the two-phase cross-shard group commit.
func TestShardedPairCommitsAcrossServers(t *testing.T) {
	sp := startShardedPair(t, 3*time.Second, nil, nil)
	pool, err := client.DialShardedPool(sp.addrs[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if got := pool.Placement().Shards; got != 2 {
		t.Fatalf("placement shards = %d, want 2", got)
	}
	sp.seed(t, pool)

	h1, err := pool.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pool.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}

	// Each member's booking lives on its own shard, and both booked the
	// same flight — the unified answer crossed processes.
	bm := bookingsOn(t, pool.GetShard(0), "Mickey")
	bn := bookingsOn(t, pool.GetShard(1), "Minnie")
	if len(bm) != 1 || len(bn) != 1 {
		t.Fatalf("bookings = %v / %v", bm, bn)
	}
	if bm[0] != bn[0] {
		t.Fatalf("pair booked different flights: %v vs %v", bm, bn)
	}
	// And the off-home shards hold nothing: the data is partitioned.
	if n := len(bookingsOn(t, pool.GetShard(1), "Mickey")); n != 0 {
		t.Fatalf("Mickey's booking leaked to shard 1 (%d rows)", n)
	}
	for i, db := range sp.dbs {
		if g := db.Engine().Stats().GroupCommits; g != 1 {
			t.Errorf("shard %d GroupCommits = %d, want 1", i, g)
		}
	}
}

// TestSubmitForwardsToHomeShard: both clients talk to the shard-0 server
// only; Minnie's submission must be forwarded to its home shard and still
// coordinate with Mickey's. Any node serves any client.
func TestSubmitForwardsToHomeShard(t *testing.T) {
	sp := startShardedPair(t, 3*time.Second, nil, nil)
	pool, err := client.DialShardedPool(sp.addrs[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sp.seed(t, pool)

	front := dialTest(t, sp.addrs[0]) // wrong server for Minnie
	h1, err := front.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := front.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie (forwarded): %+v", o)
	}
	// The forwarded program ran on its home shard.
	if n := len(bookingsOn(t, pool.GetShard(1), "Minnie")); n != 1 {
		t.Fatalf("Minnie's booking on home shard: %d rows, want 1", n)
	}
	if n := len(bookingsOn(t, pool.GetShard(0), "Minnie")); n != 0 {
		t.Fatalf("Minnie's booking on the forwarding shard: %d rows, want 0", n)
	}
}

// TestShardedVoteLossAllOrNothing injects a dropped yes-vote on shard 1:
// the first cross-shard group must abort as a unit (nobody commits on an
// incomplete tally), then both members retry into a clean commit.
func TestShardedVoteLossAllOrNothing(t *testing.T) {
	regs := [2]*fault.Registry{fault.NewRegistry(1), fault.NewRegistry(2)}
	regs[1].Enable("dist.vote", fault.Trigger{EveryNth: 1, OneShot: true}, fault.Action{Kind: fault.KindDrop})
	sp := startShardedPair(t, 300*time.Millisecond, nil,
		func(i int) Options { return Options{Faults: regs[i]} })
	pool, err := client.DialShardedPool(sp.addrs[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sp.seed(t, pool)

	h1, err := pool.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pool.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	if fired := regs[1].Fired(); fired != 1 {
		t.Fatalf("vote failpoint fired %d times, want 1", fired)
	}
	bm := bookingsOn(t, pool.GetShard(0), "Mickey")
	bn := bookingsOn(t, pool.GetShard(1), "Minnie")
	if len(bm) != 1 || len(bn) != 1 {
		t.Fatalf("all-or-nothing violated: bookings %v / %v", bm, bn)
	}
	if bm[0] != bn[0] {
		t.Fatalf("pair split across flights: %v vs %v", bm, bn)
	}
	// The aborted first group rolled someone back as an averted widow.
	if w := sp.dbs[0].Engine().Stats().WidowsAverted + sp.dbs[1].Engine().Stats().WidowsAverted; w == 0 {
		t.Error("WidowsAverted = 0, want > 0 after the aborted group")
	}
}

// TestShardedPrepareLossAborts injects a failed prepare delivery on the
// coordinator: the group aborts immediately (a lost prepare is a no
// vote), and the pair still converges on a later clean group.
func TestShardedPrepareLossAborts(t *testing.T) {
	regs := [2]*fault.Registry{fault.NewRegistry(3), fault.NewRegistry(4)}
	regs[0].Enable("dist.prepare", fault.Trigger{EveryNth: 1, OneShot: true}, fault.Action{Kind: fault.KindError})
	sp := startShardedPair(t, 2*time.Second, nil,
		func(i int) Options { return Options{Faults: regs[i]} })
	pool, err := client.DialShardedPool(sp.addrs[0], client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sp.seed(t, pool)

	h1, err := pool.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pool.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	bm := bookingsOn(t, pool.GetShard(0), "Mickey")
	bn := bookingsOn(t, pool.GetShard(1), "Minnie")
	if len(bm) != 1 || len(bn) != 1 || bm[0] != bn[0] {
		t.Fatalf("bookings after prepare loss: %v / %v", bm, bn)
	}
}

// TestTwoProcessTraceMergesIntoOneTrace is the sharded extension of the
// PR 9 trace scenario: the pair's members run on DIFFERENT servers, each
// stamping its spans with its own shard id, and the coordinator
// assembles the one merged trace — remote spans arrive with the votes.
func TestTwoProcessTraceMergesIntoOneTrace(t *testing.T) {
	tracers := [2]*obs.Tracer{
		obs.NewTracer(obs.TracerOptions{Shard: 0}),
		obs.NewTracer(obs.TracerOptions{Shard: 1}),
	}
	sp := startShardedPair(t, 3*time.Second, func(i int) entangle.Options {
		return entangle.Options{
			RetryInterval: 10 * time.Millisecond,
			Tracer:        tracers[i],
			Metrics:       obs.NewRegistry(),
		}
	}, nil)
	pool, err := client.DialShardedPool(sp.addrs[0], client.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sp.seed(t, pool)

	h1, err := pool.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := pool.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	mint1, mint2 := h1.TraceID(), h2.TraceID()
	if mint1 == 0 || mint2 == 0 || mint1 == mint2 {
		t.Fatalf("minted trace ids: %d / %d", mint1, mint2)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}

	// The coordinator's tracer resolves BOTH minted ids to one merged
	// trace: the remote member's spans crossed the wire with its vote.
	tr1, ok1 := tracers[0].Get(mint1)
	tr2, ok2 := tracers[0].Get(mint2)
	if !ok1 || !ok2 {
		t.Fatalf("coordinator tracer missing traces: %v / %v", ok1, ok2)
	}
	if tr1.ID != tr2.ID {
		t.Fatalf("traces did not merge on the coordinator: %d vs %d", tr1.ID, tr2.ID)
	}
	matches := 0
	for _, r := range tracers[0].Recent() {
		if r.ID == tr1.ID {
			matches++
		}
	}
	if matches != 1 {
		t.Fatalf("coordinator recent ring holds %d entries for the group, want 1", matches)
	}

	// Both lifecycles appear in the one span tree, each stamped with the
	// shard that recorded it: the local member's spans carry shard 0, the
	// absorbed remote member's carry shard 1.
	shards := map[uint64]map[int]bool{mint1: {}, mint2: {}}
	names := map[uint64]map[string]bool{mint1: {}, mint2: {}}
	for _, s := range tr1.Spans {
		if m := shards[s.Actor]; m != nil {
			m[s.Shard] = true
			names[s.Actor][s.Name] = true
		}
	}
	if !shards[mint1][0] {
		t.Errorf("local member has no shard-0 spans: %v", shards[mint1])
	}
	if !shards[mint2][1] {
		t.Errorf("remote member has no shard-1 spans: %v", shards[mint2])
	}
	for _, member := range []uint64{mint1, mint2} {
		for _, want := range []string{"submit", "ground", "commit"} {
			if !names[member][want] {
				t.Errorf("member %d missing %q span (has %v)", member, want, names[member])
			}
		}
	}
}
