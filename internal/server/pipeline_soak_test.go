package server

// Pipelining soak: many goroutines share one connection pool, each
// keeping a window of async requests in flight, while coordinating pairs
// run through the same pool. Every response carries a value derived from
// its request, so a single misrouted response — the failure mode
// write-batching and ID correlation must exclude — shows up as a wrong
// value, not just an error. The suite runs under -race in CI, so this
// doubles as the batching/pipelining race soak.

import (
	"fmt"
	"sync"
	"testing"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/types"
)

func TestRemoteSoakPipelining(t *testing.T) {
	workers, rounds, depth := 8, 4, 24
	if testing.Short() {
		workers, rounds, depth = 4, 2, 8
	}
	addr, _ := startServer(t, entangle.Options{RunFrequency: 2})
	pool, err := client.DialPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
		CREATE TABLE Notes (id INT, who VARCHAR);
		CREATE INDEX notes_id ON Notes (id);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
	`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := pool.Get() // handles need connection affinity
			partner := w ^ 1
			for r := 0; r < rounds; r++ {
				me := fmt.Sprintf("w%d_r%d", w, r)
				them := fmt.Sprintf("w%d_r%d", partner, r)
				h, err := c.SubmitScript(soakFlightPair(me, them))
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d submit: %w", w, r, err)
					return
				}
				// Pipeline a window of inserts, then a window of reads of
				// those same keys. Each key's value names the worker and
				// round that wrote it, so a response delivered to the wrong
				// caller cannot go unnoticed.
				inserts := make([]*client.Call, depth)
				for j := range inserts {
					key := (w*rounds+r)*depth + j
					inserts[j] = c.ExecAsync(fmt.Sprintf(
						"INSERT INTO Notes VALUES (%d, '%s_%d')", key, me, j))
				}
				for j, call := range inserts {
					if err := call.Err(); err != nil {
						errs <- fmt.Errorf("worker %d round %d insert %d: %w", w, r, j, err)
						return
					}
				}
				reads := make([]*client.Call, depth)
				for j := range reads {
					key := (w*rounds+r)*depth + j
					reads[j] = c.QueryAsync(fmt.Sprintf(
						"SELECT who FROM Notes WHERE id=%d", key))
				}
				for j, call := range reads {
					res, err := call.Result()
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d read %d: %w", w, r, j, err)
						return
					}
					want := fmt.Sprintf("%s_%d", me, j)
					if len(res.Rows) != 1 || !res.Rows[0][0].Equal(types.Str(want)) {
						errs <- fmt.Errorf("worker %d round %d read %d: got %v, want [[%s]] — response misrouted?",
							w, r, j, res.Rows, want)
						return
					}
				}
				// Poll until the partner's half lands, then confirm the pair
				// committed; polling interleaves with the pipelined windows
				// above on the same connections.
				o := h.Wait()
				if o.Status != entangle.StatusCommitted {
					errs <- fmt.Errorf("worker %d round %d pair: %v (%v)", w, r, o.Status, o.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Both sides of every pair booked the same flight.
	for w := 0; w < workers; w += 2 {
		for r := 0; r < rounds; r++ {
			a := fmt.Sprintf("w%d_r%d", w, r)
			b := fmt.Sprintf("w%d_r%d", w+1, r)
			ra, err := pool.Query(fmt.Sprintf("SELECT fno FROM Bookings WHERE name='%s'", a))
			if err != nil {
				t.Fatal(err)
			}
			rb, err := pool.Query(fmt.Sprintf("SELECT fno FROM Bookings WHERE name='%s'", b))
			if err != nil {
				t.Fatal(err)
			}
			if len(ra.Rows) != 1 || len(rb.Rows) != 1 {
				t.Fatalf("pair %d/%d round %d: rows %v / %v", w, w+1, r, ra.Rows, rb.Rows)
			}
			if !ra.Rows[0][0].Equal(rb.Rows[0][0]) {
				t.Errorf("pair %d/%d round %d: flights differ: %v vs %v", w, w+1, r, ra.Rows[0][0], rb.Rows[0][0])
			}
		}
	}
}
