// Package server is the network service layer: it exposes an
// *entangle.DB over TCP using the length-prefixed frame protocol of
// internal/wire, so separate OS processes — separate users — can pose
// coordinating entangled queries against one engine. This is the paper's
// Figure 1 deployment shape: clients connect to a service, and the service
// unifies their answers.
//
// One TCP connection is one client. Requests on a connection execute
// concurrently (a parked OpWait does not block an OpExec that follows it);
// responses are correlated by request ID. Connection-scoped state —
// submitted-program handles and interactive sessions — dies with the
// connection: open interactive transactions roll back, while submitted
// programs keep running to their own outcome (a disconnect must not undo
// a coordination that partners already depend on).
//
// Every connection starts in the JSON codec (the v1 protocol); a client
// may negotiate the binary codec with an OpHello first request. Response
// frames are write-batched per connection: handlers enqueue encoded
// frames into one output buffer and a single flusher goroutine writes
// whatever has accumulated in one syscall, so a pipelining client costs
// one write per batch instead of one per response.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/entangle"
	"repro/internal/wire"
)

// Server serves one DB over any number of listeners.
type Server struct {
	db *entangle.DB

	// JSONOnly disables binary-codec negotiation: hellos are answered
	// with the JSON codec. Set before Serve; it exists for debugging
	// (every frame stays netcat-readable) and for exercising the
	// client's fallback path.
	JSONOnly bool

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*conn]struct{}
	closed bool

	connWg sync.WaitGroup // connection read loops
	reqWg  sync.WaitGroup // in-flight requests (drained by Shutdown)
}

// New wraps a DB. The caller keeps ownership of the DB: Shutdown quiesces
// the network side only, so the usual db.Drain + db.Close still follow.
func New(db *entangle.DB) *Server {
	return &Server{
		db:    db,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*conn]struct{}),
	}
}

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr (e.g. "127.0.0.1:7171") and serves until
// Shutdown. Like http.ListenAndServe it blocks; run it on its own
// goroutine.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a fatal accept
// error). The listener is closed when Serve returns.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		c := &conn{
			srv:         s,
			nc:          nc,
			br:          bufio.NewReaderSize(nc, readBufSize),
			codecR:      wire.JSON,
			codecW:      wire.JSON,
			handles:     make(map[uint64]*entangle.Handle),
			sessions:    make(map[uint64]*session),
			slots:       make(chan struct{}, maxInflightPerConn),
			flusherDone: make(chan struct{}),
		}
		c.outCond = sync.NewCond(&c.outMu)
		go c.flusher()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the network side: listeners close (no new connections),
// connections stop reading new requests, in-flight requests finish (bounded
// by ctx), then every connection is torn down — open interactive
// transactions roll back. Returns ctx.Err() when in-flight work was cut
// off. The DB itself is untouched; follow with db.Drain and db.Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	// Stop intake without killing the write side: expire reads so each
	// connection's read loop exits, leaving in-flight handlers free to
	// respond.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.reqWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Teardown runs per-connection concurrently: close drains each
	// connection's buffered responses (bounded by closeFlushTimeout), and
	// one stuck peer must not serialize behind another.
	var closeWg sync.WaitGroup
	for _, c := range conns {
		closeWg.Add(1)
		go func(c *conn) {
			defer closeWg.Done()
			c.close()
		}(c)
	}
	closeWg.Wait()
	s.connWg.Wait()
	return err
}

// Addrs returns the listen addresses (useful with ":0" test listeners).
func (s *Server) Addrs() []net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []net.Addr
	for ln := range s.lns {
		out = append(out, ln.Addr())
	}
	return out
}

// writeTimeout bounds one batched response write. A client that stops
// reading its socket eventually fills the TCP send buffer; without a
// deadline the blocked flusher would buffer responses forever.
const writeTimeout = 30 * time.Second

// closeFlushTimeout bounds the final drain of buffered responses during
// connection teardown, so Shutdown is not held hostage by a peer that
// stopped reading.
const closeFlushTimeout = 2 * time.Second

// maxInflightPerConn caps concurrently executing requests per connection.
// The read loop blocks once the cap is reached — natural backpressure on a
// pipelining client instead of one goroutine per frame without bound.
const maxInflightPerConn = 64

// readBufSize is the per-connection buffered-reader size: big enough that
// a pipelined batch of requests costs one read syscall, small enough to be
// irrelevant against MaxFrameSize.
const readBufSize = 64 << 10

// session wraps an interactive session with its serializing lock:
// InteractiveSession is statement-at-a-time and not safe for concurrent
// use, but nothing stops a client from pipelining two session_exec frames.
type session struct {
	mu sync.Mutex
	is *entangle.InteractiveSession
}

// conn is one client connection.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// codecR is the request decoder. It is owned by the read loop (only
	// the loop reads frames, and only the loop — via a hello — replaces
	// it), so it needs no lock.
	codecR wire.Codec

	inflight sync.WaitGroup // requests dispatched on this connection
	slots    chan struct{}  // per-connection request cap (maxInflightPerConn)

	// Write batching: handlers encode their response into outBuf under
	// outMu; the flusher goroutine swaps the buffer out and writes it in
	// one syscall. codecW lives under the same lock so a codec switch
	// cannot interleave with a frame encode — the hello response is
	// encoded in the old codec and everything after it in the new one, in
	// buffer order.
	outMu       sync.Mutex
	outCond     *sync.Cond
	codecW      wire.Codec
	outBuf      []byte
	outSpare    []byte // recycled flushed buffer
	outClosed   bool   // no further enqueues; flusher drains and exits
	outBroken   bool   // write failed or encode substitution failed
	flusherDone chan struct{}

	mu          sync.Mutex
	handles     map[uint64]*entangle.Handle
	sessions    map[uint64]*session
	nextHandle  uint64
	nextSession uint64
	closed      bool
}

// serve is the connection read loop: decode a frame, dispatch the
// request, and keep reading. Requests that cannot park — everything but
// OpWait and OpSessionExec — execute inline on the read loop's stack:
// pipelined classical ops then cost no goroutine spawn (whose fresh stack
// would re-grow through the parser and executor on every request) and
// recycle one read buffer for the life of the connection. Ops that can
// block indefinitely get their own goroutine, so a parked Wait never
// wedges the connection: its partner's submit may arrive on this very
// socket, behind it in the pipeline. Any framing error ends the
// connection — after a torn frame the stream cannot be trusted.
//
// The socket must outlive the read loop: during Shutdown the loop exits
// via read deadline while handlers (a parked Wait whose outcome the
// engine drain is about to settle) still owe responses, so close waits
// for them. Every program has a timeout, so the handlers — and therefore
// the teardown of a genuinely dead connection — are bounded.
func (c *conn) serve() {
	defer func() {
		c.inflight.Wait()
		c.close()
	}()
	first := true
	var rbuf []byte // recycled frame payload; decode copies what it keeps
	for {
		payload, err := wire.ReadFrameBuf(c.br, rbuf)
		if err != nil {
			return
		}
		if cap(payload) > cap(rbuf) {
			rbuf = payload[:0]
		}
		var req wire.Request
		if err := c.codecR.DecodeRequest(payload, &req); err != nil {
			// The frame was well-formed but the payload was not: report
			// once (a typed error, not a hang), then give up on the stream.
			// A binary frame sent before any hello lands here too — the
			// connection is still in JSON.
			c.enqueue(wire.Response{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
		if req.Op == wire.OpHello {
			// Codec negotiation is handled inline so the switch is ordered
			// against every other frame on the connection.
			c.hello(req, first)
			first = false
			continue
		}
		first = false
		// Register the request under the server lock so it cannot race
		// Shutdown's reqWg.Wait (Add at counter zero concurrent with Wait is
		// undefined): either the request is registered before closed is set
		// and Shutdown waits for it, or it is refused.
		c.srv.mu.Lock()
		if c.srv.closed {
			c.srv.mu.Unlock()
			c.enqueue(fail(req.ID, errors.New("server shutting down")))
			return
		}
		c.srv.reqWg.Add(1)
		c.inflight.Add(1)
		c.srv.mu.Unlock()
		if req.Op != wire.OpWait && req.Op != wire.OpSessionExec {
			c.enqueue(c.handle(req))
			c.srv.reqWg.Done()
			c.inflight.Done()
			continue
		}
		// Backpressure: block reading further frames once the connection
		// has maxInflightPerConn parked requests.
		c.slots <- struct{}{}
		go func() {
			defer c.srv.reqWg.Done()
			defer c.inflight.Done()
			defer func() { <-c.slots }()
			c.enqueue(c.handle(req))
		}()
	}
}

// hello negotiates the connection codec. Only the first request on a
// connection may negotiate — by then no other response can be in flight,
// so the codec switch has an unambiguous position in both byte streams.
func (c *conn) hello(req wire.Request, first bool) {
	if !first {
		c.enqueue(fail(req.ID, errors.New("hello must be the first request")))
		return
	}
	name := wire.CodecJSON
	if req.Codec == wire.CodecBinary && !c.srv.JSONOnly {
		name = wire.CodecBinary
	}
	// The hello response travels in the connection's current (JSON) codec;
	// everything after it speaks the negotiated one. enqueue and the codec
	// switch share outMu, so no later frame can be encoded in between.
	c.enqueue(wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion, Codec: name})
	if name == wire.CodecBinary {
		c.outMu.Lock()
		c.codecW = wire.Binary
		c.outMu.Unlock()
		c.codecR = wire.Binary
	}
}

// enqueue appends one encoded response frame to the connection's output
// buffer and wakes the flusher. Encoding happens under outMu so frames
// land in the buffer whole and in enqueue order.
func (c *conn) enqueue(resp wire.Response) {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.outClosed || c.outBroken {
		return
	}
	n := len(c.outBuf)
	buf, err := c.codecW.AppendResponseFrame(c.outBuf, &resp)
	if err != nil {
		// Nothing reached the buffer (Append*Frame leaves buf unchanged on
		// error): substitute an error response so the client's request does
		// not hang on a silently dropped reply (e.g. a SELECT whose rows
		// exceed MaxFrameSize).
		buf, err = c.codecW.AppendResponseFrame(c.outBuf[:n], &wire.Response{ID: resp.ID,
			Error: fmt.Sprintf("response could not be encoded: %v", err)})
		if err != nil {
			c.outBroken = true
			c.nc.Close()
			c.outCond.Broadcast()
			return
		}
	}
	c.outBuf = buf
	c.outCond.Signal()
}

// flusher is the connection's single writer: it sleeps until responses
// accumulate, then writes the whole batch in one syscall. Under a
// pipelining client many handlers enqueue while one flush is in flight,
// so consecutive responses coalesce naturally.
func (c *conn) flusher() {
	defer close(c.flusherDone)
	c.outMu.Lock()
	for {
		for len(c.outBuf) == 0 && !c.outClosed && !c.outBroken {
			c.outCond.Wait()
		}
		if len(c.outBuf) == 0 || c.outBroken {
			// Closed and drained (or broken): done. outClosed with frames
			// still buffered keeps flushing — close() waits for the drain.
			c.outMu.Unlock()
			return
		}
		buf := c.outBuf
		c.outBuf = c.outSpare[:0]
		c.outSpare = nil
		c.outMu.Unlock()

		// The deadline bounds how long a non-reading client can stall the
		// flusher (and with it every buffered response).
		c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		_, err := c.nc.Write(buf)
		c.outMu.Lock()
		c.outSpare = buf[:0]
		if err != nil {
			// The stream is broken (or mid-frame): tear the connection down
			// so the peer sees a closed socket instead of waiting forever.
			c.outBroken = true
			c.nc.Close()
			c.outMu.Unlock()
			return
		}
	}
}

// close tears down the connection and its sessions (open transactions roll
// back). Buffered responses get a bounded final flush before the socket
// closes. Idempotent.
func (c *conn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	sessions := c.sessions
	c.sessions = nil
	c.handles = nil
	c.mu.Unlock()

	for _, ses := range sessions {
		ses.mu.Lock()
		ses.is.Close()
		ses.mu.Unlock()
	}

	// Stop intake, cap the remaining flush time (the deadline overrides
	// the flusher's own, even mid-write), and wait for the flusher to
	// drain what handlers already enqueued.
	c.outMu.Lock()
	c.outClosed = true
	c.outCond.Broadcast()
	c.outMu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(closeFlushTimeout))
	<-c.flusherDone
	c.nc.Close()
}

// fail builds an error response, attaching the sentinel code when the
// error maps onto one of the engine's.
func fail(id uint64, err error) wire.Response {
	return wire.Response{ID: id, Error: err.Error(), ErrCode: wire.CodeForError(err)}
}

// handle executes one request. Every path returns exactly one response.
func (c *conn) handle(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpPing:
		return wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion}

	case wire.OpExec:
		res, err := c.srv.db.Exec(req.SQL)
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpDDL:
		if err := c.srv.db.ExecDDL(req.SQL); err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpSubmit:
		h, err := c.srv.db.SubmitScript(req.SQL)
		if err != nil {
			return fail(req.ID, err)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			// The connection died between read and dispatch; the program
			// still runs (see package comment), but there is nobody to tell.
			return fail(req.ID, errors.New("connection closed"))
		}
		c.nextHandle++
		id := c.nextHandle
		c.handles[id] = h
		c.mu.Unlock()
		return wire.Response{ID: req.ID, OK: true, Handle: id}

	case wire.OpWait:
		h, err := c.lookupHandle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		o := h.Wait()
		// The outcome is delivered exactly once per handle; the client
		// library caches it (and single-flights concurrent Wait/Poll), so
		// the entry can be pruned — otherwise a long-lived connection leaks
		// one handle per submitted script.
		c.dropHandle(req.Handle)
		return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}

	case wire.OpPoll:
		h, err := c.lookupHandle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		if o, ok := h.Poll(); ok {
			c.dropHandle(req.Handle)
			return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}
		}
		return wire.Response{ID: req.ID, OK: true, Done: false}

	case wire.OpSessionOpen:
		ses := &session{is: c.srv.db.Interactive()}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			ses.is.Close()
			return fail(req.ID, errors.New("connection closed"))
		}
		c.nextSession++
		id := c.nextSession
		c.sessions[id] = ses
		c.mu.Unlock()
		return wire.Response{ID: req.ID, OK: true, Session: id}

	case wire.OpSessionExec:
		ses, err := c.lookupSession(req.Session)
		if err != nil {
			return fail(req.ID, err)
		}
		ses.mu.Lock()
		res, err := ses.is.Exec(req.SQL)
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpSessionClose:
		c.mu.Lock()
		ses := c.sessions[req.Session]
		delete(c.sessions, req.Session)
		c.mu.Unlock()
		if ses == nil {
			return fail(req.ID, fmt.Errorf("unknown session %d", req.Session))
		}
		ses.mu.Lock()
		err := ses.is.Close()
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpStats:
		snap, err := json.Marshal(c.srv.db.StatsSnapshot())
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: snap}

	case wire.OpTables:
		return wire.Response{ID: req.ID, OK: true, Tables: wire.TableInfos(c.srv.db.Catalog())}

	default:
		return fail(req.ID, fmt.Errorf("unknown op %q", req.Op))
	}
}

func (c *conn) lookupHandle(id uint64) (*entangle.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := c.handles[id]; h != nil {
		return h, nil
	}
	return nil, fmt.Errorf("unknown handle %d", id)
}

func (c *conn) dropHandle(id uint64) {
	c.mu.Lock()
	delete(c.handles, id)
	c.mu.Unlock()
}

func (c *conn) lookupSession(id uint64) (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[id]; s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("unknown session %d", id)
}

func toWireResult(res *entangle.Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
	}
}
