// Package server is the network service layer: it exposes an
// *entangle.DB over TCP using the length-prefixed frame protocol of
// internal/wire, so separate OS processes — separate users — can pose
// coordinating entangled queries against one engine. This is the paper's
// Figure 1 deployment shape: clients connect to a service, and the service
// unifies their answers.
//
// One TCP connection is one client. Requests on a connection execute
// concurrently (a parked OpWait does not block an OpExec that follows it);
// responses are correlated by request ID. Interactive sessions are
// connection-scoped — open transactions roll back when the connection dies.
// Submitted-program handles are scoped to the client *identity* (the Client
// id carried on hello): a client that reconnects after a network fault
// finds its handles again and can still Wait on programs it submitted, and
// programs keep running across the disconnect (a disconnect must not undo
// a coordination that partners already depend on). Connections that never
// identify themselves get private, connection-scoped state — the PR 4
// semantics.
//
// Retries are made exactly-once by a per-client dedup window: requests may
// carry a client-assigned idempotency id, and the server remembers the
// response of each completed idempotent request (bounded by
// Options.DedupWindow). A retry of an already-executed request — typically
// after the response was lost to a connection reset — replays the recorded
// response instead of re-executing.
//
// The server sheds load instead of queueing without bound: a global
// max-in-flight gate and a per-connection pending cap answer excess
// requests with wire.ErrOverloaded (err_code "overloaded"), which clients
// treat as retryable-with-backoff since a shed request was never dispatched.
//
// Every connection starts in the JSON codec (the v1 protocol); a client
// may negotiate the binary codec with an OpHello first request. Response
// frames are write-batched per connection: handlers enqueue encoded
// frames into one output buffer and a single flusher goroutine writes
// whatever has accumulated in one syscall, so a pipelining client costs
// one write per batch instead of one per response.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/entangle"
	"repro/internal/fault"
	"repro/internal/wire"
)

// Options configures a Server. The zero value selects every default, so
// NewWithOptions(db, Options{}) == New(db).
type Options struct {
	// MaxInFlight caps requests executing across all connections; excess
	// requests are shed with wire.ErrOverloaded. Default 1024; negative
	// disables the gate.
	MaxInFlight int
	// PerConnPending caps parked requests (OpWait/OpSessionExec) per
	// connection. Beyond it the connection sheds instead of blocking its
	// read loop. Default 64.
	PerConnPending int
	// WriteTimeout bounds one batched response write (default 30s). A
	// client that stops reading its socket eventually fills the TCP send
	// buffer; without a deadline the blocked flusher would buffer
	// responses forever.
	WriteTimeout time.Duration
	// CloseFlushTimeout bounds the final drain of buffered responses
	// during connection teardown (default 2s), so Shutdown is not held
	// hostage by a peer that stopped reading.
	CloseFlushTimeout time.Duration
	// DedupWindow is how many completed idempotent responses are retained
	// per client identity for retry replay (default 256).
	DedupWindow int
	// ClientTTL is how long a disconnected client identity's state
	// (handles, dedup window) is retained awaiting a reconnect
	// (default 5m).
	ClientTTL time.Duration
	// Faults, when set, arms the server's failpoints: "server.accept"
	// (accepted connections are dropped), "server.dispatch" (requests fail
	// or stall at dispatch), and "server.conn.read"/"server.conn.write"
	// (accepted conns are wrapped with fault.Conn — resets, delays, short
	// writes at frame boundaries). Nil — the default — is zero-overhead.
	Faults *fault.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 1024
	}
	if o.PerConnPending <= 0 {
		o.PerConnPending = 64
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.CloseFlushTimeout <= 0 {
		o.CloseFlushTimeout = 2 * time.Second
	}
	if o.DedupWindow <= 0 {
		o.DedupWindow = 256
	}
	if o.ClientTTL <= 0 {
		o.ClientTTL = 5 * time.Minute
	}
	return o
}

// ServiceStats are the service-layer counters, reported alongside the
// engine counters in the stats frame.
type ServiceStats struct {
	Sheds          int64 // requests refused by admission control
	Retries        int64 // idempotent retries answered from the dedup window
	Reconnects     int64 // hellos that re-bound an existing client identity
	FaultsInjected int64 // faults fired by the configured registry
}

// Server serves one DB over any number of listeners.
type Server struct {
	db   *entangle.DB
	opts Options

	// JSONOnly disables binary-codec negotiation: hellos are answered
	// with the JSON codec. Set before Serve; it exists for debugging
	// (every frame stays netcat-readable) and for exercising the
	// client's fallback path.
	JSONOnly bool

	// dist is non-nil once EnableSharding makes this server a member of a
	// sharded deployment (see dist.go). Written before Serve, read-only
	// after.
	dist *distState

	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[*conn]struct{}
	clients map[string]*clientState
	closed  bool

	connWg sync.WaitGroup // connection read loops
	reqWg  sync.WaitGroup // in-flight requests (drained by Shutdown)

	inflight   atomic.Int64 // requests executing now (global admission gate)
	sheds      atomic.Int64
	retries    atomic.Int64
	reconnects atomic.Int64

	// Failpoints (nil without Options.Faults; see internal/fault).
	ptAccept   *fault.Point
	ptDispatch *fault.Point
	ptConnR    *fault.Point
	ptConnW    *fault.Point
}

// New wraps a DB with default options. The caller keeps ownership of the
// DB: Shutdown quiesces the network side only, so the usual db.Drain +
// db.Close still follow.
func New(db *entangle.DB) *Server { return NewWithOptions(db, Options{}) }

// NewWithOptions wraps a DB with explicit service options.
func NewWithOptions(db *entangle.DB, opts Options) *Server {
	s := &Server{
		db:      db,
		opts:    opts.withDefaults(),
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[*conn]struct{}),
		clients: make(map[string]*clientState),
	}
	if f := s.opts.Faults; f != nil {
		s.ptAccept = f.Point("server.accept")
		s.ptDispatch = f.Point("server.dispatch")
		s.ptConnR = f.Point("server.conn.read")
		s.ptConnW = f.Point("server.conn.write")
	}
	return s
}

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr (e.g. "127.0.0.1:7171") and serves until
// Shutdown. Like http.ListenAndServe it blocks; run it on its own
// goroutine.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ServiceStats returns the service-layer counters.
func (s *Server) ServiceStats() ServiceStats {
	return ServiceStats{
		Sheds:          s.sheds.Load(),
		Retries:        s.retries.Load(),
		Reconnects:     s.reconnects.Load(),
		FaultsInjected: s.opts.Faults.Fired(),
	}
}

// Serve accepts connections on ln until Shutdown (or a fatal accept
// error). The listener is closed when Serve returns.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		if err := s.ptAccept.Fire(); err != nil {
			// Injected accept failure: the client sees the conn die
			// immediately and redials.
			nc.Close()
			continue
		}
		if s.opts.Faults != nil {
			nc = fault.WrapConn(nc, s.ptConnR, s.ptConnW)
		}
		c := &conn{
			srv:         s,
			nc:          nc,
			br:          bufio.NewReaderSize(nc, readBufSize),
			codecR:      wire.JSON,
			codecW:      wire.JSON,
			cs:          newClientState(""),
			sessions:    make(map[uint64]*session),
			slots:       make(chan struct{}, s.opts.PerConnPending),
			flusherDone: make(chan struct{}),
		}
		c.outCond = sync.NewCond(&c.outMu)
		go c.flusher()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the network side: listeners close (no new connections),
// connections stop reading new requests, in-flight requests finish (bounded
// by ctx), then every connection is torn down — open interactive
// transactions roll back. Returns ctx.Err() when in-flight work was cut
// off. The DB itself is untouched; follow with db.Drain and db.Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	// Stop intake without killing the write side: expire reads so each
	// connection's read loop exits, leaving in-flight handlers free to
	// respond.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.reqWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Teardown runs per-connection concurrently: close drains each
	// connection's buffered responses (bounded by CloseFlushTimeout), and
	// one stuck peer must not serialize behind another.
	var closeWg sync.WaitGroup
	for _, c := range conns {
		closeWg.Add(1)
		go func(c *conn) {
			defer closeWg.Done()
			c.close()
		}(c)
	}
	closeWg.Wait()
	s.connWg.Wait()
	return err
}

// Addrs returns the listen addresses (useful with ":0" test listeners).
func (s *Server) Addrs() []net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []net.Addr
	for ln := range s.lns {
		out = append(out, ln.Addr())
	}
	return out
}

// readBufSize is the per-connection buffered-reader size: big enough that
// a pipelined batch of requests costs one read syscall, small enough to be
// irrelevant against MaxFrameSize.
const readBufSize = 64 << 10

// dedupEntry is one idempotent request's lifecycle in a client's dedup
// window: done closes when the owning execution finished, after which resp
// (sans request ID, which the replayer rewrites) is the recorded answer.
type dedupEntry struct {
	done chan struct{}
	resp wire.Response
}

// waiter is the handle shape the server parks Waits on: the embedded
// engine's handle for local submissions, the remote client's handle for
// submissions forwarded to their routing key's home shard. Both report
// the same Outcome type, so the Wait/Poll handlers cannot tell them
// apart — which is the point.
type waiter interface {
	Wait() entangle.Outcome
	Poll() (entangle.Outcome, bool)
}

// clientState is the per-client-identity state: submitted-program handles
// and the idempotency dedup window. Named states (bound by hello) live in
// Server.clients and survive reconnects until ClientTTL; anonymous
// connections get a private state with identical mechanics but
// connection-scoped life.
type clientState struct {
	id string

	mu         sync.Mutex
	refs       int       // bound connections
	idleSince  time.Time // valid while refs == 0
	nextHandle uint64
	handles    map[uint64]waiter
	dedup      map[uint64]*dedupEntry
	order      []uint64 // completed idem ids, oldest first (window pruning)
}

func newClientState(id string) *clientState {
	return &clientState{
		id:      id,
		handles: make(map[uint64]waiter),
		dedup:   make(map[uint64]*dedupEntry),
	}
}

// begin claims idempotency id idem. owner=true means the caller must
// execute the request and finish (or abort) the entry; owner=false means
// another execution owns it — wait on entry.done and replay entry.resp.
func (cs *clientState) begin(idem uint64) (entry *dedupEntry, owner bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if e := cs.dedup[idem]; e != nil {
		return e, false
	}
	e := &dedupEntry{done: make(chan struct{})}
	cs.dedup[idem] = e
	return e, true
}

// finish records the owner's response and prunes the window to size limit.
// Callers must finish before enqueueing the response: a retry that arrives
// after the peer saw (or lost) the response must always find the record.
func (cs *clientState) finish(idem uint64, resp wire.Response, limit int) {
	cs.mu.Lock()
	e := cs.dedup[idem]
	if e == nil { // aborted concurrently; nothing to record
		cs.mu.Unlock()
		return
	}
	e.resp = resp
	cs.order = append(cs.order, idem)
	for len(cs.order) > limit {
		evict := cs.order[0]
		cs.order = cs.order[1:]
		delete(cs.dedup, evict)
	}
	cs.mu.Unlock()
	close(e.done)
}

// abort removes an entry whose request never executed (shed by admission
// control): current waiters get resp, but the id is forgotten so a retry
// re-executes instead of replaying the refusal.
func (cs *clientState) abort(idem uint64, resp wire.Response) {
	cs.mu.Lock()
	e := cs.dedup[idem]
	delete(cs.dedup, idem)
	cs.mu.Unlock()
	if e != nil {
		e.resp = resp
		close(e.done)
	}
}

func (cs *clientState) putHandle(h waiter) uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.nextHandle++
	cs.handles[cs.nextHandle] = h
	return cs.nextHandle
}

func (cs *clientState) handle(id uint64) (waiter, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if h := cs.handles[id]; h != nil {
		return h, nil
	}
	return nil, fmt.Errorf("unknown handle %d", id)
}

func (cs *clientState) dropHandle(id uint64) {
	cs.mu.Lock()
	delete(cs.handles, id)
	cs.mu.Unlock()
}

// bindClient attaches a connection to the named client identity, creating
// or reviving its state. Re-binding an identity that already existed is a
// reconnect. Idle states past ClientTTL are pruned here — binds are rare,
// so the scan is free on the hot path.
func (s *Server) bindClient(c *conn, id string) {
	now := time.Now()
	s.mu.Lock()
	for cid, cs := range s.clients {
		cs.mu.Lock()
		expired := cs.refs == 0 && now.Sub(cs.idleSince) > s.opts.ClientTTL
		cs.mu.Unlock()
		if expired {
			delete(s.clients, cid)
		}
	}
	cs := s.clients[id]
	known := cs != nil
	if !known {
		cs = newClientState(id)
		s.clients[id] = cs
	}
	s.mu.Unlock()
	cs.mu.Lock()
	cs.refs++
	cs.mu.Unlock()
	if known {
		s.reconnects.Add(1)
	}
	c.cs = cs
}

// unbindClient releases a connection's claim on a named identity; the
// state lingers for ClientTTL awaiting a reconnect.
func (s *Server) unbindClient(cs *clientState) {
	if cs == nil || cs.id == "" {
		return
	}
	cs.mu.Lock()
	cs.refs--
	if cs.refs == 0 {
		cs.idleSince = time.Now()
	}
	cs.mu.Unlock()
}

// session wraps an interactive session with its serializing lock:
// InteractiveSession is statement-at-a-time and not safe for concurrent
// use, but nothing stops a client from pipelining two session_exec frames.
type session struct {
	mu sync.Mutex
	is *entangle.InteractiveSession
}

// conn is one client connection.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	// codecR is the request decoder. It is owned by the read loop (only
	// the loop reads frames, and only the loop — via a hello — replaces
	// it), so it needs no lock.
	codecR wire.Codec

	// cs is the client state this connection acts for: a private
	// connection-scoped state until a hello carrying a Client id binds a
	// durable one. Written only by the read loop (before any concurrent
	// handler exists — binding happens on the first request).
	cs *clientState

	inflight sync.WaitGroup // requests dispatched on this connection
	slots    chan struct{}  // per-connection parked-request cap

	// Write batching: handlers encode their response into outBuf under
	// outMu; the flusher goroutine swaps the buffer out and writes it in
	// one syscall. codecW lives under the same lock so a codec switch
	// cannot interleave with a frame encode — the hello response is
	// encoded in the old codec and everything after it in the new one, in
	// buffer order.
	outMu       sync.Mutex
	outCond     *sync.Cond
	codecW      wire.Codec
	outBuf      []byte
	outSpare    []byte // recycled flushed buffer
	outClosed   bool   // no further enqueues; flusher drains and exits
	outBroken   bool   // write failed or encode substitution failed
	flusherDone chan struct{}

	mu          sync.Mutex
	sessions    map[uint64]*session
	nextSession uint64
	closed      bool
}

// serve is the connection read loop: decode a frame, dispatch the
// request, and keep reading. Requests that cannot park — everything but
// OpWait and OpSessionExec — execute inline on the read loop's stack:
// pipelined classical ops then cost no goroutine spawn (whose fresh stack
// would re-grow through the parser and executor on every request) and
// recycle one read buffer for the life of the connection. Ops that can
// block indefinitely get their own goroutine, so a parked Wait never
// wedges the connection: its partner's submit may arrive on this very
// socket, behind it in the pipeline. Any framing error ends the
// connection — after a torn frame the stream cannot be trusted.
//
// The socket must outlive the read loop: during Shutdown the loop exits
// via read deadline while handlers (a parked Wait whose outcome the
// engine drain is about to settle) still owe responses, so close waits
// for them. Every program has a timeout, so the handlers — and therefore
// the teardown of a genuinely dead connection — are bounded.
func (c *conn) serve() {
	defer func() {
		c.inflight.Wait()
		c.close()
	}()
	first := true
	gated := c.srv.opts.MaxInFlight > 0
	var rbuf []byte // recycled frame payload; decode copies what it keeps
	for {
		payload, err := wire.ReadFrameBuf(c.br, rbuf)
		if err != nil {
			return
		}
		if cap(payload) > cap(rbuf) {
			rbuf = payload[:0]
		}
		var req wire.Request
		if err := c.codecR.DecodeRequest(payload, &req); err != nil {
			// The frame was well-formed but the payload was not: report
			// once (a typed error, not a hang), then give up on the stream.
			// A binary frame sent before any hello lands here too — the
			// connection is still in JSON.
			c.enqueue(wire.Response{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
		if req.Op == wire.OpHello {
			// Codec negotiation is handled inline so the switch is ordered
			// against every other frame on the connection.
			c.hello(req, first)
			first = false
			continue
		}
		first = false

		// Global admission gate: when the server is already executing
		// MaxInFlight requests, shed — a typed, retryable refusal — rather
		// than queue unboundedly. Shed before dedup-begin, so a shed
		// request leaves no record and its retry executes normally.
		if gated && c.srv.inflight.Add(1) > int64(c.srv.opts.MaxInFlight) {
			c.srv.inflight.Add(-1)
			c.srv.sheds.Add(1)
			c.enqueue(fail(req.ID, wire.ErrOverloaded))
			continue
		}
		// Register the request under the server lock so it cannot race
		// Shutdown's reqWg.Wait (Add at counter zero concurrent with Wait is
		// undefined): either the request is registered before closed is set
		// and Shutdown waits for it, or it is refused.
		c.srv.mu.Lock()
		if c.srv.closed {
			c.srv.mu.Unlock()
			if gated {
				c.srv.inflight.Add(-1)
			}
			c.enqueue(fail(req.ID, errors.New("server shutting down")))
			return
		}
		c.srv.reqWg.Add(1)
		c.inflight.Add(1)
		c.srv.mu.Unlock()

		// Idempotency dedup: a request carrying an idem id executes at
		// most once per client identity. Losers of the race replay the
		// owner's recorded response.
		var entry *dedupEntry
		if req.Idem != 0 {
			var owner bool
			entry, owner = c.cs.begin(req.Idem)
			if !owner {
				c.srv.retries.Add(1)
				select {
				case <-entry.done:
					// Completed: replay inline, under the retry's own ID.
					resp := entry.resp
					resp.ID = req.ID
					c.enqueue(resp)
					c.release(gated)
				default:
					// Still executing (the original, on a conn the client
					// may have abandoned): park a replayer. The owner always
					// finishes — handlers return exactly one response — so
					// this cannot leak.
					go func(id uint64, entry *dedupEntry) {
						defer c.release(gated)
						<-entry.done
						resp := entry.resp
						resp.ID = id
						c.enqueue(resp)
					}(req.ID, entry)
				}
				continue
			}
		}

		if req.Op != wire.OpWait && req.Op != wire.OpSessionExec {
			c.finishAndEnqueue(req, entry, c.dispatch(req))
			c.release(gated)
			continue
		}
		// Parked ops are capped per connection: beyond PerConnPending the
		// connection sheds instead of blocking its read loop behind its
		// own pipeline.
		select {
		case c.slots <- struct{}{}:
		default:
			c.srv.sheds.Add(1)
			shed := fail(req.ID, wire.ErrOverloaded)
			if entry != nil {
				c.cs.abort(req.Idem, shed)
			}
			c.enqueue(shed)
			c.release(gated)
			continue
		}
		go func(req wire.Request, entry *dedupEntry) {
			defer c.release(gated)
			defer func() { <-c.slots }()
			c.finishAndEnqueue(req, entry, c.dispatch(req))
		}(req, entry)
	}
}

// release undoes one request's admission-gate and wait-group registration.
func (c *conn) release(gated bool) {
	if gated {
		c.srv.inflight.Add(-1)
	}
	c.srv.reqWg.Done()
	c.inflight.Done()
}

// finishAndEnqueue records an idempotent response in the dedup window
// strictly before sending it: once the bytes can have reached the peer, a
// retry must find the record.
func (c *conn) finishAndEnqueue(req wire.Request, entry *dedupEntry, resp wire.Response) {
	if entry != nil {
		c.cs.finish(req.Idem, resp, c.srv.opts.DedupWindow)
	}
	c.enqueue(resp)
}

// dispatch applies the dispatch failpoint, then executes the request. A
// traced request gets its trace id echoed back canonicalized — after an
// entanglement merge the client learns which trace its spans live under —
// and a dispatch fault injected into it is recorded against the same id.
func (c *conn) dispatch(req wire.Request) wire.Response {
	if err := c.srv.ptDispatch.FireTagged(req.Trace); err != nil {
		return fail(req.ID, err)
	}
	resp := c.handle(req)
	if req.Trace != 0 && resp.Trace == 0 {
		resp.Trace = c.srv.db.Tracer().Canonical(req.Trace)
	}
	return resp
}

// hello negotiates the connection codec and binds the client identity.
// Only the first request on a connection may negotiate — by then no other
// response can be in flight, so the codec switch has an unambiguous
// position in both byte streams.
func (c *conn) hello(req wire.Request, first bool) {
	if !first {
		c.enqueue(fail(req.ID, errors.New("hello must be the first request")))
		return
	}
	if req.Client != "" {
		c.srv.bindClient(c, req.Client)
	}
	name := wire.CodecJSON
	if req.Codec == wire.CodecBinary && !c.srv.JSONOnly {
		name = wire.CodecBinary
	}
	// The hello response travels in the connection's current (JSON) codec;
	// everything after it speaks the negotiated one. enqueue and the codec
	// switch share outMu, so no later frame can be encoded in between.
	c.enqueue(wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion, Codec: name})
	if name == wire.CodecBinary {
		c.outMu.Lock()
		c.codecW = wire.Binary
		c.outMu.Unlock()
		c.codecR = wire.Binary
	}
}

// enqueue appends one encoded response frame to the connection's output
// buffer and wakes the flusher. Encoding happens under outMu so frames
// land in the buffer whole and in enqueue order.
func (c *conn) enqueue(resp wire.Response) {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.outClosed || c.outBroken {
		return
	}
	n := len(c.outBuf)
	buf, err := c.codecW.AppendResponseFrame(c.outBuf, &resp)
	if err != nil {
		// Nothing reached the buffer (Append*Frame leaves buf unchanged on
		// error): substitute an error response so the client's request does
		// not hang on a silently dropped reply (e.g. a SELECT whose rows
		// exceed MaxFrameSize).
		buf, err = c.codecW.AppendResponseFrame(c.outBuf[:n], &wire.Response{ID: resp.ID,
			Error: fmt.Sprintf("response could not be encoded: %v", err)})
		if err != nil {
			c.outBroken = true
			c.nc.Close()
			c.outCond.Broadcast()
			return
		}
	}
	c.outBuf = buf
	c.outCond.Signal()
}

// flusher is the connection's single writer: it sleeps until responses
// accumulate, then writes the whole batch in one syscall. Under a
// pipelining client many handlers enqueue while one flush is in flight,
// so consecutive responses coalesce naturally.
func (c *conn) flusher() {
	defer close(c.flusherDone)
	c.outMu.Lock()
	for {
		for len(c.outBuf) == 0 && !c.outClosed && !c.outBroken {
			c.outCond.Wait()
		}
		if len(c.outBuf) == 0 || c.outBroken {
			// Closed and drained (or broken): done. outClosed with frames
			// still buffered keeps flushing — close() waits for the drain.
			c.outMu.Unlock()
			return
		}
		buf := c.outBuf
		c.outBuf = c.outSpare[:0]
		c.outSpare = nil
		c.outMu.Unlock()

		// The deadline bounds how long a non-reading client can stall the
		// flusher (and with it every buffered response).
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
		_, err := c.nc.Write(buf)
		c.outMu.Lock()
		c.outSpare = buf[:0]
		if err != nil {
			// The stream is broken (or mid-frame): tear the connection down
			// so the peer sees a closed socket instead of waiting forever.
			c.outBroken = true
			c.nc.Close()
			c.outMu.Unlock()
			return
		}
	}
}

// close tears down the connection and its sessions (open transactions roll
// back); a named client identity is released to linger for ClientTTL.
// Buffered responses get a bounded final flush before the socket closes.
// Idempotent.
func (c *conn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	sessions := c.sessions
	c.sessions = nil
	c.mu.Unlock()

	c.srv.unbindClient(c.cs)

	for _, ses := range sessions {
		ses.mu.Lock()
		ses.is.Close()
		ses.mu.Unlock()
	}

	// Stop intake, cap the remaining flush time (the deadline overrides
	// the flusher's own, even mid-write), and wait for the flusher to
	// drain what handlers already enqueued.
	c.outMu.Lock()
	c.outClosed = true
	c.outCond.Broadcast()
	c.outMu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.CloseFlushTimeout))
	<-c.flusherDone
	c.nc.Close()
}

// fail builds an error response, attaching the sentinel code when the
// error maps onto one of the engine's.
func fail(id uint64, err error) wire.Response {
	return wire.Response{ID: id, Error: err.Error(), ErrCode: wire.CodeForError(err)}
}

// handle executes one request. Every path returns exactly one response.
func (c *conn) handle(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpPing:
		return wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion}

	case wire.OpExec:
		res, err := c.srv.db.ExecTraced(req.SQL, req.Trace)
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpDDL:
		if err := c.srv.db.ExecDDL(req.SQL); err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpSubmit:
		// Submissions run on the engine owning their routing key: a
		// submission that arrived at the wrong server is forwarded to its
		// home shard, and the remote handle parks under a local handle id.
		if ds := c.srv.dist; ds != nil {
			if _, away := ds.homeOf(req.SQL); away {
				return ds.forwardSubmit(c.cs, req)
			}
		}
		h, err := c.srv.db.SubmitScriptTraced(req.SQL, req.Trace)
		if err != nil {
			return fail(req.ID, err)
		}
		// The handle lives in the client state, not the connection: after
		// a reconnect the same client can still Wait on it. The program
		// runs regardless (see package comment).
		return wire.Response{ID: req.ID, OK: true, Handle: c.cs.putHandle(h)}

	case wire.OpWait:
		h, err := c.cs.handle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		o := h.Wait()
		// The outcome is delivered exactly once per handle (the dedup
		// window covers retries of the same Wait); the client library
		// caches it (and single-flights concurrent Wait/Poll), so the
		// entry can be pruned — otherwise a long-lived client leaks one
		// handle per submitted script.
		c.cs.dropHandle(req.Handle)
		return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}

	case wire.OpPoll:
		h, err := c.cs.handle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		if o, ok := h.Poll(); ok {
			c.cs.dropHandle(req.Handle)
			return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}
		}
		return wire.Response{ID: req.ID, OK: true, Done: false}

	case wire.OpSessionOpen:
		ses := &session{is: c.srv.db.Interactive()}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			ses.is.Close()
			return fail(req.ID, errors.New("connection closed"))
		}
		c.nextSession++
		id := c.nextSession
		c.sessions[id] = ses
		c.mu.Unlock()
		return wire.Response{ID: req.ID, OK: true, Session: id}

	case wire.OpSessionExec:
		ses, err := c.lookupSession(req.Session)
		if err != nil {
			return fail(req.ID, err)
		}
		ses.mu.Lock()
		res, err := ses.is.Exec(req.SQL)
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpSessionClose:
		c.mu.Lock()
		ses := c.sessions[req.Session]
		delete(c.sessions, req.Session)
		c.mu.Unlock()
		if ses == nil {
			return fail(req.ID, fmt.Errorf("%w %d", wire.ErrUnknownSession, req.Session))
		}
		ses.mu.Lock()
		err := ses.is.Close()
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpStats:
		snap := c.srv.db.StatsSnapshot()
		svc := c.srv.ServiceStats()
		snap.Sheds = svc.Sheds
		snap.Retries = svc.Retries
		snap.Reconnects = svc.Reconnects
		snap.FaultsInjected = svc.FaultsInjected
		raw, err := json.Marshal(snap)
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: raw}

	case wire.OpTables:
		return wire.Response{ID: req.ID, OK: true, Tables: wire.TableInfos(c.srv.db.Catalog())}

	case wire.OpMetrics:
		raw, err := json.Marshal(c.srv.db.Metrics().Snapshot())
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: raw}

	case wire.OpTrace:
		// The trace id travels in Handle — the same opaque-u64 shape.
		tr, ok := c.srv.db.Tracer().Get(req.Handle)
		if !ok {
			return fail(req.ID, fmt.Errorf("unknown trace %d", req.Handle))
		}
		raw, err := json.Marshal(tr)
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: raw, Trace: tr.ID}

	case wire.OpPlacement, wire.OpShardOffer, wire.OpShardPrepare,
		wire.OpShardVote, wire.OpShardDecide, wire.OpShardStatus:
		return c.srv.handleShard(req)

	default:
		return fail(req.ID, fmt.Errorf("unknown op %q", req.Op))
	}
}

func (c *conn) lookupSession(id uint64) (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[id]; s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("%w %d", wire.ErrUnknownSession, id)
}

func toWireResult(res *entangle.Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
	}
}
