// Package server is the network service layer: it exposes an
// *entangle.DB over TCP using the length-prefixed JSON frame protocol of
// internal/wire, so separate OS processes — separate users — can pose
// coordinating entangled queries against one engine. This is the paper's
// Figure 1 deployment shape: clients connect to a service, and the service
// unifies their answers.
//
// One TCP connection is one client. Requests on a connection execute
// concurrently (a parked OpWait does not block an OpExec that follows it);
// responses are correlated by request ID. Connection-scoped state —
// submitted-program handles and interactive sessions — dies with the
// connection: open interactive transactions roll back, while submitted
// programs keep running to their own outcome (a disconnect must not undo
// a coordination that partners already depend on).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/entangle"
	"repro/internal/wire"
)

// Server serves one DB over any number of listeners.
type Server struct {
	db *entangle.DB

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*conn]struct{}
	closed bool

	connWg sync.WaitGroup // connection read loops
	reqWg  sync.WaitGroup // in-flight requests (drained by Shutdown)
}

// New wraps a DB. The caller keeps ownership of the DB: Shutdown quiesces
// the network side only, so the usual db.Drain + db.Close still follow.
func New(db *entangle.DB) *Server {
	return &Server{
		db:    db,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[*conn]struct{}),
	}
}

// ErrServerClosed is returned by Serve and ListenAndServe after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr (e.g. "127.0.0.1:7171") and serves until
// Shutdown. Like http.ListenAndServe it blocks; run it on its own
// goroutine.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a fatal accept
// error). The listener is closed when Serve returns.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		c := &conn{
			srv:      s,
			nc:       nc,
			handles:  make(map[uint64]*entangle.Handle),
			sessions: make(map[uint64]*session),
			slots:    make(chan struct{}, maxInflightPerConn),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the network side: listeners close (no new connections),
// connections stop reading new requests, in-flight requests finish (bounded
// by ctx), then every connection is torn down — open interactive
// transactions roll back. Returns ctx.Err() when in-flight work was cut
// off. The DB itself is untouched; follow with db.Drain and db.Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	// Stop intake without killing the write side: expire reads so each
	// connection's read loop exits, leaving in-flight handlers free to
	// respond.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.reqWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	for _, c := range conns {
		c.close()
	}
	s.connWg.Wait()
	return err
}

// Addrs returns the listen addresses (useful with ":0" test listeners).
func (s *Server) Addrs() []net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []net.Addr
	for ln := range s.lns {
		out = append(out, ln.Addr())
	}
	return out
}

// writeTimeout bounds one response write. A client that stops reading its
// socket eventually fills the TCP send buffer; without a deadline the
// blocked WriteFrame would hold writeMu forever and park every later
// handler on this connection.
const writeTimeout = 30 * time.Second

// maxInflightPerConn caps concurrently executing requests per connection.
// The read loop blocks once the cap is reached — natural backpressure on a
// pipelining client instead of one goroutine per frame without bound.
const maxInflightPerConn = 64

// session wraps an interactive session with its serializing lock:
// InteractiveSession is statement-at-a-time and not safe for concurrent
// use, but nothing stops a client from pipelining two session_exec frames.
type session struct {
	mu sync.Mutex
	is *entangle.InteractiveSession
}

// conn is one client connection.
type conn struct {
	srv *Server
	nc  net.Conn

	writeMu  sync.Mutex     // serializes response frames
	inflight sync.WaitGroup // requests dispatched on this connection
	slots    chan struct{}  // per-connection request cap (maxInflightPerConn)

	mu          sync.Mutex
	handles     map[uint64]*entangle.Handle
	sessions    map[uint64]*session
	nextHandle  uint64
	nextSession uint64
	closed      bool
}

// serve is the connection read loop: decode a frame, dispatch the request
// on its own goroutine (so a parked Wait never blocks the connection), and
// keep reading. Any framing error ends the connection — after a torn frame
// the stream cannot be trusted.
//
// The socket must outlive the read loop: during Shutdown the loop exits
// via read deadline while handlers (a parked Wait whose outcome the
// engine drain is about to settle) still owe responses, so close waits
// for them. Every program has a timeout, so the handlers — and therefore
// the teardown of a genuinely dead connection — are bounded.
func (c *conn) serve() {
	defer func() {
		c.inflight.Wait()
		c.close()
	}()
	for {
		payload, err := wire.ReadFrame(c.nc)
		if err != nil {
			return
		}
		var req wire.Request
		if err := json.Unmarshal(payload, &req); err != nil {
			// The frame was well-formed but the JSON was not: report once,
			// then give up on the stream.
			c.writeResp(wire.Response{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
		// Backpressure: block reading further frames once the connection has
		// maxInflightPerConn requests executing.
		c.slots <- struct{}{}
		// Register the request under the server lock so it cannot race
		// Shutdown's reqWg.Wait (Add at counter zero concurrent with Wait is
		// undefined): either the request is registered before closed is set
		// and Shutdown waits for it, or it is refused.
		c.srv.mu.Lock()
		if c.srv.closed {
			c.srv.mu.Unlock()
			<-c.slots
			c.writeResp(fail(req.ID, errors.New("server shutting down")))
			return
		}
		c.srv.reqWg.Add(1)
		c.inflight.Add(1)
		c.srv.mu.Unlock()
		go func() {
			defer c.srv.reqWg.Done()
			defer c.inflight.Done()
			defer func() { <-c.slots }()
			c.writeResp(c.handle(req))
		}()
	}
}

func (c *conn) writeResp(resp wire.Response) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// The deadline bounds how long a non-reading client can hold writeMu
	// (and with it every later handler on this connection).
	c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	err := wire.WriteFrame(c.nc, resp)
	if err == nil {
		return
	}
	if errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrEncode) {
		// Nothing reached the stream yet: substitute an error response so
		// the client's request does not hang on a silently dropped reply
		// (e.g. a SELECT whose rows exceed MaxFrameSize).
		if wire.WriteFrame(c.nc, wire.Response{ID: resp.ID,
			Error: fmt.Sprintf("response could not be encoded: %v", err)}) == nil {
			return
		}
	}
	// The stream is broken (or mid-frame): tear the connection down so the
	// peer sees a closed socket instead of waiting forever.
	c.nc.Close()
}

// close tears down the connection and its sessions (open transactions roll
// back). Idempotent.
func (c *conn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	sessions := c.sessions
	c.sessions = nil
	c.handles = nil
	c.mu.Unlock()

	for _, ses := range sessions {
		ses.mu.Lock()
		ses.is.Close()
		ses.mu.Unlock()
	}
	c.nc.Close()
}

// fail builds an error response, attaching the sentinel code when the
// error maps onto one of the engine's.
func fail(id uint64, err error) wire.Response {
	return wire.Response{ID: id, Error: err.Error(), ErrCode: wire.CodeForError(err)}
}

// handle executes one request. Every path returns exactly one response.
func (c *conn) handle(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpPing:
		return wire.Response{ID: req.ID, OK: true, Version: wire.ProtocolVersion}

	case wire.OpExec:
		res, err := c.srv.db.Exec(req.SQL)
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpDDL:
		if err := c.srv.db.ExecDDL(req.SQL); err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpSubmit:
		h, err := c.srv.db.SubmitScript(req.SQL)
		if err != nil {
			return fail(req.ID, err)
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			// The connection died between read and dispatch; the program
			// still runs (see package comment), but there is nobody to tell.
			return fail(req.ID, errors.New("connection closed"))
		}
		c.nextHandle++
		id := c.nextHandle
		c.handles[id] = h
		c.mu.Unlock()
		return wire.Response{ID: req.ID, OK: true, Handle: id}

	case wire.OpWait:
		h, err := c.lookupHandle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		o := h.Wait()
		// The outcome is delivered exactly once per handle; the client
		// library caches it (and single-flights concurrent Wait/Poll), so
		// the entry can be pruned — otherwise a long-lived connection leaks
		// one handle per submitted script.
		c.dropHandle(req.Handle)
		return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}

	case wire.OpPoll:
		h, err := c.lookupHandle(req.Handle)
		if err != nil {
			return fail(req.ID, err)
		}
		if o, ok := h.Poll(); ok {
			c.dropHandle(req.Handle)
			return wire.Response{ID: req.ID, OK: true, Done: true, Outcome: wire.FromOutcome(o)}
		}
		return wire.Response{ID: req.ID, OK: true, Done: false}

	case wire.OpSessionOpen:
		ses := &session{is: c.srv.db.Interactive()}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			ses.is.Close()
			return fail(req.ID, errors.New("connection closed"))
		}
		c.nextSession++
		id := c.nextSession
		c.sessions[id] = ses
		c.mu.Unlock()
		return wire.Response{ID: req.ID, OK: true, Session: id}

	case wire.OpSessionExec:
		ses, err := c.lookupSession(req.Session)
		if err != nil {
			return fail(req.ID, err)
		}
		ses.mu.Lock()
		res, err := ses.is.Exec(req.SQL)
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Result: toWireResult(res)}

	case wire.OpSessionClose:
		c.mu.Lock()
		ses := c.sessions[req.Session]
		delete(c.sessions, req.Session)
		c.mu.Unlock()
		if ses == nil {
			return fail(req.ID, fmt.Errorf("unknown session %d", req.Session))
		}
		ses.mu.Lock()
		err := ses.is.Close()
		ses.mu.Unlock()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpStats:
		snap, err := json.Marshal(c.srv.db.StatsSnapshot())
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: snap}

	case wire.OpTables:
		return wire.Response{ID: req.ID, OK: true, Tables: wire.TableInfos(c.srv.db.Catalog())}

	default:
		return fail(req.ID, fmt.Errorf("unknown op %q", req.Op))
	}
}

func (c *conn) lookupHandle(id uint64) (*entangle.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := c.handles[id]; h != nil {
		return h, nil
	}
	return nil, fmt.Errorf("unknown handle %d", id)
}

func (c *conn) dropHandle(id uint64) {
	c.mu.Lock()
	delete(c.handles, id)
	c.mu.Unlock()
}

func (c *conn) lookupSession(id uint64) (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[id]; s != nil {
		return s, nil
	}
	return nil, fmt.Errorf("unknown session %d", id)
}

func toWireResult(res *entangle.Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
	}
}
