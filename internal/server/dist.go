package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/wire"
)

// The sharded-deployment layer: one logical database served by N
// youtopia-serve processes, each owning the shard of users the placement
// map assigns it. Every server is a participant (its engine offers
// unmatched entangled queries, revalidates prepares, parks, votes); the
// shard-0 server additionally hosts the matchmaker — the group
// coordinator that pools offers from every shard, forms cross-shard
// entanglement groups, and drives the two-phase group commit.
//
// Server-to-server traffic reuses the ordinary client protocol: each
// process dials its peers with entangle/client and speaks the shard_*
// ops, so cross-shard messages get the same codec negotiation, write
// batching, and self-healing reconnects as user traffic. Submissions that
// arrive at the wrong server are forwarded to their routing key's home
// shard the same way — any node can serve any client.

// ShardOptions tunes the sharded deployment member; zero values select
// the protocol defaults.
type ShardOptions struct {
	// GroupTimeout bounds how long a formed cross-shard group waits for
	// all votes before the coordinator presumes abort (shard 0 only;
	// default 3s).
	GroupTimeout time.Duration
	// SweepInterval is the matchmaker janitor cadence (shard 0 only).
	SweepInterval time.Duration
	// StatusGrace / StatusTick tune the participant's in-doubt status
	// polling (defaults 1s / 300ms).
	StatusGrace time.Duration
	StatusTick  time.Duration
}

// distState is one server's view of the sharded deployment. It implements
// both halves of the cross-shard transport: core.DistTransport for its own
// engine (participant -> coordinator) and dist.Sender for the matchmaker
// it may host (coordinator -> participant), with loopback short-circuits
// so self-addressed messages never touch a socket.
type distState struct {
	s         *Server
	placement *shard.Map
	shardID   int
	self      string // this server's address in the placement map
	coord     string // the coordinator's (shard 0's) address
	mm        *dist.Matchmaker // non-nil on shard 0

	// Failpoints: "dist.prepare" fails coordinator->participant prepares,
	// "dist.vote" drops participant->coordinator votes. Nil without
	// Options.Faults.
	ptPrepare *fault.Point
	ptVote    *fault.Point

	mu    sync.Mutex
	peers map[string]*client.Client // lazily dialed, self-healing
}

// EnableSharding makes this server one member of a sharded deployment:
// shard shardID of the given placement map (Nodes[i] serves shard i).
// Call after NewWithOptions and before Serve — the engine's commit path
// swap is not synchronized against running traffic.
func (s *Server) EnableSharding(m *shard.Map, shardID int, opts ShardOptions) error {
	if m == nil || m.Shards < 1 || len(m.Nodes) != m.Shards {
		return errors.New("server: placement map must name one node per shard")
	}
	if shardID < 0 || shardID >= m.Shards {
		return fmt.Errorf("server: shard %d out of range [0,%d)", shardID, m.Shards)
	}
	if s.dist != nil {
		return errors.New("server: sharding already enabled")
	}
	ds := &distState{
		s:         s,
		placement: m.Clone(),
		shardID:   shardID,
		self:      m.Nodes[shardID],
		coord:     m.Nodes[0],
		peers:     make(map[string]*client.Client),
	}
	if f := s.opts.Faults; f != nil {
		ds.ptPrepare = f.Point("dist.prepare")
		ds.ptVote = f.Point("dist.vote")
	}
	if shardID == 0 {
		ds.mm = dist.New(dist.Options{
			Send:          ds,
			Log:           s.db.LogDecision,
			GroupTimeout:  opts.GroupTimeout,
			SweepInterval: opts.SweepInterval,
			Tracer:        s.db.Tracer(),
			Self:          ds.self,
			Decisions:     s.db.RecoveredDecisions(),
			Metrics:       s.db.Metrics(),
		})
	}
	s.dist = ds
	s.db.EnableDist(entangle.DistConfig{
		Shard:       shardID,
		Node:        ds.self,
		Transport:   ds,
		StatusGrace: opts.StatusGrace,
		StatusTick:  opts.StatusTick,
	})
	return nil
}

// CloseSharding stops the hosted matchmaker and closes peer connections.
// Call after the DB is drained and closed — the engine's drain may still
// need the transport to resolve parked groups.
func (s *Server) CloseSharding() {
	ds := s.dist
	if ds == nil {
		return
	}
	if ds.mm != nil {
		ds.mm.Close()
	}
	ds.mu.Lock()
	peers := ds.peers
	ds.peers = make(map[string]*client.Client)
	ds.mu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// ResolveInDoubtGroups resolves the transactions recovery left in-doubt
// (prepared, no local verdict) against the coordinator's logged decision:
// Known commit redoes the withheld effects, Known abort (or no record at
// all — presumed abort) discards them. Pending groups and an unreachable
// coordinator are retried until the budget expires; unresolved groups
// stay in-doubt (their effects stay withheld) and an error reports them.
func (s *Server) ResolveInDoubtGroups(budget time.Duration) error {
	ds := s.dist
	if ds == nil {
		return nil
	}
	groups := make(map[uint64]bool)
	for _, g := range s.db.InDoubt() {
		groups[g] = true
	}
	if len(groups) == 0 {
		return nil
	}
	deadline := time.Now().Add(budget)
	for g := range groups {
		for {
			st, err := ds.Status(g)
			if err == nil && !st.Pending {
				// Known verdict, or no record at all: under presumed
				// abort, "unknown" IS the abort verdict.
				commit := st.Known && st.Commit
				if err := s.db.ResolveInDoubt(g, commit); err != nil {
					return err
				}
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("server: in-doubt group %d unresolved: coordinator unreachable", g)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// peer returns the self-healing client connection to a peer node, dialing
// it on first use.
func (ds *distState) peer(node string) (*client.Client, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if c := ds.peers[node]; c != nil {
		return c, nil
	}
	c, err := client.DialOptions(node, client.Options{DialTimeout: 2 * time.Second})
	if err != nil {
		return nil, err
	}
	ds.peers[node] = c
	return c, nil
}

// --- core.DistTransport (participant -> coordinator) ---------------------

// Offer advertises an unmatched entangled query to the coordinator. A
// lost offer is harmless: the scheduler's retry tick re-grounds and
// re-offers the member while it waits.
func (ds *distState) Offer(o dist.Offer) {
	if ds.mm != nil {
		ds.mm.AddOffer(&o)
		return
	}
	c, err := ds.peer(ds.coord)
	if err != nil {
		return
	}
	_ = c.ShardOffer(o)
}

// Vote reports a prepare outcome to the coordinator. A lost vote resolves
// through the group timeout (abort — all-or-nothing holds).
func (ds *distState) Vote(v dist.Vote) {
	if ds.ptVote.Fire() != nil {
		return // injected lost vote
	}
	if ds.mm != nil {
		ds.mm.HandleVote(v)
		return
	}
	c, err := ds.peer(ds.coord)
	if err != nil {
		return
	}
	_ = c.ShardVote(v)
}

// Status is the synchronous in-doubt inquiry.
func (ds *distState) Status(group uint64) (dist.Status, error) {
	if ds.mm != nil {
		return ds.mm.Decision(group), nil
	}
	c, err := ds.peer(ds.coord)
	if err != nil {
		return dist.Status{}, err
	}
	return c.ShardStatus(group)
}

// --- dist.Sender (coordinator -> participant) ----------------------------

// Prepare delivers a matched answer to a participant. An error is a no
// vote — the group aborts rather than hang.
func (ds *distState) Prepare(node string, p dist.Prepare) error {
	if err := ds.ptPrepare.Fire(); err != nil {
		return err // injected lost prepare
	}
	if node == ds.self {
		ds.s.db.DeliverPrepare(p)
		return nil
	}
	c, err := ds.peer(node)
	if err != nil {
		return err
	}
	return c.ShardPrepare(p)
}

// Decide delivers the logged verdict. A lost decide is repaired by the
// participant's status poll.
func (ds *distState) Decide(node string, d dist.Decide) error {
	if node == ds.self {
		ds.s.db.ApplyDecision(d.Group, d.Commit)
		return nil
	}
	c, err := ds.peer(node)
	if err != nil {
		return err
	}
	return c.ShardDecide(d)
}

// --- wire handlers -------------------------------------------------------

var errNotCoordinator = errors.New("server: not the group coordinator")

// handleShard executes the sharding ops (placement fetch and the
// server-to-server 2PC messages).
func (s *Server) handleShard(req wire.Request) wire.Response {
	ds := s.dist
	if ds == nil {
		return fail(req.ID, errors.New("server: sharding not enabled"))
	}
	switch req.Op {
	case wire.OpPlacement:
		raw, err := ds.placement.Marshal()
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: raw}

	case wire.OpShardOffer:
		if ds.mm == nil {
			return fail(req.ID, errNotCoordinator)
		}
		var o dist.Offer
		if err := json.Unmarshal([]byte(req.SQL), &o); err != nil {
			return fail(req.ID, fmt.Errorf("bad offer: %w", err))
		}
		ds.mm.AddOffer(&o)
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpShardPrepare:
		var p dist.Prepare
		if err := json.Unmarshal([]byte(req.SQL), &p); err != nil {
			return fail(req.ID, fmt.Errorf("bad prepare: %w", err))
		}
		s.db.DeliverPrepare(p)
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpShardVote:
		if ds.mm == nil {
			return fail(req.ID, errNotCoordinator)
		}
		var v dist.Vote
		if err := json.Unmarshal([]byte(req.SQL), &v); err != nil {
			return fail(req.ID, fmt.Errorf("bad vote: %w", err))
		}
		ds.mm.HandleVote(v)
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpShardDecide:
		var d dist.Decide
		if err := json.Unmarshal([]byte(req.SQL), &d); err != nil {
			return fail(req.ID, fmt.Errorf("bad decide: %w", err))
		}
		s.db.ApplyDecision(d.Group, d.Commit)
		return wire.Response{ID: req.ID, OK: true}

	case wire.OpShardStatus:
		if ds.mm == nil {
			return fail(req.ID, errNotCoordinator)
		}
		raw, err := json.Marshal(ds.mm.Decision(req.Handle))
		if err != nil {
			return fail(req.ID, err)
		}
		return wire.Response{ID: req.ID, OK: true, Stats: raw}
	}
	return fail(req.ID, fmt.Errorf("unknown shard op %q", req.Op))
}

// homeOf returns the shard owning a script's routing key, and whether the
// script should be forwarded (it has a home that is not this server).
func (ds *distState) homeOf(script string) (int, bool) {
	home := ds.placement.Home(shard.RouteKey(script))
	return home, home != ds.shardID
}

// forwardSubmit relays a submission to its home shard's server and parks
// the remote handle under a local handle id — to the client, a forwarded
// submission is indistinguishable from a local one. The client's trace id
// rides along, so the program's spans land on the home shard's tracer
// under the id the client knows.
func (ds *distState) forwardSubmit(cs *clientState, req wire.Request) wire.Response {
	home := ds.placement.Home(shard.RouteKey(req.SQL))
	peer, err := ds.peer(ds.placement.Nodes[home])
	if err != nil {
		return fail(req.ID, fmt.Errorf("server: home shard %d unreachable: %w", home, err))
	}
	h, err := peer.SubmitScriptTraced(req.SQL, req.Trace)
	if err != nil {
		return fail(req.ID, err)
	}
	resp := wire.Response{ID: req.ID, OK: true, Handle: cs.putHandle(h)}
	if t := h.TraceID(); t != 0 {
		resp.Trace = t
	}
	return resp
}

