package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/entangle"
	"repro/entangle/client"
)

// giftPair is the giftmatch coordination in entangled SQL: donor pledges
// an amount to charity cid only if partner pledges the same amount.
func giftPair(me, them string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT 15 SECONDS;
	SELECT '%s', 1, amount AS @amt INTO ANSWER GiftMatch
	WHERE amount IN (SELECT amount FROM Tiers WHERE cid=1)
	AND ('%s', 1, amount) IN ANSWER GiftMatch
	CHOOSE 1;
	INSERT INTO Pledges VALUES ('%s', 1, @amt);
	COMMIT;`, me, them, me)
}

func soakFlightPair(me, them string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT 15 SECONDS;
	SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
	WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
	AND ('%s', fno, fdate) IN ANSWER FlightRes
	CHOOSE 1;
	INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
	COMMIT;`, me, them, me)
}

// TestRemoteSoakCoordination runs concurrent remote clients — each on its
// own TCP connection — submitting coordinating giftmatch and travel pairs
// round after round, with classical churn mixed in. Every pair must
// commit with a unified, equal answer. The suite runs under -race in CI,
// so this doubles as the serving path's race soak.
func TestRemoteSoakCoordination(t *testing.T) {
	pairs, rounds := 4, 3
	if testing.Short() {
		pairs, rounds = 2, 2
	}
	addr, _ := startServer(t, entangle.Options{RunFrequency: 2})
	admin := dialTest(t, addr)
	if err := admin.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
		CREATE TABLE Tiers (cid INT, amount INT);
		CREATE TABLE Pledges (donor VARCHAR, cid INT, amount INT);
		CREATE TABLE Churn (id INT, note VARCHAR);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Tiers VALUES (1, 50);
		INSERT INTO Tiers VALUES (1, 100);
		INSERT INTO Tiers VALUES (1, 250);
	`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, pairs*rounds*4+rounds)

	// Each pair: two goroutines, two connections, alternating travel and
	// gift coordinations across rounds.
	for p := 0; p < pairs; p++ {
		wg.Add(2)
		for side := 0; side < 2; side++ {
			go func(p, side int) {
				defer wg.Done()
				c, err := client.Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for r := 0; r < rounds; r++ {
					me := fmt.Sprintf("u%d_%d_%d", p, side, r)
					them := fmt.Sprintf("u%d_%d_%d", p, 1-side, r)
					script := soakFlightPair(me, them)
					if r%2 == 1 {
						script = giftPair(me, them)
					}
					h, err := c.SubmitScript(script)
					if err != nil {
						errs <- fmt.Errorf("pair %d side %d round %d submit: %w", p, side, r, err)
						return
					}
					if o := h.Wait(); o.Status != entangle.StatusCommitted {
						errs <- fmt.Errorf("pair %d side %d round %d: %v (%v)", p, side, r, o.Status, o.Err)
						return
					}
				}
			}(p, side)
		}
	}

	// Classical churn on its own connection: inserts and reads that share
	// the engine with the coordinating pairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for i := 0; i < pairs*rounds; i++ {
			if _, err := c.Exec(fmt.Sprintf("INSERT INTO Churn VALUES (%d, 'n%d')", i, i)); err != nil {
				errs <- fmt.Errorf("churn insert %d: %w", i, err)
				return
			}
			if _, err := c.Query("SELECT id FROM Churn WHERE id=" + fmt.Sprint(i)); err != nil {
				errs <- fmt.Errorf("churn select %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Every pair's answers must be unified and equal: same flight for both
	// sides of a travel round, same amount for both sides of a gift round.
	for p := 0; p < pairs; p++ {
		for r := 0; r < rounds; r++ {
			a := fmt.Sprintf("u%d_0_%d", p, r)
			b := fmt.Sprintf("u%d_1_%d", p, r)
			table, col, key := "Bookings", "fno", "name"
			if r%2 == 1 {
				table, col, key = "Pledges", "amount", "donor"
			}
			ra, err := admin.Query(fmt.Sprintf("SELECT %s FROM %s WHERE %s='%s'", col, table, key, a))
			if err != nil {
				t.Fatal(err)
			}
			rb, err := admin.Query(fmt.Sprintf("SELECT %s FROM %s WHERE %s='%s'", col, table, key, b))
			if err != nil {
				t.Fatal(err)
			}
			if len(ra.Rows) != 1 || len(rb.Rows) != 1 {
				t.Fatalf("pair %d round %d: rows %v / %v", p, r, ra.Rows, rb.Rows)
			}
			if !ra.Rows[0][0].Equal(rb.Rows[0][0]) {
				t.Errorf("pair %d round %d: answers differ: %v vs %v", p, r, ra.Rows[0][0], rb.Rows[0][0])
			}
		}
	}

	// The engine agrees: one group commit per coordinated pair.
	snap, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(pairs * rounds); snap.GroupCommits < want {
		t.Errorf("group commits %d < %d", snap.GroupCommits, want)
	}
}
