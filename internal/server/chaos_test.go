package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/fault"
	"repro/internal/wire"
)

// startFaultServer is startServer with explicit server options (admission
// control, fault registry). The registry's points start disarmed, so the
// test controls exactly when chaos begins.
func startFaultServer(t *testing.T, dbOpts entangle.Options, opts Options) (string, *entangle.DB, *Server) {
	t.Helper()
	db, err := entangle.Open(dbOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(db, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("serve: %v", err)
		}
		db.Close()
	})
	return ln.Addr().String(), db, srv
}

// chaosSeed returns the fault seed: fixed by default so CI failures
// reproduce, overridable via CHAOS_SEED for exploratory runs.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		t.Logf("chaos seed %d (from CHAOS_SEED)", v)
		return v
	}
	return 20110807
}

// selfHealing are client options tuned for a hostile network: tight
// backoff so the test stays fast, deep budgets so injected faults do not
// exhaust a call that would eventually succeed.
var selfHealing = client.Options{
	DialTimeout:         5 * time.Second,
	RetryBudget:         256,
	DialBudget:          256,
	ReconnectBackoff:    2 * time.Millisecond,
	ReconnectMaxBackoff: 25 * time.Millisecond,
}

// TestChaosSoakCoordination is the PR's acceptance test: concurrent
// giftmatch and travel pairs submitted through a server whose connections
// randomly reset, whose dispatch randomly stalls, and whose admission
// control sheds under load — while self-healing clients reconnect and
// retry. The invariant checked at the end, directly against the embedded
// DB, is the paper's: every coordination group is all-or-nothing. A pair
// either booked/pledged on both sides with equal answers, or on neither;
// no observable state ever shows half a group.
func TestChaosSoakCoordination(t *testing.T) {
	pairs, rounds := 5, 3
	if testing.Short() {
		pairs, rounds = 2, 2
	}
	reg := fault.NewRegistry(chaosSeed(t))
	addr, db, srv := startFaultServer(t,
		entangle.Options{RunFrequency: 4},
		Options{Faults: reg, MaxInFlight: 24, PerConnPending: 8})

	admin := dialTest(t, addr)
	if err := admin.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
		CREATE TABLE Tiers (cid INT, amount INT);
		CREATE TABLE Pledges (donor VARCHAR, cid INT, amount INT);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Tiers VALUES (1, 50);
		INSERT INTO Tiers VALUES (1, 100);
	`); err != nil {
		t.Fatal(err)
	}

	// Dial every worker before arming the failpoints so the initial dials
	// (which are fail-fast by design) cannot be casualties; every later
	// reconnect runs under fire.
	clients := make([]*client.Client, pairs*2)
	for i := range clients {
		c, err := client.DialOptions(addr, selfHealing)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	reg.Enable("server.conn.write", fault.Trigger{Prob: 0.04}, fault.Action{Kind: fault.KindReset})
	reg.Enable("server.conn.read", fault.Trigger{Prob: 0.02}, fault.Action{Kind: fault.KindReset})
	reg.Enable("server.dispatch", fault.Trigger{Prob: 0.05},
		fault.Action{Kind: fault.KindDelay, Delay: 2 * time.Millisecond})
	defer reg.DisableAll()

	// committed[name] records sides whose Wait reported a clean commit;
	// those MUST have their row. Sides whose Wait lost its outcome to the
	// chaos (retries exhausted) are verified by the atomicity sweep alone.
	var mu sync.Mutex
	committed := map[string]bool{}
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		for side := 0; side < 2; side++ {
			wg.Add(1)
			go func(p, side int) {
				defer wg.Done()
				c := clients[p*2+side]
				for r := 0; r < rounds; r++ {
					// Classical churn between coordinations keeps frames
					// flowing so the probabilistic failpoints actually bite.
					for i := 0; i < 8; i++ {
						c.Ping()
						c.Query(fmt.Sprintf("SELECT fno FROM Flights WHERE fno=%d", 122+i%2))
					}
					me := fmt.Sprintf("c%d_%d_%d", p, side, r)
					them := fmt.Sprintf("c%d_%d_%d", p, 1-side, r)
					script := soakFlightPair(me, them)
					if r%2 == 1 {
						script = giftPair(me, them)
					}
					h, err := c.SubmitScript(script)
					if err != nil {
						// Submit lost to the chaos; the partner times out
						// cleanly and the atomicity sweep still checks it.
						continue
					}
					if o := h.Wait(); o.Status == entangle.StatusCommitted {
						mu.Lock()
						committed[me] = true
						mu.Unlock()
					}
				}
			}(p, side)
		}
	}
	wg.Wait()
	reg.DisableAll() // quiet network for the verification reads

	// Atomicity sweep straight through the embedded DB — no wire, no
	// client, no place for a stale cache to hide a half-applied group.
	count := func(table, key, name string) int {
		t.Helper()
		res, err := db.Query(fmt.Sprintf("SELECT * FROM %s WHERE %s='%s'", table, key, name))
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	commits := 0
	for p := 0; p < pairs; p++ {
		for r := 0; r < rounds; r++ {
			table, col, key := "Bookings", "fno", "name"
			if r%2 == 1 {
				table, col, key = "Pledges", "amount", "donor"
			}
			a := fmt.Sprintf("c%d_0_%d", p, r)
			b := fmt.Sprintf("c%d_1_%d", p, r)
			na, nb := count(table, key, a), count(table, key, b)
			if na > 1 || nb > 1 {
				t.Fatalf("pair %d round %d: duplicate rows (%d/%d) — a retry double-executed", p, r, na, nb)
			}
			if na != nb {
				t.Fatalf("pair %d round %d: group half-applied (%s=%d rows, %s=%d rows)", p, r, a, na, b, nb)
			}
			if committed[a] && na == 0 {
				t.Fatalf("pair %d round %d: %s reported committed but has no row", p, r, a)
			}
			if committed[b] && nb == 0 {
				t.Fatalf("pair %d round %d: %s reported committed but has no row", p, r, b)
			}
			if na == 1 {
				commits++
				ra, _ := db.Query(fmt.Sprintf("SELECT %s FROM %s WHERE %s='%s'", col, table, key, a))
				rb, _ := db.Query(fmt.Sprintf("SELECT %s FROM %s WHERE %s='%s'", col, table, key, b))
				if !ra.Rows[0][0].Equal(rb.Rows[0][0]) {
					t.Fatalf("pair %d round %d: answers not unified: %v vs %v", p, r, ra.Rows[0][0], rb.Rows[0][0])
				}
			}
		}
	}
	if commits == 0 {
		t.Fatal("no pair committed — the soak never exercised the commit path")
	}
	if reg.Fired() == 0 {
		t.Fatal("no fault ever fired — the soak never exercised the failure path")
	}
	stats := srv.ServiceStats()
	if stats.FaultsInjected != reg.Fired() {
		t.Fatalf("stats.FaultsInjected = %d, registry fired %d", stats.FaultsInjected, reg.Fired())
	}
	t.Logf("chaos soak: %d/%d groups committed, %d faults, %d sheds, %d server-side replays, %d reconnects",
		commits, pairs*rounds, reg.Fired(), stats.Sheds, stats.Retries, stats.Reconnects)
}

// TestRetryExactlyOnce pins the idempotency contract end to end: the
// server executes an INSERT, the connection resets while the response is
// in flight, and the client transparently reconnects and retries under
// the same idempotency id. The server must replay the recorded response
// instead of re-executing — exactly one row.
func TestRetryExactlyOnce(t *testing.T) {
	reg := fault.NewRegistry(1)
	addr, db, srv := startFaultServer(t, entangle.Options{}, Options{Faults: reg})
	c, err := client.DialOptions(addr, selfHealing)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ExecDDL(`CREATE TABLE T (id INT, v VARCHAR)`); err != nil {
		t.Fatal(err)
	}

	// The next server write — the INSERT's response — is torn down with a
	// TCP reset after the statement already executed.
	reg.Enable("server.conn.write", fault.Trigger{OneShot: true}, fault.Action{Kind: fault.KindReset})
	if _, err := c.Exec(`INSERT INTO T VALUES (1, 'once')`); err != nil {
		t.Fatalf("exec through reset: %v", err)
	}

	res, err := db.Query(`SELECT id FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want exactly 1 (retry must not double-insert)", len(res.Rows))
	}
	if c.Reconnects() < 1 || c.Retries() < 1 {
		t.Fatalf("client did not self-heal: reconnects=%d retries=%d", c.Reconnects(), c.Retries())
	}
	if s := srv.ServiceStats(); s.Retries < 1 || s.Reconnects < 1 {
		t.Fatalf("server saw no dedup replay: %+v", s)
	}
}

// TestHandleSurvivesReconnect: handles are bound to the client identity,
// not the TCP connection, so a Wait issued after the connection died is
// retried on the healed connection and still collects the outcome.
func TestHandleSurvivesReconnect(t *testing.T) {
	reg := fault.NewRegistry(1)
	addr, _, _ := startFaultServer(t, entangle.Options{RunFrequency: 4}, Options{Faults: reg})
	c, err := client.DialOptions(addr, selfHealing)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setupFlights(t, c)

	h1, err := c.SubmitScript(flightPair("Chip", "Dale"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.SubmitScript(flightPair("Dale", "Chip"))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the connection under the client: the server's next read resets.
	reg.Enable("server.conn.read", fault.Trigger{OneShot: true}, fault.Action{Kind: fault.KindReset})
	c.Ping() // trigger a server read; outcome irrelevant, the reset is the point

	w1 := make(chan client.Outcome, 1)
	go func() { w1 <- h1.Wait() }()
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Dale after reconnect: %+v", o)
	}
	if o := <-w1; o.Status != entangle.StatusCommitted {
		t.Fatalf("Chip after reconnect: %+v", o)
	}
	if c.Reconnects() < 1 {
		t.Fatal("connection never died — the test lost its teeth")
	}
}

// TestChaosStaleSessionTypedError pins the typed contract a self-healed
// client sees through a stale interactive session: the old connection's
// sessions rolled back with it, so the server answers the old id with
// ErrCodeUnknownSession — errors.Is(err, wire.ErrUnknownSession) on the
// client — and a freshly opened session works. The shell leans on exactly
// this to reopen its session instead of wedging after a reset.
func TestChaosStaleSessionTypedError(t *testing.T) {
	reg := fault.NewRegistry(1)
	addr, _, _ := startFaultServer(t, entangle.Options{RunFrequency: 1}, Options{Faults: reg})
	c, err := client.DialOptions(addr, selfHealing)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setupFlights(t, c)

	ses := c.Interactive()
	if _, err := ses.Exec("SELECT fno FROM Flights"); err != nil {
		t.Fatalf("session exec before fault: %v", err)
	}

	reg.Enable("server.conn.read", fault.Trigger{OneShot: true}, fault.Action{Kind: fault.KindReset})
	c.Ping() // trigger the reset; the retryable ping rides the reconnect

	_, err = ses.Exec("SELECT fno FROM Flights")
	if err == nil {
		t.Fatal("stale session survived a connection reset")
	}
	if !errors.Is(err, wire.ErrUnknownSession) {
		t.Fatalf("stale session error not typed: %v", err)
	}
	if c.Reconnects() < 1 {
		t.Fatal("connection never died — the test lost its teeth")
	}
	if _, err := c.Interactive().Exec("SELECT fno FROM Flights"); err != nil {
		t.Fatalf("fresh session after reconnect: %v", err)
	}
}

// TestOverloadShedTypedError pins admission control's wire contract with a
// raw (non-retrying) connection: a request over the in-flight limit gets
// an immediate error response whose code maps to wire.ErrOverloaded via
// errors.Is. Then a self-healing client demonstrates the other half of
// the contract: overload is retryable, so once load drains its call
// succeeds transparently.
func TestOverloadShedTypedError(t *testing.T) {
	addr, _, srv := startFaultServer(t, entangle.Options{RunFrequency: 4}, Options{MaxInFlight: 1})
	admin := dialTest(t, addr)
	setupFlights(t, admin)

	// Occupy the single in-flight slot with a parked Wait on a partnerless
	// pair (2s script timeout bounds the test).
	occ, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer occ.Close()
	script := fmt.Sprintf(`
		BEGIN TRANSACTION WITH TIMEOUT 2 SECONDS;
		SELECT 'Huey', fno AS @f INTO ANSWER R
		WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
		AND ('Dewey', fno) IN ANSWER R CHOOSE 1;
		INSERT INTO Bookings VALUES ('Huey', @f, '2011-05-03');
		COMMIT;`)
	if err := wire.WriteFrame(occ, wire.Request{ID: 1, Op: wire.OpSubmit, SQL: script}); err != nil {
		t.Fatal(err)
	}
	var sub wire.Response
	if err := wire.ReadInto(occ, &sub); err != nil || !sub.OK {
		t.Fatalf("submit: %v %+v", err, sub)
	}
	if err := wire.WriteFrame(occ, wire.Request{ID: 2, Op: wire.OpWait, Handle: sub.Handle}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the wait park and hold the slot

	// A second raw connection is over the limit: typed, immediate shed.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := wire.WriteFrame(raw, wire.Request{ID: 1, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var shed wire.Response
	if err := wire.ReadInto(raw, &shed); err != nil {
		t.Fatal(err)
	}
	if shed.OK || shed.ErrCode != wire.ErrCodeOverloaded {
		t.Fatalf("want overloaded shed, got %+v", shed)
	}
	if !errors.Is(wire.ErrorForCode(shed.ErrCode, shed.Error), wire.ErrOverloaded) {
		t.Fatal("shed error does not map to wire.ErrOverloaded")
	}

	// The self-healing client retries the shed with backoff until the
	// parked wait times out and frees the slot.
	c, err := client.DialOptions(addr, selfHealing)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through overload: %v", err)
	}
	if c.Retries() < 1 {
		t.Fatal("overload never retried — the slot was free, test lost its teeth")
	}
	if s := srv.ServiceStats(); s.Sheds < 2 {
		t.Fatalf("server sheds = %d, want >= 2", s.Sheds)
	}
}

// TestShedRetryReexecutes: a per-connection shed of a parking op must not
// poison the dedup window — the client's retry of the same idempotency id
// has to re-execute, not replay the refusal.
func TestShedRetryReexecutes(t *testing.T) {
	addr, _, _ := startFaultServer(t, entangle.Options{RunFrequency: 4},
		Options{MaxInFlight: 1})
	admin := dialTest(t, addr)
	setupFlights(t, admin)

	c, err := client.DialOptions(addr, selfHealing)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h1, err := c.SubmitScript(flightPair("Launchpad", "Gizmo"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.SubmitScript(flightPair("Gizmo", "Launchpad"))
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent Waits against MaxInFlight=1: one parks, the other is
	// shed and retried under its original idempotency id until the pair
	// commits and both slots clear. Both must land on the real outcome.
	w1 := make(chan client.Outcome, 1)
	go func() { w1 <- h1.Wait() }()
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Gizmo: %+v", o)
	}
	if o := <-w1; o.Status != entangle.StatusCommitted {
		t.Fatalf("Launchpad: %+v", o)
	}
}
