package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/core"
	"repro/internal/wire"
)

// startServer opens an in-memory DB, serves it on a loopback listener, and
// returns the dial address. Everything is torn down with the test.
func startServer(t *testing.T, opts entangle.Options) (string, *entangle.DB) {
	t.Helper()
	db, err := entangle.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("serve: %v", err)
		}
		db.Close()
	})
	return ln.Addr().String(), db
}

func dialTest(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func flightPair(me, them string) string {
	return fmt.Sprintf(`
	BEGIN TRANSACTION WITH TIMEOUT 5 SECONDS;
	SELECT '%s', fno AS @fno, fdate AS @fdate INTO ANSWER FlightRes
	WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
	AND ('%s', fno, fdate) IN ANSWER FlightRes
	CHOOSE 1;
	INSERT INTO Bookings VALUES ('%s', @fno, @fdate);
	COMMIT;`, me, them, me)
}

func setupFlights(t *testing.T, c *client.Client) {
	t.Helper()
	if err := c.ExecDDL(`
		CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR);
		CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`
		INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
		INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
		INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
	`); err != nil {
		t.Fatal(err)
	}
}

// The acceptance scenario: two clients on separate TCP connections each
// submit one half of an entangled pair; both commit and both observe the
// same unified answer.
func TestRemotePairCoordinatesAcrossConnections(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{RunFrequency: 2})
	mickey := dialTest(t, addr)
	minnie := dialTest(t, addr)
	setupFlights(t, mickey)

	h1, err := mickey.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := minnie.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}

	// Both sides read the unified answer back over their own connections.
	resM, err := mickey.Query("SELECT fno FROM Bookings WHERE name='Mickey'")
	if err != nil {
		t.Fatal(err)
	}
	resN, err := minnie.Query("SELECT fno FROM Bookings WHERE name='Minnie'")
	if err != nil {
		t.Fatal(err)
	}
	if len(resM.Rows) != 1 || len(resN.Rows) != 1 {
		t.Fatalf("bookings: %v / %v", resM.Rows, resN.Rows)
	}
	if !resM.Rows[0][0].Equal(resN.Rows[0][0]) {
		t.Fatalf("answers not unified: %v vs %v", resM.Rows[0][0], resN.Rows[0][0])
	}

	// The coordination shows up in the counters as one entanglement op and
	// one group commit.
	snap, err := minnie.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.GroupCommits < 1 || snap.EntangleOps < 1 {
		t.Fatalf("stats: %+v", snap)
	}
}

// Wait behaves like the embedded API for failures too: a partnerless
// transaction times out, and errors.Is(core.ErrTimeout) holds across the
// wire.
func TestRemoteTimeoutMapsSentinelError(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{RunFrequency: 2})
	c := dialTest(t, addr)
	setupFlights(t, c)
	h, err := c.SubmitScript(flightPair("Donald", "Daffy"))
	if err != nil {
		t.Fatal(err)
	}
	// Cut the 5s script timeout down via a poll loop: the outcome must be
	// reported eventually and identically via Poll and Wait.
	var o client.Outcome
	for {
		var done bool
		if o, done = h.Poll(); done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if o.Status != entangle.StatusTimedOut || !errors.Is(o.Err, core.ErrTimeout) {
		t.Fatalf("outcome: %+v", o)
	}
	if o2 := h.Wait(); o2.Status != o.Status {
		t.Fatalf("wait after poll: %+v vs %+v", o2, o)
	}
}

// Interactive sessions work remotely: a transaction block sees its own
// writes, a rollback undoes them, and host variables persist.
func TestRemoteInteractiveSession(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	c := dialTest(t, addr)
	setupFlights(t, c)

	s := c.Interactive()
	defer s.Close()
	if _, err := s.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO Bookings VALUES ('Goofy', 99, '2011-06-01')"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT name FROM Bookings WHERE name='Goofy'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("own write invisible: %v", res.Rows)
	}
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query("SELECT name FROM Bookings WHERE name='Goofy'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rollback did not undo: %v", res.Rows)
	}

	// Host variables persist across statements of the session.
	if _, err := s.Exec("SET @fav = 122"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Exec("SELECT fno FROM Flights WHERE fno=@fav")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("host variable lost: %v", res.Rows)
	}
}

// Catalog and error surfaces: tables frame, unknown ops, bad handles, and
// entangled queries rejected outside SubmitScript.
func TestRemoteSurfaceErrors(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	c := dialTest(t, addr)
	setupFlights(t, c)

	tables, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Name != "Bookings" || tables[1].Rows != 3 {
		t.Fatalf("tables: %+v", tables)
	}

	if _, err := c.Exec("SELECT 'A', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1"); err == nil {
		t.Fatal("entangled exec should be rejected")
	}
	if _, err := c.Exec("SELEKT nonsense"); err == nil {
		t.Fatal("parse error should surface")
	}
	if _, err := c.SubmitScript("ALSO NOT SQL"); err == nil {
		t.Fatal("submit parse error should surface")
	}
}

// A raw connection speaking garbage must get a clean close, and pipelined
// valid frames with out-of-order completion must correlate by ID.
func TestServerRejectsGarbageStream(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A frame whose payload is not JSON: server answers with an error
	// frame, then closes. Framed by hand since WriteFrame validates.
	payload := []byte("this is not json")
	hdr := []byte{0, 0, 0, byte(len(payload))}
	if _, err := nc.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadInto(nc, &resp); err != nil {
		t.Fatalf("expected error response, got %v", err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("resp: %+v", resp)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(nc); err == nil {
		t.Fatal("expected connection close after garbage")
	}
}

// A response too large for one frame must come back as an error response,
// not a silently dropped reply that leaves the client hanging.
func TestRemoteOversizedResponseErrors(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	c := dialTest(t, addr)
	if err := c.ExecDDL(`CREATE TABLE Blobs (id INT, data VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	// ~10 MiB across rows; each INSERT stays under MaxFrameSize but the
	// full SELECT response does not.
	chunk := strings.Repeat("x", 1<<20)
	for i := 0; i < 10; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO Blobs VALUES (%d, '%s')", i, chunk)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Query("SELECT id, data FROM Blobs")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "could not be encoded") {
			t.Fatalf("expected encode error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversized query hung instead of erroring")
	}
	// The connection survives an unencodable response.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after oversized response: %v", err)
	}
}

// The serve binary's SIGTERM sequence: a client parked in Wait on a
// partnerless transaction is settled by the concurrent engine drain, so
// the network drain finishes well before the 60s script timeout.
func TestShutdownSettlesParkedPartnerlessWait(t *testing.T) {
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ExecDDL(`CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR); CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE)`); err != nil {
		t.Fatal(err)
	}
	long := strings.Replace(flightPair("Donald", "Daffy"), "TIMEOUT 5 SECONDS", "TIMEOUT 60 SECONDS", 1)
	h, err := c.SubmitScript(long)
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan client.Outcome, 1)
	go func() { parked <- h.Wait() }()
	time.Sleep(50 * time.Millisecond) // let the wait frame park server-side

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	drained := make(chan error, 1)
	go func() { drained <- db.Drain(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("network drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("engine drain: %v", err)
	}
	o := <-parked
	if o.Status != entangle.StatusTimedOut || !errors.Is(o.Err, core.ErrDraining) {
		t.Fatalf("parked wait: %+v", o)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v; parked wait should settle well before the 60s script timeout", elapsed)
	}
}

// Shutdown drains in-flight requests: a submitted pair completes and its
// waits are answered even though shutdown starts first.
func TestShutdownDrainsInflightWaits(t *testing.T) {
	db, err := entangle.Open(entangle.Options{RunFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	c1, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.ExecDDL(`CREATE TABLE Flights (fno INT, fdate DATE, dest VARCHAR); CREATE TABLE Bookings (name VARCHAR, fno INT, fdate DATE)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`INSERT INTO Flights VALUES (122, '2011-05-03', 'LA')`); err != nil {
		t.Fatal(err)
	}

	h1, err := c1.SubmitScript(flightPair("Mickey", "Minnie"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.SubmitScript(flightPair("Minnie", "Mickey"))
	if err != nil {
		t.Fatal(err)
	}
	// Park the waits, then shut down: both must be answered before the
	// connections die.
	type res struct{ o client.Outcome }
	r1 := make(chan res, 1)
	r2 := make(chan res, 1)
	go func() { r1 <- res{h1.Wait()} }()
	go func() { r2 <- res{h2.Wait()} }()
	time.Sleep(50 * time.Millisecond) // let the wait frames reach the server

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("serve: %v", err)
	}
	if o := (<-r1).o; o.Status != entangle.StatusCommitted {
		t.Fatalf("Mickey through shutdown: %+v", o)
	}
	if o := (<-r2).o; o.Status != entangle.StatusCommitted {
		t.Fatalf("Minnie through shutdown: %+v", o)
	}
	// And the DB drains cleanly afterwards, per the serve binary's path.
	if err := db.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
