package server

// Mixed-version negotiation: the binary codec is opt-in per connection,
// so every pairing of old and new peers must land on a working codec (or
// a typed error) — never a hang. The fake legacy server below replays the
// protocol-v1 behavior (hello is an unknown op) so the fallback path
// stays tested even though the real v1 server is gone.

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/entangle"
	"repro/entangle/client"
	"repro/internal/wire"
)

func startServerJSONOnly(t *testing.T) string {
	t.Helper()
	db, err := entangle.Open(entangle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	srv.JSONOnly = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Shutdown(t.Context())
		db.Close()
	})
	return ln.Addr().String()
}

// TestNegotiateDefault: default client against a default server lands on
// binary, and the connection actually works afterwards.
func TestNegotiateDefault(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	c := dialTest(t, addr)
	if c.Codec() != wire.CodecBinary {
		t.Fatalf("negotiated %q, want binary", c.Codec())
	}
	roundTrip(t, c)
}

// TestNegotiateJSONOnlyServer: a binary-wanting client against a server
// deployed JSON-only falls back to JSON cleanly.
func TestNegotiateJSONOnlyServer(t *testing.T) {
	addr := startServerJSONOnly(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecJSON {
		t.Fatalf("negotiated %q, want json", c.Codec())
	}
	roundTrip(t, c)
}

// TestNegotiateJSONPinnedClient: a client pinned to JSON never upgrades,
// even against a binary-capable server.
func TestNegotiateJSONPinnedClient(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	c, err := client.DialOptions(addr, client.Options{Codec: wire.CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecJSON {
		t.Fatalf("negotiated %q, want json", c.Codec())
	}
	roundTrip(t, c)
}

// TestNegotiateUnknownCodecOption: an unknown Options.Codec is a dial-time
// error, not a surprise at first use.
func TestNegotiateUnknownCodecOption(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	if _, err := client.DialOptions(addr, client.Options{Codec: "protobuf"}); err == nil {
		t.Fatal("want error for unknown codec option")
	}
}

// TestNegotiateLegacyServer: against a protocol-v1 server — hello is an
// unknown op, ping answers version 1 — Dial falls back to the v1
// handshake and stays on JSON.
func TestNegotiateLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		for {
			payload, err := wire.ReadFrame(nc)
			if err != nil {
				return
			}
			var req wire.Request
			if err := wire.JSON.DecodeRequest(payload, &req); err != nil {
				return
			}
			resp := wire.Response{ID: req.ID}
			switch req.Op {
			case wire.OpPing:
				resp.OK = true
				resp.Version = wire.ProtocolVersion
			default:
				resp.Error = "unknown op \"" + req.Op + "\""
			}
			frame, err := wire.JSON.AppendResponseFrame(nil, &resp)
			if err != nil {
				return
			}
			if _, err := nc.Write(frame); err != nil {
				return
			}
		}
	}()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial against legacy server: %v", err)
	}
	defer c.Close()
	if c.Codec() != wire.CodecJSON {
		t.Fatalf("negotiated %q against legacy server, want json", c.Codec())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping over fallback connection: %v", err)
	}
}

// TestNegotiateMalformedHandshake: a peer that opens with garbage — a
// binary frame before any hello, or bytes that are not the protocol at
// all — gets one typed error response and a closed connection, bounded in
// time. Never a hang, never a panic.
func TestNegotiateMalformedHandshake(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	cases := []struct {
		name  string
		frame []byte
	}{
		{"binary before hello", func() []byte {
			f, err := wire.Binary.AppendRequestFrame(nil, &wire.Request{ID: 1, Op: wire.OpPing})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}()},
		{"framed garbage", func() []byte {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 12)
			return append(hdr[:], "hello, world"...)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			nc.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := nc.Write(tc.frame); err != nil {
				t.Fatal(err)
			}
			payload, err := wire.ReadFrame(nc)
			if err != nil {
				t.Fatalf("want a typed error response before close, got %v", err)
			}
			var resp wire.Response
			if err := wire.JSON.DecodeResponse(payload, &resp); err != nil {
				t.Fatalf("error response not JSON: %v", err)
			}
			if resp.OK || !strings.Contains(resp.Error, "bad request") {
				t.Fatalf("response = %+v, want bad-request error", resp)
			}
			// The server gives up on the stream: the next read sees EOF,
			// not silence.
			if _, err := wire.ReadFrame(nc); err != io.EOF {
				t.Fatalf("after error response: got %v, want EOF", err)
			}
		})
	}
}

// TestNegotiateHelloNotFirst: hello anywhere but the first request is
// refused — by then frames may be in flight in the old codec and the
// switch would be ambiguous.
func TestNegotiateHelloNotFirst(t *testing.T) {
	addr, _ := startServer(t, entangle.Options{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))

	send := func(req wire.Request) wire.Response {
		t.Helper()
		frame, err := wire.JSON.AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		payload, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := wire.JSON.DecodeResponse(payload, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := send(wire.Request{ID: 1, Op: wire.OpPing}); !resp.OK {
		t.Fatalf("ping: %+v", resp)
	}
	resp := send(wire.Request{ID: 2, Op: wire.OpHello, Codec: wire.CodecBinary})
	if resp.OK || !strings.Contains(resp.Error, "first request") {
		t.Fatalf("late hello: %+v, want first-request error", resp)
	}
	// The connection survives (still JSON): a refused hello is an error,
	// not a torn stream.
	if resp := send(wire.Request{ID: 3, Op: wire.OpPing}); !resp.OK {
		t.Fatalf("ping after refused hello: %+v", resp)
	}
}

// roundTrip exercises DDL, classical ops, and a full entangled pair over
// whatever codec the connection negotiated.
func roundTrip(t *testing.T, c *client.Client) {
	t.Helper()
	setupFlights(t, c)
	h1, err := c.SubmitScript(flightPair("alice", "bob"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.SubmitScript(flightPair("bob", "alice"))
	if err != nil {
		t.Fatal(err)
	}
	if o := h1.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("h1: %+v", o)
	}
	if o := h2.Wait(); o.Status != entangle.StatusCommitted {
		t.Fatalf("h2: %+v", o)
	}
	res, err := c.Query("SELECT name FROM Bookings")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("bookings: %d rows, want 2", len(res.Rows))
	}
}
