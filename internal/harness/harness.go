// Package harness drives the paper's evaluation (§5.2): it regenerates the
// three panels of Figure 6 — concurrency scaling (6a), pending
// transactions vs. run frequency (6b), and entanglement complexity (6c) —
// over the workload generator, and renders the same series the paper
// plots.
//
// Absolute times differ from the paper (our substrate is an in-process Go
// engine, not MySQL 5.5 on 2011 hardware); the claims under test are the
// shapes: time inversely proportional to connections with Entangled-T's
// overhead explained by query evaluation (6a), time linear in p with worse
// slope at higher run frequency (6b), and a small slope in coordinating-set
// size (6c).
package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/entangle"
	"repro/internal/workload"
)

// Config sizes an experiment.
type Config struct {
	// N is the number of transactions per data point (paper: 10000).
	N int
	// Users in the social graph.
	Users int
	// StmtLatency simulates the client-DBMS round trip per statement; this
	// is what makes throughput connection-bound, as in the paper's setup.
	StmtLatency time.Duration
	// Seed for workload generation.
	Seed int64
	// GroundWorkers is the engine's grounding pool size: 1 reproduces the
	// paper's serialized middle-tier evaluation (the linear-in-p cost of
	// Figure 6(b)); 0 uses the engine's parallel default.
	GroundWorkers int
	// GroundCache enables the engine's cross-round grounding cache, so
	// pending queries whose grounded tables did not change are not
	// re-grounded every round (the BenchmarkFigure6bGroundCache knob).
	GroundCache bool
	// SolveBudget is the exact coordinating-set search budget (0 = engine
	// default; negative = greedy-closure-only, the pre-exact solver, for
	// the BenchmarkAblationSolver baseline).
	SolveBudget int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.N <= 0 {
		out.N = 1000
	}
	if out.Users <= 0 {
		out.Users = 1000
	}
	if out.StmtLatency <= 0 {
		out.StmtLatency = 200 * time.Microsecond
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Point is one measurement.
type Point struct {
	X       float64
	Seconds float64
}

// Series is one plotted line.
type Series struct {
	Name   string
	Points []Point
}

// newDB opens a fresh in-memory database with a seeded dataset.
func newDB(cfg Config, connections, runFreq int) (*entangle.DB, *workload.Dataset, error) {
	d, err := workload.NewDataset(workload.Config{
		Users: cfg.Users,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	db, err := entangle.Open(entangle.Options{
		Connections:    connections,
		RunFrequency:   runFreq,
		StmtLatency:    cfg.StmtLatency,
		GroundWorkers:  cfg.GroundWorkers,
		GroundCache:    cfg.GroundCache,
		SolveBudget:    cfg.SolveBudget,
		DefaultTimeout: 5 * time.Minute,
		RetryInterval:  10 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := d.Setup(db); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, d, nil
}

// runClassical executes n programs through c worker connections (one
// transaction per connection at a time, as in the paper's MySQL driver).
func runClassical(db *entangle.DB, progs []entangle.Program, c int) error {
	jobs := make(chan entangle.Program)
	errCh := make(chan error, len(progs))
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				o := db.RunDirect(p)
				if o.Status != entangle.StatusCommitted {
					errCh <- fmt.Errorf("harness: %s: %v (%v)", p.Name, o.Status, o.Err)
					return
				}
			}
		}()
	}
	for _, p := range progs {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// runEntangledBatches submits programs in batches of batchSize (complete
// coordination groups) and waits for each batch, mirroring §5.2.2's batch
// submission.
func runEntangledBatches(db *entangle.DB, progs []entangle.Program, batchSize int) error {
	for start := 0; start < len(progs); start += batchSize {
		end := start + batchSize
		if end > len(progs) {
			end = len(progs)
		}
		handles := make([]*entangle.Handle, 0, end-start)
		for _, p := range progs[start:end] {
			handles = append(handles, db.Submit(p))
		}
		for i, h := range handles {
			if o := h.Wait(); o.Status != entangle.StatusCommitted {
				return fmt.Errorf("harness: batch tx %d: %v (%v)", start+i, o.Status, o.Err)
			}
		}
	}
	return nil
}

// MeasureWorkload times one (kind, connections) cell of Figure 6(a).
func MeasureWorkload(cfg Config, kind workload.Kind, connections int) (float64, error) {
	// Entangled batches are sized to the connection count and the engine
	// starts a run per full batch.
	runFreq := 1
	if kind.Entangled() {
		runFreq = connections
	}
	db, d, err := newDB(cfg, connections, runFreq)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	progs := d.Batch(kind, cfg.N)
	start := time.Now()
	if kind.Entangled() {
		err = runEntangledBatches(db, progs, connections)
	} else {
		err = runClassical(db, progs, connections)
	}
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if _, err := workload.VerifyReserve(db); err != nil {
		return 0, err
	}
	return elapsed, nil
}

// Figure6a regenerates the concurrency experiment: six workloads over the
// given connection counts.
func Figure6a(cfg Config, connections []int) ([]Series, error) {
	c := cfg.withDefaults()
	kinds := []workload.Kind{
		workload.NoSocialT, workload.SocialT, workload.EntangledT,
		workload.NoSocialQ, workload.SocialQ, workload.EntangledQ,
	}
	var out []Series
	for _, kind := range kinds {
		s := Series{Name: kind.String()}
		for _, conn := range connections {
			secs, err := MeasureWorkload(c, kind, conn)
			if err != nil {
				return nil, fmt.Errorf("%s @%d connections: %w", kind, conn, err)
			}
			s.Points = append(s.Points, Point{X: float64(conn), Seconds: secs})
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure6b regenerates the pending-transactions experiment: p transactions
// per run lack partners (their partners are withheld until the end), and
// the run frequency f varies. Higher frequency means more runs, each
// re-executing and re-aborting the p pending transactions.
func Figure6b(cfg Config, pendings []int, freqs []int) ([]Series, error) {
	c := cfg.withDefaults()
	var out []Series
	for _, f := range freqs {
		s := Series{Name: fmt.Sprintf("f=%d", f)}
		for _, p := range pendings {
			secs, err := MeasurePending(c, p, f)
			if err != nil {
				return nil, fmt.Errorf("f=%d p=%d: %w", f, p, err)
			}
			s.Points = append(s.Points, Point{X: float64(p), Seconds: secs})
		}
		out = append(out, s)
	}
	return out, nil
}

// MeasurePending times one (p, f) cell of Figure 6(b).
func MeasurePending(cfg Config, p, f int) (float64, error) {
	secs, _, err := MeasurePendingStats(cfg, p, f)
	return secs, err
}

// MeasurePendingStats is MeasurePending returning the engine counters as
// well (run and requeue counts explain the figure's shape).
//
// The stream reproduces the paper's "carefully designed batches": each
// coordination pair's second member is submitted p transactions after the
// first, so a steady state of p partner-less transactions pends in the
// dormant pool for the whole experiment and is re-executed (and
// re-aborted) by every run. The per-run cost is dominated by the simulated
// grounding round trips for the pending queries (GroundLatency). With
// Config.GroundWorkers=1 that work is serialized as in the paper's middle
// tier — total time scales with (runs executed) x p, and runs scale with
// 1/f; with a parallel pool the round trips overlap and the per-run cost
// flattens to roughly ceil(p/workers) x GroundLatency.
func MeasurePendingStats(cfg Config, p, f int) (float64, entangle.Stats, error) {
	d, err := workload.NewDataset(workload.Config{Users: cfg.Users, Seed: cfg.Seed})
	if err != nil {
		return 0, entangle.Stats{}, err
	}
	db, err := entangle.Open(entangle.Options{
		Connections:    100 + p,
		RunFrequency:   f,
		GroundLatency:  500 * time.Microsecond,
		GroundWorkers:  cfg.GroundWorkers,
		GroundCache:    cfg.GroundCache,
		SolveBudget:    cfg.SolveBudget,
		DefaultTimeout: 10 * time.Minute,
		RetryInterval:  500 * time.Millisecond,
	})
	if err != nil {
		return 0, entangle.Stats{}, err
	}
	defer db.Close()
	if err := d.Setup(db); err != nil {
		return 0, entangle.Stats{}, err
	}

	pairs := cfg.N / 2
	type submitted struct {
		h *entangle.Handle
		i int
	}
	var handles []submitted
	var lag []entangle.Program
	const maxOutstanding = 100
	waitOldest := func(upTo int) error {
		for len(handles) > upTo {
			s := handles[0]
			handles = handles[1:]
			if o := s.h.Wait(); o.Status != entangle.StatusCommitted {
				return fmt.Errorf("stream tx %d: %v (%v)", s.i, o.Status, o.Err)
			}
		}
		return nil
	}

	start := time.Now()
	seq := 0
	submit := func(prog entangle.Program) {
		prog.Timeout = 10 * time.Minute
		handles = append(handles, submitted{h: db.Submit(prog), i: seq})
		seq++
	}
	for i := 0; i < pairs; i++ {
		u, v := d.NextPair()
		submit(d.Entangled(workload.EntangledT, u, v))
		lag = append(lag, d.Entangled(workload.EntangledT, v, u))
		if len(lag) > p {
			submit(lag[0])
			lag = lag[1:]
		}
		if err := waitOldest(maxOutstanding + p); err != nil {
			return 0, entangle.Stats{}, err
		}
	}
	// Flush the lagged partners.
	for _, prog := range lag {
		submit(prog)
	}
	if err := waitOldest(0); err != nil {
		return 0, entangle.Stats{}, err
	}
	return time.Since(start).Seconds(), db.Stats(), nil
}

// Figure6c regenerates the entanglement-complexity experiment:
// coordinating sets of size k in Spoke-hub and Cycle topologies, at run
// frequencies f.
func Figure6c(cfg Config, sizes []int, freqs []int) ([]Series, error) {
	c := cfg.withDefaults()
	var out []Series
	for _, structure := range []workload.Structure{workload.SpokeHub, workload.Cycle} {
		for _, f := range freqs {
			s := Series{Name: fmt.Sprintf("%s, f=%d", structure, f)}
			for _, k := range sizes {
				secs, err := MeasureStructure(c, structure, k, f)
				if err != nil {
					return nil, fmt.Errorf("%s k=%d f=%d: %w", structure, k, f, err)
				}
				s.Points = append(s.Points, Point{X: float64(k), Seconds: secs})
			}
			out = append(out, s)
		}
	}
	return out, nil
}

func MeasureStructure(cfg Config, structure workload.Structure, k, f int) (float64, error) {
	db, d, err := newDB(cfg, 100, f)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	groups := cfg.N / k
	if groups == 0 {
		groups = 1
	}
	start := time.Now()
	const batchGroups = 8
	for g := 0; g < groups; g += batchGroups {
		nb := batchGroups
		if g+nb > groups {
			nb = groups - g
		}
		var handles []*entangle.Handle
		for b := 0; b < nb; b++ {
			progs, err := d.BuildStructure(structure, k, g+b)
			if err != nil {
				return 0, err
			}
			for _, p := range progs {
				handles = append(handles, db.Submit(p))
			}
		}
		for i, h := range handles {
			if o := h.Wait(); o.Status != entangle.StatusCommitted {
				return 0, fmt.Errorf("structure tx %d: %v (%v)", i, o.Status, o.Err)
			}
		}
	}
	return time.Since(start).Seconds(), nil
}

// MeasureCompeting runs `groups` competing structures of the given kind
// (buyers sizes MarketContest; f is the run frequency) and returns the
// wall time and the total number of answered participants — observable as
// verified Reserve rows. On competing structures the exact solver answers
// strictly more than the greedy ablation (Config.SolveBudget < 0); on the
// disjoint §5.2 structures the two must match.
func MeasureCompeting(cfg Config, kind workload.CompetingKind, buyers, groups, f int) (float64, int, error) {
	db, d, err := newDB(cfg, 100, f)
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	start := time.Now()
	const batchGroups = 8
	for g := 0; g < groups; g += batchGroups {
		nb := batchGroups
		if g+nb > groups {
			nb = groups - g
		}
		var handles []*entangle.Handle
		for b := 0; b < nb; b++ {
			progs, err := d.BuildCompeting(kind, buyers, g+b)
			if err != nil {
				return 0, 0, err
			}
			for _, p := range progs {
				handles = append(handles, db.Submit(p))
			}
		}
		for i, h := range handles {
			if o := h.Wait(); o.Status != entangle.StatusCommitted {
				return 0, 0, fmt.Errorf("competing tx %d: %v (%v)", i, o.Status, o.Err)
			}
		}
	}
	secs := time.Since(start).Seconds()
	answered, err := workload.VerifyReserve(db)
	if err != nil {
		return 0, 0, err
	}
	return secs, answered, nil
}

// PrintSeries renders series as an aligned table: one row per X, one
// column per series.
func PrintSeries(w io.Writer, title, xLabel string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "%16s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-12.0f", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(w, "%15.3fs", s.Points[i].Seconds)
			}
		}
		fmt.Fprintln(w)
	}
}
