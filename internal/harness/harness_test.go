package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Small configurations keep these integration tests quick while still
// asserting the paper's qualitative claims.

func smallCfg() Config {
	return Config{N: 60, Users: 400, StmtLatency: 100 * time.Microsecond, Seed: 3}
}

func TestFigure6aShapes(t *testing.T) {
	series, err := Figure6a(smallCfg(), []int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series = %d", len(series))
	}
	byName := make(map[string][]Point)
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s has %d points", s.Name, len(s.Points))
		}
		byName[s.Name] = s.Points
	}
	// Claim 1: time decreases with connection count for the -T workloads.
	for _, name := range []string{"NoSocial-T", "Social-T", "Entangled-T"} {
		pts := byName[name]
		if pts[0].Seconds <= pts[2].Seconds {
			t.Errorf("%s: time did not fall with connections: %+v", name, pts)
		}
	}
	// Claim 2: Entangled-T costs at least as much as NoSocial-T at low
	// concurrency (entanglement adds evaluation work, §5.2.2).
	if byName["Entangled-T"][0].Seconds < byName["NoSocial-T"][0].Seconds*0.5 {
		t.Errorf("Entangled-T unexpectedly cheap: %v vs %v",
			byName["Entangled-T"][0].Seconds, byName["NoSocial-T"][0].Seconds)
	}
}

func TestFigure6bShapes(t *testing.T) {
	series, err := Figure6b(Config{N: 40, Users: 400, StmtLatency: 50 * time.Microsecond, Seed: 3},
		[]int{4, 16}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// Claim: more pending transactions cost more, at any frequency.
	for _, s := range series {
		if s.Points[1].Seconds <= s.Points[0].Seconds*0.5 {
			t.Errorf("%s: time not increasing in p: %+v", s.Name, s.Points)
		}
	}
}

func TestFigure6cRuns(t *testing.T) {
	series, err := Figure6c(Config{N: 24, Users: 600, StmtLatency: 50 * time.Microsecond, Seed: 3},
		[]int{2, 4}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 { // 2 structures x 1 frequency
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Errorf("%s: nonpositive time %v", s.Name, p)
			}
		}
	}
}

func TestPrintSeries(t *testing.T) {
	var buf bytes.Buffer
	PrintSeries(&buf, "Figure 6(a)", "connections", []Series{
		{Name: "NoSocial-T", Points: []Point{{X: 10, Seconds: 1.5}, {X: 20, Seconds: 0.8}}},
		{Name: "Entangled-T", Points: []Point{{X: 10, Seconds: 1.9}, {X: 20, Seconds: 1.0}}},
	})
	out := buf.String()
	for _, want := range []string{"Figure 6(a)", "connections", "NoSocial-T", "Entangled-T", "1.500s", "0.800s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.N == 0 || c.Users == 0 || c.StmtLatency == 0 || c.Seed == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
