package core

import (
	"sync"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/txn"
)

// groundCache is the cross-round grounding cache (Options.GroundCache): a
// pending entangled query that was grounded in an earlier round is NOT
// re-grounded when nothing it reads has changed — the common case for the
// long-pending partner-less transactions of the Figure 6(b) sweep, whose
// re-grounding every round is the p-linear middle-tier cost the paper
// measures.
//
// Entries are keyed by query identity (the canonical {C} H ⇐ B rendering,
// so two members posing syntactically identical queries share one entry)
// and validated against a CSN fingerprint: the LastCSN of every grounded
// table at grounding time. MVCC makes the validation exact — if a table's
// LastCSN still equals the fingerprint, no commit has touched it since, so
// a scan at any later round snapshot returns byte-identical rows and the
// cached groundings are the ones re-grounding would enumerate.
//
// Two cases must bypass or invalidate the cache:
//
//   - a committed write to any grounded table advances its LastCSN past the
//     fingerprint: the entry is evicted and the query re-grounds (lookup);
//   - the posing transaction itself holds uncommitted writes on a grounded
//     table: its grounding view differs from the committed snapshot the
//     entry was computed against, so the lookup bypasses the cache (the
//     entry stays valid for other posers) and the store refuses to cache
//     the own-writes result.
//
// A store is also refused when a table's LastCSN already exceeds the round
// snapshot's CSN: the commit that advanced it was invisible to this round,
// so the fingerprint could falsely validate against a later round that sees
// it.
type groundCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*groundCacheEntry
	order   []string // FIFO eviction queue (may hold keys already removed)
}

type groundCacheEntry struct {
	tables     []string // the query's grounded (body) tables
	csns       []uint64 // Table.LastCSN fingerprint at grounding time
	groundings []*eq.Grounding
}

// defaultGroundCacheCap bounds the number of cached queries so an engine
// serving an unbounded stream of distinct queries cannot grow without
// limit; pending queries are re-grounded on eviction, never answered
// wrongly.
const defaultGroundCacheCap = 4096

func newGroundCache(capacity int) *groundCache {
	if capacity <= 0 {
		capacity = defaultGroundCacheCap
	}
	return &groundCache{cap: capacity, entries: make(map[string]*groundCacheEntry)}
}

// lookup returns the cached groundings for key when still current. A stale
// entry (some grounded table's LastCSN moved past the fingerprint) is
// evicted on sight.
func (c *groundCache) lookup(key string, cat *storage.Catalog, poser *txn.Txn) ([]*eq.Grounding, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	for i, name := range e.tables {
		tbl, err := cat.Get(name)
		if err != nil || tbl.LastCSN() != e.csns[i] {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
			return nil, false
		}
		if poser != nil && poser.WroteTable(name) {
			return nil, false
		}
	}
	return e.groundings, true
}

// store records a freshly grounded result under key. snapCSN is the round
// snapshot the grounding ran against.
func (c *groundCache) store(key string, tables []string, snapCSN uint64, cat *storage.Catalog, poser *txn.Txn, groundings []*eq.Grounding) {
	csns := make([]uint64, len(tables))
	for i, name := range tables {
		tbl, err := cat.Get(name)
		if err != nil {
			return
		}
		if poser != nil && poser.WroteTable(name) {
			return
		}
		csn := tbl.LastCSN()
		if csn > snapCSN {
			return
		}
		csns[i] = csn
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		// Replace the entry wholesale rather than mutating in place:
		// lookup hands out the previous entry's fields after dropping the
		// mutex, and those must stay internally consistent.
		c.entries[key] = &groundCacheEntry{tables: tables, csns: csns, groundings: groundings}
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = &groundCacheEntry{tables: tables, csns: csns, groundings: groundings}
	c.order = append(c.order, key)
}
