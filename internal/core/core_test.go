package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// newTestEngine builds an engine over the travel schema of the paper with
// the Figure 1(a) data.
func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	locks := lock.New(500 * time.Millisecond)
	txm := txn.NewManager(cat, locks, nil)

	mustCreate := func(name string, cols ...types.Column) {
		if _, err := txm.CreateTable(name, types.NewSchema(cols...)); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate("Flights",
		types.Column{Name: "fno", Type: types.KindInt},
		types.Column{Name: "fdate", Type: types.KindDate},
		types.Column{Name: "dest", Type: types.KindString})
	mustCreate("Airlines",
		types.Column{Name: "fno", Type: types.KindInt},
		types.Column{Name: "airline", Type: types.KindString})
	mustCreate("Hotels",
		types.Column{Name: "hid", Type: types.KindInt},
		types.Column{Name: "location", Type: types.KindString})
	mustCreate("Reservations",
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "fno", Type: types.KindInt},
		types.Column{Name: "fdate", Type: types.KindDate})
	mustCreate("HotelBookings",
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "hid", Type: types.KindInt},
		types.Column{Name: "arrival", Type: types.KindDate},
		types.Column{Name: "nights", Type: types.KindInt})

	seed, err := txm.Begin(txn.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []types.Tuple{
		{types.Int(122), types.MustDate("2011-05-03"), types.Str("LA")},
		{types.Int(123), types.MustDate("2011-05-04"), types.Str("LA")},
		{types.Int(124), types.MustDate("2011-05-03"), types.Str("LA")},
		{types.Int(235), types.MustDate("2011-05-05"), types.Str("Paris")},
	} {
		if _, err := seed.Insert("Flights", row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []types.Tuple{
		{types.Int(122), types.Str("United")},
		{types.Int(123), types.Str("United")},
		{types.Int(124), types.Str("USAir")},
		{types.Int(235), types.Str("Delta")},
	} {
		if _, err := seed.Insert("Airlines", row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []types.Tuple{
		{types.Int(7), types.Str("LA")},
		{types.Int(8), types.Str("LA")},
		{types.Int(9), types.Str("NYC")},
	} {
		if _, err := seed.Insert("Hotels", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(txm, opts)
	t.Cleanup(e.Close)
	return e
}

// flightQuery builds "me flies to LA on the same flight as them".
func flightQuery(me, them string) *eq.Query {
	return &eq.Query{
		Head:   []eq.Atom{eq.NewAtom("FlightRes", eq.CStr(me), eq.V("fno"), eq.V("fdate"))},
		Post:   []eq.Atom{eq.NewAtom("FlightRes", eq.CStr(them), eq.V("fno"), eq.V("fdate"))},
		Body:   []eq.Atom{eq.NewAtom("Flights", eq.V("fno"), eq.V("fdate"), eq.V("dest"))},
		Where:  []eq.Constraint{{Left: eq.V("dest"), Op: eq.OpEq, Right: eq.CStr("LA")}},
		Choose: 1,
	}
}

// hotelQuery builds "me stays at the same LA hotel as them from arrival".
func hotelQuery(me, them string, arrival types.Value, nights int64) *eq.Query {
	return &eq.Query{
		Head: []eq.Atom{eq.NewAtom("HotelRes", eq.CStr(me), eq.V("hid"), eq.C(arrival), eq.CInt(nights))},
		Post: []eq.Atom{eq.NewAtom("HotelRes", eq.CStr(them), eq.V("hid"), eq.C(arrival), eq.CInt(nights))},
		Body: []eq.Atom{eq.NewAtom("Hotels", eq.V("hid"), eq.V("loc"))},
		Where: []eq.Constraint{
			{Left: eq.V("loc"), Op: eq.OpEq, Right: eq.CStr("LA")},
		},
		Choose: 1,
	}
}

// bookFlightProg is a single-entangled-query travel program: coordinate on
// a flight with partner, then insert the booking.
func bookFlightProg(me, them string, timeout time.Duration) Program {
	return Program{
		Name:    "book-" + me,
		Timeout: timeout,
		Body: func(tx *Tx) error {
			a := tx.Entangle(flightQuery(me, them))
			if a.Status != eq.Answered {
				return fmt.Errorf("%s: flight query %v", me, a.Status)
			}
			_, err := tx.Insert("Reservations", types.Tuple{
				types.Str(me), a.Bindings["fno"], a.Bindings["fdate"],
			})
			return err
		},
	}
}

func scanAll(t *testing.T, e *Engine, table string) []types.Tuple {
	t.Helper()
	tx, err := e.BeginClassical()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Commit()
	rows, err := tx.Scan(table)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestPairCoordinatesAndCommits(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", time.Second))
	h2 := e.Submit(bookFlightProg("Minnie", "Mickey", time.Second))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes = %+v, %+v", o1, o2)
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2 {
		t.Fatalf("reservations = %v", rows)
	}
	if !rows[0][1].Equal(rows[1][1]) || !rows[0][2].Equal(rows[1][2]) {
		t.Fatalf("pair booked different flights: %v", rows)
	}
	st := e.Stats()
	if st.GroupCommits != 1 {
		t.Errorf("GroupCommits = %d, want 1", st.GroupCommits)
	}
	if st.EntangleOps < 1 {
		t.Errorf("EntangleOps = %d", st.EntangleOps)
	}
}

// TestTravelScenario is the Figure 2 transaction: coordinate on a flight,
// compute the stay length from the arrival day (@ArrivalDay/@StayLength),
// then coordinate on a hotel — two entangled queries in one transaction.
func TestTravelScenario(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	departure := types.MustDate("2011-05-06")
	travel := func(me, them string) Program {
		return Program{
			Name:    "travel-" + me,
			Timeout: 2 * time.Second,
			Body: func(tx *Tx) error {
				fa := tx.Entangle(flightQuery(me, them))
				if fa.Status != eq.Answered {
					return fmt.Errorf("flight: %v", fa.Status)
				}
				arrival := fa.Bindings["fdate"]
				if _, err := tx.Insert("Reservations", types.Tuple{types.Str(me), fa.Bindings["fno"], arrival}); err != nil {
					return err
				}
				stay, err := departure.Sub(arrival)
				if err != nil {
					return err
				}
				ha := tx.Entangle(hotelQuery(me, them, arrival, stay.Int64()))
				if ha.Status != eq.Answered {
					return fmt.Errorf("hotel: %v", ha.Status)
				}
				_, err = tx.Insert("HotelBookings", types.Tuple{
					types.Str(me), ha.Bindings["hid"], arrival, stay,
				})
				return err
			},
		}
	}
	h1 := e.Submit(travel("Mickey", "Minnie"))
	h2 := e.Submit(travel("Minnie", "Mickey"))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes = %+v / %+v", o1, o2)
	}
	hotels := scanAll(t, e, "HotelBookings")
	if len(hotels) != 2 {
		t.Fatalf("hotel bookings = %v", hotels)
	}
	if !hotels[0][1].Equal(hotels[1][1]) {
		t.Fatalf("different hotels: %v", hotels)
	}
	// Stay length consistent with the coordinated arrival date.
	for _, h := range hotels {
		wantStay := departure.Int64() - h[2].Int64()
		if h[3].Int64() != wantStay {
			t.Errorf("stay = %d, want %d", h[3].Int64(), wantStay)
		}
	}
}

func TestNoPartnerTimesOut(t *testing.T) {
	e := newTestEngine(t, Options{RetryInterval: 10 * time.Millisecond})
	h := e.Submit(bookFlightProg("Donald", "Daffy", 150*time.Millisecond))
	o := h.Wait()
	if o.Status != StatusTimedOut || !errors.Is(o.Err, ErrTimeout) {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Attempts < 1 {
		t.Errorf("attempts = %d", o.Attempts)
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 0 {
		t.Errorf("reservations leaked: %v", rows)
	}
	if st := e.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d", st.Timeouts)
	}
}

func TestPartnerArrivesInLaterRun(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 1, RetryInterval: 5 * time.Millisecond})
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", 2*time.Second))
	e.Flush() // Mickey runs alone, blocks, aborts, returns to the pool
	h2 := e.Submit(bookFlightProg("Minnie", "Mickey", 2*time.Second))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes = %+v / %+v", o1, o2)
	}
	if o1.Attempts < 2 {
		t.Errorf("Mickey attempts = %d, want >= 2 (one failed run)", o1.Attempts)
	}
	if st := e.Stats(); st.Requeues < 1 {
		t.Errorf("Requeues = %d", st.Requeues)
	}
}

// TestFigure4 reproduces the three-transaction run of Figure 4: Mickey and
// Minnie coordinate and commit; Donald (waiting for Daffy) is aborted and
// returned to the pool, eventually timing out.
func TestFigure4(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 3, RetryInterval: 10 * time.Millisecond})
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", 2*time.Second))
	h2 := e.Submit(bookFlightProg("Minnie", "Mickey", 2*time.Second))
	h3 := e.Submit(bookFlightProg("Donald", "Daffy", 300*time.Millisecond))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	if o := h3.Wait(); o.Status != StatusTimedOut {
		t.Fatalf("Donald: %+v", o)
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2 {
		t.Fatalf("reservations = %v", rows)
	}
}

// TestWidowPrevention: Minnie rolls back after entangling; Mickey is ready
// but must not commit (group commit), so he aborts and retries until his
// timeout. No partial bookings may survive.
func TestWidowPrevention(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2, RetryInterval: 10 * time.Millisecond})
	mickey := bookFlightProg("Mickey", "Minnie", 250*time.Millisecond)
	minnie := Program{
		Name:    "minnie-aborts",
		Timeout: 250 * time.Millisecond,
		Body: func(tx *Tx) error {
			a := tx.Entangle(flightQuery("Minnie", "Mickey"))
			if a.Status != eq.Answered {
				return fmt.Errorf("flight: %v", a.Status)
			}
			// Something goes wrong during booking: explicit rollback.
			tx.Rollback()
			return nil
		},
	}
	h1 := e.Submit(mickey)
	h2 := e.Submit(minnie)
	o2 := h2.Wait()
	if o2.Status != StatusRolledBack {
		t.Fatalf("Minnie outcome = %+v", o2)
	}
	o1 := h1.Wait()
	if o1.Status == StatusCommitted {
		t.Fatalf("Mickey committed despite widowed group: %+v", o1)
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 0 {
		t.Fatalf("widowed booking survived: %v", rows)
	}
	if st := e.Stats(); st.WidowsAverted < 1 {
		t.Errorf("WidowsAverted = %d", st.WidowsAverted)
	}
}

// TestNoWidowGuardAllowsWidow is the ablation: with group commit disabled,
// Mickey commits even though Minnie aborted — the widowed-transaction
// anomaly becomes observable.
func TestNoWidowGuardAllowsWidow(t *testing.T) {
	e := newTestEngine(t, Options{Isolation: NoWidowGuard, RunFrequency: 2})
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", time.Second))
	h2 := e.Submit(Program{
		Name:    "minnie-aborts",
		Timeout: time.Second,
		Body: func(tx *Tx) error {
			a := tx.Entangle(flightQuery("Minnie", "Mickey"))
			if a.Status != eq.Answered {
				return fmt.Errorf("flight: %v", a.Status)
			}
			tx.Rollback()
			return nil
		},
	})
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey = %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusRolledBack {
		t.Fatalf("Minnie = %+v", o)
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 1 || rows[0][0].Str64() != "Mickey" {
		t.Fatalf("expected Mickey's widowed booking, got %v", rows)
	}
}

func TestEmptyAnswerObservable(t *testing.T) {
	// Partners present but constraints incompatible: one wants LA flights,
	// the other Paris flights, coordinating on the same values — empty
	// answer, bodies proceed and report it.
	e := newTestEngine(t, Options{RunFrequency: 2})
	mk := func(me, them, dest string) Program {
		return Program{
			Name:    me,
			Timeout: time.Second,
			Body: func(tx *Tx) error {
				q := flightQuery(me, them)
				q.Where[0].Right = eq.CStr(dest)
				a := tx.Entangle(q)
				if a.Status != eq.EmptyAnswer {
					return fmt.Errorf("status = %v, want EmptyAnswer", a.Status)
				}
				return nil // proceed without booking
			},
		}
	}
	h1 := e.Submit(mk("A", "B", "LA"))
	h2 := e.Submit(mk("B", "A", "Paris"))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("A = %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("B = %+v", o)
	}
}

func TestRunDirectClassical(t *testing.T) {
	e := newTestEngine(t, Options{})
	o := e.RunDirect(Program{
		Name: "classical",
		Body: func(tx *Tx) error {
			rows, err := tx.Scan("Flights")
			if err != nil {
				return err
			}
			if len(rows) != 4 {
				return fmt.Errorf("rows = %d", len(rows))
			}
			_, err = tx.Insert("Reservations", types.Tuple{types.Str("solo"), types.Int(122), types.MustDate("2011-05-03")})
			return err
		},
	})
	if o.Status != StatusCommitted {
		t.Fatalf("outcome = %+v", o)
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRunDirectRollbackAndFailure(t *testing.T) {
	e := newTestEngine(t, Options{})
	o := e.RunDirect(Program{Body: func(tx *Tx) error {
		tx.Insert("Reservations", types.Tuple{types.Str("x"), types.Int(1), types.Date(0)})
		tx.Rollback()
		return nil
	}})
	if o.Status != StatusRolledBack {
		t.Fatalf("outcome = %+v", o)
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 0 {
		t.Fatalf("rollback leaked rows: %v", rows)
	}
	o = e.RunDirect(Program{Body: func(tx *Tx) error { return errors.New("boom") }})
	if o.Status != StatusFailed {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestRunDirectRejectsEntangle(t *testing.T) {
	e := newTestEngine(t, Options{})
	o := e.RunDirect(Program{Body: func(tx *Tx) error {
		a := tx.Entangle(flightQuery("A", "B"))
		if a.Status != eq.Errored || !errors.Is(a.Err, ErrDirectEntangle) {
			return fmt.Errorf("answer = %+v", a)
		}
		return a.Err
	}})
	if o.Status != StatusFailed {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestAutocommitMode(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	// -Q style: statements commit individually; an error midway leaves
	// earlier statements' effects behind (no atomicity).
	o := e.RunDirect(Program{
		Autocommit: true,
		Body: func(tx *Tx) error {
			if _, err := tx.Insert("Reservations", types.Tuple{types.Str("q1"), types.Int(1), types.Date(0)}); err != nil {
				return err
			}
			return errors.New("later failure")
		},
	})
	if o.Status != StatusFailed {
		t.Fatalf("outcome = %+v", o)
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 1 {
		t.Fatalf("autocommit statement not persisted: %v", rows)
	}
}

func TestAutocommitEntangledPair(t *testing.T) {
	// Entangled-Q: entangled queries outside a transaction block still
	// coordinate, but without group commit semantics.
	e := newTestEngine(t, Options{RunFrequency: 2})
	mk := func(me, them string) Program {
		return Program{
			Name:       "q-" + me,
			Autocommit: true,
			Timeout:    time.Second,
			Body: func(tx *Tx) error {
				a := tx.Entangle(flightQuery(me, them))
				if a.Status != eq.Answered {
					return fmt.Errorf("status %v", a.Status)
				}
				_, err := tx.Insert("Reservations", types.Tuple{types.Str(me), a.Bindings["fno"], a.Bindings["fdate"]})
				return err
			},
		}
	}
	h1 := e.Submit(mk("Mickey", "Minnie"))
	h2 := e.Submit(mk("Minnie", "Mickey"))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey = %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie = %+v", o)
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2 || !rows[0][1].Equal(rows[1][1]) {
		t.Fatalf("rows = %v", rows)
	}
	if st := e.Stats(); st.GroupCommits != 0 {
		t.Errorf("GroupCommits = %d for -Q mode", st.GroupCommits)
	}
}

func TestManyPairsConcurrent(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 10, RetryInterval: 5 * time.Millisecond, Connections: 16})
	const pairs = 20
	var wg sync.WaitGroup
	outcomes := make([]Outcome, 2*pairs)
	for p := 0; p < pairs; p++ {
		a := fmt.Sprintf("a%d", p)
		b := fmt.Sprintf("b%d", p)
		for k, pr := range []Program{
			bookFlightProg(a, b, 5*time.Second),
			bookFlightProg(b, a, 5*time.Second),
		} {
			wg.Add(1)
			go func(slot int, pr Program) {
				defer wg.Done()
				outcomes[slot] = e.Submit(pr).Wait()
			}(2*p+k, pr)
		}
	}
	wg.Wait()
	for i, o := range outcomes {
		if o.Status != StatusCommitted {
			t.Fatalf("outcome[%d] = %+v", i, o)
		}
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2*pairs {
		t.Fatalf("rows = %d, want %d", len(rows), 2*pairs)
	}
	// Each pair on a common flight.
	byName := make(map[string]types.Tuple)
	for _, r := range rows {
		byName[r[0].Str64()] = r
	}
	for p := 0; p < pairs; p++ {
		ra := byName[fmt.Sprintf("a%d", p)]
		rb := byName[fmt.Sprintf("b%d", p)]
		if ra == nil || rb == nil || !ra[1].Equal(rb[1]) {
			t.Fatalf("pair %d mismatched: %v vs %v", p, ra, rb)
		}
	}
}

func TestEngineCloseFailsPending(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 100, RetryInterval: time.Hour})
	h := e.Submit(bookFlightProg("Lonely", "Nobody", time.Hour))
	time.Sleep(10 * time.Millisecond)
	e.Close()
	o := h.Wait()
	if o.Status != StatusFailed || !errors.Is(o.Err, ErrEngineClosed) {
		t.Fatalf("outcome = %+v", o)
	}
	// Submitting after close fails immediately.
	h2 := e.Submit(bookFlightProg("Late", "Nobody", time.Second))
	if o := h2.Wait(); !errors.Is(o.Err, ErrEngineClosed) {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	e.Submit(bookFlightProg("Mickey", "Minnie", time.Second))
	e.Submit(bookFlightProg("Minnie", "Mickey", time.Second)).Wait()
	st := e.Stats()
	if st.Submitted != 2 || st.Commits != 2 || st.Runs < 1 || st.EvalRounds < 1 {
		t.Errorf("stats = %+v", st)
	}
}

// recordingSink captures trace events for inspection.
type recordingSink struct {
	mu     sync.Mutex
	events []string
}

func (r *recordingSink) add(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	r.mu.Unlock()
}
func (r *recordingSink) Read(tx uint64, obj string)          { r.add("R:" + obj) }
func (r *recordingSink) GroundingRead(tx uint64, obj string) { r.add("RG:" + obj) }
func (r *recordingSink) QuasiRead(tx uint64, obj string)     { r.add("RQ:" + obj) }
func (r *recordingSink) Write(tx uint64, obj string)         { r.add("W:" + obj) }
func (r *recordingSink) Entangle(op uint64, txs []uint64)    { r.add(fmt.Sprintf("E:%d", len(txs))) }
func (r *recordingSink) Commit(tx uint64)                    { r.add("C") }
func (r *recordingSink) Abort(tx uint64)                     { r.add("A") }

func (r *recordingSink) count(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if len(e) >= len(prefix) && e[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

func TestTraceEvents(t *testing.T) {
	sink := &recordingSink{}
	e := newTestEngine(t, Options{RunFrequency: 2, Trace: sink})
	e.Submit(bookFlightProg("Mickey", "Minnie", time.Second))
	e.Submit(bookFlightProg("Minnie", "Mickey", time.Second)).Wait()
	if sink.count("RG:Flights") < 2 {
		t.Errorf("grounding reads on Flights = %d, want >= 2", sink.count("RG:Flights"))
	}
	if sink.count("RQ:Flights") < 2 {
		t.Errorf("quasi-reads on Flights = %d, want >= 2", sink.count("RQ:Flights"))
	}
	if sink.count("E:2") != 1 {
		t.Errorf("entangle ops = %d, want 1", sink.count("E:2"))
	}
	if sink.count("W:Reservations") != 2 {
		t.Errorf("writes = %d", sink.count("W:Reservations"))
	}
	if sink.count("C") != 2 {
		t.Errorf("commits = %d", sink.count("C"))
	}
}

// TestQuasiReadLockBlocksWriter: after Mickey and Minnie entangle (Minnie
// grounded on Airlines), Donald's write to Airlines must block until the
// group commits — the §3.3.3 enforcement that prevents the Figure 3(b)
// unrepeatable quasi-read.
func TestQuasiReadLockBlocksWriter(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	release := make(chan struct{})
	done := make(chan Outcome, 2)
	prog := func(me, them string) Program {
		return Program{
			Name:    me,
			Timeout: 5 * time.Second,
			Body: func(tx *Tx) error {
				q := flightQuery(me, them)
				if me == "Minnie" {
					// Minnie grounds on Airlines too (United only).
					q.Body = append(q.Body, eq.NewAtom("Airlines", eq.V("fno"), eq.V("al")))
					q.Where = append(q.Where, eq.Constraint{Left: eq.V("al"), Op: eq.OpEq, Right: eq.CStr("United")})
				}
				a := tx.Entangle(q)
				if a.Status != eq.Answered {
					return fmt.Errorf("status %v", a.Status)
				}
				if me == "Mickey" {
					<-release // hold the run open so locks stay held
				}
				_, err := tx.Insert("Reservations", types.Tuple{types.Str(me), a.Bindings["fno"], a.Bindings["fdate"]})
				return err
			},
		}
	}
	go func() { done <- e.Submit(prog("Mickey", "Minnie")).Wait() }()
	go func() { done <- e.Submit(prog("Minnie", "Mickey")).Wait() }()
	time.Sleep(100 * time.Millisecond) // entanglement happened; Mickey holds the run open

	// Donald writes a new United flight — the Figure 3(b) interference.
	wrote := make(chan Outcome, 1)
	go func() {
		wrote <- e.RunDirect(Program{
			Name:    "donald-write",
			Timeout: 5 * time.Second,
			Body: func(tx *Tx) error {
				_, err := tx.Insert("Airlines", types.Tuple{types.Int(125), types.Str("United")})
				return err
			},
		})
	}()
	select {
	case o := <-wrote:
		t.Fatalf("Donald's write proceeded against quasi-read locks: %+v", o)
	case <-time.After(150 * time.Millisecond):
		// blocked, as required
	}
	close(release)
	for i := 0; i < 2; i++ {
		if o := <-done; o.Status != StatusCommitted {
			t.Fatalf("traveler outcome = %+v", o)
		}
	}
	if o := <-wrote; o.Status != StatusCommitted {
		t.Fatalf("Donald eventually = %+v", o)
	}
}
