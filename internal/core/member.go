package core

import (
	"errors"
	"time"

	"repro/internal/eq"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// Member operation implementations backing the Tx API. Two modes:
//
//   - transactional (default): operations run on the member's substrate
//     transaction under Strict 2PL; retryable lock failures (deadlock,
//     lock-wait timeout) unwind the body so the transaction aborts and
//     retries in a later run.
//   - autocommit (-Q workloads): every operation is its own short
//     transaction, committed immediately — the paper's non-transactional
//     comparison point.

// retryable reports whether an error warrants abort-and-requeue rather
// than permanent failure: deadlock victims, lock-wait timeouts, and
// snapshot-isolation first-committer-wins losers all retry with a fresh
// transaction (and a fresh snapshot) in a later run.
func retryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) ||
		errors.Is(err, lock.ErrTimeout) ||
		errors.Is(err, txn.ErrWriteConflict)
}

// check returns nil-able errors to the body but unwinds on retryable ones.
func (m *member) check(err error) error {
	if err == nil {
		return nil
	}
	if retryable(err) {
		if errors.Is(err, txn.ErrWriteConflict) {
			m.run.e.bump(m.run.e.met.writeConflict)
		}
		panic(unwindRetry)
	}
	return err
}

// simulateLatency models the per-statement round trip (Options.StmtLatency)
// with time.Sleep. The kernel rounds small sleeps up, but it does so
// consistently across workloads and — unlike spin-waiting — sleeping does
// not consume CPU, so the connection-scaling shape of Figure 6(a) is
// preserved beyond the machine's core count.
func (m *member) simulateLatency() {
	d := m.run.e.opts.StmtLatency
	if d <= 0 || m.entry.prog.NoLatency {
		return
	}
	time.Sleep(d)
}

// autocommitTxn runs fn inside a fresh single-statement transaction.
func (m *member) autocommitTxn(fn func(t *txn.Txn) error) error {
	t, err := m.run.e.txm.Begin(txn.Serializable)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Abort()
		return err
	}
	return t.Commit()
}

func (m *member) opScan(table string) ([]types.Tuple, error) {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		var rows []types.Tuple
		err := m.autocommitTxn(func(t *txn.Txn) error {
			var e error
			rows, e = t.Scan(table)
			return e
		})
		return rows, m.check(err)
	}
	rows, err := m.tx.Scan(table)
	return rows, m.check(err)
}

func (m *member) opScanIDs(table string) ([]storage.RowID, []types.Tuple, error) {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		var ids []storage.RowID
		var rows []types.Tuple
		err := m.autocommitTxn(func(t *txn.Txn) error {
			var e error
			ids, rows, e = t.ScanIDs(table)
			return e
		})
		return ids, rows, m.check(err)
	}
	ids, rows, err := m.tx.ScanIDs(table)
	return ids, rows, m.check(err)
}

func (m *member) opLookup(table string, columns []string, key types.Tuple) ([]types.Tuple, error) {
	_, rows, err := m.opLookupIDs(table, columns, key)
	return rows, err
}

func (m *member) opLookupIDs(table string, columns []string, key types.Tuple) ([]storage.RowID, []types.Tuple, error) {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		var ids []storage.RowID
		var rows []types.Tuple
		err := m.autocommitTxn(func(t *txn.Txn) error {
			var e error
			ids, rows, e = t.LookupIDs(table, columns, key)
			return e
		})
		return ids, rows, m.check(err)
	}
	ids, rows, err := m.tx.LookupIDs(table, columns, key)
	return ids, rows, m.check(err)
}

func (m *member) opInsert(table string, row types.Tuple) (storage.RowID, error) {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		var id storage.RowID
		err := m.autocommitTxn(func(t *txn.Txn) error {
			var e error
			id, e = t.Insert(table, row)
			return e
		})
		return id, m.check(err)
	}
	id, err := m.tx.Insert(table, row)
	return id, m.check(err)
}

func (m *member) opUpdate(table string, id storage.RowID, row types.Tuple) error {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		return m.check(m.autocommitTxn(func(t *txn.Txn) error {
			return t.Update(table, id, row)
		}))
	}
	return m.check(m.tx.Update(table, id, row))
}

func (m *member) opDelete(table string, id storage.RowID) error {
	m.simulateLatency()
	if m.entry.prog.Autocommit {
		return m.check(m.autocommitTxn(func(t *txn.Txn) error {
			return t.Delete(table, id)
		}))
	}
	return m.check(m.tx.Delete(table, id))
}

// opEntangle blocks the member on an entangled query. The §3.1 semantics:
// the call does not return until the query is answered in some evaluation
// round; if the run ends first, the transaction aborts and is requeued —
// the body unwinds and never observes the failed attempt.
func (m *member) opEntangle(q *eq.Query) *eq.Answer {
	m.simulateLatency()
	if err := q.Validate(); err != nil {
		return &eq.Answer{Status: eq.Errored, Err: err}
	}
	r := m.run
	if r.direct {
		return &eq.Answer{Status: eq.Errored, Err: ErrDirectEntangle}
	}
	r.mu.Lock()
	m.query = q
	m.state = stateBlocked
	r.active--
	r.cond.Broadcast()
	r.mu.Unlock()

	// A blocked transaction does not occupy a connection: the run-based
	// scheduler exists precisely so waiting transactions do not tie up
	// system resources (§4, Scheduling).
	r.e.releaseConn()
	msg := <-m.answerCh
	r.e.acquireConn()

	if msg.abortRun {
		panic(unwindRetry)
	}
	return msg.answer
}
