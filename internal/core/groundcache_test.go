package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/txn"
	"repro/internal/types"
)

// TestRoundScanCacheOneScanPerRound is the regression test for the round
// scan cache: an evaluation round with k queries grounding on one table
// must perform exactly one snapshot scan of it, not k.
func TestRoundScanCacheOneScanPerRound(t *testing.T) {
	const pairs = 3 // 6 members, all grounding on Flights
	// A huge retry interval keeps the ticker from starting a partial run
	// before all members have arrived, so exactly one round evaluates.
	e := newTestEngine(t, Options{RunFrequency: 2 * pairs, RetryInterval: time.Hour})
	flights, err := e.Txm().Catalog().Get("Flights")
	if err != nil {
		t.Fatal(err)
	}
	before := flights.ScanCount()
	var handles []*Handle
	for i := 0; i < pairs; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		handles = append(handles,
			e.Submit(bookFlightProg(a, b, 5*time.Second)),
			e.Submit(bookFlightProg(b, a, 5*time.Second)))
	}
	for _, h := range handles {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("outcome %+v", o)
		}
	}
	if got := flights.ScanCount() - before; got != 1 {
		t.Fatalf("Flights scanned %d times for one round of %d queries, want 1", got, 2*pairs)
	}
}

// TestIndexedGroundingStats: with an equality index on the constrained
// column, grounding routes the Flights atom through an index probe (the
// Stats counter proves it) and the pair still books one common flight —
// identical to the scan path.
func TestIndexedGroundingStats(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2})
	if err := e.Txm().CreateIndex("Flights", "flights_dest", []string{"dest"}); err != nil {
		t.Fatal(err)
	}
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", 5*time.Second))
	h2 := e.Submit(bookFlightProg("Minnie", "Mickey", 5*time.Second))
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("outcome %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("outcome %+v", o)
	}
	if st := e.Stats(); st.IndexedGroundings == 0 {
		t.Error("no grounding atom was index-routed")
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2 || !rows[0][1].Equal(rows[1][1]) {
		t.Fatalf("reservations = %v", rows)
	}
}

// tokyoQuery is a self-satisfying entangled query (its postcondition is its
// own head), so it is answered alone as soon as a grounding exists. Both
// test programs must pose the byte-identical query so they share one
// grounding-cache entry.
func tokyoQuery() *eq.Query {
	return &eq.Query{
		Head:   []eq.Atom{eq.NewAtom("FlightRes", eq.CStr("X"), eq.V("fno"))},
		Post:   []eq.Atom{eq.NewAtom("FlightRes", eq.CStr("X"), eq.V("fno"))},
		Body:   []eq.Atom{eq.NewAtom("Flights", eq.V("fno"), eq.V("fdate"), eq.V("dest"))},
		Where:  []eq.Constraint{{Left: eq.V("dest"), Op: eq.OpEq, Right: eq.CStr("Tokyo")}},
		Choose: 1,
	}
}

// TestGroundCacheInvalidatedByCommittedWrite drives the cross-round cache
// through its lifecycle: a partner-less query re-grounded across rounds
// hits the cache; a committed write to the grounded table advances its
// LastCSN and forces a re-ground; the eventual answer reflects the new
// committed state, never the cached rows.
func TestGroundCacheInvalidatedByCommittedWrite(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 100, GroundCache: true, RetryInterval: time.Hour})
	h1 := e.Submit(bookFlightProg("Mickey", "Minnie", time.Minute))
	e.Flush() // round 1: cold miss, cache populated
	e.Flush() // round 2: hit
	e.Flush() // round 3: hit
	st := e.Stats()
	if st.GroundCacheHits < 2 {
		t.Fatalf("GroundCacheHits = %d, want >= 2", st.GroundCacheHits)
	}
	if st.GroundCacheMisses < 1 {
		t.Fatalf("GroundCacheMisses = %d, want >= 1", st.GroundCacheMisses)
	}

	// Replace every LA flight with a new one: a cached (stale) grounding
	// would book a deleted flight.
	tx, err := e.BeginClassical()
	if err != nil {
		t.Fatal(err)
	}
	ids, rows, err := tx.ScanIDs("Flights")
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row[2].Str64() == "LA" {
			if err := tx.Delete("Flights", ids[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tx.Insert("Flights", types.Tuple{types.Int(900), types.MustDate("2011-06-01"), types.Str("LA")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	missesBefore := e.Stats().GroundCacheMisses
	h2 := e.Submit(bookFlightProg("Minnie", "Mickey", time.Minute))
	e.Flush()
	if o := h1.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Mickey: %+v", o)
	}
	if o := h2.Wait(); o.Status != StatusCommitted {
		t.Fatalf("Minnie: %+v", o)
	}
	if got := e.Stats().GroundCacheMisses; got <= missesBefore {
		t.Errorf("committed write did not invalidate: misses %d -> %d", missesBefore, got)
	}
	for _, row := range scanAll(t, e, "Reservations") {
		if row[1].Int64() != 900 {
			t.Errorf("stale cached grounding leaked: booked flight %v, want 900", row[1])
		}
	}
}

// TestGroundCachePoserWriteBypass: a poser holding uncommitted writes on a
// grounded table must bypass the cache — its grounding view includes its
// own versions, which the shared committed-state entry cannot represent.
func TestGroundCachePoserWriteBypass(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 100, GroundCache: true, RetryInterval: 5 * time.Millisecond})

	// A pends on the Tokyo query (no Tokyo flights exist): every round
	// grounds to zero valuations; round 1 populates the cache with the
	// empty result, later rounds hit it, and A eventually times out.
	hA := e.Submit(Program{
		Name:    "A",
		Timeout: 250 * time.Millisecond,
		Body: func(tx *Tx) error {
			a := tx.Entangle(tokyoQuery())
			return fmt.Errorf("A unexpectedly resumed: %v", a.Status)
		},
	})
	e.Flush()
	e.Flush()
	if o := hA.Wait(); o.Status != StatusTimedOut {
		t.Fatalf("A: %+v", o)
	}
	if st := e.Stats(); st.GroundCacheHits < 1 {
		t.Fatalf("empty grounding not cached: %+v", st)
	}

	// B inserts the only Tokyo flight uncommitted, then poses the identical
	// query. The cached empty entry is still CSN-current (uncommitted
	// writes do not advance LastCSN), so only the poser-write bypass makes
	// B see its own flight.
	var answered eq.Status
	var fno int64
	hB := e.Submit(Program{
		Name:    "B",
		Timeout: 5 * time.Second,
		Body: func(tx *Tx) error {
			if _, err := tx.Insert("Flights", types.Tuple{
				types.Int(777), types.MustDate("2011-07-01"), types.Str("Tokyo"),
			}); err != nil {
				return err
			}
			a := tx.Entangle(tokyoQuery())
			answered = a.Status
			if a.Status != eq.Answered {
				return fmt.Errorf("B: %v", a.Status)
			}
			fno = a.Bindings["fno"].Int64()
			return nil
		},
	})
	e.Flush()
	if o := hB.Wait(); o.Status != StatusCommitted {
		t.Fatalf("B: %+v (cache served a stale empty grounding?)", o)
	}
	if answered != eq.Answered || fno != 777 {
		t.Fatalf("B answered %v fno=%d, want ANSWERED fno=777", answered, fno)
	}
}

// TestGroundCacheSnapshotBoundary: a grounding computed while an invisible
// commit has already advanced a table past the round snapshot must not be
// cached (its fingerprint would wrongly validate for later rounds). Here we
// exercise the store-side guard directly.
func TestGroundCacheStoreRefusesFutureFingerprint(t *testing.T) {
	e := newTestEngine(t, Options{GroundCache: true})
	cat := e.Txm().Catalog()
	c := newGroundCache(0)
	// Commit a write so Flights.LastCSN > 0, then claim the grounding ran
	// against snapshot CSN 0: the store must refuse.
	tx, err := e.BeginClassical()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("Flights", types.Tuple{types.Int(1), types.MustDate("2011-01-01"), types.Str("LA")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.store("q", []string{"Flights"}, 0, cat, nil, nil)
	if _, ok := c.lookup("q", cat, nil); ok {
		t.Fatal("entry with future fingerprint was stored")
	}
}

// TestGroundCacheEvictsAtCapacity: the FIFO bound keeps the cache from
// growing without limit under a stream of distinct queries.
func TestGroundCacheEvictsAtCapacity(t *testing.T) {
	e := newTestEngine(t, Options{})
	cat := e.Txm().Catalog()
	c := newGroundCache(2)
	c.store("q1", []string{"Flights"}, 100, cat, nil, nil)
	c.store("q2", []string{"Flights"}, 100, cat, nil, nil)
	c.store("q3", []string{"Flights"}, 100, cat, nil, nil)
	if _, ok := c.lookup("q1", cat, nil); ok {
		t.Error("q1 not evicted")
	}
	for _, k := range []string{"q2", "q3"} {
		if _, ok := c.lookup(k, cat, nil); !ok {
			t.Errorf("%s missing", k)
		}
	}
}

// TestGroundCacheBypassWithWritingPoser exercises lookup's poser check at
// the unit level: a transaction with uncommitted writes on the grounded
// table is bypassed, one without is served.
func TestGroundCacheLookupPoserCheck(t *testing.T) {
	e := newTestEngine(t, Options{})
	cat := e.Txm().Catalog()
	c := newGroundCache(0)
	c.store("q", []string{"Flights"}, 100, cat, nil, []*eq.Grounding{})
	writer, err := e.Txm().Begin(txn.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Abort()
	if _, err := writer.Insert("Flights", types.Tuple{types.Int(5), types.MustDate("2011-01-01"), types.Str("LA")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.lookup("q", cat, writer); ok {
		t.Error("writing poser was served from the cache")
	}
	reader, err := e.Txm().Begin(txn.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Abort()
	if _, ok := c.lookup("q", cat, reader); !ok {
		t.Error("non-writing poser was not served")
	}
}
