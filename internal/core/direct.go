package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/txn"
)

// ErrDirectEntangle is returned when a directly-run program poses an
// entangled query — coordination requires the run scheduler.
var ErrDirectEntangle = errors.New("core: entangled queries require Submit, not RunDirect")

// RunDirect executes a program immediately on the calling goroutine,
// bypassing the run scheduler — the classical path: the paper's prototype
// sends non-entangled transactions straight to the DBMS. Retryable aborts
// (deadlock victims) are retried until the program timeout. Programs run
// this way must not pose entangled queries.
//
// With Program.Autocommit set this is the paper's non-transactional -Q
// mode: every statement commits individually.
func (e *Engine) RunDirect(p Program) Outcome {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	start := time.Now()
	deadline := start.Add(timeout)
	ent := &pending{prog: p, deadline: deadline}

	for {
		o, done := e.runDirectOnce(p, ent, deadline)
		if done {
			e.met.execLatency.Observe(time.Since(start))
			// Record the exec span but do NOT finish the trace: a traced
			// direct program is one statement of a larger traced request
			// (DB.ExecTraced runs a whole script under one id), so the
			// layer that minted the id owns its Finish.
			if t := p.Trace; t != 0 && e.tracer != nil {
				e.tracer.Span(t, t, "exec", start, time.Since(start),
					fmt.Sprintf("status=%v attempts=%d", o.Status, ent.attempts))
			}
			return o
		}
	}
}

// runDirectOnce performs one attempt of RunDirect. It reports done=false
// when the attempt hit a retryable abort and should be retried.
func (e *Engine) runDirectOnce(p Program, ent *pending, deadline time.Time) (Outcome, bool) {
	ent.attempts++
	// A direct run never blocks on an entangled answer (opEntangle refuses
	// before touching run state), so the coordination fields — cond,
	// active, answerCh, partners — stay zero: this path runs once per
	// classical statement script, and four dead allocations per op are
	// measurable at wire speed.
	r := &run{e: e, direct: true}
	m := &member{run: r, entry: ent}
	r.members = []*member{m}

	// Each direct attempt is one unit of work against the checkpoint
	// quiescence gate: begin, body, and commit/abort all inside it.
	e.txm.Enter()
	defer e.txm.Exit()
	e.acquireConn()
	var beginErr error
	if !p.Autocommit {
		m.tx, beginErr = e.txm.Begin(levelFor(e.opts.Isolation))
	}
	var err error
	if beginErr != nil {
		err = beginErr
	} else {
		err = runBody(m)
	}
	e.releaseConn()

	switch {
	case err == nil:
		if m.tx != nil {
			if cerr := m.tx.Commit(); cerr != nil {
				e.bump(e.met.failures)
				return Outcome{Status: StatusFailed, Err: cerr, Attempts: ent.attempts}, true
			}
		}
		e.bump(e.met.commits)
		return Outcome{Status: StatusCommitted, Attempts: ent.attempts}, true
	case errors.Is(err, errRetrySentinel):
		if m.tx != nil {
			m.tx.Abort()
		}
		if time.Now().After(deadline) {
			e.bump(e.met.timeouts)
			return Outcome{Status: StatusTimedOut, Err: ErrTimeout, Attempts: ent.attempts}, true
		}
		e.bump(e.met.requeues)
		return Outcome{}, false
	case errors.Is(err, errRollbackSentinel):
		if m.tx != nil {
			m.tx.Abort()
		}
		e.bump(e.met.rollbacks)
		return Outcome{Status: StatusRolledBack, Err: ErrRolledBack, Attempts: ent.attempts}, true
	default:
		if m.tx != nil {
			m.tx.Abort()
		}
		e.bump(e.met.failures)
		return Outcome{Status: StatusFailed, Err: err, Attempts: ent.attempts}, true
	}
}

// Begin/Commit helpers for code that wants a bare classical transaction
// without the Program wrapper (the SQL shell uses this).
func (e *Engine) BeginClassical() (*txn.Txn, error) {
	return e.txm.Begin(levelFor(e.opts.Isolation))
}
