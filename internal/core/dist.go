package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/eq"
	"repro/internal/obs"
	"repro/internal/txn"
)

// ErrInDoubt fails the handle of a transaction that was parked prepared in
// a distributed group when its engine shut down. The prepare record stays
// in the WAL; restart resolves the group against the coordinator's logged
// decision, so the outcome is durable even though this handle is not.
var ErrInDoubt = errors.New("core: shutdown with in-doubt distributed group")

// DistTransport carries the participant side of the cross-shard protocol.
// Offer and Vote are fire-and-forget (delivery failures surface as group
// timeouts, which resolve to abort); Status is the synchronous in-doubt
// inquiry.
type DistTransport interface {
	Offer(o dist.Offer)
	Vote(v dist.Vote)
	Status(group uint64) (dist.Status, error)
}

// DistConfig makes an engine one shard of a partitioned deployment.
type DistConfig struct {
	// Shard is this engine's shard id in the placement map.
	Shard int
	// Node is this engine's address as the matchmaker should call it back.
	Node string
	// Transport reaches the matchmaker. Required.
	Transport DistTransport
	// StatusGrace is how long a parked group waits for the pushed decision
	// before it starts polling Status. Default 1s.
	StatusGrace time.Duration
	// StatusTick is the poll cadence after the grace. Default 300ms.
	StatusTick time.Duration
}

// EnableDist switches the engine's commit path to the distributed
// coordinator. Must be called right after NewEngine, before any Submit:
// the coordinator swap is not synchronized against running work.
func (e *Engine) EnableDist(cfg DistConfig) {
	if cfg.Transport == nil {
		panic("core: EnableDist requires a transport")
	}
	if cfg.StatusGrace <= 0 {
		cfg.StatusGrace = time.Second
	}
	if cfg.StatusTick <= 0 {
		cfg.StatusTick = 300 * time.Millisecond
	}
	d := &distRuntime{
		e:        e,
		cfg:      cfg,
		offers:   make(map[uint64]*liveOffer),
		prepares: make(map[uint64]*dist.Prepare),
		parked:   make(map[uint64]*parkedGroup),
		stop:     make(chan struct{}),
	}
	e.dist = d
	e.coord = &distCoordinator{e: e, d: d, local: &localCoordinator{e: e}}
}

// liveOffer is the local record of an exported offer: what the member
// asked, so a prepare for a different (re-used) offer id is refused.
type liveOffer struct {
	entry    *pending
	queryStr string
	tables   []string
}

// parkedGroup holds the local members of a prepared distributed group:
// transactions Active, locks held, prepare records flushed, waiting for
// the coordinator's verdict.
type parkedGroup struct {
	members []*member
}

// distRuntime is the engine's participant state for cross-shard group
// commit. All maps are guarded by mu; members inside parked groups are
// owned by whoever takes the group out.
type distRuntime struct {
	e   *Engine
	cfg DistConfig

	mu       sync.Mutex
	offers   map[uint64]*liveOffer     // offer id -> exported offer
	prepares map[uint64]*dist.Prepare  // offer id -> undelivered reservation
	parked   map[uint64]*parkedGroup   // group id -> prepared members
	stop     chan struct{}
	stopped  sync.Once
}

// registerOffer records (or refreshes) the member's offer and returns the
// wire message, or nil when the member should not be offered right now
// (a reservation is already waiting for it).
func (d *distRuntime) registerOffer(m *member) *dist.Offer {
	d.mu.Lock()
	defer d.mu.Unlock()
	ent := m.entry
	if ent.offerID == 0 {
		ent.offerID = obs.MintID()
	}
	if _, reserved := d.prepares[ent.offerID]; reserved {
		return nil
	}
	d.offers[ent.offerID] = &liveOffer{entry: ent, queryStr: m.query.String(), tables: m.offerTables}
	return &dist.Offer{
		Node:     d.cfg.Node,
		Shard:    d.cfg.Shard,
		ID:       ent.offerID,
		Trace:    ent.prog.Trace,
		Query:    m.query,
		Grounds:  m.offerGrounds,
		Tables:   m.offerTables,
		CSN:      m.offerCSN,
		Deadline: ent.deadline,
	}
}

// takeReservation claims the pending prepare for a blocked member, if any.
func (d *distRuntime) takeReservation(m *member) (*liveOffer, *dist.Prepare) {
	d.mu.Lock()
	defer d.mu.Unlock()
	oid := m.entry.offerID
	if oid == 0 {
		return nil, nil
	}
	p := d.prepares[oid]
	if p == nil {
		return nil, nil
	}
	delete(d.prepares, oid)
	return d.offers[oid], p
}

// forget withdraws a settled program's offer and any undelivered
// reservation; a racing prepare for it is voted down at delivery.
func (d *distRuntime) forget(ent *pending) {
	d.mu.Lock()
	if oid := ent.offerID; oid != 0 {
		delete(d.offers, oid)
		delete(d.prepares, oid)
	}
	d.mu.Unlock()
}

func (d *distRuntime) voteNo(group, offer uint64) {
	go d.cfg.Transport.Vote(dist.Vote{Group: group, Offer: offer, Node: d.cfg.Node, Yes: false})
}

// park stores a prepared group. Each member holds one Enter on the
// checkpoint quiescence gate from here to the decision, so the WAL cannot
// be truncated while its prepare record is load-bearing.
func (d *distRuntime) park(group uint64, ms []*member) {
	e := d.e
	for range ms {
		e.txm.Enter()
	}
	d.mu.Lock()
	d.parked[group] = &parkedGroup{members: ms}
	d.mu.Unlock()
	for _, m := range ms {
		v := dist.Vote{Group: group, Offer: m.entry.offerID, Node: d.cfg.Node, Yes: true}
		if t := m.entry.prog.Trace; t != 0 && e.tracer != nil {
			if begin, spans, ok := e.tracer.Export(t); ok {
				v.Trace, v.TraceBegin, v.Spans = t, begin, spans
			}
		}
		go d.cfg.Transport.Vote(v)
	}
	go d.pollDecision(group)
}

func (d *distRuntime) take(group uint64) *parkedGroup {
	d.mu.Lock()
	defer d.mu.Unlock()
	pg := d.parked[group]
	delete(d.parked, group)
	return pg
}

func (d *distRuntime) has(group uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parked[group] != nil
}

// Parked reports how many distributed groups are currently prepared and
// awaiting a decision (in-doubt if we crashed now).
func (e *Engine) Parked() int {
	d := e.dist
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.parked)
}

// pollDecision is the parked group's safety net: if the pushed decision is
// lost, ask the coordinator. A pending group keeps us waiting (the
// coordinator's timeout will decide it); a group the coordinator has no
// record of is a presumed abort.
func (d *distRuntime) pollDecision(group uint64) {
	grace := time.NewTimer(d.cfg.StatusGrace)
	defer grace.Stop()
	select {
	case <-grace.C:
	case <-d.stop:
		return
	}
	tick := time.NewTicker(d.cfg.StatusTick)
	defer tick.Stop()
	for {
		if !d.has(group) {
			return
		}
		st, err := d.cfg.Transport.Status(group)
		if err == nil && st.Known {
			d.e.ApplyDecision(group, st.Commit)
			return
		}
		if err == nil && !st.Pending {
			d.e.ApplyDecision(group, false)
			return
		}
		select {
		case <-tick.C:
		case <-d.stop:
			return
		}
	}
}

// shutdown fails the handles of parked members without aborting their
// transactions: the WAL prepare records stand, and restart resolves them
// against the coordinator's logged decision.
func (d *distRuntime) shutdown() {
	d.stopped.Do(func() { close(d.stop) })
	d.mu.Lock()
	groups := d.parked
	d.parked = make(map[uint64]*parkedGroup)
	d.offers = make(map[uint64]*liveOffer)
	d.prepares = make(map[uint64]*dist.Prepare)
	d.mu.Unlock()
	for _, pg := range groups {
		for _, m := range pg.members {
			d.e.settle(m.entry, d.e.met.failures, Outcome{Status: StatusFailed, Err: ErrInDoubt, Attempts: m.entry.attempts})
			d.e.txm.Exit()
		}
	}
}

// DeliverPrepare hands a matchmaker prepare to the engine (any
// goroutine). The reservation is consumed by the scheduler at the next
// round's beforeRound; a prepare for an unknown or already-reserved offer
// is refused with an immediate no vote.
func (e *Engine) DeliverPrepare(p dist.Prepare) {
	d := e.dist
	if d == nil {
		return
	}
	d.mu.Lock()
	_, known := d.offers[p.Offer]
	_, reserved := d.prepares[p.Offer]
	if known && !reserved {
		cp := p
		d.prepares[p.Offer] = &cp
		d.mu.Unlock()
		select {
		case e.wake <- struct{}{}:
		default:
		}
		return
	}
	d.mu.Unlock()
	d.voteNo(p.Group, p.Offer)
}

// ApplyDecision resolves a parked group (any goroutine; idempotent).
// Commit goes through the ordinary batched commit path; abort rolls the
// members back and requeues them — averted widows, exactly as when a
// local group member cannot commit.
func (e *Engine) ApplyDecision(group uint64, commit bool) {
	d := e.dist
	if d == nil {
		return
	}
	pg := d.take(group)
	if pg == nil {
		return
	}
	if commit {
		txns := make([]*txn.Txn, 0, len(pg.members))
		for _, m := range pg.members {
			txns = append(txns, m.tx)
		}
		start := time.Now()
		err := e.txm.CommitUnits([][]*txn.Txn{txns})
		dur := time.Since(start)
		e.met.commitFlush.Observe(dur)
		if err == nil {
			e.statsMu.Lock()
			e.met.commitBatches.Add(1)
			e.met.groupCommits.Add(1)
			e.statsMu.Unlock()
		}
		for _, m := range pg.members {
			if t := m.entry.prog.Trace; t != 0 && e.tracer != nil {
				e.tracer.Span(t, t, "commit", start, dur, "2pc")
			}
			if err != nil {
				e.settle(m.entry, e.met.failures, Outcome{Status: StatusFailed, Err: err, Attempts: m.entry.attempts})
			} else {
				e.settle(m.entry, e.met.commits, Outcome{Status: StatusCommitted, Attempts: m.entry.attempts})
			}
		}
	} else {
		for _, m := range pg.members {
			m.tx.Abort()
			e.bump(e.met.widowsAverted)
			select {
			case e.requeueq <- m.entry:
				select {
				case e.wake <- struct{}{}:
				default:
				}
			case <-e.done:
				e.settle(m.entry, e.met.failures, Outcome{Status: StatusFailed, Err: ErrEngineClosed, Attempts: m.entry.attempts})
			}
		}
	}
	for range pg.members {
		e.txm.Exit()
	}
}

// distCoordinator extends the §4 rules across shards: reservations come
// in before each round, unmatched queries go out after it, and members
// matched by the matchmaker commit through the two-phase path. Everyone
// else follows the local rules unchanged.
type distCoordinator struct {
	e     *Engine
	d     *distRuntime
	local *localCoordinator
}

// beforeRound delivers waiting reservations: the matchmaker matched this
// member's offer on another shard, and its answer can resume the member
// now — provided the local grounding is still exactly what was offered.
func (dc *distCoordinator) beforeRound(r *run, blocked []*member) (int, []*member) {
	resumed := 0
	remaining := blocked[:0:0]
	for _, m := range blocked {
		lo, p := dc.d.takeReservation(m)
		if p == nil {
			remaining = append(remaining, m)
			continue
		}
		if dc.deliver(r, m, lo, p) {
			resumed++
		} else {
			remaining = append(remaining, m)
		}
	}
	return resumed, remaining
}

// deliver validates and applies one reservation. The member takes shared
// locks on its offered tables and re-checks that no commit advanced them
// past the CSN the answer was computed at — its half of the group-wide
// validation; every other member does the same on its own shard.
func (dc *distCoordinator) deliver(r *run, m *member, lo *liveOffer, p *dist.Prepare) bool {
	e := dc.e
	start := time.Now()
	ok := lo != nil && m.query != nil && m.tx != nil && m.query.String() == lo.queryStr
	if ok && lockingLevel(e.opts.Isolation) {
		for _, table := range lo.tables {
			if err := m.tx.LockTableShared(table); err != nil {
				ok = false
				break
			}
		}
	}
	if ok && e.groundChanged(lo.tables, p.CSN) {
		ok = false
	}
	if t := m.entry.prog.Trace; t != 0 && e.tracer != nil {
		note := "2pc"
		if !ok {
			note += " stale"
		}
		e.tracer.Span(t, t, "validate", start, time.Since(start), note)
	}
	if !ok {
		dc.d.voteNo(p.Group, p.Offer)
		return false
	}
	snap := e.txm.AcquireSnapshot()
	m.tx.RefreshSnapshot(snap.View)
	snap.Release()
	m.distGroup = p.Group
	r.mu.Lock()
	m.state = stateRunning
	m.query = nil
	r.active++
	r.mu.Unlock()
	m.answerCh <- answerMsg{answer: &eq.Answer{Status: eq.Answered, Tuples: p.Ans.Tuples, Bindings: p.Ans.Bindings}}
	return true
}

// afterRound exports this round's unmatched entangled queries as offers.
// Only members with a transaction and no local partners qualify: an
// autocommit member has nothing to prepare, and a locally-entangled
// member's fate already belongs to its local group.
func (dc *distCoordinator) afterRound(r *run) {
	for _, m := range r.blockedMembers() {
		if m.tx == nil || m.query == nil || m.offerGrounds == nil || len(m.partners) != 0 {
			continue
		}
		if o := dc.d.registerOffer(m); o != nil {
			go dc.d.cfg.Transport.Offer(*o)
		}
	}
}

// finalize parks reserved members that reached ready (prepare record,
// yes vote, locks held until the decision) and hands everyone else to the
// local end-of-run rules. A reserved member that cannot prepare must not
// commit locally either — its answer is promised to the group — so it
// aborts and retries.
func (dc *distCoordinator) finalize(r *run) {
	e := dc.e
	rest := make([]*member, 0, len(r.members))
	byGroup := make(map[uint64][]*member)
	for _, m := range r.members {
		if m.distGroup != 0 && m.state == stateReady && m.tx != nil && len(m.partners) == 0 {
			byGroup[m.distGroup] = append(byGroup[m.distGroup], m)
			continue
		}
		if m.distGroup != 0 {
			dc.d.voteNo(m.distGroup, m.entry.offerID)
			if m.state == stateReady {
				if m.tx != nil {
					m.tx.Abort()
				}
				m.state = stateAbortedRetry
			}
		}
		rest = append(rest, m)
	}
	for g, ms := range byGroup {
		prepared := true
		for _, m := range ms {
			if err := e.txm.Prepare(m.tx, g); err != nil {
				prepared = false
				break
			}
		}
		if !prepared {
			for _, m := range ms {
				dc.d.voteNo(g, m.entry.offerID)
				m.tx.Abort()
				m.state = stateAbortedRetry
				rest = append(rest, m)
			}
			continue
		}
		dc.d.park(g, ms)
	}
	dc.local.finalize(&run{e: e, members: rest})
}
