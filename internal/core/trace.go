package core

// TraceSink receives the schedule events of §3.3 / Appendix C as the engine
// executes: ordinary reads and writes, grounding reads (RG), quasi-reads
// (RQ), entanglement operations (E), commits, and aborts. The isolation
// checker (internal/isolation) consumes these to verify that the engine
// produces entangled-isolated schedules at the full isolation level — and
// detectably anomalous ones when the guards are switched off.
//
// Objects are identified at the engine's locking granularity: table name
// for reads (table-level read locks), "table/rowID" for writes.
// Implementations must be safe for concurrent use.
type TraceSink interface {
	Read(tx uint64, obj string)
	GroundingRead(tx uint64, obj string)
	QuasiRead(tx uint64, obj string)
	Write(tx uint64, obj string)
	Entangle(op uint64, txs []uint64)
	Commit(tx uint64)
	Abort(tx uint64)
}

// traceObserver adapts txn.Observer events into TraceSink events.
// Grounding reads no longer pass through the transaction layer — the
// evaluation round's snapshot readers emit RG events directly — so every
// observed transactional read is an ordinary read.
type traceObserver struct {
	e *Engine
}

func (t *traceObserver) OnRead(tx uint64, table string, row int64) {
	if sink := t.e.opts.Trace; sink != nil {
		sink.Read(tx, table)
	}
}

func (t *traceObserver) OnWrite(tx uint64, table string, row int64) {
	if sink := t.e.opts.Trace; sink != nil {
		sink.Write(tx, writeObj(table, row))
	}
}

func (t *traceObserver) OnCommit(tx uint64) {
	if sink := t.e.opts.Trace; sink != nil {
		sink.Commit(tx)
	}
}

func (t *traceObserver) OnAbort(tx uint64) {
	if sink := t.e.opts.Trace; sink != nil {
		sink.Abort(tx)
	}
}

// writeObj renders the write-granularity object identifier.
func writeObj(table string, row int64) string {
	return table + "/" + itoa(row)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
