package core

import (
	"fmt"
	"repro/internal/obs"
	"sync"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/types"
)

// roundCursors is an evaluation round's shared cursor cache. Every query of
// a round grounds against the same pinned snapshot, so N queries scanning
// the same table share ONE chain-id capture (storage.ScanCursorAsOf)
// instead of paying N captures — and, unlike the materialized scan cache
// this replaces, nobody ever holds a cloned copy of the table: each query
// gets an independent-position Clone of the base cursor and pulls row
// references batch by batch.
//
// The capture is view-independent: it records every chain id, and each
// clone resolves visibility through its own Snapshot (Self = the posing
// transaction for members with uncommitted writes, 0 otherwise). The old
// cache's poser-write bypass therefore disappears — a writer-poser's clone
// simply resolves its own uncommitted versions visible, sharing the same id
// list as everyone else.
type roundCursors struct {
	view storage.Snapshot // committed view: round CSN, Self = 0

	mu     sync.Mutex
	tables map[string]*cursorEntry
}

// cursorEntry captures one table's chain ids exactly once; the per-entry
// Once means concurrent workers capturing DIFFERENT tables never serialize
// behind each other.
type cursorEntry struct {
	once sync.Once
	base *storage.ScanCursor
}

func newRoundCursors(view storage.Snapshot) *roundCursors {
	view.Self = 0
	return &roundCursors{view: view, tables: make(map[string]*cursorEntry)}
}

// cursor returns a fresh scan cursor over tbl reading through view, sharing
// the round's one-time chain-id capture — exactly one storage scan per
// table per round no matter how many queries ground on it or how many
// workers ground them.
func (rc *roundCursors) cursor(tbl *storage.Table, view storage.Snapshot) *storage.ScanCursor {
	rc.mu.Lock()
	e, ok := rc.tables[tbl.Name()]
	if !ok {
		e = &cursorEntry{}
		rc.tables[tbl.Name()] = e
	}
	rc.mu.Unlock()
	e.once.Do(func() {
		e.base = tbl.ScanCursorAsOf(rc.view)
	})
	return e.base.Clone(view)
}

// groundReader is the eq.Reader an evaluation round hands each pending
// query: it reads through the round's pinned snapshot (plus the posing
// transaction's own uncommitted writes) instead of taking shared locks —
// the lock-free grounding path. Every query of a round grounds against the
// same CSN, so evaluation still sees one fixed database state; the
// snapshot is an even stronger fixed point than the old "all members are
// blocked" argument, because not even transactions outside the run can
// perturb it mid-round.
//
// The reader implements eq.CursorReader: full scans stream through the
// round's shared cursor cache (one chain-id capture per table per round,
// zero row cloning), and equality-bound atoms probe the table's hash
// indexes through the same snapshot visibility check. The materializing
// Scan/Probe methods remain as the eq interface contract (and for any
// non-streaming caller) but the grounding pipeline never calls them.
//
// Every read resolves through g.view, whose Self is the posing transaction:
// for tables the poser wrote, its uncommitted versions (and tombstones) are
// visible; for tables it did not write, Self changes nothing, so no
// write-set lookup is needed to route reads.
//
// Grounding reads are reported to the trace sink as RG events attributed
// to the posing transaction (once per table per query, matching the old
// fetch-each-relation-once behavior), preserving the Appendix C.1
// attribution the isolation checker relies on. Autocommit members (no
// transaction) ground silently, matching §4's "entangled queries outside a
// transaction block" which hold no state after the round.
type groundReader struct {
	cat     *storage.Catalog
	view    storage.Snapshot // round snapshot, Self = posing tx (if any)
	txID    uint64           // posing transaction (0 for autocommit members)
	trace   TraceSink
	cursors *roundCursors // shared round cursor cache (nil: capture directly)
	indexed *obs.Counter  // engine's indexed_groundings counter (nil ok)
	traced  map[string]bool
}

// traceRG reports one RG event per grounded table per query. A reader
// serves exactly one grounding task, so no locking is needed.
func (g *groundReader) traceRG(table string) {
	if g.trace == nil || g.txID == 0 || g.traced[table] {
		return
	}
	if g.traced == nil {
		g.traced = make(map[string]bool)
	}
	g.traced[table] = true
	g.trace.GroundingRead(g.txID, table)
}

// ScanCursor streams table through the round's shared chain-id capture
// (eq.CursorReader) — the grounding pipeline's scan access path.
func (g *groundReader) ScanCursor(table string) (eq.RowCursor, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	if g.cursors != nil {
		return g.cursors.cursor(tbl, g.view), nil
	}
	return tbl.ScanCursorAsOf(g.view), nil
}

// ProbeCursor streams an indexed equality probe through the round snapshot
// (eq.CursorReader) — the grounding pipeline's probe access path.
func (g *groundReader) ProbeCursor(table string, cols []int, vals []types.Value) (eq.RowCursor, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	cur, err := tbl.ProbeCursor(g.view, cols, vals)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	if g.indexed != nil {
		g.indexed.Add(1)
	}
	return cur, nil
}

// Scan materializes a full snapshot read of table (eq.Reader). The
// streaming pipeline uses ScanCursor instead; this remains for
// non-streaming callers.
func (g *groundReader) Scan(table string) ([]types.Tuple, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	return tbl.AllAsOf(g.view), nil
}

// CanProbe reports whether table carries an equality index over the given
// column positions (eq.IndexedReader). A positive answer commits the
// planner to probing instead of scanning, so the grounding-read trace
// event is emitted here — even if an empty outer atom means no probe ever
// executes, the query's read dependency on the table is recorded, exactly
// as the old fetch-every-relation path did.
func (g *groundReader) CanProbe(table string, cols []int) bool {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return false
	}
	if !tbl.HasIndexForCols(cols) {
		return false
	}
	g.traceRG(tbl.Name())
	return true
}

// Probe materializes an indexed equality probe through the round snapshot
// (eq.IndexedReader). The streaming pipeline uses ProbeCursor instead.
func (g *groundReader) Probe(table string, cols []int, vals []types.Value) ([]types.Tuple, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	rows, err := tbl.MatchAsOf(g.view, cols, vals)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	if g.indexed != nil {
		g.indexed.Add(1)
	}
	return rows, nil
}
