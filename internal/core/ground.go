package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// roundScans is an evaluation round's shared scan cache. Every query of a
// round grounds against the same pinned snapshot, so N queries scanning the
// same table share ONE materialized committed-state copy instead of paying
// N AllAsOf clones — the dominant allocation of the old grounding path. A
// poser holding uncommitted writes on a table bypasses the shared copy (its
// grounding view must include its own versions). Top-level row buffers are
// recycled across rounds through the engine's buffer pool.
type roundScans struct {
	view storage.Snapshot // committed view: round CSN, Self = 0
	pool *sync.Pool       // of *[]types.Tuple scan buffers

	mu     sync.Mutex
	tables map[string]*scanEntry
}

// scanEntry materializes one table's shared scan exactly once; the
// per-entry Once means concurrent workers materializing DIFFERENT tables
// never serialize behind each other.
type scanEntry struct {
	once sync.Once
	rows []types.Tuple
}

func newRoundScans(view storage.Snapshot, pool *sync.Pool) *roundScans {
	view.Self = 0
	return &roundScans{view: view, pool: pool, tables: make(map[string]*scanEntry)}
}

// rows returns the shared committed-snapshot scan of tbl, materializing it
// on first use — exactly one snapshot scan per table per round no matter
// how many queries ground on it or how many workers ground them.
func (rs *roundScans) rows(tbl *storage.Table) []types.Tuple {
	rs.mu.Lock()
	e, ok := rs.tables[tbl.Name()]
	if !ok {
		e = &scanEntry{}
		rs.tables[tbl.Name()] = e
	}
	rs.mu.Unlock()
	e.once.Do(func() {
		var buf []types.Tuple
		if rs.pool != nil {
			if p, ok := rs.pool.Get().(*[]types.Tuple); ok && p != nil {
				buf = (*p)[:0]
			}
		}
		e.rows = tbl.AppendAllAsOf(rs.view, buf)
	})
	return e.rows
}

// release recycles the round's scan buffers. Called after the evaluation
// round's grounding tasks have all completed; nothing retains the scanned
// tuples past the round (valuations and answers copy values out), so only
// the top-level slices are worth pooling.
func (rs *roundScans) release() {
	rs.mu.Lock()
	for name, e := range rs.tables {
		delete(rs.tables, name)
		if rs.pool != nil && e.rows != nil {
			buf := e.rows[:0]
			rs.pool.Put(&buf)
		}
	}
	rs.mu.Unlock()
}

// groundReader is the eq.Reader an evaluation round hands each pending
// query: it reads through the round's pinned snapshot (plus the posing
// transaction's own uncommitted writes) instead of taking shared locks —
// the lock-free grounding path. Every query of a round grounds against the
// same CSN, so evaluation still sees one fixed database state; the
// snapshot is an even stronger fixed point than the old "all members are
// blocked" argument, because not even transactions outside the run can
// perturb it mid-round.
//
// The reader also implements eq.IndexedReader: equality-bound atoms probe
// the table's hash indexes through the same snapshot visibility check
// instead of materializing the whole relation, and full scans are served
// from the round's shared scan cache when the poser has not written the
// table.
//
// Grounding reads are reported to the trace sink as RG events attributed
// to the posing transaction (once per table per query, matching the old
// fetch-each-relation-once behavior), preserving the Appendix C.1
// attribution the isolation checker relies on. Autocommit members (no
// transaction) ground silently, matching §4's "entangled queries outside a
// transaction block" which hold no state after the round.
type groundReader struct {
	cat     *storage.Catalog
	view    storage.Snapshot // round snapshot, Self = posing tx (if any)
	txID    uint64           // posing transaction (0 for autocommit members)
	tx      *txn.Txn         // posing transaction handle (nil for autocommit)
	trace   TraceSink
	scans   *roundScans   // shared round scan cache (nil: scan directly)
	indexed *atomic.Int64 // engine's IndexedGroundings counter (nil ok)
	traced  map[string]bool
	wroteBy map[string]bool // memoized WroteTable answers (stable while blocked)
}

// traceRG reports one RG event per grounded table per query. A reader
// serves exactly one grounding task, so no locking is needed.
func (g *groundReader) traceRG(table string) {
	if g.trace == nil || g.txID == 0 || g.traced[table] {
		return
	}
	if g.traced == nil {
		g.traced = make(map[string]bool)
	}
	g.traced[table] = true
	g.trace.GroundingRead(g.txID, table)
}

// wrote reports whether the posing transaction holds uncommitted writes on
// table — the case that must bypass shared (committed-state) caches. The
// answer is memoized per table: the member is blocked while its query
// grounds, so its write set cannot change mid-grounding, and per-valuation
// index probes must not re-walk the undo log every time.
func (g *groundReader) wrote(table string) bool {
	if g.tx == nil {
		return false
	}
	if w, ok := g.wroteBy[table]; ok {
		return w
	}
	if g.wroteBy == nil {
		g.wroteBy = make(map[string]bool)
	}
	w := g.tx.WroteTable(table)
	g.wroteBy[table] = w
	return w
}

func (g *groundReader) Scan(table string) ([]types.Tuple, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	if g.wrote(tbl.Name()) {
		// Private view including the poser's own uncommitted versions.
		return tbl.AllAsOf(g.view), nil
	}
	if g.scans != nil {
		return g.scans.rows(tbl), nil
	}
	shared := g.view
	shared.Self = 0
	return tbl.AllAsOf(shared), nil
}

// CanProbe reports whether table carries an equality index over the given
// column positions (eq.IndexedReader). A positive answer commits the
// planner to probing instead of scanning, so the grounding-read trace
// event is emitted here — even if an empty outer atom means no Probe ever
// executes, the query's read dependency on the table is recorded, exactly
// as the old fetch-every-relation path did.
func (g *groundReader) CanProbe(table string, cols []int) bool {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return false
	}
	if !tbl.HasIndexForCols(cols) {
		return false
	}
	g.traceRG(tbl.Name())
	return true
}

// Probe serves an indexed equality probe through the round snapshot
// (eq.IndexedReader).
func (g *groundReader) Probe(table string, cols []int, vals []types.Value) ([]types.Tuple, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	g.traceRG(tbl.Name())
	view := g.view
	if !g.wrote(tbl.Name()) {
		view.Self = 0
	}
	rows, err := tbl.MatchAsOf(view, cols, vals)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	if g.indexed != nil {
		g.indexed.Add(1)
	}
	return rows, nil
}
