package core

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/types"
)

// groundReader is the eq.Reader an evaluation round hands each pending
// query: it reads through the round's pinned snapshot (plus the posing
// transaction's own uncommitted writes) instead of taking shared locks —
// the lock-free grounding path. Every query of a round grounds against the
// same CSN, so evaluation still sees one fixed database state; the
// snapshot is an even stronger fixed point than the old "all members are
// blocked" argument, because not even transactions outside the run can
// perturb it mid-round.
//
// Grounding reads are reported to the trace sink as RG events attributed
// to the posing transaction, preserving the Appendix C.1 attribution the
// isolation checker relies on. Autocommit members (no transaction) ground
// silently, matching §4's "entangled queries outside a transaction block"
// which hold no state after the round.
type groundReader struct {
	cat   *storage.Catalog
	view  storage.Snapshot
	txID  uint64 // posing transaction (0 for autocommit members)
	trace TraceSink
}

func (g *groundReader) Scan(table string) ([]types.Tuple, error) {
	tbl, err := g.cat.Get(table)
	if err != nil {
		return nil, fmt.Errorf("core: grounding read: %w", err)
	}
	rows := tbl.AllAsOf(g.view)
	if g.trace != nil && g.txID != 0 {
		g.trace.GroundingRead(g.txID, tbl.Name())
	}
	return rows, nil
}
