package core

import (
	"repro/internal/eq"
	"repro/internal/obs"
)

// coreMetrics is the engine's counter and histogram set, registry-backed.
// The scattered Stats{...} fields of earlier revisions live behind these
// handles now: one obs.Registry owns every engine quantity, so a snapshot
// is a single registry read instead of a mixture of mutex-copied struct
// fields and separately-loaded atomics.
//
// Counter names match the legacy StatsSnapshot JSON tags so /metrics and
// \stats agree on vocabulary.
type coreMetrics struct {
	reg *obs.Registry

	submitted     *obs.Counter
	runs          *obs.Counter
	evalRounds    *obs.Counter
	commits       *obs.Counter
	groupCommits  *obs.Counter
	commitBatches *obs.Counter
	entangleOps   *obs.Counter
	requeues      *obs.Counter
	timeouts      *obs.Counter
	rollbacks     *obs.Counter
	failures      *obs.Counter
	widowsAverted *obs.Counter
	writeConflict *obs.Counter
	vacuums       *obs.Counter
	versionsPrune *obs.Counter

	groundCacheHits   *obs.Counter
	groundCacheMisses *obs.Counter
	indexedGroundings *obs.Counter

	solveSteps     *obs.Counter
	solveFallbacks *obs.Counter

	// Latency histograms (log-spaced buckets, p50/p99/p999 via /metrics).
	answerLatency *obs.Histogram // Submit -> outcome delivery, end to end
	execLatency   *obs.Histogram // RunDirect (classical path), end to end
	groundRound   *obs.Histogram // grounding stage of one evaluation round
	solveRound    *obs.Histogram // coordinating-set search of one round
	commitFlush   *obs.Histogram // batched end-of-run WAL commit flush
	groundPull    *obs.Histogram // one cursor batch pull in the streaming pipeline
}

func newCoreMetrics(reg *obs.Registry) *coreMetrics {
	return &coreMetrics{
		reg:           reg,
		submitted:     reg.Counter("submitted"),
		runs:          reg.Counter("runs"),
		evalRounds:    reg.Counter("eval_rounds"),
		commits:       reg.Counter("commits"),
		groupCommits:  reg.Counter("group_commits"),
		commitBatches: reg.Counter("commit_batches"),
		entangleOps:   reg.Counter("entangle_ops"),
		requeues:      reg.Counter("requeues"),
		timeouts:      reg.Counter("timeouts"),
		rollbacks:     reg.Counter("rollbacks"),
		failures:      reg.Counter("failures"),
		widowsAverted: reg.Counter("widows_averted"),
		writeConflict: reg.Counter("write_conflicts"),
		vacuums:       reg.Counter("vacuums"),
		versionsPrune: reg.Counter("versions_pruned"),

		groundCacheHits:   reg.Counter("ground_cache_hits"),
		groundCacheMisses: reg.Counter("ground_cache_misses"),
		indexedGroundings: reg.Counter("indexed_groundings"),

		solveSteps:     reg.Counter("solve_steps"),
		solveFallbacks: reg.Counter("solve_fallbacks"),

		answerLatency: reg.Histogram("answer_latency"),
		execLatency:   reg.Histogram("exec_latency"),
		groundRound:   reg.Histogram("ground_round"),
		solveRound:    reg.Histogram("solve_round"),
		commitFlush:   reg.Histogram("commit_flush"),
		groundPull:    reg.Histogram("ground_pull"),
	}
}

// legacy renders the registry-backed counters as the historical Stats
// struct in one pass; stream supplies the streaming pipeline's gauges.
// Callers hold e.statsMu so the lifecycle counters (which are incremented
// under the same lock) form an internally consistent set — a snapshot can
// never show more settled programs than submitted ones.
func (m *coreMetrics) legacy(stream *eq.StreamStats) Stats {
	return Stats{
		Submitted:      m.submitted.Load(),
		Runs:           m.runs.Load(),
		EvalRounds:     m.evalRounds.Load(),
		Commits:        m.commits.Load(),
		GroupCommits:   m.groupCommits.Load(),
		CommitBatches:  m.commitBatches.Load(),
		EntangleOps:    m.entangleOps.Load(),
		Requeues:       m.requeues.Load(),
		Timeouts:       m.timeouts.Load(),
		Rollbacks:      m.rollbacks.Load(),
		Failures:       m.failures.Load(),
		WidowsAverted:  m.widowsAverted.Load(),
		WriteConflicts: m.writeConflict.Load(),
		Vacuums:        m.vacuums.Load(),
		VersionsPruned: m.versionsPrune.Load(),

		GroundCacheHits:   m.groundCacheHits.Load(),
		GroundCacheMisses: m.groundCacheMisses.Load(),
		IndexedGroundings: m.indexedGroundings.Load(),

		GroundRowsStreamed:  stream.Rows(),
		GroundPeakBatchRows: stream.PeakBatchRows(),

		SolveSteps:     m.solveSteps.Load(),
		SolveFallbacks: m.solveFallbacks.Load(),
	}
}

// bump increments one lifecycle counter under statsMu, the snapshot
// consistency lock. Hot-path counters (index probes, streamed rows) are
// bumped lock-free instead; only program-lifecycle transitions need the
// ordering the lock provides.
func (e *Engine) bump(c *obs.Counter) {
	if c == nil {
		return
	}
	e.statsMu.Lock()
	c.Add(1)
	e.statsMu.Unlock()
}

func (e *Engine) bumpN(c *obs.Counter, n int64) {
	if c == nil || n == 0 {
		return
	}
	e.statsMu.Lock()
	c.Add(n)
	e.statsMu.Unlock()
}

// Metrics exposes the engine's registry (its own when none was supplied).
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// Tracer exposes the lifecycle tracer; nil when tracing is disabled.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }
