package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/txn"
)

// memberState is the lifecycle of one transaction within a run, matching
// §4: executing, blocked on an entangled query, ready to commit, or
// aborted.
type memberState int

const (
	stateRunning      memberState = iota
	stateBlocked                  // waiting for an entangled-query answer
	stateReady                    // body returned nil; commit pending group decision
	stateAbortedRetry             // aborted; return to the dormant pool
	stateRolledBack               // program-requested rollback (final)
	stateAbortedFinal             // non-retryable error (final)
)

// member is one transaction participating in a run.
type member struct {
	run   *run
	entry *pending
	tx    *txn.Txn // nil in autocommit (-Q) mode

	state    memberState
	query    *eq.Query // pending entangled query when stateBlocked
	answerCh chan answerMsg
	partners map[*member]bool // entanglement partners accumulated this run
	finalErr error

	// Cross-shard scratch (distCoordinator only). A NoPartner evaluation
	// leaves the groundings behind so afterRound can export them as an
	// offer; distGroup marks a member resumed from a matchmaker prepare,
	// committed through the two-phase path instead of the local rules.
	offerGrounds []*eq.Grounding
	offerTables  []string
	offerCSN     uint64
	distGroup    uint64
}

type answerMsg struct {
	answer   *eq.Answer
	abortRun bool // run ended without an answer: abort and requeue
}

// run executes one §4 scheduling run.
type run struct {
	e       *Engine
	direct  bool // RunDirect: no scheduler, entangled queries rejected
	mu      sync.Mutex
	cond    *sync.Cond
	active  int // members in stateRunning
	members []*member
	wg      sync.WaitGroup
	round   int // evaluation rounds so far (scheduler goroutine only)
}

// sentinels classifying how a body unwound.
var (
	errRetrySentinel    = errors.New("core: retryable abort")
	errRollbackSentinel = errors.New("core: rollback")
	errStaleCommit      = errors.New("core: group member no longer active at commit")
)

func levelFor(iso Isolation) txn.IsolationLevel {
	switch iso {
	case RelaxedReads:
		return txn.ReadCommitted
	case SnapshotIsolated:
		return txn.SnapshotIsolation
	default:
		return txn.Serializable
	}
}

// lockingLevel reports whether iso enforces repeatable (quasi-)reads with
// shared locks and round-snapshot validation. RelaxedReads opts out by
// definition; SnapshotIsolated relies on snapshots plus first-committer-
// wins instead of read locks.
func lockingLevel(iso Isolation) bool {
	return iso != RelaxedReads && iso != SnapshotIsolated
}

// executeRun runs a batch of pooled transactions to quiescence: start all
// members, alternate member execution with entangled-query evaluation
// rounds, then commit/abort per the group-commit rules.
func (e *Engine) executeRun(batch []*pending) {
	// One run is one unit of work against the checkpoint quiescence gate:
	// every member transaction begins, logs, and finalizes inside this
	// bracket, so a checkpoint either runs before the whole run or after
	// it — never against a half-committed run.
	e.txm.Enter()
	defer e.txm.Exit()
	r := &run{e: e}
	r.cond = sync.NewCond(&r.mu)
	runStart := time.Now()
	for _, ent := range batch {
		ent.attempts++
		if t := ent.prog.Trace; t != 0 && e.tracer != nil {
			// The submit span covers the pool wait: (re)enqueue to run start.
			e.tracer.Span(t, t, "submit", ent.enqueued, runStart.Sub(ent.enqueued),
				fmt.Sprintf("attempt=%d", ent.attempts))
		}
		m := &member{
			run:      r,
			entry:    ent,
			answerCh: make(chan answerMsg, 1),
			partners: make(map[*member]bool),
		}
		r.members = append(r.members, m)
	}
	r.active = len(r.members)
	for _, m := range r.members {
		r.wg.Add(1)
		go r.runMember(m)
	}

	// Evaluation rounds: once every member is blocked, ready, or aborted,
	// evaluate all pending entangled queries together; resume the answered
	// transactions; repeat until a round answers nobody (Figure 4's "the
	// system recognizes that no-one can proceed further"). The coordinator
	// brackets each round: beforeRound resumes members whose answers were
	// prepared elsewhere (cross-shard reservations), afterRound exports the
	// still-unmatched queries. The local coordinator makes both a no-op.
	for {
		r.waitQuiescent()
		blocked := r.blockedMembers()
		if len(blocked) == 0 {
			break
		}
		resumed, remaining := e.coord.beforeRound(r, blocked)
		if len(remaining) > 0 {
			resumed += e.evaluateQueries(r, remaining)
		}
		e.coord.afterRound(r)
		if resumed == 0 {
			break
		}
	}

	// Abort members still blocked: they return to the dormant pool.
	for _, m := range r.blockedMembers() {
		r.mu.Lock()
		m.state = stateRunning // resumes only to unwind into abortedRetry
		r.active++
		r.mu.Unlock()
		m.answerCh <- answerMsg{abortRun: true}
	}
	r.wg.Wait()
	e.coord.finalize(r)
}

func (r *run) waitQuiescent() {
	r.mu.Lock()
	for r.active > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

func (r *run) blockedMembers() []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*member
	for _, m := range r.members {
		if m.state == stateBlocked {
			out = append(out, m)
		}
	}
	return out
}

// runMember executes one member's body on its own goroutine.
func (r *run) runMember(m *member) {
	defer r.wg.Done()
	e := r.e
	e.acquireConn()
	defer e.releaseConn()

	if !m.entry.prog.Autocommit {
		tx, err := e.txm.Begin(levelFor(e.opts.Isolation))
		if err != nil {
			m.finalErr = err
			r.setDone(m, stateAbortedFinal)
			return
		}
		m.tx = tx
	}

	err := runBody(m)
	var st memberState
	switch {
	case err == nil:
		st = stateReady
	case errors.Is(err, errRetrySentinel):
		st = stateAbortedRetry
	case errors.Is(err, errRollbackSentinel):
		st = stateRolledBack
		m.finalErr = ErrRolledBack
	default:
		st = stateAbortedFinal
		m.finalErr = err
	}
	if st != stateReady && m.tx != nil {
		m.tx.Abort()
	}
	r.setDone(m, st)
}

// runBody invokes the program body, converting unwind panics into
// sentinel errors.
func runBody(m *member) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if u, ok := p.(unwind); ok {
				if u == unwindRetry {
					err = errRetrySentinel
				} else {
					err = errRollbackSentinel
				}
				return
			}
			panic(p)
		}
	}()
	return m.entry.prog.Body(&Tx{m: m})
}

// setDone records a terminal member state and wakes the scheduler.
func (r *run) setDone(m *member, st memberState) {
	r.mu.Lock()
	m.state = st
	r.active--
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (e *Engine) acquireConn() { e.conns <- struct{}{} }
func (e *Engine) releaseConn() { <-e.conns }

// evaluateQueries runs one entangled-query evaluation round over the
// blocked members and resumes everyone who received an answer (including
// empty answers, per Appendix B). It returns the number of resumed members.
//
// The round pins ONE storage snapshot and every pending query grounds
// against it — no shared locks, no short-lived grounding transactions, no
// lock-manager traffic on the read path. Determinism is preserved because
// a fixed snapshot is a stronger fixed point than the old blocked-members
// argument: even commits from outside the run cannot shift the view
// mid-round. At the locking isolation levels the answered members then
// take shared locks on the grounded tables and validate that no foreign
// commit touched them since the snapshot, which restores the §3.3.3
// repeatable quasi-read guarantee end to end; a member whose validation
// fails aborts and retries in a later run, exactly like a deadlock victim.
func (e *Engine) evaluateQueries(r *run, blocked []*member) int {
	e.bump(e.met.evalRounds)
	r.round++

	snap := e.txm.AcquireSnapshot()
	defer snap.Release()

	// All queries of the round ground against one pinned snapshot, so they
	// share one chain-id capture per table; each query streams through its
	// own cursor clone (posers that wrote a grounded table see their own
	// versions through their clone's Self).
	cursors := newRoundCursors(snap.View)

	pendings := make([]eq.Pending, len(blocked))
	cacheKeys := make([]string, len(blocked))
	for i, m := range blocked {
		view := snap.View
		var txID uint64
		if m.tx != nil {
			// A member grounds against the round snapshot plus its own
			// uncommitted writes.
			txID = m.tx.ID()
			view.Self = txID
		}
		p := eq.Pending{ID: i, Query: m.query, Reader: &groundReader{
			cat:     e.txm.Catalog(),
			view:    view,
			txID:    txID,
			trace:   e.opts.Trace,
			cursors: cursors,
			indexed: e.met.indexedGroundings,
		}}
		// Cross-round grounding reuse: a pending query whose grounded
		// tables' CSN fingerprint has not advanced is answered from its
		// previous groundings without touching the reader.
		if e.groundCache != nil {
			cacheKeys[i] = m.query.String()
			if gs, ok := e.groundCache.lookup(cacheKeys[i], e.txm.Catalog(), m.tx); ok {
				p.Cached, p.HasCached = gs, true
				e.bump(e.met.groundCacheHits)
				// Preserve RG attribution for the isolation checker: the
				// cached result stands in for grounding reads of the same
				// tables.
				if sink := e.opts.Trace; sink != nil && txID != 0 {
					for _, table := range m.query.BodyTables() {
						sink.GroundingRead(txID, table)
					}
				}
			} else {
				e.bump(e.met.groundCacheMisses)
			}
		}
		pendings[i] = p
	}
	// Grounding fans out across the bounded worker pool: every query reads
	// the same immutable snapshot, so parallel grounding (with its simulated
	// round trips overlapped) is safe. The coordinating-set search inside
	// Evaluate still consumes the groundings in submission order, so the
	// chosen answers match the serialized path's exactly.
	evalStart := time.Now()
	res := eq.Evaluate(pendings, eq.EvalOptions{
		MaxGroundings: e.opts.MaxGroundings,
		GroundWorkers: e.opts.GroundWorkers,
		GroundLatency: e.opts.GroundLatency,
		SolveBudget:   e.opts.SolveBudget,
		BatchRows:     e.opts.GroundBatch,
		Stream:        &e.streamStats,
		PullDur:       e.met.groundPull,
	})
	e.bumpN(e.met.solveSteps, int64(res.Solve.Steps))
	if res.Solve.Exhausted {
		e.bump(e.met.solveFallbacks)
	}
	e.met.groundRound.Observe(res.GroundDur)
	e.met.solveRound.Observe(res.SolveDur)

	// Per-round trace spans: every traced member that went through this
	// round's grounding and search gets ground + solve spans (the stage
	// work is shared; the spans attribute its wall time to each waiter).
	var roundNote string
	if e.tracer != nil {
		roundNote = fmt.Sprintf("round=%d", r.round)
		for _, m := range blocked {
			t := m.entry.prog.Trace
			if t == 0 {
				continue
			}
			e.tracer.Span(t, t, "ground", evalStart, res.GroundDur, roundNote)
			e.tracer.Span(t, t, "solve", evalStart.Add(res.GroundDur), res.SolveDur, roundNote)
		}
	}

	// Freshly grounded queries refill the cache (own-writes groundings and
	// fingerprints already past the round snapshot are refused inside).
	if e.groundCache != nil {
		for i, m := range blocked {
			if pendings[i].HasCached {
				continue
			}
			if gs, ok := res.Groundings[i]; ok {
				e.groundCache.store(cacheKeys[i], m.query.BodyTables(), snap.View.CSN, e.txm.Catalog(), m.tx, gs)
			}
		}
	}

	// Entanglement components: answered members connected by partner edges
	// form one entanglement operation each.
	parent := make([]int, len(blocked))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(b)] = find(a) }
	answered := make([]bool, len(blocked))
	for i := range blocked {
		if a := res.Answers[i]; a != nil && a.Status == eq.Answered {
			answered[i] = true
			for _, j := range res.Partners[i] {
				union(i, j)
			}
		}
	}
	components := make(map[int][]int)
	for i := range blocked {
		if answered[i] {
			root := find(i)
			components[root] = append(components[root], i)
		}
	}

	aborted := make(map[int]bool) // members whose quasi-read locks failed
	for _, comp := range components {
		compStart := time.Now()
		// Entangled queries share one fate from here on; their lifecycle
		// traces merge too — one trace id (the smallest) now carries every
		// member's spans, each still attributed to its original actor.
		if e.tracer != nil && len(comp) > 1 {
			ids := make([]uint64, 0, len(comp))
			for _, i := range comp {
				if t := blocked[i].entry.prog.Trace; t != 0 {
					ids = append(ids, t)
				}
			}
			if len(ids) > 1 {
				e.tracer.Merge(ids)
			}
		}
		// recordValidate stamps the lock/validate span (entangle logging,
		// quasi-read locks, round-snapshot validation) on every traced
		// member of the component, however the section exits.
		recordValidate := func(comp []int) {
			if e.tracer == nil {
				return
			}
			d := time.Since(compStart)
			for _, i := range comp {
				t := blocked[i].entry.prog.Trace
				if t == 0 {
					continue
				}
				note := roundNote
				if aborted[i] {
					note += " stale"
				}
				e.tracer.Span(t, t, "validate", compStart, d, note)
			}
		}
		opID := e.nextOpID()
		var txIDs []uint64
		for _, i := range comp {
			if blocked[i].tx != nil {
				txIDs = append(txIDs, blocked[i].tx.ID())
			}
		}
		if len(txIDs) > 0 {
			if err := e.txm.LogEntangle(opID, txIDs); err != nil {
				for _, i := range comp {
					aborted[i] = true
				}
				recordValidate(comp)
				continue
			}
		}
		// Record mutual partnership for group commit.
		for _, i := range comp {
			for _, j := range comp {
				if i != j {
					blocked[i].partners[blocked[j]] = true
				}
			}
		}
		// Quasi-read locks (§3.3.3): at the locking levels every participant
		// takes shared locks on its own grounded tables (the locks the
		// grounding reads would have held under 2PL, acquired post-hoc) and
		// on the tables its partners grounded on, making quasi-reads
		// repeatable under Strict 2PL from here to commit.
		if lockingLevel(e.opts.Isolation) {
			for _, i := range comp {
				m := blocked[i]
				if m.tx == nil {
					continue
				}
				for _, table := range res.GroundTables[i] {
					if err := m.tx.LockTableShared(table); err != nil {
						aborted[i] = true
					}
				}
				for _, j := range comp {
					if i == j {
						continue
					}
					for _, table := range res.GroundTables[j] {
						if err := m.tx.LockTableShared(table); err != nil {
							aborted[i] = true
						}
						if sink := e.opts.Trace; sink != nil && !aborted[i] {
							sink.QuasiRead(m.tx.ID(), table)
						}
					}
				}
			}
			// Snapshot validation: the locks only freeze the tables from now
			// on; if a commit from outside the run slipped in between the
			// round snapshot and the locks, every answer in this component is
			// based on stale groundings — the whole component aborts and
			// retries (like deadlock victims, invisible to the program). The
			// check covers the union of the component's grounded tables,
			// including those grounded by autocommit members, whose answers
			// partners consumed all the same.
			seen := make(map[string]bool)
			var compTables []string
			for _, i := range comp {
				for _, table := range res.GroundTables[i] {
					if !seen[table] {
						seen[table] = true
						compTables = append(compTables, table)
					}
				}
			}
			if e.groundChanged(compTables, snap.View.CSN) {
				for _, i := range comp {
					aborted[i] = true
				}
			}
		}
		if sink := e.opts.Trace; sink != nil {
			sink.Entangle(opID, txIDs)
		}
		recordValidate(comp)
	}

	// Deliver. Empty answers resume the transaction too; NoPartner and
	// Errored members stay blocked for the next round or the end of the
	// run. Empty answers at the locking levels also lock-and-validate the
	// member's own grounded tables — the member proceeds on the strength of
	// "no partner values existed", which must stay true to commit.
	resumed := 0
	for i, m := range blocked {
		a := res.Answers[i]
		if a == nil {
			continue
		}
		if a.Status == eq.NoPartner && e.dist != nil && m.tx != nil {
			// No local partner: remember what this round computed so the
			// coordinator can offer the query to the matchmaker.
			m.offerGrounds = res.Groundings[i]
			m.offerTables = res.GroundTables[i]
			m.offerCSN = snap.View.CSN
		}
		if !aborted[i] && a.Status == eq.EmptyAnswer && lockingLevel(e.opts.Isolation) && m.tx != nil {
			for _, table := range res.GroundTables[i] {
				if err := m.tx.LockTableShared(table); err != nil {
					aborted[i] = true
					break
				}
			}
			if !aborted[i] && e.groundChanged(res.GroundTables[i], snap.View.CSN) {
				aborted[i] = true
			}
		}
		if aborted[i] {
			r.mu.Lock()
			m.state = stateRunning // will unwind to abortedRetry
			r.active++
			r.mu.Unlock()
			m.answerCh <- answerMsg{abortRun: true}
			resumed++ // progress: the member leaves the blocked set
			continue
		}
		switch a.Status {
		case eq.Answered, eq.EmptyAnswer:
			if m.tx != nil {
				// A snapshot-isolated member's later reads should agree with
				// the state its answer was computed against: advance its
				// snapshot to the round's.
				m.tx.RefreshSnapshot(snap.View)
			}
			r.mu.Lock()
			m.state = stateRunning
			m.query = nil
			r.active++
			r.mu.Unlock()
			m.answerCh <- answerMsg{answer: a}
			resumed++
		}
	}
	return resumed
}

// groundChanged reports whether any of tables carries a commit newer than
// csn — the round-snapshot staleness check behind quasi-read validation.
func (e *Engine) groundChanged(tables []string, csn uint64) bool {
	for _, table := range tables {
		if tbl, err := e.txm.Catalog().Get(table); err == nil && tbl.LastCSN() > csn {
			return true
		}
	}
	return false
}
