package core
