package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
)

// memNet wires two engines and a matchmaker together in-process: the
// participant transports call straight into the matchmaker, and the
// matchmaker's sends call straight into the engines — the full
// cross-shard protocol minus the sockets.
type memNet struct {
	mm      *dist.Matchmaker
	engines map[string]*Engine
	// dropYes makes the first N yes-votes vanish (a lost vote; the group
	// must time out and abort).
	dropYes atomic.Int64
}

func (n *memNet) Prepare(node string, p dist.Prepare) error {
	n.engines[node].DeliverPrepare(p)
	return nil
}

func (n *memNet) Decide(node string, d dist.Decide) error {
	n.engines[node].ApplyDecision(d.Group, d.Commit)
	return nil
}

type memTransport struct {
	net  *memNet
	node string
}

func (t *memTransport) Offer(o dist.Offer) { t.net.mm.AddOffer(&o) }

func (t *memTransport) Vote(v dist.Vote) {
	if v.Yes && t.net.dropYes.Add(-1) >= 0 {
		return
	}
	t.net.mm.HandleVote(v)
}

func (t *memTransport) Status(group uint64) (dist.Status, error) {
	return t.net.mm.Decision(group), nil
}

// newDistPair builds two sharded engines over disjoint copies of the
// travel schema, joined by an in-memory matchmaker.
func newDistPair(t *testing.T, groupTimeout time.Duration) (*memNet, *Engine, *Engine) {
	t.Helper()
	net := &memNet{engines: make(map[string]*Engine)}
	net.mm = dist.New(dist.Options{
		Send:          net,
		GroupTimeout:  groupTimeout,
		SweepInterval: 20 * time.Millisecond,
	})
	t.Cleanup(net.mm.Close)
	opts := Options{RetryInterval: 10 * time.Millisecond}
	ea := newTestEngine(t, opts)
	eb := newTestEngine(t, opts)
	ea.EnableDist(DistConfig{Shard: 0, Node: "A", Transport: &memTransport{net: net, node: "A"},
		StatusGrace: 200 * time.Millisecond, StatusTick: 50 * time.Millisecond})
	eb.EnableDist(DistConfig{Shard: 1, Node: "B", Transport: &memTransport{net: net, node: "B"},
		StatusGrace: 200 * time.Millisecond, StatusTick: 50 * time.Millisecond})
	net.engines["A"] = ea
	net.engines["B"] = eb
	return net, ea, eb
}

// TestDistPairCommitsAcrossEngines is the cross-shard milestone at engine
// level: a flight-booking pair split across two engines with disjoint
// storage coordinates through the matchmaker and commits atomically.
func TestDistPairCommitsAcrossEngines(t *testing.T) {
	_, ea, eb := newDistPair(t, 3*time.Second)
	h1 := ea.Submit(bookFlightProg("Mickey", "Minnie", 5*time.Second))
	h2 := eb.Submit(bookFlightProg("Minnie", "Mickey", 5*time.Second))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes = %+v, %+v", o1, o2)
	}
	ra := scanAll(t, ea, "Reservations")
	rb := scanAll(t, eb, "Reservations")
	if len(ra) != 1 || len(rb) != 1 {
		t.Fatalf("reservations = %v / %v", ra, rb)
	}
	if !ra[0][1].Equal(rb[0][1]) || !ra[0][2].Equal(rb[0][2]) {
		t.Fatalf("pair booked different flights across shards: %v vs %v", ra, rb)
	}
	// Each shard committed its member through the distributed group path.
	if ga := ea.Stats().GroupCommits; ga != 1 {
		t.Errorf("shard A GroupCommits = %d, want 1", ga)
	}
	if gb := eb.Stats().GroupCommits; gb != 1 {
		t.Errorf("shard B GroupCommits = %d, want 1", gb)
	}
}

// TestDistLostVoteAbortsThenRetries injects a lost yes-vote: the first
// group must resolve to abort (all-or-nothing — nobody commits on a group
// whose tally never completed), after which both members retry and commit
// in a later group.
func TestDistLostVoteAbortsThenRetries(t *testing.T) {
	net, ea, eb := newDistPair(t, 300*time.Millisecond)
	net.dropYes.Store(1)
	h1 := ea.Submit(bookFlightProg("Mickey", "Minnie", 15*time.Second))
	h2 := eb.Submit(bookFlightProg("Minnie", "Mickey", 15*time.Second))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes = %+v, %+v", o1, o2)
	}
	ra := scanAll(t, ea, "Reservations")
	rb := scanAll(t, eb, "Reservations")
	if len(ra) != 1 || len(rb) != 1 {
		t.Fatalf("reservations = %v / %v (all-or-nothing violated)", ra, rb)
	}
	if !ra[0][1].Equal(rb[0][1]) {
		t.Fatalf("pair split across flights: %v vs %v", ra, rb)
	}
	// The aborted first group rolled somebody back as an averted widow.
	if wa, wb := ea.Stats().WidowsAverted, eb.Stats().WidowsAverted; wa+wb == 0 {
		t.Errorf("WidowsAverted = %d + %d, want > 0", wa, wb)
	}
}

// TestDistSingletonOffersDoNotMatch: two queries that cannot satisfy each
// other's posts just time out on their own shards; the matchmaker must not
// invent a group.
func TestDistSingletonOffersDoNotMatch(t *testing.T) {
	_, ea, eb := newDistPair(t, time.Second)
	h1 := ea.Submit(bookFlightProg("Mickey", "Goofy", 400*time.Millisecond))
	h2 := eb.Submit(bookFlightProg("Minnie", "Donald", 400*time.Millisecond))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusTimedOut || o2.Status != StatusTimedOut {
		t.Fatalf("outcomes = %+v, %+v, want timeouts", o1, o2)
	}
	if n := len(scanAll(t, ea, "Reservations")) + len(scanAll(t, eb, "Reservations")); n != 0 {
		t.Fatalf("reservations leaked: %d", n)
	}
}
