package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/types"
)

// Additional engine coverage: failure injection, retry dynamics, scheduler
// policy, and randomized soak testing.

// TestBodyPanicPropagates: a program body that panics with a non-sentinel
// value must crash loudly (programming error), not be swallowed.
func TestBodyPanicPropagates(t *testing.T) {
	e := newTestEngine(t, Options{})
	defer func() {
		// The panic happens on the member goroutine; RunDirect runs the
		// body on this goroutine, so recover here.
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	e.RunDirect(Program{Body: func(tx *Tx) error {
		panic("user bug")
	}})
}

// TestDeadlockedPairRetriesAndCommits: two entangled partners whose
// post-entanglement bookings write each other's rows in opposite order
// deadlock; both must retry as a group and eventually commit.
func TestDeadlockedPairRetriesAndCommits(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 2, RetryInterval: 5 * time.Millisecond})
	seedRows := func() (a, b int64) {
		tx, _ := e.BeginClassical()
		ida, _ := tx.Insert("Reservations", types.Tuple{types.Str("slotA"), types.Int(0), types.Date(0)})
		idb, _ := tx.Insert("Reservations", types.Tuple{types.Str("slotB"), types.Int(0), types.Date(0)})
		tx.Commit()
		return int64(ida), int64(idb)
	}
	rowA, rowB := seedRows()
	gate := make(chan struct{})
	var once sync.Once
	prog := func(me, them string, first, second int64) Program {
		return Program{
			Name:    me,
			Timeout: 5 * time.Second,
			Body: func(tx *Tx) error {
				a := tx.Entangle(flightQuery(me, them))
				if a.Status != eq.Answered {
					return fmt.Errorf("%s: %v", me, a.Status)
				}
				// Attempt conflicting updates in opposite orders on the
				// first attempt only; later attempts go one way.
				if tx.Attempt() == 1 {
					once.Do(func() { close(gate) })
					<-gate
					if err := tx.Update("Reservations", intToRowID(first),
						types.Tuple{types.Str(me), a.Bindings["fno"], a.Bindings["fdate"]}); err != nil {
						return err
					}
					time.Sleep(30 * time.Millisecond) // let the partner grab its first row
					return tx.Update("Reservations", intToRowID(second),
						types.Tuple{types.Str(me), a.Bindings["fno"], a.Bindings["fdate"]})
				}
				return tx.Update("Reservations", intToRowID(first),
					types.Tuple{types.Str(me), a.Bindings["fno"], a.Bindings["fdate"]})
			},
		}
	}
	h1 := e.Submit(prog("Mickey", "Minnie", rowA, rowB))
	h2 := e.Submit(prog("Minnie", "Mickey", rowB, rowA))
	o1, o2 := h1.Wait(), h2.Wait()
	if o1.Status != StatusCommitted || o2.Status != StatusCommitted {
		t.Fatalf("outcomes: %+v / %+v", o1, o2)
	}
	// At least one of them needed more than one attempt (deadlock victim
	// aborts the group).
	if o1.Attempts == 1 && o2.Attempts == 1 {
		t.Log("warning: expected at least one retry from the deadlock")
	}
}

func intToRowID(v int64) storage.RowID { return storage.RowID(v) }

// TestRunFrequencyControlsRunCount: f arrivals per run, strictly.
func TestRunFrequencyControlsRunCount(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 4, RetryInterval: time.Hour})
	var handles []*Handle
	for i := 0; i < 8; i++ {
		me := fmt.Sprintf("u%d", i^1) // pair (0,1), (2,3), ...
		_ = me
		a := fmt.Sprintf("u%d", i)
		b := fmt.Sprintf("u%d", i^1)
		handles = append(handles, e.Submit(bookFlightProg(a, b, 5*time.Second)))
	}
	for i, h := range handles {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("tx %d: %+v", i, o)
		}
	}
	if st := e.Stats(); st.Runs != 2 {
		t.Errorf("runs = %d, want exactly 2 (8 arrivals / f=4)", st.Runs)
	}
}

// TestMultiQueryPartnersAccumulate: a transaction entangling with two
// different partners in sequence groups all three for commit.
func TestMultiQueryPartnersAccumulate(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 3})
	hub := Program{
		Name:    "hub",
		Timeout: 3 * time.Second,
		Body: func(tx *Tx) error {
			for _, q := range []*eq.Query{
				flightQuery("hub", "s1"), hotelQuery("hub", "s2", types.MustDate("2011-05-03"), 3),
			} {
				if a := tx.Entangle(q); a.Status != eq.Answered {
					return fmt.Errorf("hub: %v", a.Status)
				}
			}
			return nil
		},
	}
	spoke1 := Program{
		Name:    "s1",
		Timeout: 3 * time.Second,
		Body: func(tx *Tx) error {
			if a := tx.Entangle(flightQuery("s1", "hub")); a.Status != eq.Answered {
				return fmt.Errorf("s1: %v", a.Status)
			}
			return nil
		},
	}
	spoke2 := Program{
		Name:    "s2",
		Timeout: 3 * time.Second,
		Body: func(tx *Tx) error {
			if a := tx.Entangle(hotelQuery("s2", "hub", types.MustDate("2011-05-03"), 3)); a.Status != eq.Answered {
				return fmt.Errorf("s2: %v", a.Status)
			}
			return nil
		},
	}
	h1 := e.Submit(hub)
	h2 := e.Submit(spoke1)
	h3 := e.Submit(spoke2)
	for i, h := range []*Handle{h1, h2, h3} {
		if o := h.Wait(); o.Status != StatusCommitted {
			t.Fatalf("tx %d: %+v", i, o)
		}
	}
	// One transitive group of three: exactly one group commit.
	if st := e.Stats(); st.GroupCommits != 1 {
		t.Errorf("GroupCommits = %d, want 1 (transitive hub group)", st.GroupCommits)
	}
}

// TestHubFailureAbortsWholeTransitiveGroup: if the hub rolls back after
// entangling with both spokes, neither spoke may commit.
func TestHubFailureAbortsWholeTransitiveGroup(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 3, RetryInterval: 10 * time.Millisecond})
	hub := Program{
		Name:    "hub",
		Timeout: 400 * time.Millisecond,
		Body: func(tx *Tx) error {
			if a := tx.Entangle(flightQuery("hub", "s1")); a.Status != eq.Answered {
				return fmt.Errorf("hub q1: %v", a.Status)
			}
			if a := tx.Entangle(hotelQuery("hub", "s2", types.MustDate("2011-05-03"), 3)); a.Status != eq.Answered {
				return fmt.Errorf("hub q2: %v", a.Status)
			}
			tx.Rollback()
			return nil
		},
	}
	spoke := func(name string, q *eq.Query) Program {
		return Program{
			Name:    name,
			Timeout: 400 * time.Millisecond,
			Body: func(tx *Tx) error {
				a := tx.Entangle(q)
				if a.Status != eq.Answered {
					return fmt.Errorf("%s: %v", name, a.Status)
				}
				_, err := tx.Insert("Reservations", types.Tuple{types.Str(name), a.Bindings["fno"], types.Date(0)})
				if err != nil && q.Head[0].Rel == "HotelRes" {
					// hotel query binds hid, not fno
					_, err = tx.Insert("Reservations", types.Tuple{types.Str(name), a.Bindings["hid"], types.Date(0)})
				}
				return err
			},
		}
	}
	h1 := e.Submit(hub)
	h2 := e.Submit(spoke("s1", flightQuery("s1", "hub")))
	h3 := e.Submit(spoke("s2", hotelQuery("s2", "hub", types.MustDate("2011-05-03"), 3)))
	if o := h1.Wait(); o.Status != StatusRolledBack {
		t.Fatalf("hub: %+v", o)
	}
	for _, h := range []*Handle{h2, h3} {
		if o := h.Wait(); o.Status == StatusCommitted {
			t.Fatalf("spoke committed despite hub rollback: %+v", o)
		}
	}
	if rows := scanAll(t, e, "Reservations"); len(rows) != 0 {
		t.Fatalf("writes leaked: %v", rows)
	}
}

// TestEntangledQueryErrorSurfacesToBody: a malformed query (validation
// failure) returns an Errored answer rather than blocking.
func TestEntangledQueryErrorSurfacesToBody(t *testing.T) {
	e := newTestEngine(t, Options{})
	h := e.Submit(Program{
		Timeout: time.Second,
		Body: func(tx *Tx) error {
			a := tx.Entangle(&eq.Query{}) // no head, no body
			if a.Status != eq.Errored || a.Err == nil {
				return fmt.Errorf("answer = %+v", a)
			}
			return errors.New("saw the validation error")
		},
	})
	o := h.Wait()
	if o.Status != StatusFailed || o.Err == nil {
		t.Fatalf("outcome = %+v", o)
	}
}

// TestSoakRandomizedPairsAndSingles mixes entangled pairs, classical
// programs, rollbacks, and loners under randomized timing, then checks
// bookkeeping invariants.
func TestSoakRandomizedPairsAndSingles(t *testing.T) {
	e := newTestEngine(t, Options{RunFrequency: 5, RetryInterval: 5 * time.Millisecond, Connections: 8})
	rng := rand.New(rand.NewSource(99))
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[Status]int{}
	record := func(o Outcome) {
		mu.Lock()
		counts[o.Status]++
		mu.Unlock()
	}
	const pairs = 15
	for i := 0; i < pairs; i++ {
		a := fmt.Sprintf("p%da", i)
		b := fmt.Sprintf("p%db", i)
		delay := time.Duration(rng.Intn(20)) * time.Millisecond
		wg.Add(2)
		go func() {
			defer wg.Done()
			record(e.Submit(bookFlightProg(a, b, 5*time.Second)).Wait())
		}()
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			record(e.Submit(bookFlightProg(b, a, 5*time.Second)).Wait())
		}()
	}
	// Classical traffic interleaved.
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			record(e.RunDirect(Program{Body: func(tx *Tx) error {
				_, err := tx.Scan("Flights")
				return err
			}}))
		}(i)
	}
	// A loner that must time out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		record(e.Submit(bookFlightProg("loner", "ghost", 200*time.Millisecond)).Wait())
	}()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if counts[StatusCommitted] != 2*pairs+10 {
		t.Errorf("committed = %d, want %d (counts %v)", counts[StatusCommitted], 2*pairs+10, counts)
	}
	if counts[StatusTimedOut] != 1 {
		t.Errorf("timeouts = %d (counts %v)", counts[StatusTimedOut], counts)
	}
	rows := scanAll(t, e, "Reservations")
	if len(rows) != 2*pairs {
		t.Errorf("reservations = %d, want %d", len(rows), 2*pairs)
	}
	// Pair coordination invariant: each pair booked one flight.
	byName := map[string]types.Tuple{}
	for _, r := range rows {
		byName[r[0].Str64()] = r
	}
	for i := 0; i < pairs; i++ {
		ra := byName[fmt.Sprintf("p%da", i)]
		rb := byName[fmt.Sprintf("p%db", i)]
		if ra == nil || rb == nil || !ra[1].Equal(rb[1]) {
			t.Errorf("pair %d inconsistent: %v vs %v", i, ra, rb)
		}
	}
	st := e.Stats()
	if st.Commits != int64(counts[StatusCommitted]) {
		t.Errorf("stats.Commits = %d vs observed %d", st.Commits, counts[StatusCommitted])
	}
}
