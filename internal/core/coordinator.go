package core

import (
	"time"

	"repro/internal/txn"
)

// coordinator owns the points where a run interacts with commit scope:
// before each evaluation round (delivering answers prepared elsewhere),
// after each round (exporting unmatched queries), and at end of run (the
// §4 group-commit rules). The in-process engine uses localCoordinator —
// the historical path, byte for byte; a sharded engine swaps in
// distCoordinator, which extends the same rules across processes with a
// two-phase group commit.
type coordinator interface {
	// beforeRound may resume blocked members from externally prepared
	// state. It returns how many members it resumed and the members still
	// blocked (the evaluation round's input).
	beforeRound(r *run, blocked []*member) (resumed int, remaining []*member)
	// afterRound runs once per evaluation round, after local evaluation.
	afterRound(r *run)
	// finalize applies the end-of-run commit/abort rules.
	finalize(r *run)
}

// localCoordinator is the single-process path: no external answers, no
// offers, and the end-of-run rules exactly as §4 states them.
type localCoordinator struct{ e *Engine }

func (lc *localCoordinator) beforeRound(r *run, blocked []*member) (int, []*member) {
	return 0, blocked
}

func (lc *localCoordinator) afterRound(r *run) {}

// finalize applies the §4 end-of-run rules: entanglement groups commit
// atomically iff every member is ready; everyone else aborts and is
// requeued (or finalized if rolled back, failed, or timed out).
func (lc *localCoordinator) finalize(r *run) {
	e := lc.e
	e.bump(e.met.runs)

	// Union-find groups over the accumulated partner edges. Autocommit
	// members are excluded: they have no commit to coordinate.
	idx := make(map[*member]int, len(r.members))
	for i, m := range r.members {
		idx[m] = i
	}
	parent := make([]int, len(r.members))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	widowGuard := e.opts.Isolation != NoWidowGuard
	if widowGuard {
		for i, m := range r.members {
			if m.tx == nil {
				continue
			}
			for p := range m.partners {
				if p.tx != nil {
					parent[find(idx[p])] = find(i)
				}
			}
		}
	}
	groups := make(map[int][]*member)
	for i, m := range r.members {
		groups[find(i)] = append(groups[find(i)], m)
	}

	// First pass: split the groups into commit units (every member ready)
	// and abort groups. All units commit through one batched WAL append —
	// a single group-commit flush for the whole run — instead of one
	// serialized flush per group.
	type commitUnit struct {
		members []*member
		txns    []*txn.Txn
	}
	var units []commitUnit
	var abortGroups [][]*member
	for _, group := range groups {
		allReady := true
		for _, m := range group {
			if m.state != stateReady {
				allReady = false
				break
			}
		}
		if !allReady {
			abortGroups = append(abortGroups, group)
			continue
		}
		u := commitUnit{members: group}
		for _, m := range group {
			if m.tx != nil {
				u.txns = append(u.txns, m.tx)
			}
		}
		units = append(units, u)
	}

	// Validate up front so a single stale transaction (an engine-invariant
	// violation, not a runtime condition) fails only its own unit rather
	// than sinking the whole batch.
	unitErr := make([]error, len(units))
	var txnUnits [][]*txn.Txn
	var batched []int // unit index per txnUnits entry
	for i, u := range units {
		if len(u.txns) == 0 {
			continue
		}
		for _, t := range u.txns {
			if t.State() != txn.Active {
				unitErr[i] = errStaleCommit
				break
			}
		}
		if unitErr[i] == nil {
			txnUnits = append(txnUnits, u.txns)
			batched = append(batched, i)
		}
	}
	commitStart := time.Now()
	var commitDur time.Duration
	if len(txnUnits) > 0 {
		batchErr := e.txm.CommitUnits(txnUnits)
		commitDur = time.Since(commitStart)
		e.met.commitFlush.Observe(commitDur)
		if batchErr == nil {
			e.statsMu.Lock()
			e.met.commitBatches.Add(1)
			for _, u := range txnUnits {
				if len(u) > 1 {
					e.met.groupCommits.Add(1)
				}
			}
			e.statsMu.Unlock()
		} else {
			// The batched WAL append failed (I/O error). Everything behind
			// the flush fails, as in any group-commit DBMS, and we must not
			// write more: retrying per unit could append valid records past
			// a torn frame mid-log (unrecoverable, where a torn tail is
			// not), and appending Abort records could contradict a commit
			// record the failed batch already made durable. The log itself
			// latches failed on the first write error, so all further
			// durable work fails loudly (fail-stop); the failed units'
			// transactions stay in limbo deliberately — whether their
			// commit record reached disk is indeterminate, so neither
			// undoing in memory nor releasing their locks is safe.
			for _, i := range batched {
				unitErr[i] = batchErr
			}
		}
	}
	for i, u := range units {
		for _, m := range u.members {
			if t := m.entry.prog.Trace; t != 0 && e.tracer != nil && len(u.txns) > 0 {
				e.tracer.Span(t, t, "commit", commitStart, commitDur, "")
			}
			// A commit failure dooms only the failed unit; pure-autocommit
			// groups had nothing to commit and always succeed.
			if unitErr[i] != nil {
				e.settle(m.entry, e.met.failures, Outcome{Status: StatusFailed, Err: unitErr[i], Attempts: m.entry.attempts})
				continue
			}
			e.settle(m.entry, e.met.commits, Outcome{Status: StatusCommitted, Attempts: m.entry.attempts})
		}
	}

	for _, group := range abortGroups {
		// Group cannot commit: every member aborts. Ready members are the
		// averted widows — they roll back because a partner could not
		// commit.
		for _, m := range group {
			switch m.state {
			case stateReady:
				if m.tx != nil {
					m.tx.Abort()
				}
				if m.tx != nil || !m.entry.prog.Autocommit {
					e.bump(e.met.widowsAverted)
				}
				e.requeue(m.entry)
			case stateAbortedRetry:
				e.requeue(m.entry)
			case stateRolledBack:
				e.settle(m.entry, e.met.rollbacks, Outcome{Status: StatusRolledBack, Err: ErrRolledBack, Attempts: m.entry.attempts})
			case stateAbortedFinal:
				e.settle(m.entry, e.met.failures, Outcome{Status: StatusFailed, Err: m.finalErr, Attempts: m.entry.attempts})
			}
		}
	}
}
