package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/obs"
	"repro/internal/txn"
)

// Options configures an Engine.
type Options struct {
	// Isolation is the entangled isolation level (default FullEntangled).
	Isolation Isolation
	// RunFrequency f: start a new run once f new transactions have arrived
	// (§5.2.2). Default 1 — a run per arrival, the paper's most eager
	// policy.
	RunFrequency int
	// Connections bounds concurrently executing transactions, modelling the
	// DBMS connection limit the paper identifies as the concurrency cap.
	// Default 100, the paper's default.
	Connections int
	// DefaultTimeout applies to programs that do not set one. Default 10s.
	DefaultTimeout time.Duration
	// RetryInterval triggers a run when transactions are pooled but too few
	// arrivals have accumulated, so pending transactions are retried and
	// timeouts expire. Default 25ms.
	RetryInterval time.Duration
	// StmtLatency simulates the per-statement client-DBMS round trip of the
	// paper's middle-tier-over-MySQL deployment. Zero for tests; the
	// benchmark harness sets it so that throughput is connection-bound, as
	// in Figure 6(a). Applied to every Tx operation.
	StmtLatency time.Duration
	// GroundLatency simulates the per-query grounding round trip to the
	// DBMS during entangled-query evaluation (in the paper's prototype
	// each grounding is a SQL query against MySQL, and evaluation is
	// serialized in the middle tier — so per-run cost grows linearly with
	// the number of pending queries, the effect Figure 6(b) measures).
	// Zero disables the simulation. The latency is paid inside each
	// grounding task, so it overlaps across GroundWorkers.
	GroundLatency time.Duration
	// GroundWorkers bounds the worker pool grounding a run's pending
	// queries concurrently. Groundings are read-only against the run's
	// snapshot and the coordinating-set search consumes them in submission
	// order, so any worker count yields the serial path's choices. 1 forces
	// the paper's serialized middle-tier behavior; 0 picks the default
	// (max(8, NumCPU) — grounding is round-trip-bound, not CPU-bound).
	GroundWorkers int
	// MaxGroundings bounds grounding enumeration per query.
	MaxGroundings int
	// GroundBatch is the streaming grounding pipeline's cursor pull
	// granularity in rows (0 = eq.DefaultBatchRows). Each join level of a
	// grounding holds at most one batch of row references, so resident
	// grounding memory per query is O(join levels x GroundBatch) regardless
	// of table size. Batch size never changes the enumeration, only the
	// pull cadence.
	GroundBatch int
	// SolveBudget bounds the exact coordinating-set search per evaluation
	// round, in search nodes (0 = eq.DefaultSolveBudget). A round that
	// exhausts the budget falls back to the greedy closure for the
	// remaining components — valid answers, no longer guaranteed
	// maximum-size — and Stats.SolveFallbacks counts it. Negative skips
	// the exact search entirely and always runs greedy closure (the
	// pre-exact solver, kept for ablation benchmarks).
	SolveBudget int
	// GroundCache enables the cross-round grounding cache: a pending
	// entangled query is re-grounded only when the CSN fingerprint of its
	// grounded tables has advanced (some commit touched them) or when the
	// posing transaction itself wrote a grounded table. Off by default so
	// the figure benchmarks keep reproducing the paper's re-ground-every-
	// round middle-tier cost; BenchmarkFigure6bGroundCache measures the
	// win.
	GroundCache bool
	// VacuumInterval triggers periodic version garbage collection: the
	// storage layer prunes row versions older than the GC watermark (the
	// oldest active snapshot). Zero disables automatic vacuuming; callers
	// can still vacuum through the transaction manager explicitly.
	VacuumInterval time.Duration
	// Trace receives schedule events (nil disables tracing).
	Trace TraceSink
	// Metrics is the observability registry the engine registers its
	// counters and latency histograms in. Nil makes the engine create a
	// private registry, so the legacy Stats snapshot always works; pass
	// one to surface engine metrics on a shared /metrics endpoint.
	Metrics *obs.Registry
	// Tracer receives per-query lifecycle spans (submit → ground → solve
	// → validate → commit → answer). Nil disables lifecycle tracing; a
	// program with Trace == 0 records nothing either way.
	Tracer *obs.Tracer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.RunFrequency <= 0 {
		out.RunFrequency = 1
	}
	if out.Connections <= 0 {
		out.Connections = 100
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 10 * time.Second
	}
	if out.RetryInterval <= 0 {
		out.RetryInterval = 25 * time.Millisecond
	}
	if out.GroundWorkers <= 0 {
		out.GroundWorkers = defaultGroundWorkers()
	}
	return out
}

// defaultGroundWorkers sizes the grounding pool. Grounding simulates DBMS
// round trips (sleeps, not CPU), so the pool is sized for overlap even on
// small machines.
func defaultGroundWorkers() int {
	if n := runtime.NumCPU(); n > 8 {
		return n
	}
	return 8
}

// Stats are cumulative engine counters.
type Stats struct {
	Submitted      int64 // programs submitted
	Runs           int64 // runs executed
	EvalRounds     int64 // entangled-query evaluation rounds across runs
	Commits        int64 // programs finally committed
	GroupCommits   int64 // entanglement groups committed atomically
	CommitBatches  int64 // batched end-of-run WAL commit flushes
	EntangleOps    int64 // entanglement operations performed
	Requeues       int64 // aborts that returned a transaction to the pool
	Timeouts       int64 // programs expired by their timeout
	Rollbacks      int64 // program-requested rollbacks
	Failures       int64 // programs failed with a non-retryable error
	WidowsAverted  int64 // ready transactions aborted because a group member could not commit
	WriteConflicts int64 // snapshot-isolation first-committer-wins losses (retried)
	Vacuums        int64 // automatic version-GC passes
	VersionsPruned int64 // row versions reclaimed by automatic vacuuming

	GroundCacheHits   int64 // pending queries answered from the cross-round grounding cache
	GroundCacheMisses int64 // pending queries re-grounded (cold, invalidated, or bypassed)
	IndexedGroundings int64 // grounding atom probes served by hash indexes instead of scans

	GroundRowsStreamed  int64 // rows pulled through grounding cursors across all rounds
	GroundPeakBatchRows int64 // high-water mark of rows resident in one grounding pipeline's batch buffers

	SolveSteps     int64 // coordinating-set search nodes across all evaluation rounds
	SolveFallbacks int64 // rounds where the exact search ran out of budget and fell back to greedy closure
}

// pending is a pooled program awaiting (re)execution.
type pending struct {
	prog     Program
	deadline time.Time
	handle   *Handle
	attempts int
	submitAt time.Time // Submit time: answer-latency histogram anchor
	enqueued time.Time // last (re)entry into the pool: submit-span anchor
	offerID  uint64    // stable cross-shard offer id (minted on first export)
}

// Engine is the entangled transaction manager.
type Engine struct {
	txm  *txn.Manager
	opts Options

	// coord owns the commit path: localCoordinator in-process (the
	// historical behavior), distCoordinator when EnableDist has made this
	// engine one shard of a partitioned deployment.
	coord coordinator
	dist  *distRuntime // nil unless EnableDist

	conns chan struct{} // connection-pool semaphore

	mu       sync.Mutex
	closed   bool
	draining bool

	// arrivalq carries submitted programs to the scheduler, which ingests
	// them one at a time between runs — every RunFrequency-th ingested
	// arrival triggers a run synchronously, so runs cannot coalesce and the
	// §5.2.2 run-frequency knob behaves as in the paper.
	arrivalq chan *pending
	// pool is the dormant transaction pool; scheduler-goroutine local.
	pool     []*pending
	arrivals int
	// drainAborted (scheduler-goroutine local) is set once Drain has
	// aborted the pool: any arrival that slipped past the Submit-side
	// draining check (published to arrivalq after the final abort swept the
	// queue) is failed at ingestion instead of pooled, so nothing can run —
	// let alone commit — after Drain returned.
	drainAborted bool

	wake   chan struct{}
	flush  chan chan struct{}
	drainq chan drainMsg
	stop   chan struct{}
	done   chan struct{}
	// requeueq carries pool re-entries from goroutines other than the
	// scheduler (a distributed group decided abort; the members retry).
	requeueq chan *pending

	// statsMu orders program-lifecycle counter increments against Stats
	// snapshots: every submitted/settled transition bumps its registry
	// counter under this lock and Stats reads the whole registry under it,
	// so a snapshot is internally consistent (settled ≤ submitted always
	// holds). Hot-path counters are bumped lock-free outside it.
	statsMu sync.Mutex
	met     *coreMetrics
	tracer  *obs.Tracer

	nextOp uint64 // entanglement operation ids (guarded by statsMu)

	// Grounding hot-path machinery: the cross-round grounding cache (nil
	// when Options.GroundCache is off) and the streaming pipeline's
	// rows/peak-batch accounting (bridged into the registry as gauges).
	groundCache *groundCache
	streamStats eq.StreamStats
}

// NewEngine builds an engine over a transaction manager.
func NewEngine(txm *txn.Manager, opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		txm:      txm,
		opts:     o,
		conns:    make(chan struct{}, o.Connections),
		arrivalq: make(chan *pending, 1<<16),
		wake:     make(chan struct{}, 1),
		flush:    make(chan chan struct{}),
		drainq:   make(chan drainMsg),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		requeueq: make(chan *pending, 1024),
	}
	e.coord = &localCoordinator{e: e}
	if o.GroundCache {
		e.groundCache = newGroundCache(0)
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e.met = newCoreMetrics(reg)
	e.tracer = o.Tracer
	reg.Gauge("ground_rows_streamed", e.streamStats.Rows)
	reg.Gauge("ground_peak_batch_rows", e.streamStats.PeakBatchRows)
	if o.Trace != nil {
		txm.SetObserver(&traceObserver{e: e})
	}
	go e.loop()
	return e
}

// Txm exposes the substrate transaction manager (DDL, direct access).
func (e *Engine) Txm() *txn.Manager { return e.txm }

// Stats returns a copy of the cumulative counters: one registry read
// under statsMu, so the lifecycle counters (incremented under the same
// lock) form an internally consistent set.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.met.legacy(&e.streamStats)
}

// Submit queues an entangled transaction for execution and returns a
// handle to await its outcome.
func (e *Engine) Submit(p Program) *Handle {
	h := newHandle()
	h.trace = p.Trace
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	now := time.Now()
	ent := &pending{prog: p, deadline: now.Add(timeout), handle: h, submitAt: now, enqueued: now}
	// The enqueue happens under e.mu, the same lock Close and Drain take to
	// flip their flags, so a program is either published before the flag
	// (and swept by the scheduler's shutdown/drain pass) or refused — never
	// stranded in arrivalq with a handle nobody will settle. The send is
	// non-blocking: arrivalq holds 64k entries, and past that failing
	// loudly beats blocking inside the lock.
	e.mu.Lock()
	if e.closed || e.draining {
		e.mu.Unlock()
		h.done <- Outcome{Status: StatusFailed, Err: ErrEngineClosed}
		return h
	}
	select {
	case e.arrivalq <- ent:
	default:
		e.mu.Unlock()
		h.done <- Outcome{Status: StatusFailed, Err: ErrSubmitQueueFull}
		return h
	}
	e.mu.Unlock()
	e.bump(e.met.submitted)
	if t := p.Trace; t != 0 {
		e.tracer.Begin(t, now)
	}
	select {
	case e.wake <- struct{}{}:
	default:
	}
	return h
}

// settle delivers a program's final outcome: lifecycle counter, answer-
// latency observation, trace answer span + finish, then the handle send.
// Every settlement of a submitted program goes through here.
func (e *Engine) settle(ent *pending, c *obs.Counter, o Outcome) {
	e.bump(c)
	now := time.Now()
	if !ent.submitAt.IsZero() {
		e.met.answerLatency.Observe(now.Sub(ent.submitAt))
	}
	if t := ent.prog.Trace; t != 0 {
		e.tracer.Span(t, t, "answer", ent.submitAt, now.Sub(ent.submitAt), "status="+o.Status.String())
		e.tracer.Finish(t, now)
	}
	if e.dist != nil {
		// A settled program can no longer honor a cross-shard reservation:
		// withdraw its offer so a racing prepare is voted down promptly.
		e.dist.forget(ent)
	}
	ent.handle.done <- o
}

// Flush synchronously executes one run over the currently pooled
// transactions (if any) and returns when it completes. Tests use it for
// deterministic scheduling.
func (e *Engine) Flush() {
	reply := make(chan struct{})
	select {
	case e.flush <- reply:
		<-reply
	case <-e.done:
	}
}

// Close stops the scheduler. Pooled transactions fail with
// ErrEngineClosed. Close waits for the scheduler goroutine to exit.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	<-e.done
}

// loop is the scheduler: it forms runs per the run-frequency policy,
// retries pooled transactions on a timer, and expires timeouts.
func (e *Engine) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.opts.RetryInterval)
	defer ticker.Stop()
	// Version GC runs on its own cadence, between runs, from the scheduler
	// goroutine — so it never races a run's finalize phase and the
	// watermark (oldest active snapshot) bounds what it may prune.
	var vacuumC <-chan time.Time
	if e.opts.VacuumInterval > 0 {
		vac := time.NewTicker(e.opts.VacuumInterval)
		defer vac.Stop()
		vacuumC = vac.C
	}
	for {
		select {
		case <-vacuumC:
			e.vacuum()
		case <-e.stop:
			if e.dist != nil {
				// Parked in-doubt groups outlive the scheduler: their prepare
				// records stay in the WAL and restart resolves them against
				// the coordinator's decision. The handles fail now.
				e.dist.shutdown()
			}
			pool := e.pool
			e.pool = nil
			for {
				select {
				case ent := <-e.arrivalq:
					pool = append(pool, ent)
					continue
				case ent := <-e.requeueq:
					pool = append(pool, ent)
					continue
				default:
				}
				break
			}
			for _, ent := range pool {
				e.settle(ent, nil, Outcome{Status: StatusFailed, Err: ErrEngineClosed, Attempts: ent.attempts})
			}
			return
		case reply := <-e.flush:
			e.runIfDue(true)
			reply <- struct{}{}
		case msg := <-e.drainq:
			if msg.abort {
				// Terminal: no further runs — whatever remains (or arrives
				// late) is failed, never executed.
				e.abortPoolForDrain()
			} else {
				e.runIfDue(true)
			}
			msg.reply <- len(e.pool) + len(e.arrivalq)
		case <-e.wake:
			e.runIfDue(false)
		case ent := <-e.requeueq:
			e.requeue(ent)
		case <-ticker.C:
			e.runIfDue(true)
		}
	}
}

// runIfDue is the scheduler core. It ingests queued arrivals one at a
// time; every RunFrequency-th ingested arrival triggers a run, executed
// synchronously before further ingestion — so runs cannot coalesce and the
// f knob of §5.2.2 directly controls how many runs a stream of arrivals
// pays for. Each run drains the entire dormant pool (new arrivals plus
// transactions returned by earlier runs), per §4: "include in a run all
// transactions present in the dormant pool". force (retry tick, Flush)
// runs the pool even without enough arrivals, so pending transactions are
// retried and timeouts expire.
//
// The pool is only touched from the scheduler goroutine.
func (e *Engine) runIfDue(force bool) {
	for {
		trigger := false
	ingest:
		for !trigger {
			select {
			case ent := <-e.arrivalq:
				if e.drainAborted {
					e.settle(ent, e.met.timeouts, Outcome{Status: StatusTimedOut, Err: ErrDraining, Attempts: ent.attempts})
					continue
				}
				e.pool = append(e.pool, ent)
				e.arrivals++
				if e.arrivals >= e.opts.RunFrequency {
					e.arrivals -= e.opts.RunFrequency
					trigger = true
				}
			default:
				break ingest
			}
		}
		// Expire timeouts — §3.1: a transaction whose entangled query
		// cannot succeed before the timeout expires cannot complete.
		now := time.Now()
		kept := e.pool[:0]
		for _, ent := range e.pool {
			if now.After(ent.deadline) {
				e.settle(ent, e.met.timeouts, Outcome{Status: StatusTimedOut, Err: ErrTimeout, Attempts: ent.attempts})
			} else {
				kept = append(kept, ent)
			}
		}
		e.pool = kept
		if !trigger && force && len(e.pool) > 0 {
			trigger = true
		}
		force = false
		if !trigger || len(e.pool) == 0 {
			return
		}
		batch := e.pool
		e.pool = nil
		e.executeRun(batch)
	}
}

// requeue returns an entry to the pool (or expires it).
func (e *Engine) requeue(ent *pending) {
	now := time.Now()
	if now.After(ent.deadline) {
		e.settle(ent, e.met.timeouts, Outcome{Status: StatusTimedOut, Err: ErrTimeout, Attempts: ent.attempts})
		return
	}
	e.bump(e.met.requeues)
	ent.enqueued = now // the next submit span measures this pool wait
	// Called from the scheduler goroutine (finalizeRun), so appending to
	// the pool directly is safe.
	e.pool = append(e.pool, ent)
}

func (e *Engine) nextOpID() uint64 {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.nextOp++
	e.met.entangleOps.Add(1)
	return e.nextOp
}

// drainMsg asks the scheduler to execute one forced run (and, with abort
// set, to fail whatever remains pooled). The reply is the number of
// transactions still pending afterwards.
type drainMsg struct {
	abort bool
	reply chan int
}

// Drain stops intake and gives every pooled transaction a final chance to
// complete: new Submits fail with ErrEngineClosed, then the scheduler
// executes forced runs until the pool is empty or a run makes no progress
// (the pool did not shrink — every remaining transaction is waiting for a
// partner that can no longer arrive). Stragglers are then aborted
// deterministically with StatusTimedOut/ErrDraining, mirroring a timeout
// cut short, instead of the blanket ErrEngineClosed failure of a bare
// Close. Drain is terminal: the engine never accepts work again, and the
// usual Close must still follow. Returns ctx.Err() when the deadline
// expired before the pool emptied (remaining work is still aborted).
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	e.draining = true
	e.mu.Unlock()

	prev := -1
	for {
		if err := ctx.Err(); err != nil {
			e.drainStep(true)
			return err
		}
		n := e.drainStep(false)
		if n == 0 {
			// Seal: a Submit racing the draining check may still publish to
			// arrivalq after this count; the abort step marks the scheduler
			// so such stragglers are failed at ingestion, never run.
			e.drainStep(true)
			return nil
		}
		if prev >= 0 && n >= prev {
			// No progress: nothing committed or left the pool this round.
			e.drainStep(true)
			return nil
		}
		prev = n
	}
}

// drainStep runs one scheduler round on the drain channel; the engine may
// already be closed (racing Close), in which case there is nothing to do.
func (e *Engine) drainStep(abort bool) int {
	msg := drainMsg{abort: abort, reply: make(chan int, 1)}
	select {
	case e.drainq <- msg:
		return <-msg.reply
	case <-e.done:
		return 0
	}
}

// abortPoolForDrain fails everything still pooled (scheduler goroutine
// only) and marks the engine so late-slipping arrivals fail at ingestion.
func (e *Engine) abortPoolForDrain() {
	e.drainAborted = true
	pool := e.pool
	e.pool = nil
	for {
		select {
		case ent := <-e.arrivalq:
			pool = append(pool, ent)
			continue
		case ent := <-e.requeueq:
			pool = append(pool, ent)
			continue
		default:
		}
		break
	}
	for _, ent := range pool {
		e.settle(ent, e.met.timeouts, Outcome{Status: StatusTimedOut, Err: ErrDraining, Attempts: ent.attempts})
	}
}

// vacuum runs one version-GC pass between runs, pruning versions below the
// oldest-active-snapshot watermark.
func (e *Engine) vacuum() {
	pruned := e.txm.Vacuum()
	e.statsMu.Lock()
	e.met.vacuums.Add(1)
	e.met.versionsPrune.Add(int64(pruned))
	e.statsMu.Unlock()
}
