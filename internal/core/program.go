// Package core implements entangled transactions — the paper's primary
// contribution. It provides the non-interactive, run-based execution model
// of §4 on top of the classical transaction substrate:
//
//   - Programs are submitted with a timeout and enter a dormant pool.
//   - The scheduler forms runs (one run per f arrivals, the run frequency
//     knob of §5.2.2) and executes every pooled transaction concurrently,
//     each in its own goroutine under Strict 2PL.
//   - A transaction that poses an entangled query blocks; when every
//     member of the run is blocked, ready to commit, or aborted, the
//     scheduler evaluates all pending entangled queries together
//     (internal/eq), delivers answers, and resumes the answered
//     transactions. This repeats until quiescent.
//   - Entanglement groups (transitive closure of entanglement partners)
//     commit atomically — group commit — which prevents the widowed
//     transaction anomaly of §3.3.1. Blocked transactions are aborted and
//     returned to the pool for the next run; transactions whose timeout
//     expired leave the system with ErrTimeout.
//
// Grounding is lock-free: each evaluation round pins one MVCC snapshot and
// every pending query grounds against it, so the read path of query
// evaluation never touches the lock manager. Quasi-read repeatability
// (§3.3.3) is then enforced at the locking isolation levels by taking
// shared table locks on the grounded tables when answers are delivered —
// own and partners' — and validating that no foreign commit touched them
// since the round snapshot (stale groundings abort and retry). At
// SnapshotIsolated no read locks exist at all; write conflicts resolve
// first-committer-wins.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/eq"
	"repro/internal/storage"
	"repro/internal/types"
)

// Isolation selects the entangled isolation level (§3.3, §4).
type Isolation int

// Entangled isolation levels.
const (
	// FullEntangled is the §3.3 default: Strict 2PL, quasi-read locks, and
	// group commit. Schedules produced at this level are entangled-isolated.
	FullEntangled Isolation = iota
	// RelaxedReads releases shared locks at statement end (the §4 "altering
	// the length of time locks are held" relaxation) and skips quasi-read
	// locks. Unrepeatable (quasi-)reads become possible.
	RelaxedReads
	// NoWidowGuard keeps Strict 2PL but disables group commit: ready
	// transactions commit even if an entanglement partner aborts, exposing
	// the widowed-transaction anomaly. For ablation and anomaly tests only.
	NoWidowGuard
	// SnapshotIsolated runs members at snapshot isolation: reads (ordinary
	// and grounding) go through CSN snapshots and take no locks at all;
	// writes keep exclusive locks with first-committer-wins conflict
	// detection; group commit stays on. Entangled answers advance the
	// member's snapshot to the evaluation round's, so post-answer reads
	// agree with the state the answer was computed against. Dirty reads
	// are impossible, and reads are repeatable between entangled queries —
	// an answered Entangle is a deliberate snapshot boundary, so a re-read
	// across it may observe the newer round state. Write skew is possible
	// (classic SI).
	SnapshotIsolated
)

func (i Isolation) String() string {
	switch i {
	case FullEntangled:
		return "FULL-ENTANGLED"
	case RelaxedReads:
		return "RELAXED-READS"
	case NoWidowGuard:
		return "NO-WIDOW-GUARD"
	case SnapshotIsolated:
		return "SNAPSHOT-ISOLATED"
	default:
		return fmt.Sprintf("Isolation(%d)", int(i))
	}
}

// Program is one entangled (or classical) transaction: a body executed
// against a Tx, plus the §3.1 timeout that bounds how long the transaction
// may wait in the system for entanglement partners.
type Program struct {
	// Name labels the program in stats and errors.
	Name string
	// Timeout is the maximum total time the transaction may spend in the
	// system (dormant and running) before failing with ErrTimeout. Zero
	// uses the engine default.
	Timeout time.Duration
	// Autocommit runs the body non-transactionally: every statement is its
	// own committed transaction and entangled queries hold no locks after
	// evaluation. This is the paper's -Q workload mode ("the same code
	// without enclosing it within a transaction block").
	Autocommit bool
	// NoLatency exempts this program from Options.StmtLatency simulation
	// (bulk loading, administrative programs).
	NoLatency bool
	// Trace is the lifecycle trace id stamped on this program's spans
	// (minted by the network client, or by the DB layer when embedded).
	// Zero — the default — records nothing and costs nothing.
	Trace uint64
	// Body is the transaction logic. It may call Tx.Entangle any number of
	// times; calls block until the query is answered in some run. Returning
	// nil makes the transaction ready to commit; returning an error rolls
	// it back permanently.
	Body func(tx *Tx) error
}

// Errors reported in Outcome.Err.
var (
	// ErrTimeout: the §3.1 transaction timeout expired before the
	// transaction could complete (typically: no entanglement partner
	// arrived).
	ErrTimeout = errors.New("core: transaction timeout expired waiting for entanglement")
	// ErrEngineClosed: the engine shut down while the transaction was
	// pending.
	ErrEngineClosed = errors.New("core: engine closed")
	// ErrRolledBack: the body requested rollback.
	ErrRolledBack = errors.New("core: transaction rolled back by program")
	// ErrDraining: the engine was draining for shutdown and the transaction
	// could not complete in the final runs it was given (typically: its
	// entanglement partner never arrived). Reported with StatusTimedOut —
	// drain deterministically cuts the §3.1 timeout short.
	ErrDraining = errors.New("core: engine draining; transaction aborted before completion")
	// ErrSubmitQueueFull: the arrival queue (64k entries) is saturated; the
	// submission is refused rather than blocking the caller inside the
	// engine lock.
	ErrSubmitQueueFull = errors.New("core: submission queue full")
)

// Status is the final disposition of a submitted program.
type Status int

// Program dispositions.
const (
	StatusCommitted Status = iota
	StatusRolledBack
	StatusTimedOut
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "COMMITTED"
	case StatusRolledBack:
		return "ROLLED-BACK"
	case StatusTimedOut:
		return "TIMED-OUT"
	case StatusFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Outcome is the final result of a program.
type Outcome struct {
	Status   Status
	Err      error
	Attempts int // number of runs the transaction participated in
}

// Handle tracks a submitted program. Wait and Poll are safe for
// concurrent use from multiple goroutines (the network server waits on
// and polls the same handle from different requests).
type Handle struct {
	done  chan Outcome  // the engine sends the outcome exactly once
	fin   chan struct{} // closed once out is settled
	out   Outcome
	trace uint64 // the submitted program's trace id (0 = untraced)
}

func newHandle() *Handle {
	return &Handle{done: make(chan Outcome, 1), fin: make(chan struct{})}
}

// TraceID returns the trace id the program was submitted under (0 when
// untraced). It is the id as minted; after an entanglement merge the
// tracer resolves it to the canonical trace (obs.Tracer.Canonical).
func (h *Handle) TraceID() uint64 { return h.trace }

// settle records the outcome received from done and releases every other
// waiter. Exactly one goroutine can receive from done, so exactly one
// settles.
func (h *Handle) settle(o Outcome) {
	h.out = o
	close(h.fin)
}

// Wait blocks until the program reaches a final state.
func (h *Handle) Wait() Outcome {
	select {
	case o := <-h.done:
		h.settle(o)
	case <-h.fin:
	}
	return h.out
}

// Poll reports the outcome without blocking; ok is false while the
// program is still in flight.
func (h *Handle) Poll() (Outcome, bool) {
	select {
	case o := <-h.done:
		h.settle(o)
		return o, true
	case <-h.fin:
		return h.out, true
	default:
		return Outcome{}, false
	}
}

// internal sentinels for unwinding a program body.
type unwind int

const (
	unwindRetry    unwind = iota // abort, requeue into the dormant pool
	unwindRollback               // abort, finalize as rolled back
)

// Tx is the handle a program body uses for all data access. It wraps the
// substrate transaction (or per-statement autocommit transactions in -Q
// mode). Methods that hit retryable failures — lock deadlock or lock
// timeout, or a run ending while blocked on an entangled query — unwind the
// body via panic; the runner converts this into abort-and-requeue, which is
// the §4 "blocked transactions are aborted and returned to the dormant
// transaction pool" rule. A Tx must only be used from the body's goroutine.
type Tx struct {
	m *member
}

// Scan reads all rows of a table.
func (t *Tx) Scan(table string) ([]types.Tuple, error) {
	return t.m.opScan(table)
}

// ScanIDs reads all rows of a table with their row ids (for UPDATE/DELETE
// by predicate).
func (t *Tx) ScanIDs(table string) ([]storage.RowID, []types.Tuple, error) {
	return t.m.opScanIDs(table)
}

// Lookup returns rows whose columns equal key (row-granular read locks,
// like an index read).
func (t *Tx) Lookup(table string, columns []string, key types.Tuple) ([]types.Tuple, error) {
	return t.m.opLookup(table, columns, key)
}

// LookupIDs is Lookup returning row ids for targeted Update/Delete.
func (t *Tx) LookupIDs(table string, columns []string, key types.Tuple) ([]storage.RowID, []types.Tuple, error) {
	return t.m.opLookupIDs(table, columns, key)
}

// Insert adds a row.
func (t *Tx) Insert(table string, row types.Tuple) (storage.RowID, error) {
	return t.m.opInsert(table, row)
}

// Update replaces the row at id.
func (t *Tx) Update(table string, id storage.RowID, row types.Tuple) error {
	return t.m.opUpdate(table, id, row)
}

// Delete removes the row at id.
func (t *Tx) Delete(table string, id storage.RowID) error {
	return t.m.opDelete(table, id)
}

// Entangle poses an entangled query and blocks until it is answered. An
// empty answer (partners present but no mutually satisfying values —
// Appendix B's "query success with empty result") is returned with
// Answer.Status == eq.EmptyAnswer; the program decides how to proceed.
// If the run ends without an answer (no partner), the transaction is
// aborted and requeued transparently; the body never observes this.
func (t *Tx) Entangle(q *eq.Query) *eq.Answer {
	return t.m.opEntangle(q)
}

// Rollback aborts the transaction permanently (the explicit ROLLBACK
// statement of §3.1). It does not return.
func (t *Tx) Rollback() {
	panic(unwindRollback)
}

// ID returns the substrate transaction id (0 in autocommit mode between
// statements).
func (t *Tx) ID() uint64 {
	if t.m.tx != nil {
		return t.m.tx.ID()
	}
	return 0
}

// Attempt returns how many runs this program has participated in,
// including the current one (1 on first execution). Programs can use it to
// vary behaviour across retries; tests use it to observe requeues.
func (t *Tx) Attempt() int {
	return t.m.entry.attempts
}
