package dist

import (
	"sync"
	"time"

	"repro/internal/eq"
	"repro/internal/obs"
)

// Sender delivers matchmaker messages to participant nodes. Sends may be
// slow (network); the matchmaker always calls them off its lock. A send
// error on prepare fails the group (abort decision); a lost decide is
// repaired by the participant's status poll.
type Sender interface {
	Prepare(node string, p Prepare) error
	Decide(node string, d Decide) error
}

// Options configures a Matchmaker.
type Options struct {
	// Send delivers prepares and decides to participants. Required.
	Send Sender
	// Log makes a group decision durable BEFORE it fans out — the
	// coordinator's WAL append (flushed). Required for commit decisions;
	// nil logs nothing (tests).
	Log func(group uint64, commit bool) error
	// GroupTimeout bounds how long a formed group waits for all votes
	// before the coordinator presumes abort. Default 3s.
	GroupTimeout time.Duration
	// SweepInterval is the janitor cadence (expired offers, overdue
	// groups). Default 100ms.
	SweepInterval time.Duration
	// Tracer, when set, assembles the group's one merged trace from the
	// spans participants export with their votes.
	Tracer *obs.Tracer
	// Self names the participant co-located with this matchmaker (the
	// shard-0 server). Its engine shares Tracer, so its vote spans are not
	// absorbed (they are already there) and its traces are finished by its
	// own settle path, not by the matchmaker.
	Self string
	// Decisions seeds the verdict table with decisions recovered from the
	// coordinator WAL, so restarted participants resolve in-doubt groups.
	Decisions map[uint64]bool
	// Metrics registers the matchmaker counters when set.
	Metrics *obs.Registry
	// Solve options forwarded to eq.Evaluate (zero values = defaults).
	MaxGroundings int
	SolveBudget   int
}

type groupState struct {
	id      uint64
	members []*Offer
	answers map[string]Answer // by offer key
	votes   map[string]*bool  // by offer key; nil = outstanding
	formed  time.Time
	decided bool
}

// Matchmaker pools cross-shard offers, forms entanglement groups by
// running the coordinating-set search over the offered groundings (no
// storage access — the offers carry everything), and coordinates the
// two-phase group commit. One matchmaker serves the whole deployment
// (hosted by the shard-0 server).
type Matchmaker struct {
	mu        sync.Mutex
	opts      Options
	offers    map[string]*Offer
	groups    map[uint64]*groupState
	inflight  map[string]uint64 // offer key -> undecided group holding it
	decisions map[uint64]bool
	stop      chan struct{}
	done      chan struct{}

	cOffers, cGroups, cCommits, cAborts *obs.Counter
}

// New builds and starts a matchmaker (janitor goroutine included); Close
// stops it.
func New(opts Options) *Matchmaker {
	if opts.GroupTimeout <= 0 {
		opts.GroupTimeout = 3 * time.Second
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = 100 * time.Millisecond
	}
	m := &Matchmaker{
		opts:      opts,
		offers:    make(map[string]*Offer),
		groups:    make(map[uint64]*groupState),
		inflight:  make(map[string]uint64),
		decisions: make(map[uint64]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for g, c := range opts.Decisions {
		m.decisions[g] = c
	}
	if reg := opts.Metrics; reg != nil {
		m.cOffers = reg.Counter("dist_offers")
		m.cGroups = reg.Counter("dist_groups")
		m.cCommits = reg.Counter("dist_group_commits")
		m.cAborts = reg.Counter("dist_group_aborts")
	}
	go m.janitor()
	return m
}

// Close stops the janitor. Pending groups are left undecided; restarted
// participants resolve them through Status (presumed abort).
func (m *Matchmaker) Close() {
	close(m.stop)
	<-m.done
}

func bump(c *obs.Counter) {
	if c != nil {
		c.Add(1)
	}
}

// AddOffer pools (or replaces) an offer and attempts matching. Offers
// whose node already withdrew (forget on settle) re-add harmlessly — the
// participant votes no at prepare time.
func (m *Matchmaker) AddOffer(o *Offer) {
	if o == nil || o.Query == nil {
		return
	}
	m.mu.Lock()
	if _, busy := m.inflight[o.Key()]; busy {
		// The member is already promised to an undecided group; pooling a
		// second copy could entangle it twice (a cross-shard widow). The
		// participant re-offers after the decision.
		m.mu.Unlock()
		return
	}
	m.offers[o.Key()] = o
	bump(m.cOffers)
	formed := m.match()
	m.mu.Unlock()
	for _, g := range formed {
		m.sendPrepares(g)
	}
}

// RemoveOffer withdraws a pooled offer (the member settled on its home
// shard). Groups already formed around it proceed to a no-vote instead.
func (m *Matchmaker) RemoveOffer(node string, id uint64) {
	m.mu.Lock()
	delete(m.offers, (&Offer{Node: node, ID: id}).Key())
	m.mu.Unlock()
}

// match runs one coordinating-set search over the pooled offers and forms
// a group per answered component. Caller holds m.mu; returns the groups to
// fan prepares out for (off-lock).
func (m *Matchmaker) match() []*groupState {
	if len(m.offers) < 2 {
		return nil
	}
	// Deterministic order: sorted by key.
	keys := make([]string, 0, len(m.offers))
	for k := range m.offers {
		keys = append(keys, k)
	}
	sortStrings(keys)
	pend := make([]eq.Pending, len(keys))
	for i, k := range keys {
		o := m.offers[k]
		pend[i] = eq.Pending{ID: i, Query: o.Query, Cached: o.Grounds, HasCached: true}
	}
	res := eq.Evaluate(pend, eq.EvalOptions{
		MaxGroundings: m.opts.MaxGroundings,
		SolveBudget:   m.opts.SolveBudget,
	})

	// Union answered offers into components along partner edges.
	parent := make([]int, len(keys))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	answered := make([]bool, len(keys))
	for i := range keys {
		if a := res.Answers[i]; a != nil && a.Status == eq.Answered {
			answered[i] = true
			for _, j := range res.Partners[i] {
				parent[find(j)] = find(i)
			}
		}
	}
	comps := make(map[int][]int)
	for i := range keys {
		if answered[i] {
			root := find(i)
			comps[root] = append(comps[root], i)
		}
	}

	var formed []*groupState
	for _, comp := range comps {
		if len(comp) < 2 {
			// A lone answered offer needs no cross-shard coordination; its
			// home shard will answer it locally when that becomes true.
			continue
		}
		g := &groupState{
			id:      obs.MintID(),
			answers: make(map[string]Answer, len(comp)),
			votes:   make(map[string]*bool, len(comp)),
			formed:  time.Now(),
		}
		for _, i := range comp {
			o := m.offers[keys[i]]
			a := res.Answers[i]
			g.members = append(g.members, o)
			g.answers[o.Key()] = Answer{Tuples: a.Tuples, Bindings: a.Bindings}
			g.votes[o.Key()] = nil
			delete(m.offers, keys[i])
			m.inflight[o.Key()] = g.id
		}
		m.groups[g.id] = g
		bump(m.cGroups)
		formed = append(formed, g)
	}
	return formed
}

// sendPrepares fans a formed group's prepares out. A failed send is a no
// vote: the group aborts rather than hang.
func (m *Matchmaker) sendPrepares(g *groupState) {
	for _, o := range g.members {
		o := o
		go func() {
			err := m.opts.Send.Prepare(o.Node, Prepare{
				Group: g.id,
				Offer: o.ID,
				CSN:   o.CSN,
				Ans:   g.answers[o.Key()],
			})
			if err != nil {
				m.HandleVote(Vote{Group: g.id, Offer: o.ID, Node: o.Node, Yes: false})
			}
		}()
	}
}

// HandleVote records one participant's vote and decides the group once
// the tally is complete: all yes -> commit, any no -> abort. The decision
// is logged before it fans out.
func (m *Matchmaker) HandleVote(v Vote) {
	if tr := m.opts.Tracer; tr != nil && v.Trace != 0 && len(v.Spans) > 0 && v.Node != m.opts.Self {
		// Remote spans fold into the coordinator's tracer; the co-located
		// participant shares it, so its spans are already here.
		tr.Absorb(v.Trace, v.TraceBegin, v.Spans)
	}
	m.mu.Lock()
	g := m.groups[v.Group]
	if g == nil || g.decided {
		m.mu.Unlock()
		return
	}
	key := (&Offer{Node: v.Node, ID: v.Offer}).Key()
	if _, tracked := g.votes[key]; !tracked {
		m.mu.Unlock()
		return
	}
	yes := v.Yes
	g.votes[key] = &yes
	commit := true
	complete := true
	for _, vote := range g.votes {
		if vote == nil {
			complete = false
			break
		}
		if !*vote {
			commit = false
		}
	}
	if !complete && commit {
		m.mu.Unlock()
		return
	}
	// Any no decides immediately; otherwise the tally is complete.
	m.decideLocked(g, commit)
	m.mu.Unlock()
}

// decideLocked logs and fans out the verdict. Caller holds m.mu.
func (m *Matchmaker) decideLocked(g *groupState, commit bool) {
	if g.decided {
		return
	}
	g.decided = true
	delete(m.groups, g.id)
	for _, o := range g.members {
		delete(m.inflight, o.Key())
	}
	if commit && m.opts.Log != nil {
		if err := m.opts.Log(g.id, true); err != nil {
			// The decision could not be made durable: never claim commit.
			// Abort is safe unlogged — it is what presumed abort yields.
			commit = false
		}
	}
	if !commit && m.opts.Log != nil {
		// Best effort: an unlogged abort still resolves correctly
		// (presumed abort), the record just spares participants the wait.
		_ = m.opts.Log(g.id, false)
	}
	m.decisions[g.id] = commit
	if commit {
		bump(m.cCommits)
	} else {
		bump(m.cAborts)
	}
	if tr := m.opts.Tracer; tr != nil {
		now := time.Now()
		ids := make([]uint64, 0, len(g.members))
		for _, o := range g.members {
			if o.Trace != 0 {
				ids = append(ids, o.Trace)
			}
		}
		if len(ids) > 1 {
			canon := tr.Merge(ids)
			// The decision is a remote member's commit point as this tracer
			// sees it (its real commit span stays on its own shard); the
			// co-located participant stamps its own at ApplyDecision.
			if commit {
				for _, o := range g.members {
					if o.Trace != 0 && o.Node != m.opts.Self {
						tr.Span(canon, o.Trace, "commit", now, 0, "2pc")
					}
				}
			}
		}
		// Remote members never Finish on this tracer; do it for them. The
		// co-located participant's settle path provides the rest, so the
		// merged trace rings only after the last local answer span.
		for _, o := range g.members {
			if o.Trace != 0 && o.Node != m.opts.Self {
				tr.Finish(o.Trace, now)
			}
		}
	}
	nodes := make(map[string]bool, len(g.members))
	for _, o := range g.members {
		nodes[o.Node] = true
	}
	d := Decide{Group: g.id, Commit: commit}
	for node := range nodes {
		node := node
		go func() { _ = m.opts.Send.Decide(node, d) }()
	}
}

// Decision answers an in-doubt status inquiry: the verdict if decided,
// Pending while the group is still collecting votes, and a bare unknown
// (= presumed abort) when there is no record at all.
func (m *Matchmaker) Decision(group uint64) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	if commit, ok := m.decisions[group]; ok {
		return Status{Group: group, Known: true, Commit: commit}
	}
	if _, open := m.groups[group]; open {
		return Status{Group: group, Pending: true}
	}
	return Status{Group: group, Known: false}
}

// janitor expires stale offers and presumes abort for overdue groups.
func (m *Matchmaker) janitor() {
	defer close(m.done)
	t := time.NewTicker(m.opts.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-t.C:
			m.mu.Lock()
			for k, o := range m.offers {
				if !o.Deadline.IsZero() && now.After(o.Deadline) {
					delete(m.offers, k)
				}
			}
			var overdue []*groupState
			for _, g := range m.groups {
				if now.Sub(g.formed) > m.opts.GroupTimeout {
					overdue = append(overdue, g)
				}
			}
			for _, g := range overdue {
				m.decideLocked(g, false)
			}
			m.mu.Unlock()
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
