// Package dist implements the cross-shard half of distributed entangled
// group commit: the message vocabulary exchanged between shard engines and
// the matchmaker — the group coordinator that pools unmatched entangled
// queries from every shard, forms entanglement groups across them, and
// drives the two-phase commit to a decision.
//
// The protocol (participant = the shard engine hosting a member):
//
//	participant -> matchmaker: Offer      (an unmatched NoPartner query,
//	                                       with its groundings and CSN)
//	matchmaker  -> participant: Prepare   (a matched answer; the member
//	                                       re-validates, executes to ready,
//	                                       parks holding a prepare record)
//	participant -> matchmaker: Vote       (yes = parked in-doubt; carries
//	                                       the member's exported spans)
//	matchmaker  -> participant: Decide    (logged to the coordinator WAL
//	                                       BEFORE this fan-out)
//	participant -> matchmaker: Status     (in-doubt resolution after a
//	                                       crash or a lost decide; unknown
//	                                       groups answer presumed-abort)
package dist

import (
	"time"

	"repro/internal/eq"
	"repro/internal/obs"
	"repro/internal/types"
)

// Offer advertises one shard-local entangled query that found no local
// partner: its query, the groundings it computed against its own snapshot
// (so the matchmaker can solve without any storage access), and the CSN
// those groundings are valid at. Offers are keyed by (Node, ID); a
// re-offer after re-grounding replaces the previous one.
type Offer struct {
	Node     string    `json:"node"`  // participant address (prepare/decide callback target)
	Shard    int       `json:"shard"`
	ID       uint64    `json:"id"`    // stable per submitted program on its home shard
	Trace    uint64    `json:"trace,omitempty"`
	Query    *eq.Query `json:"query"`
	Grounds  []*eq.Grounding `json:"grounds"`
	Tables   []string  `json:"tables"`
	CSN      uint64    `json:"csn"`
	Deadline time.Time `json:"deadline"`
}

// Key identifies the offer in the matchmaker pool.
func (o *Offer) Key() string { return o.Node + "/" + itoa(o.ID) }

// Answer is the JSON-safe projection of eq.Answer a Prepare delivers (no
// error field — errors never travel on the prepare path).
type Answer struct {
	Tuples   []eq.GroundAtom        `json:"tuples,omitempty"`
	Bindings map[string]types.Value `json:"bindings,omitempty"`
}

// Prepare asks a participant to deliver a matched answer to one of its
// offered members and park it prepared. Validation is local: the
// participant re-checks its own offered tables against its own offer CSN.
type Prepare struct {
	Group uint64 `json:"group"`
	Offer uint64 `json:"offer"` // the participant's offer id
	CSN   uint64 `json:"csn"`   // the offer CSN the answer was computed at
	Ans   Answer `json:"answer"`
}

// Vote is a participant's response to a Prepare: yes means the member
// executed to completion and is parked holding a flushed prepare record.
// The exported trace spans let the coordinator assemble the one merged
// trace of the group.
type Vote struct {
	Group      uint64     `json:"group"`
	Offer      uint64     `json:"offer"`
	Node       string     `json:"node"`
	Yes        bool       `json:"yes"`
	Trace      uint64     `json:"trace,omitempty"`
	TraceBegin time.Time  `json:"trace_begin,omitempty"`
	Spans      []obs.Span `json:"spans,omitempty"`
}

// Decide carries the coordinator's logged verdict to a participant.
type Decide struct {
	Group  uint64 `json:"group"`
	Commit bool   `json:"commit"`
}

// Status is a participant's in-doubt inquiry and its answer. Pending
// means the coordinator still has the group open (keep waiting); Known
// false with Pending false means no record exists at all — which, under
// presumed abort, is an abort verdict.
type Status struct {
	Group   uint64 `json:"group"`
	Known   bool   `json:"known"`
	Commit  bool   `json:"commit"`
	Pending bool   `json:"pending,omitempty"`
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
