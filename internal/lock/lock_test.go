package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func table(name string) TableRow        { return TableRow{Table: name, Row: AllRows} }
func row(name string, r int64) TableRow { return TableRow{Table: name, Row: r} }

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the classical matrix.
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, S, true}, {S, X, false},
		{X, X, false},
	}
	for _, c := range cases {
		if compatible[c.a][c.b] != c.ok {
			t.Errorf("compat[%v][%v] = %v, want %v", c.a, c.b, compatible[c.a][c.b], c.ok)
		}
		if compatible[c.b][c.a] != c.ok {
			t.Errorf("matrix not symmetric at [%v][%v]", c.b, c.a)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("Flights"), S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, table("Flights"), S); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, table("Flights"), S) || !m.Holds(2, table("Flights"), S) {
		t.Fatal("both transactions should hold S")
	}
}

func TestExclusiveBlocksAndReleaseWakes(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("Flights"), X); err != nil {
		t.Fatal(err)
	}
	var got int32
	done := make(chan error, 1)
	go func() {
		err := m.Acquire(2, table("Flights"), X)
		atomic.StoreInt32(&got, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if atomic.LoadInt32(&got) != 0 {
		t.Fatal("second X granted while first held")
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !m.Holds(2, table("Flights"), X) {
		t.Fatal("waiter not granted after release")
	}
}

func TestReentrantAndCoverage(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("T"), X); err != nil {
		t.Fatal(err)
	}
	// X covers S, IS, IX and re-acquiring X is a no-op.
	for _, mode := range []Mode{X, S, IS, IX} {
		if err := m.Acquire(1, table("T"), mode); err != nil {
			t.Fatalf("re-entrant %v: %v", mode, err)
		}
	}
	if m.HeldCount(1) != 1 {
		t.Errorf("HeldCount = %d", m.HeldCount(1))
	}
}

func TestIntentionModesOnRowRejected(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, row("T", 5), IS); err == nil {
		t.Fatal("IS on a row accepted")
	}
	if err := m.Acquire(1, row("T", 5), IX); err == nil {
		t.Fatal("IX on a row accepted")
	}
}

func TestHierarchicalTableVsRow(t *testing.T) {
	m := New(0)
	// Writer: IX on table + X on row 1.
	if err := m.Acquire(1, table("T"), IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, row("T", 1), X); err != nil {
		t.Fatal(err)
	}
	// Reader of a different row: IS on table + S on row 2 — allowed.
	if err := m.Acquire(2, table("T"), IS); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, row("T", 2), S); err != nil {
		t.Fatal(err)
	}
	// Full-table S reader conflicts with the IX writer.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(3, table("T"), S) }()
	select {
	case err := <-blocked:
		t.Fatalf("table S granted against IX holder: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, table("B"), X); err != nil {
		t.Fatal(err)
	}
	// tx1 waits for B (held by tx2).
	errCh := make(chan error, 1)
	go func() { errCh <- m.Acquire(1, table("B"), X) }()
	time.Sleep(20 * time.Millisecond)
	// tx2 requests A (held by tx1): cycle, tx2 is the victim.
	err := m.Acquire(2, table("A"), X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	_, _, dl := m.Stats()
	if dl != 1 {
		t.Errorf("deadlocks = %d", dl)
	}
	// Victim releases; tx1 proceeds.
	m.ReleaseAll(2)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := New(0)
	for tx := uint64(1); tx <= 3; tx++ {
		if err := m.Acquire(tx, table(string(rune('A'+tx-1))), X); err != nil {
			t.Fatal(err)
		}
	}
	// 1 waits for B, 2 waits for C, then 3 requesting A closes the cycle.
	go m.Acquire(1, table("B"), X)
	time.Sleep(10 * time.Millisecond)
	go m.Acquire(2, table("C"), X)
	time.Sleep(10 * time.Millisecond)
	if err := m.Acquire(3, table("A"), X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	m.ReleaseAll(2)
	m.ReleaseAll(1)
}

func TestWaitTimeout(t *testing.T) {
	m := New(50 * time.Millisecond)
	if err := m.Acquire(1, table("T"), X); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire(2, table("T"), X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("returned too early: %v", elapsed)
	}
}

func TestReleaseSharedKeepsExclusive(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("T"), IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, row("T", 1), X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, table("U"), S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseShared(1)
	if m.Holds(1, table("U"), S) {
		t.Error("S lock survived ReleaseShared")
	}
	if !m.Holds(1, row("T", 1), X) {
		t.Error("X lock dropped by ReleaseShared")
	}
	if !m.Holds(1, table("T"), IX) {
		t.Error("IX lock dropped by ReleaseShared")
	}
	// Another reader can now take U.
	if err := m.Acquire(2, table("U"), X); err != nil {
		t.Fatal(err)
	}
}

func TestLockUpgrade(t *testing.T) {
	m := New(0)
	if err := m.Acquire(1, table("T"), S); err != nil {
		t.Fatal(err)
	}
	// Sole holder upgrades S -> X immediately.
	if err := m.Acquire(1, table("T"), X); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, table("T"), X) {
		t.Fatal("upgrade failed")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := New(0)
	m.Acquire(1, table("T"), S)
	m.Acquire(2, table("T"), S)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, table("T"), X) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another reader holds S")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllUnknownTxIsNoop(t *testing.T) {
	m := New(0)
	m.ReleaseAll(42) // must not panic
	m.ReleaseShared(42)
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines locking random rows in a fixed order (no deadlock by
	// ordering); verify mutual exclusion with a shadow counter per row.
	m := New(0)
	const rows = 8
	counters := make([]int64, rows)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r := int64(i % rows)
				if err := m.Acquire(tx, table("T"), IX); err != nil {
					t.Error(err)
					return
				}
				if err := m.Acquire(tx, row("T", r), X); err != nil {
					t.Error(err)
					return
				}
				c := atomic.AddInt64(&counters[r], 1)
				if c != 1 {
					t.Errorf("mutual exclusion violated on row %d", r)
				}
				atomic.AddInt64(&counters[r], -1)
				m.ReleaseAll(tx)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}

func TestStatsCount(t *testing.T) {
	m := New(0)
	m.Acquire(1, table("T"), S)
	m.Acquire(2, table("T"), S)
	acq, _, _ := m.Stats()
	if acq != 2 {
		t.Errorf("acquisitions = %d", acq)
	}
}
