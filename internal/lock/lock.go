// Package lock implements the hierarchical lock manager the transaction
// layers use for Strict Two-Phase Locking: table-level intention and
// absolute locks (IS, IX, S, X) and row-level locks (S, X), with
// waits-for-graph deadlock detection, FIFO queuing (a request may not
// overtake an earlier conflicting waiter, which prevents reader storms from
// starving upgraders), and an optional wait timeout.
//
// This is the substrate the paper delegates to InnoDB's lock manager; §3.3.3
// notes that full entangled isolation can be enforced with Strict 2PL (plus
// group commits), and §4 that isolation relaxations fall out of altering how
// long locks are held — which internal/txn exploits for its read-committed
// level.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes. Intention modes apply to tables only.
const (
	IS Mode = iota // intention shared (table): S row locks beneath
	IX             // intention exclusive (table): X row locks beneath
	S              // shared
	X              // exclusive
)

func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible is the classical multi-granularity compatibility matrix.
var compatible = [4][4]bool{
	IS: {IS: true, IX: true, S: true, X: false},
	IX: {IS: true, IX: true, S: false, X: false},
	S:  {IS: true, IX: false, S: true, X: false},
	X:  {IS: false, IX: false, S: false, X: false},
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")
	ErrTimeout  = errors.New("lock: wait timed out")
)

// TableRow addresses a lockable object: a whole table (Row == AllRows) or a
// single row.
type TableRow struct {
	Table string
	Row   int64
}

// AllRows as the Row field addresses the table itself.
const AllRows int64 = -1

// modeSet is a bitmask over Mode.
type modeSet uint8

func (s modeSet) has(m Mode) bool     { return s&(1<<m) != 0 }
func (s modeSet) with(m Mode) modeSet { return s | (1 << m) }

// covers reports whether holding s already implies mode m (X covers
// everything; S covers IS; IX covers IS).
func (s modeSet) covers(m Mode) bool {
	if s.has(m) || s.has(X) {
		return true
	}
	if m == IS && (s.has(S) || s.has(IX)) {
		return true
	}
	return false
}

// compatibleWith reports whether every mode in s is compatible with m.
func (s modeSet) compatibleWith(m Mode) bool {
	for mm := IS; mm <= X; mm++ {
		if s.has(mm) && !compatible[mm][m] {
			return false
		}
	}
	return true
}

// waiter is one queued request.
type waiter struct {
	tx   uint64
	mode Mode
	seq  uint64
}

type entry struct {
	holders map[uint64]modeSet
	queue   []waiter // arrival order
}

func (e *entry) dequeue(seq uint64) {
	for i, w := range e.queue {
		if w.seq == seq {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// Manager is the lock manager. The zero value is not usable; call New.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	locks   map[TableRow]*entry
	held    map[uint64]map[TableRow]modeSet // per-transaction inventory
	timeout time.Duration                   // 0 = wait forever
	nextSeq uint64

	// Stats (guarded by mu).
	acquisitions int64
	waits        int64
	deadlocks    int64
}

// New returns a lock manager. waitTimeout of 0 means waiters block until
// granted or deadlocked.
func New(waitTimeout time.Duration) *Manager {
	m := &Manager{
		locks:   make(map[TableRow]*entry),
		held:    make(map[uint64]map[TableRow]modeSet),
		timeout: waitTimeout,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire blocks until tx holds mode on obj, the wait times out, or the
// request would deadlock (in which case the requester is the victim and
// ErrDeadlock is returned). Acquire is re-entrant: a transaction already
// holding a covering mode returns immediately.
//
// Grant policy: a request is granted when it is compatible with all other
// holders and does not overtake an earlier-queued conflicting waiter.
// Upgrades (the transaction already holds a weaker mode on the object) are
// exempt from the no-overtake rule, since a queued waiter may itself be
// blocked on the upgrader's current holding.
func (m *Manager) Acquire(tx uint64, obj TableRow, mode Mode) error {
	if obj.Row != AllRows && (mode == IS || mode == IX) {
		return fmt.Errorf("lock: intention mode %s on row %v", mode, obj)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	e := m.locks[obj]
	if e == nil {
		e = &entry{holders: make(map[uint64]modeSet)}
		m.locks[obj] = e
	}
	if e.holders[tx].covers(mode) {
		return nil
	}

	m.nextSeq++
	w := waiter{tx: tx, mode: mode, seq: m.nextSeq}
	e.queue = append(e.queue, w)

	var deadline time.Time
	if m.timeout > 0 {
		deadline = time.Now().Add(m.timeout)
	}
	waited := false
	for {
		isUpgrade := e.holders[tx] != 0
		blockers := m.blockers(e, w, isUpgrade)
		if len(blockers) == 0 {
			e.dequeue(w.seq)
			e.holders[tx] = e.holders[tx].with(mode)
			inv := m.held[tx]
			if inv == nil {
				inv = make(map[TableRow]modeSet)
				m.held[tx] = inv
			}
			inv[obj] = inv[obj].with(mode)
			m.acquisitions++
			// A grant can unblock later queue entries that are compatible.
			m.cond.Broadcast()
			return nil
		}
		// Deadlock check against the waits-for graph derived from the live
		// lock table (cached edges go stale while waiters sleep and would
		// yield false deadlocks).
		if m.cycleFrom(tx) {
			e.dequeue(w.seq)
			m.deadlocks++
			m.cond.Broadcast()
			return ErrDeadlock
		}
		if !waited {
			m.waits++
			waited = true
		}
		if m.timeout > 0 {
			if time.Now().After(deadline) {
				e.dequeue(w.seq)
				m.cond.Broadcast()
				return ErrTimeout
			}
			// Bounded wait: arrange a wakeup so the deadline is honored even
			// if nobody releases.
			timer := time.AfterFunc(m.timeout/4+time.Millisecond, func() {
				m.mu.Lock()
				m.cond.Broadcast()
				m.mu.Unlock()
			})
			m.cond.Wait()
			timer.Stop()
		} else {
			m.cond.Wait()
		}
	}
}

// blockers returns the transactions currently preventing w from being
// granted: conflicting holders, plus — unless w is an upgrade — earlier
// queued waiters with conflicting modes (FIFO fairness).
func (m *Manager) blockers(e *entry, w waiter, isUpgrade bool) []uint64 {
	var out []uint64
	for holder, set := range e.holders {
		if holder == w.tx {
			continue
		}
		if !set.compatibleWith(w.mode) {
			out = append(out, holder)
		}
	}
	if !isUpgrade {
		for _, earlier := range e.queue {
			if earlier.seq >= w.seq {
				break
			}
			if earlier.tx != w.tx && !compatible[earlier.mode][w.mode] {
				out = append(out, earlier.tx)
			}
		}
	}
	return out
}

// cycleFrom reports whether the waits-for graph — computed fresh from the
// current queues and holders — contains a cycle through start.
func (m *Manager) cycleFrom(start uint64) bool {
	edges := make(map[uint64]map[uint64]bool)
	for _, e := range m.locks {
		for _, w := range e.queue {
			bl := m.blockers(e, w, e.holders[w.tx] != 0)
			if len(bl) == 0 {
				continue // grantable; just not woken yet
			}
			set := edges[w.tx]
			if set == nil {
				set = make(map[uint64]bool)
				edges[w.tx] = set
			}
			for _, b := range bl {
				if b != w.tx {
					set[b] = true
				}
			}
		}
	}
	seen := make(map[uint64]bool)
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		for v := range edges[u] {
			if v == start {
				return true
			}
			if !seen[v] {
				seen[v] = true
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// ReleaseAll drops every lock held by tx (commit or abort under Strict 2PL)
// and wakes waiters.
func (m *Manager) ReleaseAll(tx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv := m.held[tx]
	for obj := range inv {
		if e := m.locks[obj]; e != nil {
			delete(e.holders, tx)
			if len(e.holders) == 0 && len(e.queue) == 0 {
				delete(m.locks, obj)
			}
		}
	}
	delete(m.held, tx)
	m.cond.Broadcast()
}

// ReleaseShared drops only the shared-side locks (IS, S) held by tx,
// retaining IX/X — the read-committed relaxation where read locks are
// released early while write locks are held to commit.
func (m *Manager) ReleaseShared(tx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv := m.held[tx]
	changed := false
	for obj, set := range inv {
		newSet := set &^ ((1 << IS) | (1 << S))
		if newSet == set {
			continue
		}
		changed = true
		e := m.locks[obj]
		if newSet == 0 {
			delete(inv, obj)
			if e != nil {
				delete(e.holders, tx)
				if len(e.holders) == 0 && len(e.queue) == 0 {
					delete(m.locks, obj)
				}
			}
		} else {
			inv[obj] = newSet
			if e != nil {
				e.holders[tx] = newSet
			}
		}
	}
	if len(inv) == 0 {
		delete(m.held, tx)
	}
	if changed {
		m.cond.Broadcast()
	}
}

// Holds reports whether tx currently holds a mode covering the request.
func (m *Manager) Holds(tx uint64, obj TableRow, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.held[tx][obj].covers(mode)
}

// HeldCount returns the number of objects tx holds locks on.
func (m *Manager) HeldCount(tx uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tx])
}

// Stats returns cumulative counters: total grants, waits, deadlocks.
func (m *Manager) Stats() (acquisitions, waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquisitions, m.waits, m.deadlocks
}
