// Package lock implements the hierarchical lock manager the transaction
// layers use for Strict Two-Phase Locking: table-level intention and
// absolute locks (IS, IX, S, X) and row-level locks (S, X), with
// waits-for-graph deadlock detection, FIFO queuing (a request may not
// overtake an earlier conflicting waiter, which prevents reader storms from
// starving upgraders), and an optional wait timeout.
//
// The lock table is sharded: the resource's table name hashes to one of N
// independently-mutexed shards, so a table lock and all row locks beneath it
// live in the same shard (multi-granularity grant decisions stay local)
// while traffic on distinct tables never convoys on a shared mutex. Deadlock
// detection is the only cross-shard operation: a blocked requester snapshots
// the global waits-for graph by visiting every shard in index order, holding
// no shard lock of its own while it does, so detection cannot deadlock with
// the grant path.
//
// This is the substrate the paper delegates to InnoDB's lock manager; §3.3.3
// notes that full entangled isolation can be enforced with Strict 2PL (plus
// group commits), and §4 that isolation relaxations fall out of altering how
// long locks are held — which internal/txn exploits for its read-committed
// level.
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes. Intention modes apply to tables only.
const (
	IS Mode = iota // intention shared (table): S row locks beneath
	IX             // intention exclusive (table): X row locks beneath
	S              // shared
	X              // exclusive
)

func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible is the classical multi-granularity compatibility matrix.
var compatible = [4][4]bool{
	IS: {IS: true, IX: true, S: true, X: false},
	IX: {IS: true, IX: true, S: false, X: false},
	S:  {IS: true, IX: false, S: true, X: false},
	X:  {IS: false, IX: false, S: false, X: false},
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")
	ErrTimeout  = errors.New("lock: wait timed out")
)

// TableRow addresses a lockable object: a whole table (Row == AllRows) or a
// single row.
type TableRow struct {
	Table string
	Row   int64
}

// AllRows as the Row field addresses the table itself.
const AllRows int64 = -1

// modeSet is a bitmask over Mode.
type modeSet uint8

func (s modeSet) has(m Mode) bool     { return s&(1<<m) != 0 }
func (s modeSet) with(m Mode) modeSet { return s | (1 << m) }

// covers reports whether holding s already implies mode m (X covers
// everything; S covers IS; IX covers IS).
func (s modeSet) covers(m Mode) bool {
	if s.has(m) || s.has(X) {
		return true
	}
	if m == IS && (s.has(S) || s.has(IX)) {
		return true
	}
	return false
}

// compatibleWith reports whether every mode in s is compatible with m.
func (s modeSet) compatibleWith(m Mode) bool {
	for mm := IS; mm <= X; mm++ {
		if s.has(mm) && !compatible[mm][m] {
			return false
		}
	}
	return true
}

// waiter is one queued request.
type waiter struct {
	tx   uint64
	mode Mode
	seq  uint64
}

type entry struct {
	holders map[uint64]modeSet
	queue   []waiter // arrival order
}

func (e *entry) dequeue(seq uint64) {
	for i, w := range e.queue {
		if w.seq == seq {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// shard is one independently-locked slice of the lock table. Every object of
// one table hashes to the same shard, so grants, queues, and wakeups for an
// entry are entirely shard-local.
type shard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[TableRow]*entry
	held  map[uint64]map[TableRow]modeSet // per-transaction inventory, this shard

	// Stats (guarded by mu).
	acquisitions int64
	waits        int64
	deadlocks    int64
}

// DefaultShards is the shard count New uses.
const DefaultShards = 16

// Manager is the lock manager. The zero value is not usable; call New or
// NewSharded.
type Manager struct {
	shards  []*shard
	timeout time.Duration // 0 = wait forever
	nextSeq atomic.Uint64 // global FIFO ticket counter
}

// New returns a lock manager with DefaultShards shards. waitTimeout of 0
// means waiters block until granted or deadlocked.
func New(waitTimeout time.Duration) *Manager {
	return NewSharded(waitTimeout, DefaultShards)
}

// NewSharded returns a lock manager whose lock table is split across n
// independently-mutexed shards (n < 1 falls back to DefaultShards).
func NewSharded(waitTimeout time.Duration, n int) *Manager {
	if n < 1 {
		n = DefaultShards
	}
	m := &Manager{timeout: waitTimeout, shards: make([]*shard, n)}
	for i := range m.shards {
		s := &shard{
			locks: make(map[TableRow]*entry),
			held:  make(map[uint64]map[TableRow]modeSet),
		}
		s.cond = sync.NewCond(&s.mu)
		m.shards[i] = s
	}
	return m
}

// ShardCount returns the number of shards.
func (m *Manager) ShardCount() int { return len(m.shards) }

// shardFor hashes the resource's table name (inline FNV-1a: this sits on
// every lock operation, so no hasher or []byte allocations), so table locks
// and the row locks beneath them share a shard.
func (m *Manager) shardFor(obj TableRow) *shard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(obj.Table); i++ {
		h ^= uint32(obj.Table[i])
		h *= 16777619
	}
	return m.shards[h%uint32(len(m.shards))]
}

// Acquire blocks until tx holds mode on obj, the wait times out, or the
// request would deadlock (in which case the requester is the victim and
// ErrDeadlock is returned). Acquire is re-entrant: a transaction already
// holding a covering mode returns immediately.
//
// Grant policy: a request is granted when it is compatible with all other
// holders and does not overtake an earlier-queued conflicting waiter.
// Upgrades (the transaction already holds a weaker mode on the object) are
// exempt from the no-overtake rule, since a queued waiter may itself be
// blocked on the upgrader's current holding.
func (m *Manager) Acquire(tx uint64, obj TableRow, mode Mode) error {
	if obj.Row != AllRows && (mode == IS || mode == IX) {
		return fmt.Errorf("lock: intention mode %s on row %v", mode, obj)
	}
	sh := m.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	e := sh.locks[obj]
	if e == nil {
		e = &entry{holders: make(map[uint64]modeSet)}
		sh.locks[obj] = e
	}
	if e.holders[tx].covers(mode) {
		return nil
	}

	w := waiter{tx: tx, mode: mode, seq: m.nextSeq.Add(1)}
	e.queue = append(e.queue, w)

	var deadline time.Time
	if m.timeout > 0 {
		deadline = time.Now().Add(m.timeout)
	}
	waited := false
	var lastBlockers []uint64
	for {
		isUpgrade := e.holders[tx] != 0
		blockers := blockersOf(e, w, isUpgrade)
		if len(blockers) == 0 {
			e.dequeue(w.seq)
			e.holders[tx] = e.holders[tx].with(mode)
			inv := sh.held[tx]
			if inv == nil {
				inv = make(map[TableRow]modeSet)
				sh.held[tx] = inv
			}
			inv[obj] = inv[obj].with(mode)
			sh.acquisitions++
			// A grant can unblock later queue entries that are compatible.
			sh.cond.Broadcast()
			return nil
		}
		// Deadlock check against the waits-for graph derived from the live
		// lock table (cached edges go stale while waiters sleep and would
		// yield false deadlocks). The graph spans shards, so the check drops
		// this shard's mutex, snapshots every shard in index order, and
		// re-validates grantability after relocking (no lost wakeup: the
		// blocker re-check below runs before any cond.Wait). The all-shard
		// sweep runs only when this waiter's outgoing edges changed: a new
		// cycle's final edge is a fresh blocker of whichever waiter
		// completes it, and that waiter sweeps — so every stable cycle is
		// still detected while wakeups that change nothing stay shard-local.
		if !sameBlockerSet(blockers, lastBlockers) {
			lastBlockers = blockers
			sh.mu.Unlock()
			cycle := m.cycleFrom(tx)
			sh.mu.Lock()
			// State may have shifted while the shard lock was dropped;
			// re-check grantability first — a fresh grant beats a
			// possibly-stale cycle verdict.
			if len(blockersOf(e, w, e.holders[tx] != 0)) == 0 {
				continue
			}
			if cycle {
				e.dequeue(w.seq)
				sh.deadlocks++
				sh.cond.Broadcast()
				return ErrDeadlock
			}
		}
		if !waited {
			sh.waits++
			waited = true
		}
		if m.timeout > 0 {
			if time.Now().After(deadline) {
				e.dequeue(w.seq)
				sh.cond.Broadcast()
				return ErrTimeout
			}
			// Bounded wait: arrange a wakeup so the deadline is honored even
			// if nobody releases.
			timer := time.AfterFunc(m.timeout/4+time.Millisecond, func() {
				sh.mu.Lock()
				sh.cond.Broadcast()
				sh.mu.Unlock()
			})
			sh.cond.Wait()
			timer.Stop()
		} else {
			sh.cond.Wait()
		}
	}
}

// sameBlockerSet reports set equality of two blocker lists (order varies
// with map iteration, so compare sorted copies in place).
func sameBlockerSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// blockersOf returns the transactions currently preventing w from being
// granted: conflicting holders, plus — unless w is an upgrade — earlier
// queued waiters with conflicting modes (FIFO fairness). Caller holds the
// entry's shard mutex.
func blockersOf(e *entry, w waiter, isUpgrade bool) []uint64 {
	var out []uint64
	for holder, set := range e.holders {
		if holder == w.tx {
			continue
		}
		if !set.compatibleWith(w.mode) {
			out = append(out, holder)
		}
	}
	if !isUpgrade {
		for _, earlier := range e.queue {
			// The queue is seq-sorted: seqs are allocated under the shard
			// mutex and dequeue preserves order.
			if earlier.seq >= w.seq {
				break
			}
			if earlier.tx != w.tx && !compatible[earlier.mode][w.mode] {
				out = append(out, earlier.tx)
			}
		}
	}
	return out
}

// cycleFrom reports whether the waits-for graph — computed fresh from the
// current queues and holders across every shard — contains a cycle through
// start. The caller must hold no shard mutex; shards are visited one at a
// time in index order, so concurrent detectors cannot deadlock on each
// other. The snapshot is not a single atomic cut of the whole table: a
// reported cycle can be stale (already broken by a racing timeout or
// release) or, rarely, assembled from edges that never coexisted. Either
// way the verdict only over-aborts — ErrDeadlock is retryable for every
// caller in this system, and the requester re-checks grantability before
// acting on the verdict — while a genuine stable cycle is always found,
// since its edges persist across any snapshot order.
func (m *Manager) cycleFrom(start uint64) bool {
	edges := make(map[uint64]map[uint64]bool)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, e := range sh.locks {
			for _, w := range e.queue {
				bl := blockersOf(e, w, e.holders[w.tx] != 0)
				if len(bl) == 0 {
					continue // grantable; just not woken yet
				}
				set := edges[w.tx]
				if set == nil {
					set = make(map[uint64]bool)
					edges[w.tx] = set
				}
				for _, b := range bl {
					if b != w.tx {
						set[b] = true
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	seen := make(map[uint64]bool)
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		for v := range edges[u] {
			if v == start {
				return true
			}
			if !seen[v] {
				seen[v] = true
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// ReleaseAll drops every lock held by tx (commit or abort under Strict 2PL)
// and wakes waiters on every shard the transaction touched.
func (m *Manager) ReleaseAll(tx uint64) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		inv := sh.held[tx]
		if inv == nil {
			sh.mu.Unlock()
			continue
		}
		for obj := range inv {
			if e := sh.locks[obj]; e != nil {
				delete(e.holders, tx)
				if len(e.holders) == 0 && len(e.queue) == 0 {
					delete(sh.locks, obj)
				}
			}
		}
		delete(sh.held, tx)
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// ReleaseShared drops only the shared-side locks (IS, S) held by tx,
// retaining IX/X — the read-committed relaxation where read locks are
// released early while write locks are held to commit.
func (m *Manager) ReleaseShared(tx uint64) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		inv := sh.held[tx]
		changed := false
		for obj, set := range inv {
			newSet := set &^ ((1 << IS) | (1 << S))
			if newSet == set {
				continue
			}
			changed = true
			e := sh.locks[obj]
			if newSet == 0 {
				delete(inv, obj)
				if e != nil {
					delete(e.holders, tx)
					if len(e.holders) == 0 && len(e.queue) == 0 {
						delete(sh.locks, obj)
					}
				}
			} else {
				inv[obj] = newSet
				if e != nil {
					e.holders[tx] = newSet
				}
			}
		}
		if len(inv) == 0 {
			delete(sh.held, tx)
		}
		if changed {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
}

// Holds reports whether tx currently holds a mode covering the request.
func (m *Manager) Holds(tx uint64, obj TableRow, mode Mode) bool {
	sh := m.shardFor(obj)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.held[tx][obj].covers(mode)
}

// HeldCount returns the number of objects tx holds locks on.
func (m *Manager) HeldCount(tx uint64) int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.held[tx])
		sh.mu.Unlock()
	}
	return n
}

// Stats returns cumulative counters summed over shards: total grants,
// waits, deadlocks.
func (m *Manager) Stats() (acquisitions, waits, deadlocks int64) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		acquisitions += sh.acquisitions
		waits += sh.waits
		deadlocks += sh.deadlocks
		sh.mu.Unlock()
	}
	return
}
