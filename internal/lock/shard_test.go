package lock

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Race-focused exercises of the sharded lock table: concurrent acquire,
// release, and upgrade traffic spread across (and colliding within) shards.
// These tests assert invariants — no lost grants, clean inventories, all
// waiters eventually served — and are primarily meant to run under
// `go test -race` (the CI `race` target).

func TestShardedDisjointTablesDoNotConvoy(t *testing.T) {
	m := NewSharded(0, 8)
	if m.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d, want 8", m.ShardCount())
	}
	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := uint64(g + 1)
			obj := table(fmt.Sprintf("T%d", g)) // one exclusive table per tx
			for i := 0; i < iters; i++ {
				if err := m.Acquire(tx, obj, X); err != nil {
					t.Errorf("tx %d: %v", tx, err)
					return
				}
				m.ReleaseAll(tx)
			}
		}(g)
	}
	wg.Wait()
	acq, waits, _ := m.Stats()
	if acq != goroutines*iters {
		t.Fatalf("acquisitions = %d, want %d", acq, goroutines*iters)
	}
	if waits != 0 {
		t.Errorf("waits = %d on disjoint tables, want 0", waits)
	}
}

func TestShardedConcurrentAcquireReleaseMixed(t *testing.T) {
	m := NewSharded(500*time.Millisecond, 4)
	tables := []string{"A", "B", "C", "D", "E", "F"}
	const goroutines = 24
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := uint64(g + 1)
			for i := 0; i < 100; i++ {
				tbl := tables[(g+i)%len(tables)]
				// Row reads under IS, row writes under IX+X, occasional
				// table scans under S — the mix the txn layer issues.
				var err error
				switch i % 3 {
				case 0:
					if err = m.Acquire(tx, table(tbl), IS); err == nil {
						err = m.Acquire(tx, row(tbl, int64(i%8)), S)
					}
				case 1:
					if err = m.Acquire(tx, table(tbl), IX); err == nil {
						err = m.Acquire(tx, row(tbl, int64(i%8)), X)
					}
				case 2:
					err = m.Acquire(tx, table(tbl), S)
				}
				if err != nil && !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) {
					t.Errorf("tx %d: unexpected error %v", tx, err)
				}
				m.ReleaseAll(tx)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if n := m.HeldCount(uint64(g + 1)); n != 0 {
			t.Errorf("tx %d still holds %d locks after ReleaseAll", g+1, n)
		}
	}
}

// TestShardedConcurrentUpgrades hammers the S→X upgrade path on one object
// per shard: upgraders are exempt from FIFO overtaking, so every contender
// must finish with either a grant or a detected deadlock, never a hang.
func TestShardedConcurrentUpgrades(t *testing.T) {
	m := NewSharded(250*time.Millisecond, 4)
	const contenders = 12
	var wg sync.WaitGroup
	granted := make([]int, contenders)
	for g := 0; g < contenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := uint64(g + 1)
			obj := table(fmt.Sprintf("U%d", g%4)) // 3 contenders per object
			for i := 0; i < 40; i++ {
				if err := m.Acquire(tx, obj, S); err != nil {
					m.ReleaseAll(tx)
					continue
				}
				err := m.Acquire(tx, obj, X) // upgrade against other S holders
				switch {
				case err == nil:
					granted[g]++
				case errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout):
					// Legal resolutions of competing upgrades.
				default:
					t.Errorf("tx %d: upgrade: %v", tx, err)
				}
				m.ReleaseAll(tx)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range granted {
		total += n
	}
	if total == 0 {
		t.Fatal("no upgrade ever succeeded")
	}
}

// TestCrossShardDeadlockDetected forces the wait-for cycle across two
// distinct shards, exercising the multi-shard waits-for snapshot.
func TestCrossShardDeadlockDetected(t *testing.T) {
	m := NewSharded(0, 2)
	// Find two tables living in different shards.
	ta, tb := "A", ""
	for _, cand := range []string{"B", "C", "D", "E", "F", "G"} {
		if m.shardFor(table(cand)) != m.shardFor(table(ta)) {
			tb = cand
			break
		}
	}
	if tb == "" {
		t.Fatal("could not find tables hashing to distinct shards")
	}
	if err := m.Acquire(1, table(ta), X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, table(tb), X); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- m.Acquire(1, table(tb), X) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.Acquire(2, table(ta), X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock across shards", err)
	}
	m.ReleaseAll(2)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

// TestSingleShardStillCorrect pins the degenerate configuration: one shard
// must behave exactly like the old global-mutex manager.
func TestSingleShardStillCorrect(t *testing.T) {
	m := NewSharded(0, 1)
	if err := m.Acquire(1, table("T"), S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, table("T"), S); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, table("T"), X) }()
	select {
	case err := <-done:
		t.Fatalf("X granted against two S holders: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}
