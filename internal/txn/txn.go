// Package txn implements classical ACID transactions over the storage,
// lock, and wal substrates. Writes always serialize through row-level
// exclusive locks and install uncommitted versions in the MVCC store;
// what varies per isolation level is the read path:
//
//   - Serializable: Strict 2PL — table-level shared locks (the regime
//     §3.3.3 of the paper assumes: "Minnie's transaction would have held a
//     read lock on the Airlines table until commit") plus row S locks for
//     index reads, all held to commit. Reads observe the newest committed
//     version plus the transaction's own writes.
//   - ReadCommitted: shared locks released at statement end; write locks
//     still held to commit. This is the §4 relaxation of "altering the
//     length of time locks are held".
//   - SnapshotIsolation: reads take NO locks at all — the transaction pins
//     a commit-sequence-number (CSN) snapshot at begin and every read
//     resolves version chains against it. Write conflicts are detected
//     first-committer-wins: updating or deleting a row whose newest
//     committed version postdates the snapshot fails with
//     ErrWriteConflict (retryable). This takes the read path off the lock
//     manager entirely, which is what lets read-heavy workloads scale past
//     the 2PL contention wall.
//
// Commit allocates a CSN under the commit mutex, logs it, stamps the
// transaction's versions, and only then publishes the clock — so snapshots
// observe whole commits or nothing. Group commit stamps every unit of a
// batch before one publication, preserving the §4 entangled group-commit
// atomicity.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// IsolationLevel selects the concurrency-control discipline of a
// transaction.
type IsolationLevel int

// Supported isolation levels.
const (
	Serializable IsolationLevel = iota
	ReadCommitted
	SnapshotIsolation
)

func (l IsolationLevel) String() string {
	switch l {
	case Serializable:
		return "SERIALIZABLE"
	case ReadCommitted:
		return "READ COMMITTED"
	case SnapshotIsolation:
		return "SNAPSHOT"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// State is the lifecycle state of a transaction.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// Errors returned by transaction operations.
var (
	ErrNotActive = errors.New("txn: transaction is not active")
	// ErrWriteConflict is the first-committer-wins outcome under snapshot
	// isolation: another transaction committed a newer version of the row
	// after this transaction's snapshot. The loser aborts and retries.
	ErrWriteConflict = errors.New("txn: snapshot write conflict (first committer wins)")
)

// Observer receives operation notifications; the entangled-transaction
// layer uses it to record execution schedules for the isolation checker.
// Row is storage.RowID or -1 for a whole-table read. Implementations must
// be safe for concurrent use.
type Observer interface {
	OnRead(tx uint64, table string, row int64)
	OnWrite(tx uint64, table string, row int64)
	OnCommit(tx uint64)
	OnAbort(tx uint64)
}

// Manager creates and finalizes transactions.
type Manager struct {
	cat    *storage.Catalog
	locks  *lock.Manager
	log    *wal.Log // nil disables durability
	nextTx atomic.Uint64

	clock    atomic.Uint64 // newest published commit sequence number
	commitMu sync.Mutex    // serializes CSN allocation + stamping + publication
	snaps    *snapshotTable

	// Checkpoint quiescence gate: units of transactional work (a scheduler
	// run, a direct transaction, a DDL statement) register via Enter/Exit;
	// Quiesced raises the gate, drains the active units, and runs the
	// checkpoint against the then-frozen committed state. Gating whole
	// units — not individual Begins — is what keeps a run's members from
	// deadlocking against a checkpoint that is waiting for their siblings.
	qmu     sync.Mutex
	qcond   *sync.Cond
	qgate   bool
	qactive int

	obsMu    sync.RWMutex
	observer Observer
}

// NewManager wires a transaction manager over a catalog, lock manager, and
// optional write-ahead log.
func NewManager(cat *storage.Catalog, locks *lock.Manager, log *wal.Log) *Manager {
	m := &Manager{cat: cat, locks: locks, log: log, snaps: newSnapshotTable()}
	m.qcond = sync.NewCond(&m.qmu)
	return m
}

// Enter registers one unit of transactional work — a scheduler run (with
// all its member transactions), a direct transaction, or a DDL statement —
// blocking while a checkpoint is quiescing. Every Enter must be paired
// with Exit after the unit's last transaction finished and its last log
// record was appended.
func (m *Manager) Enter() {
	m.qmu.Lock()
	for m.qgate {
		m.qcond.Wait()
	}
	m.qactive++
	m.qmu.Unlock()
}

// Exit deregisters a unit of transactional work.
func (m *Manager) Exit() {
	m.qmu.Lock()
	m.qactive--
	m.qcond.Broadcast()
	m.qmu.Unlock()
}

// Quiesced raises the checkpoint gate (new units block in Enter), waits
// for every active unit to drain, and then runs fn with the published
// commit clock — at which point no transaction is in flight, no commit can
// land mid-snapshot, and no log record can slip between the snapshot scan
// and a truncate. Concurrent Quiesced calls serialize. The gate is always
// lowered again, even when fn fails.
//
// Quiesced blocks without a deadline: an open unit that never finishes (an
// interactive BEGIN block parked at a prompt) stalls the checkpoint — and,
// transitively, every new unit — until it commits, rolls back, or
// disconnects; that wait-for-the-open-transaction behavior is inherent to
// a quiescent checkpoint (compare FLUSH TABLES WITH READ LOCK). It must
// never be called from inside a unit of work — a program body invoking the
// checkpoint would wait for its own unit to drain and deadlock.
func (m *Manager) Quiesced(fn func(csn uint64) error) error {
	m.qmu.Lock()
	for m.qgate {
		m.qcond.Wait()
	}
	m.qgate = true
	for m.qactive > 0 {
		m.qcond.Wait()
	}
	m.qmu.Unlock()

	err := fn(m.clock.Load())

	m.qmu.Lock()
	m.qgate = false
	m.qcond.Broadcast()
	m.qmu.Unlock()
	return err
}

// Catalog exposes the underlying catalog (read-mostly helpers, DDL).
func (m *Manager) Catalog() *storage.Catalog { return m.cat }

// Locks exposes the lock manager (the entangled layer takes quasi-read
// locks through it).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// SetObserver installs an operation observer (nil to clear).
func (m *Manager) SetObserver(o Observer) {
	m.obsMu.Lock()
	m.observer = o
	m.obsMu.Unlock()
}

func (m *Manager) obs() Observer {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	return m.observer
}

// CreateTable creates a table and logs the DDL for recovery.
func (m *Manager) CreateTable(name string, schema *types.Schema) (*storage.Table, error) {
	m.Enter()
	defer m.Exit()
	t, err := m.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	if m.log != nil {
		if err := m.log.Append(wal.CreateTable(name, schema)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CreateIndex builds an equality index and logs the DDL for recovery.
func (m *Manager) CreateIndex(table, index string, columns []string) error {
	m.Enter()
	defer m.Exit()
	tbl, err := m.cat.Get(table)
	if err != nil {
		return err
	}
	if err := tbl.CreateIndex(index, columns...); err != nil {
		return err
	}
	if m.log != nil {
		return m.log.Append(wal.CreateIndex(tbl.Name(), index, columns))
	}
	return nil
}

// writeRef remembers one written row so commit can stamp its versions with
// the allocated CSN and abort can remove them.
type writeRef struct {
	table *storage.Table
	rowID storage.RowID
}

// Txn is one classical transaction. A Txn is not safe for concurrent use by
// multiple goroutines (one connection = one transaction, as in the paper's
// MySQL setup).
type Txn struct {
	id    uint64
	mgr   *Manager
	level IsolationLevel
	state State
	undo  []writeRef

	snap       storage.Snapshot // SnapshotIsolation read view
	snapHandle uint64           // registration in the manager's snapshot table

	reads  int64
	writes int64
}

// Begin starts a transaction at the given isolation level.
func (m *Manager) Begin(level IsolationLevel) (*Txn, error) {
	id := m.nextTx.Add(1)
	t := &Txn{id: id, mgr: m, level: level}
	if level == SnapshotIsolation {
		handle, csn := m.snaps.register(&m.clock)
		t.snap = storage.Snapshot{CSN: csn, Self: id}
		t.snapHandle = handle
	}
	if m.log != nil {
		if err := m.log.Append(wal.Begin(wal.TxID(id))); err != nil {
			t.releaseSnapshot()
			return nil, err
		}
	}
	return t, nil
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Level returns the isolation level.
func (t *Txn) Level() IsolationLevel { return t.level }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// Stats returns the number of read and write operations performed.
func (t *Txn) Stats() (reads, writes int64) { return t.reads, t.writes }

// SnapshotView returns the transaction's read snapshot (zero unless the
// transaction runs at SnapshotIsolation).
func (t *Txn) SnapshotView() storage.Snapshot { return t.snap }

// WroteTable reports whether the transaction holds uncommitted writes on
// the named table. The evaluation round's scan and grounding caches bypass
// shared (committed-state) results for a poser that wrote a grounded table,
// since its grounding view must include its own uncommitted versions. Only
// safe to call while the owning goroutine is not mutating the transaction
// (e.g. while the member is blocked on an entangled query).
func (t *Txn) WroteTable(name string) bool {
	for _, w := range t.undo {
		if w.table.Name() == name {
			return true
		}
	}
	return false
}

// RefreshSnapshot advances a snapshot-isolated transaction's read view to
// view's CSN (never backward). The run scheduler refreshes members to the
// evaluation round's snapshot when delivering an entangled answer, so the
// transaction's subsequent reads are consistent with the state the answer
// was computed against.
func (t *Txn) RefreshSnapshot(view storage.Snapshot) {
	if t.level != SnapshotIsolation || view.CSN <= t.snap.CSN {
		return
	}
	t.snap.CSN = view.CSN
	t.mgr.snaps.update(t.snapHandle, view.CSN)
}

func (t *Txn) releaseSnapshot() {
	if t.snapHandle != 0 {
		t.mgr.snaps.release(t.snapHandle)
		t.snapHandle = 0
	}
}

func (t *Txn) ensureActive() error {
	if t.state != Active {
		return ErrNotActive
	}
	return nil
}

// lockFreeReads reports whether this transaction reads through its
// snapshot instead of shared locks.
func (t *Txn) lockFreeReads() bool { return t.level == SnapshotIsolation }

// lockTableShared acquires a table-level S lock (the paper's read-lock
// granularity). Exposed for the entangled layer's quasi-read locks.
func (t *Txn) lockTableShared(table string) error {
	return t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.S)
}

// LockTableShared acquires a table-level shared lock on behalf of the
// transaction without reading — used by the entangled-transaction layer to
// enforce repeatable quasi-reads (§3.3.3) at the locking levels.
func (t *Txn) LockTableShared(table string) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	return t.lockTableShared(table)
}

// statementEnd implements the ReadCommitted relaxation: shared locks are
// surrendered once the statement completes. (Snapshot isolation takes no
// shared locks in the first place.)
func (t *Txn) statementEnd() {
	if t.level == ReadCommitted {
		t.mgr.locks.ReleaseShared(t.id)
	}
}

// Scan returns every row of the table: under the locking levels via a
// shared table lock over the newest committed state, under snapshot
// isolation lock-free through the transaction's snapshot.
func (t *Txn) Scan(table string) ([]types.Tuple, error) {
	rows, _, err := t.scan(table, false)
	return rows, err
}

// ScanIDs returns every (RowID, row) pair, with the same locking rules as
// Scan.
func (t *Txn) ScanIDs(table string) (ids []storage.RowID, rows []types.Tuple, err error) {
	rows, ids, err = t.scan(table, true)
	return ids, rows, err
}

func (t *Txn) scan(table string, wantIDs bool) ([]types.Tuple, []storage.RowID, error) {
	if err := t.ensureActive(); err != nil {
		return nil, nil, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return nil, nil, err
	}
	var rows []types.Tuple
	var ids []storage.RowID
	collect := func(id storage.RowID, row types.Tuple) bool {
		if wantIDs {
			ids = append(ids, id)
		}
		rows = append(rows, row.Clone())
		return true
	}
	if t.lockFreeReads() {
		tbl.ScanAsOf(t.snap, collect)
	} else {
		if err := t.lockTableShared(table); err != nil {
			return nil, nil, err
		}
		defer t.statementEnd()
		tbl.ScanTx(t.id, collect)
	}
	t.reads++
	if o := t.mgr.obs(); o != nil {
		o.OnRead(t.id, tbl.Name(), int64(lock.AllRows))
	}
	return rows, ids, nil
}

// Lookup returns rows whose columns equal key. Under the locking levels it
// locks at row granularity like an InnoDB index read: IS on the table plus
// S on each matching row, so point reads by different transactions on
// different rows do not force table-level upgrades. (Phantoms are possible
// against concurrent inserts; use Scan for a full-table read lock, which is
// what quasi-read locking uses.) Under snapshot isolation it is lock-free.
func (t *Txn) Lookup(table string, columns []string, key types.Tuple) ([]types.Tuple, error) {
	_, rows, err := t.LookupIDs(table, columns, key)
	return rows, err
}

// LookupIDs is Lookup returning row ids as well (for targeted updates and
// deletes).
func (t *Txn) LookupIDs(table string, columns []string, key types.Tuple) ([]storage.RowID, []types.Tuple, error) {
	if err := t.ensureActive(); err != nil {
		return nil, nil, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return nil, nil, err
	}
	var outIDs []storage.RowID
	var out []types.Tuple
	if t.lockFreeReads() {
		outIDs, out, err = tbl.LookupRowsAsOf(t.snap, columns, key)
		if err != nil {
			return nil, nil, err
		}
	} else {
		if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IS); err != nil {
			return nil, nil, err
		}
		defer t.statementEnd()
		ids, err := tbl.LookupTx(t.id, columns, key)
		if err != nil {
			return nil, nil, err
		}
		for _, id := range ids {
			if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(id)}, lock.S); err != nil {
				return nil, nil, err
			}
			if row, ok := tbl.GetTx(t.id, id); ok {
				outIDs = append(outIDs, id)
				out = append(out, row)
			}
		}
	}
	t.reads++
	if o := t.mgr.obs(); o != nil {
		o.OnRead(t.id, tbl.Name(), int64(lock.AllRows))
	}
	return outIDs, out, nil
}

// lockForWrite takes IX on the table and X on the row. Writes keep
// exclusive locks at every isolation level — MVCC removes read locks, not
// write serialization.
func (t *Txn) lockForWrite(table string, rowID storage.RowID) error {
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IX); err != nil {
		return err
	}
	return t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(rowID)}, lock.X)
}

// checkWriteConflict enforces first-committer-wins for snapshot isolation:
// with the row's X lock held, the newest committed version must not
// postdate the snapshot.
func (t *Txn) checkWriteConflict(tbl *storage.Table, id storage.RowID) error {
	if t.level != SnapshotIsolation {
		return nil
	}
	if csn, ok := tbl.CommittedCSN(id); ok && csn > t.snap.CSN {
		return fmt.Errorf("%w: %s row %d committed at CSN %d after snapshot %d",
			ErrWriteConflict, tbl.Name(), id, csn, t.snap.CSN)
	}
	return nil
}

// Insert adds a row, locking table IX first (which serializes against
// whole-table read lockers) and then the new row X. The row is installed as
// an uncommitted version, invisible to every other transaction until
// commit stamps it.
func (t *Txn) Insert(table string, row types.Tuple) (storage.RowID, error) {
	if err := t.ensureActive(); err != nil {
		return storage.InvalidRowID, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return storage.InvalidRowID, err
	}
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IX); err != nil {
		return storage.InvalidRowID, err
	}
	id, err := tbl.InsertTx(t.id, row)
	if err != nil {
		return storage.InvalidRowID, err
	}
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(id)}, lock.X); err != nil {
		return storage.InvalidRowID, err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Insert(wal.TxID(t.id), tbl.Name(), id, row)); err != nil {
			return storage.InvalidRowID, err
		}
	}
	t.undo = append(t.undo, writeRef{table: tbl, rowID: id})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return id, nil
}

// Update replaces the row at id with a new uncommitted version.
func (t *Txn) Update(table string, id storage.RowID, row types.Tuple) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return err
	}
	if err := t.lockForWrite(table, id); err != nil {
		return err
	}
	if err := t.checkWriteConflict(tbl, id); err != nil {
		return err
	}
	old, err := tbl.UpdateTx(t.id, id, row)
	if err != nil {
		return err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Update(wal.TxID(t.id), tbl.Name(), id, old, row)); err != nil {
			return err
		}
	}
	t.undo = append(t.undo, writeRef{table: tbl, rowID: id})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return nil
}

// Delete removes the row at id with an uncommitted tombstone.
func (t *Txn) Delete(table string, id storage.RowID) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return err
	}
	if err := t.lockForWrite(table, id); err != nil {
		return err
	}
	if err := t.checkWriteConflict(tbl, id); err != nil {
		return err
	}
	old, err := tbl.DeleteTx(t.id, id)
	if err != nil {
		return err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Delete(wal.TxID(t.id), tbl.Name(), id, old)); err != nil {
			return err
		}
	}
	t.undo = append(t.undo, writeRef{table: tbl, rowID: id})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return nil
}

// stamp marks every version the transaction wrote as committed at csn.
func (t *Txn) stamp(csn uint64) {
	for _, w := range t.undo {
		w.table.Stamp(t.id, w.rowID, csn)
	}
}

// finishCommitted transitions the transaction to Committed and releases its
// resources.
func (t *Txn) finishCommitted() {
	t.state = Committed
	t.undo = nil
	t.releaseSnapshot()
	t.mgr.locks.ReleaseAll(t.id)
	if o := t.mgr.obs(); o != nil {
		o.OnCommit(t.id)
	}
}

// Commit makes the transaction's writes durable and visible, and releases
// its locks. Write-bearing commits allocate the next CSN under the commit
// mutex: log, stamp, publish — so concurrent snapshots see the commit
// atomically.
func (t *Txn) Commit() error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	m := t.mgr
	m.commitMu.Lock()
	var csn uint64
	if len(t.undo) > 0 {
		csn = m.clock.Load() + 1
	}
	if m.log != nil {
		if err := m.log.Append(wal.Commit(wal.TxID(t.id), csn)); err != nil {
			m.commitMu.Unlock()
			return err
		}
	}
	if csn != 0 {
		t.stamp(csn)
		m.clock.Store(csn)
	}
	m.commitMu.Unlock()
	t.finishCommitted()
	return nil
}

// Abort rolls back the transaction by removing its uncommitted versions
// and releases its locks. Abort of a non-active transaction is a no-op.
func (t *Txn) Abort() error {
	if t.state != Active {
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		w := t.undo[i]
		w.table.Rollback(t.id, w.rowID)
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Abort(wal.TxID(t.id))); err != nil {
			return err
		}
	}
	t.state = Aborted
	t.undo = nil
	t.releaseSnapshot()
	t.mgr.locks.ReleaseAll(t.id)
	if o := t.mgr.obs(); o != nil {
		o.OnAbort(t.id)
	}
	return nil
}

// LogEntangle records that the given transactions participated in an
// entanglement operation — state the recovery algorithm needs for the §4
// group-rollback rule.
func (m *Manager) LogEntangle(opID uint64, txIDs []uint64) error {
	if m.log == nil {
		return nil
	}
	group := make([]wal.TxID, len(txIDs))
	for i, id := range txIDs {
		group[i] = wal.TxID(id)
	}
	return m.log.Append(wal.Entangle(wal.TxID(opID), group))
}

// CommitGroup atomically commits an entanglement group: one GroupCommit
// record covers all members, then each is finalized. All transactions must
// be active.
func (m *Manager) CommitGroup(txns []*Txn) error {
	return m.CommitUnits([][]*Txn{txns})
}

// CommitUnits commits several independent commit units — each a single
// transaction or a whole entanglement group — through one batched WAL
// append and at most one fsync (group commit across groups; the run
// scheduler retires every committable group of a run this way). Atomicity
// is per unit: a single-transaction unit emits one Commit record and a
// multi-transaction unit one GroupCommit record, each carrying the unit's
// CSN, so recovery after a crash mid-batch replays a prefix of whole
// units, never a partial group. Version stamping happens for all units
// before one clock publication, so snapshot readers see the entire batch
// appear atomically. All transactions must be active; on a WAL error no
// unit commits.
func (m *Manager) CommitUnits(units [][]*Txn) error {
	for _, unit := range units {
		for _, t := range unit {
			if t.state != Active {
				return fmt.Errorf("txn: group commit: transaction %d is %v", t.id, t.state)
			}
		}
	}
	m.commitMu.Lock()
	next := m.clock.Load()
	unitCSN := make([]uint64, len(units))
	for i, unit := range units {
		writes := false
		for _, t := range unit {
			if len(t.undo) > 0 {
				writes = true
				break
			}
		}
		if writes {
			next++
			unitCSN[i] = next
		}
	}
	if m.log != nil {
		recs := make([]*wal.Record, 0, len(units))
		for i, unit := range units {
			if len(unit) == 1 {
				recs = append(recs, wal.Commit(wal.TxID(unit[0].id), unitCSN[i]))
				continue
			}
			group := make([]wal.TxID, len(unit))
			for j, t := range unit {
				group[j] = wal.TxID(t.id)
			}
			recs = append(recs, wal.GroupCommit(group, unitCSN[i]))
		}
		if err := m.log.AppendBatch(recs); err != nil {
			m.commitMu.Unlock()
			return err
		}
	}
	for i, unit := range units {
		if unitCSN[i] == 0 {
			continue
		}
		for _, t := range unit {
			t.stamp(unitCSN[i])
		}
	}
	if next != m.clock.Load() {
		m.clock.Store(next)
	}
	m.commitMu.Unlock()
	for _, unit := range units {
		for _, t := range unit {
			t.finishCommitted()
		}
	}
	return nil
}
