// Package txn implements classical ACID transactions over the storage,
// lock, and wal substrates: Strict Two-Phase Locking with table-level read
// locks and row-level write locks (the regime §3.3.3 of the paper assumes:
// "Minnie's transaction would have held a read lock on the Airlines table
// until commit"), write-ahead logging with undo on abort, and group commit
// for entanglement groups.
//
// Isolation levels:
//
//   - Serializable: all locks held to commit (Strict 2PL).
//   - ReadCommitted: shared locks released at statement end; write locks
//     still held to commit. This is the §4 relaxation of "altering the
//     length of time locks are held".
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// IsolationLevel selects the locking discipline of a transaction.
type IsolationLevel int

// Supported isolation levels.
const (
	Serializable IsolationLevel = iota
	ReadCommitted
)

func (l IsolationLevel) String() string {
	switch l {
	case Serializable:
		return "SERIALIZABLE"
	case ReadCommitted:
		return "READ COMMITTED"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// State is the lifecycle state of a transaction.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// Errors returned by transaction operations.
var (
	ErrNotActive = errors.New("txn: transaction is not active")
)

// Observer receives operation notifications; the entangled-transaction
// layer uses it to record execution schedules for the isolation checker.
// Row is storage.RowID or -1 for a whole-table read. Implementations must
// be safe for concurrent use.
type Observer interface {
	OnRead(tx uint64, table string, row int64)
	OnWrite(tx uint64, table string, row int64)
	OnCommit(tx uint64)
	OnAbort(tx uint64)
}

// Manager creates and finalizes transactions.
type Manager struct {
	cat    *storage.Catalog
	locks  *lock.Manager
	log    *wal.Log // nil disables durability
	nextTx atomic.Uint64

	obsMu    sync.RWMutex
	observer Observer
}

// NewManager wires a transaction manager over a catalog, lock manager, and
// optional write-ahead log.
func NewManager(cat *storage.Catalog, locks *lock.Manager, log *wal.Log) *Manager {
	return &Manager{cat: cat, locks: locks, log: log}
}

// Catalog exposes the underlying catalog (read-mostly helpers, DDL).
func (m *Manager) Catalog() *storage.Catalog { return m.cat }

// Locks exposes the lock manager (the entangled layer takes quasi-read
// locks through it).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// SetObserver installs an operation observer (nil to clear).
func (m *Manager) SetObserver(o Observer) {
	m.obsMu.Lock()
	m.observer = o
	m.obsMu.Unlock()
}

func (m *Manager) obs() Observer {
	m.obsMu.RLock()
	defer m.obsMu.RUnlock()
	return m.observer
}

// CreateTable creates a table and logs the DDL for recovery.
func (m *Manager) CreateTable(name string, schema *types.Schema) (*storage.Table, error) {
	t, err := m.cat.Create(name, schema)
	if err != nil {
		return nil, err
	}
	if m.log != nil {
		if err := m.log.Append(wal.CreateTable(name, schema)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CreateIndex builds an equality index and logs the DDL for recovery.
func (m *Manager) CreateIndex(table, index string, columns []string) error {
	tbl, err := m.cat.Get(table)
	if err != nil {
		return err
	}
	if err := tbl.CreateIndex(index, columns...); err != nil {
		return err
	}
	if m.log != nil {
		return m.log.Append(wal.CreateIndex(tbl.Name(), index, columns))
	}
	return nil
}

// undoOp reverses one applied write during abort.
type undoOp struct {
	kind  wal.RecordType
	table *storage.Table
	rowID storage.RowID
	old   types.Tuple
}

// Txn is one classical transaction. A Txn is not safe for concurrent use by
// multiple goroutines (one connection = one transaction, as in the paper's
// MySQL setup).
type Txn struct {
	id    uint64
	mgr   *Manager
	level IsolationLevel
	state State
	undo  []undoOp

	// ReadTables accumulates the tables read under ReadCommitted so the
	// statement-end release can drop them.
	reads  int64
	writes int64
}

// Begin starts a transaction at the given isolation level.
func (m *Manager) Begin(level IsolationLevel) (*Txn, error) {
	id := m.nextTx.Add(1)
	t := &Txn{id: id, mgr: m, level: level}
	if m.log != nil {
		if err := m.log.Append(wal.Begin(wal.TxID(id))); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Level returns the isolation level.
func (t *Txn) Level() IsolationLevel { return t.level }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// Stats returns the number of read and write operations performed.
func (t *Txn) Stats() (reads, writes int64) { return t.reads, t.writes }

func (t *Txn) ensureActive() error {
	if t.state != Active {
		return ErrNotActive
	}
	return nil
}

// lockTableShared acquires a table-level S lock (the paper's read-lock
// granularity). Exposed for the entangled layer's quasi-read locks.
func (t *Txn) lockTableShared(table string) error {
	return t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.S)
}

// LockTableShared acquires a table-level shared lock on behalf of the
// transaction without reading — used by the entangled-transaction layer to
// enforce repeatable quasi-reads (§3.3.3).
func (t *Txn) LockTableShared(table string) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	return t.lockTableShared(table)
}

// statementEnd implements the ReadCommitted relaxation: shared locks are
// surrendered once the statement completes.
func (t *Txn) statementEnd() {
	if t.level == ReadCommitted {
		t.mgr.locks.ReleaseShared(t.id)
	}
}

// Scan returns every row of the table under a shared table lock.
func (t *Txn) Scan(table string) ([]types.Tuple, error) {
	if err := t.ensureActive(); err != nil {
		return nil, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return nil, err
	}
	if err := t.lockTableShared(table); err != nil {
		return nil, err
	}
	defer t.statementEnd()
	rows := tbl.All()
	t.reads++
	if o := t.mgr.obs(); o != nil {
		o.OnRead(t.id, tbl.Name(), int64(lock.AllRows))
	}
	return rows, nil
}

// ScanIDs returns every (RowID, row) pair under a shared table lock.
func (t *Txn) ScanIDs(table string) (ids []storage.RowID, rows []types.Tuple, err error) {
	if err := t.ensureActive(); err != nil {
		return nil, nil, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return nil, nil, err
	}
	if err := t.lockTableShared(table); err != nil {
		return nil, nil, err
	}
	defer t.statementEnd()
	tbl.Scan(func(id storage.RowID, row types.Tuple) bool {
		ids = append(ids, id)
		rows = append(rows, row.Clone())
		return true
	})
	t.reads++
	if o := t.mgr.obs(); o != nil {
		o.OnRead(t.id, tbl.Name(), int64(lock.AllRows))
	}
	return ids, rows, nil
}

// Lookup returns rows whose columns equal key. Like an InnoDB index read,
// it locks at row granularity: IS on the table plus S on each matching
// row, so point reads by different transactions on different rows do not
// force table-level upgrades. (Phantoms are possible against concurrent
// inserts; use Scan for a full-table read lock, which is what entangled
// grounding reads use.)
func (t *Txn) Lookup(table string, columns []string, key types.Tuple) ([]types.Tuple, error) {
	_, rows, err := t.LookupIDs(table, columns, key)
	return rows, err
}

// LookupIDs is Lookup returning row ids as well (for targeted updates and
// deletes).
func (t *Txn) LookupIDs(table string, columns []string, key types.Tuple) ([]storage.RowID, []types.Tuple, error) {
	if err := t.ensureActive(); err != nil {
		return nil, nil, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return nil, nil, err
	}
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IS); err != nil {
		return nil, nil, err
	}
	defer t.statementEnd()
	ids, err := tbl.Lookup(columns, key)
	if err != nil {
		return nil, nil, err
	}
	outIDs := make([]storage.RowID, 0, len(ids))
	out := make([]types.Tuple, 0, len(ids))
	for _, id := range ids {
		if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(id)}, lock.S); err != nil {
			return nil, nil, err
		}
		if row, ok := tbl.Get(id); ok {
			outIDs = append(outIDs, id)
			out = append(out, row)
		}
	}
	t.reads++
	if o := t.mgr.obs(); o != nil {
		o.OnRead(t.id, tbl.Name(), int64(lock.AllRows))
	}
	return outIDs, out, nil
}

// lockForWrite takes IX on the table and X on the row.
func (t *Txn) lockForWrite(table string, rowID storage.RowID) error {
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IX); err != nil {
		return err
	}
	return t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(rowID)}, lock.X)
}

// Insert adds a row, locking table IX first (which serializes against
// whole-table readers) and then the new row X.
func (t *Txn) Insert(table string, row types.Tuple) (storage.RowID, error) {
	if err := t.ensureActive(); err != nil {
		return storage.InvalidRowID, err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return storage.InvalidRowID, err
	}
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: lock.AllRows}, lock.IX); err != nil {
		return storage.InvalidRowID, err
	}
	id, err := tbl.Insert(row)
	if err != nil {
		return storage.InvalidRowID, err
	}
	if err := t.mgr.locks.Acquire(t.id, lock.TableRow{Table: table, Row: int64(id)}, lock.X); err != nil {
		return storage.InvalidRowID, err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Insert(wal.TxID(t.id), tbl.Name(), id, row)); err != nil {
			return storage.InvalidRowID, err
		}
	}
	t.undo = append(t.undo, undoOp{kind: wal.RecInsert, table: tbl, rowID: id})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return id, nil
}

// Update replaces the row at id.
func (t *Txn) Update(table string, id storage.RowID, row types.Tuple) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return err
	}
	if err := t.lockForWrite(table, id); err != nil {
		return err
	}
	old, err := tbl.Update(id, row)
	if err != nil {
		return err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Update(wal.TxID(t.id), tbl.Name(), id, old, row)); err != nil {
			return err
		}
	}
	t.undo = append(t.undo, undoOp{kind: wal.RecUpdate, table: tbl, rowID: id, old: old})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return nil
}

// Delete removes the row at id.
func (t *Txn) Delete(table string, id storage.RowID) error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	tbl, err := t.mgr.cat.Get(table)
	if err != nil {
		return err
	}
	if err := t.lockForWrite(table, id); err != nil {
		return err
	}
	old, err := tbl.Delete(id)
	if err != nil {
		return err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Delete(wal.TxID(t.id), tbl.Name(), id, old)); err != nil {
			return err
		}
	}
	t.undo = append(t.undo, undoOp{kind: wal.RecDelete, table: tbl, rowID: id, old: old})
	t.writes++
	if o := t.mgr.obs(); o != nil {
		o.OnWrite(t.id, tbl.Name(), int64(id))
	}
	return nil
}

// Commit makes the transaction's writes durable and releases its locks.
func (t *Txn) Commit() error {
	if err := t.ensureActive(); err != nil {
		return err
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Commit(wal.TxID(t.id))); err != nil {
			return err
		}
	}
	t.state = Committed
	t.undo = nil
	t.mgr.locks.ReleaseAll(t.id)
	if o := t.mgr.obs(); o != nil {
		o.OnCommit(t.id)
	}
	return nil
}

// Abort rolls back the transaction's writes (in reverse order) and releases
// its locks. Abort of a non-active transaction is a no-op.
func (t *Txn) Abort() error {
	if t.state != Active {
		return nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		switch u.kind {
		case wal.RecInsert:
			if _, err := u.table.Delete(u.rowID); err != nil {
				return fmt.Errorf("txn: undo insert: %w", err)
			}
		case wal.RecUpdate:
			if _, err := u.table.Update(u.rowID, u.old); err != nil {
				return fmt.Errorf("txn: undo update: %w", err)
			}
		case wal.RecDelete:
			if err := u.table.InsertAt(u.rowID, u.old); err != nil {
				return fmt.Errorf("txn: undo delete: %w", err)
			}
		}
	}
	if t.mgr.log != nil {
		if err := t.mgr.log.Append(wal.Abort(wal.TxID(t.id))); err != nil {
			return err
		}
	}
	t.state = Aborted
	t.undo = nil
	t.mgr.locks.ReleaseAll(t.id)
	if o := t.mgr.obs(); o != nil {
		o.OnAbort(t.id)
	}
	return nil
}

// LogEntangle records that the given transactions participated in an
// entanglement operation — state the recovery algorithm needs for the §4
// group-rollback rule.
func (m *Manager) LogEntangle(opID uint64, txIDs []uint64) error {
	if m.log == nil {
		return nil
	}
	group := make([]wal.TxID, len(txIDs))
	for i, id := range txIDs {
		group[i] = wal.TxID(id)
	}
	return m.log.Append(wal.Entangle(wal.TxID(opID), group))
}

// CommitGroup atomically commits an entanglement group: one GroupCommit
// record covers all members, then each is finalized. All transactions must
// be active.
func (m *Manager) CommitGroup(txns []*Txn) error {
	return m.CommitUnits([][]*Txn{txns})
}

// CommitUnits commits several independent commit units — each a single
// transaction or a whole entanglement group — through one batched WAL
// append and at most one fsync (group commit across groups; the run
// scheduler retires every committable group of a run this way). Atomicity
// is per unit: a single-transaction unit emits one Commit record and a
// multi-transaction unit one GroupCommit record, so recovery after a crash
// mid-batch replays a prefix of whole units, never a partial group. All
// transactions must be active; on a WAL error no unit commits.
func (m *Manager) CommitUnits(units [][]*Txn) error {
	for _, unit := range units {
		for _, t := range unit {
			if t.state != Active {
				return fmt.Errorf("txn: group commit: transaction %d is %v", t.id, t.state)
			}
		}
	}
	if m.log != nil {
		recs := make([]*wal.Record, 0, len(units))
		for _, unit := range units {
			if len(unit) == 1 {
				recs = append(recs, wal.Commit(wal.TxID(unit[0].id)))
				continue
			}
			group := make([]wal.TxID, len(unit))
			for i, t := range unit {
				group[i] = wal.TxID(t.id)
			}
			recs = append(recs, wal.GroupCommit(group))
		}
		if err := m.log.AppendBatch(recs); err != nil {
			return err
		}
	}
	o := m.obs()
	for _, unit := range units {
		for _, t := range unit {
			t.state = Committed
			t.undo = nil
			m.locks.ReleaseAll(t.id)
			if o != nil {
				o.OnCommit(t.id)
			}
		}
	}
	return nil
}
