package txn

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Commit sequence numbers and snapshot bookkeeping. The manager owns the
// commit clock: every commit that wrote anything allocates the next CSN
// under commitMu, stamps its versions, logs the CSN, and only then
// publishes the clock — so a snapshot acquired at any moment sees whole
// commits or nothing (commits are atomic to readers without any read
// locks). Active snapshots are registered so the version GC watermark —
// the oldest CSN any live reader can still demand — is always known.

// snapshotTable tracks the active snapshots for watermark computation.
type snapshotTable struct {
	mu     sync.Mutex
	active map[uint64]uint64 // handle -> snapshot CSN
	nextID uint64
}

func newSnapshotTable() *snapshotTable {
	return &snapshotTable{active: make(map[uint64]uint64)}
}

// register pins a snapshot at the CURRENT clock value, reading the clock
// inside the table mutex. Watermark computation reads the clock under the
// same mutex, so a registration and a watermark read are totally ordered:
// either the watermark sees the new entry, or the registrant sees a clock
// at least as new as the one the watermark used — a vacuum can never
// prune versions a just-created snapshot still needs.
func (st *snapshotTable) register(clock *atomic.Uint64) (handle, csn uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	csn = clock.Load()
	st.nextID++
	st.active[st.nextID] = csn
	return st.nextID, csn
}

func (st *snapshotTable) update(handle, csn uint64) {
	st.mu.Lock()
	if _, ok := st.active[handle]; ok {
		st.active[handle] = csn
	}
	st.mu.Unlock()
}

func (st *snapshotTable) release(handle uint64) {
	st.mu.Lock()
	delete(st.active, handle)
	st.mu.Unlock()
}

// oldest returns the minimum active snapshot CSN, defaulting to the
// current clock when none is active. The clock is read under the mutex —
// see register.
func (st *snapshotTable) oldest(clock *atomic.Uint64) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	min := clock.Load()
	for _, csn := range st.active {
		if csn < min {
			min = csn
		}
	}
	return min
}

// CSN returns the newest published commit sequence number — the point in
// time a fresh snapshot observes.
func (m *Manager) CSN() uint64 { return m.clock.Load() }

// SeedClock initializes the commit clock after recovery so new commits
// allocate CSNs past everything already in the log. It must be called
// before any transaction begins.
func (m *Manager) SeedClock(csn uint64) { m.clock.Store(csn) }

// Snapshot is a released-on-close consistent view of the database, used by
// observers that are not transactions (entangled-query grounding rounds,
// read-only analytics). Reads through it take no locks.
type Snapshot struct {
	View   storage.Snapshot
	m      *Manager
	handle uint64
}

// AcquireSnapshot pins a consistent snapshot of the current committed
// state. The caller must Release it so the GC watermark can advance.
func (m *Manager) AcquireSnapshot() *Snapshot {
	handle, csn := m.snaps.register(&m.clock)
	return &Snapshot{View: storage.Snapshot{CSN: csn}, m: m, handle: handle}
}

// Release unpins the snapshot. Safe to call more than once.
func (s *Snapshot) Release() {
	if s.m != nil {
		s.m.snaps.release(s.handle)
		s.m = nil
	}
}

// Watermark returns the version-GC watermark: the oldest CSN any active
// snapshot (transactional or pinned) can still read. Versions strictly
// older than the boundary below this are unreachable.
func (m *Manager) Watermark() uint64 {
	return m.snaps.oldest(&m.clock)
}

// Vacuum prunes unreachable versions from every table using the current
// watermark and returns the number of versions removed.
func (m *Manager) Vacuum() int {
	wm := m.Watermark()
	pruned := 0
	for _, name := range m.cat.Names() {
		tbl, err := m.cat.Get(name)
		if err != nil {
			continue
		}
		pruned += tbl.GC(wm)
	}
	return pruned
}
