package txn

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/types"
)

// Regression coverage for the ReadCommitted statement-end release: shared
// locks must actually be gone from the lock manager once a read statement
// completes, nothing may accumulate across statements, and write locks
// must survive the release untouched.

func TestReadCommittedScanReleasesAllSharedLocks(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	seed, _ := m.Begin(Serializable)
	seed.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	seed.Commit()

	tx, _ := m.Begin(ReadCommitted)
	if _, err := tx.Scan("User"); err != nil {
		t.Fatal(err)
	}
	if n := m.Locks().HeldCount(tx.ID()); n != 0 {
		t.Fatalf("S locks leak after statement end: HeldCount = %d", n)
	}
	if m.Locks().Holds(tx.ID(), lock.TableRow{Table: "User", Row: lock.AllRows}, lock.S) {
		t.Fatal("table S lock survives statementEnd")
	}
	tx.Commit()
}

func TestReadCommittedLookupReleasesRowLocks(t *testing.T) {
	m, _ := newTestManager(t, false)
	tbl, _ := m.CreateTable("User", userSchema())
	tbl.CreateIndex("by_town", "hometown")
	seed, _ := m.Begin(Serializable)
	seed.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	seed.Insert("User", types.Tuple{types.Int(2), types.Str("SFO")})
	seed.Commit()

	tx, _ := m.Begin(ReadCommitted)
	ids, _, err := tx.LookupIDs("User", []string{"hometown"}, types.Tuple{types.Str("SFO")})
	if err != nil || len(ids) != 2 {
		t.Fatalf("lookup = %v, %v", ids, err)
	}
	// IS table lock and both row S locks must all be released.
	if n := m.Locks().HeldCount(tx.ID()); n != 0 {
		t.Fatalf("lookup locks leak after statement end: HeldCount = %d", n)
	}
	tx.Commit()
}

func TestReadCommittedNoLeakAcrossStatements(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("A", userSchema())
	m.CreateTable("B", userSchema())
	tx, _ := m.Begin(ReadCommitted)
	for i := 0; i < 5; i++ {
		if _, err := tx.Scan("A"); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Scan("B"); err != nil {
			t.Fatal(err)
		}
		if n := m.Locks().HeldCount(tx.ID()); n != 0 {
			t.Fatalf("statement %d leaked %d lock entries", i, n)
		}
	}
	tx.Commit()
}

func TestReadCommittedKeepsWriteLocksToCommit(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	seed, _ := m.Begin(Serializable)
	id, _ := seed.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	seed.Commit()

	tx, _ := m.Begin(ReadCommitted)
	if err := tx.Update("User", id, types.Tuple{types.Int(1), types.Str("NYC")}); err != nil {
		t.Fatal(err)
	}
	// A read statement's release must not surrender the write locks.
	if _, err := tx.Scan("User"); err != nil {
		t.Fatal(err)
	}
	if !m.Locks().Holds(tx.ID(), lock.TableRow{Table: "User", Row: int64(id)}, lock.X) {
		t.Fatal("row X lock lost at statement end under ReadCommitted")
	}
	if !m.Locks().Holds(tx.ID(), lock.TableRow{Table: "User", Row: lock.AllRows}, lock.IX) {
		t.Fatal("table IX lock lost at statement end under ReadCommitted")
	}
	tx.Commit()
	if n := m.Locks().HeldCount(tx.ID()); n != 0 {
		t.Fatalf("locks leak after commit: HeldCount = %d", n)
	}
}
