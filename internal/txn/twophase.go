package txn

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Two-phase distributed group commit, participant and coordinator halves.
//
// A participant's writes are already in the log (records are appended at
// operation time), so preparing needs exactly one flushed record: the
// prepare mark that makes the transaction in-doubt at recovery instead of
// a loser. The transaction stays Active — locks held, versions uncommitted
// — until the group coordinator's decision arrives; commit then goes
// through the ordinary CommitUnits path, abort through Abort.

// Prepare parks t as an in-doubt participant of the distributed group: one
// flushed prepare record, no state transition. The caller must hold the
// transaction through to the decision.
func (m *Manager) Prepare(t *Txn, group uint64) error {
	if t.state != Active {
		return fmt.Errorf("txn: prepare: transaction %d is %v", t.id, t.state)
	}
	if m.log == nil {
		return nil
	}
	return m.log.Append(wal.Prepare(wal.TxID(t.id), group))
}

// LogDecision durably records the coordinator's verdict for a distributed
// group. It MUST return before the decision fans out to any participant:
// the log is what makes the decision survive a coordinator crash, and
// recovery hands it back through RecoveryStats.Decisions.
func (m *Manager) LogDecision(group uint64, commit bool) error {
	if m.log == nil {
		return nil
	}
	if commit {
		return m.log.Append(wal.DecideCommit(group))
	}
	return m.log.Append(wal.DecideAbort(group))
}

// CommitRecovered applies a commit decision to an in-doubt transaction
// after restart. Recovery withheld the transaction's effects; they are
// redone here at a fresh CSN, with the commit record logged first and the
// clock published last — the same order the live commit path uses. The
// records must be the transaction's data records in log order
// (RecoveryStats.InDoubtRecords).
func (m *Manager) CommitRecovered(tx wal.TxID, recs []*wal.Record) error {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	csn := m.clock.Load() + 1
	if m.log != nil {
		if err := m.log.Append(wal.Commit(tx, csn)); err != nil {
			return err
		}
	}
	for _, r := range recs {
		tbl, err := m.cat.Get(r.Table)
		if err != nil {
			return fmt.Errorf("txn: commit recovered: %w", err)
		}
		switch r.Type {
		case wal.RecInsert:
			if err := tbl.InsertAtCSN(storage.RowID(r.RowID), r.Row, csn); err != nil {
				return fmt.Errorf("txn: commit recovered: %w", err)
			}
		case wal.RecDelete:
			if _, err := tbl.DeleteCSN(storage.RowID(r.RowID), csn); err != nil {
				return fmt.Errorf("txn: commit recovered: %w", err)
			}
		case wal.RecUpdate:
			if _, err := tbl.UpdateCSN(storage.RowID(r.RowID), r.Row, csn); err != nil {
				return fmt.Errorf("txn: commit recovered: %w", err)
			}
		}
	}
	m.clock.Store(csn)
	return nil
}

// AbortRecovered resolves an in-doubt transaction to abort: the abort
// record ends the in-doubt state (the effects were never applied, so
// there is nothing to undo).
func (m *Manager) AbortRecovered(tx wal.TxID) error {
	if m.log == nil {
		return nil
	}
	return m.log.Append(wal.Abort(tx))
}

// SeedTx advances the transaction-id counter past ids recovered from the
// log, so a restarted process can never mint a transaction id that
// collides with an in-doubt (or any logged) predecessor.
func (m *Manager) SeedTx(max wal.TxID) {
	for {
		cur := m.nextTx.Load()
		if uint64(max) <= cur || m.nextTx.CompareAndSwap(cur, uint64(max)) {
			return
		}
	}
}
