package txn

import (
	"errors"
	"testing"
	"time"

	"repro/internal/types"
)

func TestSnapshotReaderDoesNotBlockOrSeeWriter(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	seed, _ := m.Begin(Serializable)
	seed.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	seed.Commit()

	reader, _ := m.Begin(SnapshotIsolation)
	rows, err := reader.Scan("User")
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, err = %v", rows, err)
	}
	// A concurrent writer proceeds immediately: the snapshot reader holds no
	// locks at all.
	writer, _ := m.Begin(Serializable)
	if _, err := writer.Insert("User", types.Tuple{types.Int(2), types.Str("NYC")}); err != nil {
		t.Fatalf("writer blocked by snapshot reader: %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// The reader's view is repeatable: the committed insert is invisible.
	rows, err = reader.Scan("User")
	if err != nil || len(rows) != 1 {
		t.Fatalf("non-repeatable snapshot read: rows = %v, err = %v", rows, err)
	}
	if n := m.Locks().HeldCount(reader.ID()); n != 0 {
		t.Errorf("snapshot reader holds %d locks, want 0", n)
	}
	reader.Commit()
	// A fresh snapshot sees both rows.
	after, _ := m.Begin(SnapshotIsolation)
	if rows, _ := after.Scan("User"); len(rows) != 2 {
		t.Errorf("fresh snapshot sees %d rows, want 2", len(rows))
	}
	after.Commit()
}

func TestSnapshotNeverSeesUncommittedData(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	writer, _ := m.Begin(Serializable)
	if _, err := writer.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")}); err != nil {
		t.Fatal(err)
	}
	reader, _ := m.Begin(SnapshotIsolation)
	if rows, _ := reader.Scan("User"); len(rows) != 0 {
		t.Fatalf("dirty read: snapshot sees uncommitted rows %v", rows)
	}
	writer.Abort()
	if rows, _ := reader.Scan("User"); len(rows) != 0 {
		t.Fatalf("read from aborted: %v", rows)
	}
	reader.Commit()
}

func TestSnapshotReadsOwnWrites(t *testing.T) {
	m, _ := newTestManager(t, false)
	tbl, _ := m.CreateTable("User", userSchema())
	tbl.CreateIndex("by_town", "hometown")
	tx, _ := m.Begin(SnapshotIsolation)
	if _, err := tx.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")}); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Scan("User")
	if err != nil || len(rows) != 1 {
		t.Fatalf("own write invisible: %v, %v", rows, err)
	}
	rows, err = tx.Lookup("User", []string{"hometown"}, types.Tuple{types.Str("SFO")})
	if err != nil || len(rows) != 1 {
		t.Fatalf("own write invisible to indexed lookup: %v, %v", rows, err)
	}
	tx.Commit()
}

func TestFirstCommitterWins(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("Counter", types.NewSchema(types.Column{Name: "n", Type: types.KindInt}))
	seed, _ := m.Begin(Serializable)
	id, _ := seed.Insert("Counter", types.Tuple{types.Int(0)})
	seed.Commit()

	a, _ := m.Begin(SnapshotIsolation)
	b, _ := m.Begin(SnapshotIsolation)
	// Both read 0 from their snapshots.
	if rows, _ := a.Scan("Counter"); rows[0][0].Int64() != 0 {
		t.Fatal("bad read")
	}
	if rows, _ := b.Scan("Counter"); rows[0][0].Int64() != 0 {
		t.Fatal("bad read")
	}
	// First committer wins...
	if err := a.Update("Counter", id, types.Tuple{types.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// ...second writer to the same row loses with ErrWriteConflict.
	err := b.Update("Counter", id, types.Tuple{types.Int(1)})
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	b.Abort()
	check, _ := m.Begin(SnapshotIsolation)
	if rows, _ := check.Scan("Counter"); rows[0][0].Int64() != 1 {
		t.Errorf("counter = %v, want 1 (lost update)", rows[0][0])
	}
	check.Commit()
}

func TestWriteConflictAgainstCommittedDelete(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	seed, _ := m.Begin(Serializable)
	id, _ := seed.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	seed.Commit()

	old, _ := m.Begin(SnapshotIsolation)
	old.Scan("User")
	deleter, _ := m.Begin(Serializable)
	if err := deleter.Delete("User", id); err != nil {
		t.Fatal(err)
	}
	deleter.Commit()
	if err := old.Update("User", id, types.Tuple{types.Int(1), types.Str("NYC")}); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("update over committed delete: err = %v, want ErrWriteConflict", err)
	}
	old.Abort()
}

func TestVacuumWatermarkRespectsActiveSnapshots(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	seed, _ := m.Begin(Serializable)
	id, _ := seed.Insert("User", types.Tuple{types.Int(1), types.Str("v0")})
	seed.Commit()

	pinned, _ := m.Begin(SnapshotIsolation) // holds the watermark down
	for i := 1; i <= 3; i++ {
		w, _ := m.Begin(Serializable)
		w.Update("User", id, types.Tuple{types.Int(1), types.Str("v" + string(rune('0'+i)))})
		w.Commit()
	}
	tbl, _ := m.Catalog().Get("User")
	if got := tbl.VersionCount(); got != 4 {
		t.Fatalf("VersionCount = %d, want 4", got)
	}
	if wm := m.Watermark(); wm != pinned.SnapshotView().CSN {
		t.Fatalf("watermark = %d, want pinned snapshot %d", wm, pinned.SnapshotView().CSN)
	}
	m.Vacuum()
	// The pinned snapshot's boundary version plus everything newer stays.
	if rows, _ := pinned.Scan("User"); len(rows) != 1 || rows[0][1].Str64() != "v0" {
		t.Fatalf("pinned snapshot corrupted by vacuum: %v", rows)
	}
	pinned.Commit()
	// With the snapshot gone the watermark advances and history collapses.
	if pruned := m.Vacuum(); pruned == 0 {
		t.Error("vacuum after release pruned nothing")
	}
	if got := tbl.VersionCount(); got != 1 {
		t.Errorf("VersionCount after vacuum = %d, want 1", got)
	}
}

func TestManagerSnapshotPinsView(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	w1, _ := m.Begin(Serializable)
	w1.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	w1.Commit()

	snap := m.AcquireSnapshot()
	defer snap.Release()
	w2, _ := m.Begin(Serializable)
	w2.Insert("User", types.Tuple{types.Int(2), types.Str("NYC")})
	w2.Commit()

	tbl, _ := m.Catalog().Get("User")
	if got := len(tbl.AllAsOf(snap.View)); got != 1 {
		t.Errorf("pinned snapshot sees %d rows, want 1", got)
	}
	if wm := m.Watermark(); wm != snap.View.CSN {
		t.Errorf("watermark = %d, want %d", wm, snap.View.CSN)
	}
	snap.Release()
	if wm := m.Watermark(); wm != m.CSN() {
		t.Errorf("watermark after release = %d, want clock %d", wm, m.CSN())
	}
}

func TestSnapshotCommitPublishesAtomically(t *testing.T) {
	// A writer commits three rows in one transaction; concurrent snapshot
	// readers must observe either none or all of them.
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w, _ := m.Begin(SnapshotIsolation)
		for i := int64(1); i <= 3; i++ {
			w.Insert("User", types.Tuple{types.Int(i), types.Str("SFO")})
		}
		w.Commit()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, _ := m.Begin(SnapshotIsolation)
		rows, _ := r.Scan("User")
		r.Commit()
		if n := len(rows); n != 0 && n != 3 {
			t.Fatalf("torn commit visible: %d rows", n)
		}
		if len(rows) == 3 || time.Now().After(deadline) {
			break
		}
	}
	<-done
}
