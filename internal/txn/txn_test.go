package txn

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

func newTestManager(t *testing.T, withLog bool) (*Manager, string) {
	t.Helper()
	cat := storage.NewCatalog()
	locks := lock.New(0)
	var log *wal.Log
	var path string
	if withLog {
		path = filepath.Join(t.TempDir(), "wal.log")
		var err error
		log, err = wal.Open(path, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
	}
	return NewManager(cat, locks, log), path
}

func userSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "uid", Type: types.KindInt},
		types.Column{Name: "hometown", Type: types.KindString},
	)
}

func TestCommitPersistsWrites(t *testing.T) {
	m, _ := newTestManager(t, false)
	if _, err := m.CreateTable("User", userSchema()); err != nil {
		t.Fatal(err)
	}
	tx, err := m.Begin(Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Errorf("state = %v", tx.State())
	}
	tx2, _ := m.Begin(Serializable)
	rows, err := tx2.Scan("User")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Str64() != "SFO" {
		t.Errorf("rows = %v", rows)
	}
	tx2.Commit()
}

func TestAbortUndoesAllWriteKinds(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	setup, _ := m.Begin(Serializable)
	id, _ := setup.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	id2, _ := setup.Insert("User", types.Tuple{types.Int(2), types.Str("NYC")})
	setup.Commit()

	tx, _ := m.Begin(Serializable)
	if _, err := tx.Insert("User", types.Tuple{types.Int(3), types.Str("LAX")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("User", id, types.Tuple{types.Int(1), types.Str("OAK")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("User", id2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	check, _ := m.Begin(Serializable)
	rows, _ := check.Scan("User")
	if len(rows) != 2 {
		t.Fatalf("rows after abort = %v", rows)
	}
	if rows[0][1].Str64() != "SFO" || rows[1][1].Str64() != "NYC" {
		t.Errorf("rows not restored: %v", rows)
	}
	check.Commit()
}

func TestOpsAfterCommitRejected(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	tx, _ := m.Begin(Serializable)
	tx.Commit()
	if _, err := tx.Insert("User", types.Tuple{types.Int(1), types.Str("x")}); !errors.Is(err, ErrNotActive) {
		t.Errorf("err = %v", err)
	}
	if _, err := tx.Scan("User"); !errors.Is(err, ErrNotActive) {
		t.Errorf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("double commit err = %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Errorf("abort after commit should be a no-op, got %v", err)
	}
}

func TestSerializableReaderBlocksWriter(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	reader, _ := m.Begin(Serializable)
	if _, err := reader.Scan("User"); err != nil {
		t.Fatal(err)
	}
	writer, _ := m.Begin(Serializable)
	done := make(chan error, 1)
	go func() {
		_, err := writer.Insert("User", types.Tuple{types.Int(1), types.Str("x")})
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("writer proceeded against serializable reader's table lock")
	case <-time.After(20 * time.Millisecond):
	}
	reader.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	writer.Commit()
}

func TestReadCommittedReleasesReadLocks(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	reader, _ := m.Begin(ReadCommitted)
	if _, err := reader.Scan("User"); err != nil {
		t.Fatal(err)
	}
	// Under ReadCommitted the shared lock is gone at statement end, so a
	// writer proceeds immediately.
	writer, _ := m.Begin(Serializable)
	if _, err := writer.Insert("User", types.Tuple{types.Int(1), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	writer.Commit()
	// The reader can observe the new row on a second read — an unrepeatable
	// read, permitted at this level.
	rows, err := reader.Scan("User")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("unrepeatable read not observed: %v", rows)
	}
	reader.Commit()
}

func TestLookup(t *testing.T) {
	m, _ := newTestManager(t, false)
	tbl, _ := m.CreateTable("User", userSchema())
	tbl.CreateIndex("by_town", "hometown")
	setup, _ := m.Begin(Serializable)
	setup.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	setup.Insert("User", types.Tuple{types.Int(2), types.Str("SFO")})
	setup.Insert("User", types.Tuple{types.Int(3), types.Str("NYC")})
	setup.Commit()
	tx, _ := m.Begin(Serializable)
	rows, err := tx.Lookup("User", []string{"hometown"}, types.Tuple{types.Str("SFO")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	tx.Commit()
}

func TestWalRecoveryAfterCrash(t *testing.T) {
	m, path := newTestManager(t, true)
	m.CreateTable("User", userSchema())
	tx, _ := m.Begin(Serializable)
	tx.Insert("User", types.Tuple{types.Int(1), types.Str("SFO")})
	tx.Commit()
	// In-flight transaction at "crash": writes applied but not committed.
	loser, _ := m.Begin(Serializable)
	loser.Insert("User", types.Tuple{types.Int(2), types.Str("NYC")})
	// Crash: recover from the log into a fresh catalog.
	fresh := storage.NewCatalog()
	stats, err := wal.RecoverAll(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := fresh.Get("User")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1 (stats %+v)", tbl.Len(), stats)
	}
}

func TestGroupCommitAtomicInLog(t *testing.T) {
	m, path := newTestManager(t, true)
	m.CreateTable("User", userSchema())
	a, _ := m.Begin(Serializable)
	b, _ := m.Begin(Serializable)
	a.Insert("User", types.Tuple{types.Int(1), types.Str("A")})
	b.Insert("User", types.Tuple{types.Int(2), types.Str("B")})
	if err := m.LogEntangle(99, []uint64{a.ID(), b.ID()}); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitGroup([]*Txn{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.State() != Committed || b.State() != Committed {
		t.Error("group members not committed")
	}
	fresh := storage.NewCatalog()
	if _, err := wal.RecoverAll(path, fresh); err != nil {
		t.Fatal(err)
	}
	tbl, _ := fresh.Get("User")
	if tbl.Len() != 2 {
		t.Errorf("recovered %d rows, want 2", tbl.Len())
	}
}

func TestCommitGroupRejectsFinishedMember(t *testing.T) {
	m, _ := newTestManager(t, false)
	a, _ := m.Begin(Serializable)
	b, _ := m.Begin(Serializable)
	b.Abort()
	if err := m.CommitGroup([]*Txn{a, b}); err == nil {
		t.Fatal("group commit with aborted member accepted")
	}
	a.Abort()
}

func TestDeadlockVictimCanAbortAndRetry(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("A", userSchema())
	m.CreateTable("B", userSchema())
	t1, _ := m.Begin(Serializable)
	t2, _ := m.Begin(Serializable)
	if _, err := t1.Insert("A", types.Tuple{types.Int(1), types.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Insert("B", types.Tuple{types.Int(2), types.Str("y")}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var t1Err error
	go func() {
		defer wg.Done()
		_, t1Err = t1.Scan("B") // waits on t2's IX
	}()
	time.Sleep(20 * time.Millisecond)
	_, err := t2.Scan("A") // closes the cycle; t2 is the victim
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t1Err != nil {
		t.Fatalf("survivor errored: %v", t1Err)
	}
	t1.Commit()
	// Victim retries and succeeds.
	t3, _ := m.Begin(Serializable)
	if _, err := t3.Scan("A"); err != nil {
		t.Fatal(err)
	}
	t3.Commit()
}

func TestObserverSeesOps(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("User", userSchema())
	rec := &recordingObserver{}
	m.SetObserver(rec)
	tx, _ := m.Begin(Serializable)
	tx.Scan("User")
	tx.Insert("User", types.Tuple{types.Int(1), types.Str("x")})
	tx.Commit()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.reads != 1 || rec.writes != 1 || rec.commits != 1 {
		t.Errorf("observer = %+v", rec)
	}
}

type recordingObserver struct {
	mu      sync.Mutex
	reads   int
	writes  int
	commits int
	aborts  int
}

func (r *recordingObserver) OnRead(uint64, string, int64) {
	r.mu.Lock()
	r.reads++
	r.mu.Unlock()
}
func (r *recordingObserver) OnWrite(uint64, string, int64) {
	r.mu.Lock()
	r.writes++
	r.mu.Unlock()
}
func (r *recordingObserver) OnCommit(uint64) {
	r.mu.Lock()
	r.commits++
	r.mu.Unlock()
}
func (r *recordingObserver) OnAbort(uint64) {
	r.mu.Lock()
	r.aborts++
	r.mu.Unlock()
}

func TestLockTableShared(t *testing.T) {
	m, _ := newTestManager(t, false)
	m.CreateTable("Airlines", userSchema())
	tx, _ := m.Begin(Serializable)
	if err := tx.LockTableShared("Airlines"); err != nil {
		t.Fatal(err)
	}
	// A writer must now block until tx finishes — this is exactly how
	// quasi-read repeatability is enforced for entanglement partners.
	w, _ := m.Begin(Serializable)
	done := make(chan error, 1)
	go func() {
		_, err := w.Insert("Airlines", types.Tuple{types.Int(125), types.Str("United")})
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("write proceeded against quasi-read lock")
	case <-time.After(20 * time.Millisecond):
	}
	tx.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	w.Commit()
}

func TestConcurrentIncrementsSerialize(t *testing.T) {
	// Classic lost-update check: concurrent read-modify-write transactions
	// must serialize under Strict 2PL; retry deadlock victims.
	m, _ := newTestManager(t, false)
	m.CreateTable("Counter", types.NewSchema(types.Column{Name: "n", Type: types.KindInt}))
	init, _ := m.Begin(Serializable)
	id, _ := init.Insert("Counter", types.Tuple{types.Int(0)})
	init.Commit()

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx, _ := m.Begin(Serializable)
					rows, err := tx.Scan("Counter")
					if err != nil {
						tx.Abort()
						continue
					}
					n := rows[0][0].Int64()
					if err := tx.Update("Counter", id, types.Tuple{types.Int(n + 1)}); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					}
					tx.Abort()
				}
			}
		}()
	}
	wg.Wait()
	check, _ := m.Begin(Serializable)
	rows, _ := check.Scan("Counter")
	if got := rows[0][0].Int64(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
	check.Commit()
}
