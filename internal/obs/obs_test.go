package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestHistogramQuantileProperty: for random sample sets, the histogram's
// quantile estimate must land within the bucket containing the exact
// order statistic — i.e. within one bucket ratio (×2^(1/4)) plus bound
// rounding of the true percentile.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		h := newHistogram()
		n := 1 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			// Log-uniform over the bucket range, plus occasional extremes.
			switch rng.Intn(20) {
			case 0:
				samples[i] = rng.Int63n(1000) // underflow region (<1µs)
			case 1:
				samples[i] = int64(time.Hour) + rng.Int63n(int64(time.Hour))
			default:
				exp := 10 + rng.Float64()*18 // 2^10ns .. 2^28ns
				samples[i] = int64(float64(uint64(1)<<10) * pow2(exp-10))
			}
			h.Observe(time.Duration(samples[i]))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			// Nearest-rank order statistic, mirroring Quantile's definition.
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			exact := samples[rank-1]
			got := int64(h.Quantile(q))
			lo, hi := bucketRange(exact)
			if got < lo || got > hi {
				t.Fatalf("trial %d q=%v: estimate %d outside bucket [%d,%d] of exact %d (n=%d)",
					trial, q, got, lo, hi, exact, n)
			}
		}
	}
}

func pow2(x float64) float64 {
	out := 1.0
	for x >= 1 {
		out *= 2
		x--
	}
	if x > 0 {
		out *= 1 + x*0.693147 + x*x*0.240227 // e^(x ln2) ≈ enough for a test distribution
	}
	return out
}

// bucketRange returns the [lower, upper] bounds of the bucket holding ns.
func bucketRange(ns int64) (int64, int64) {
	i := bucketIndex(ns)
	switch {
	case i == 0:
		return 0, bucketBounds[0]
	case i >= len(bucketBounds):
		return bucketBounds[len(bucketBounds)-1], 1 << 62
	default:
		return bucketBounds[i-1], bucketBounds[i]
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h2 := newHistogram()
	if h2.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestDisabledRegistryZeroAlloc pins the disabled fast path: every
// instrument handed out by a nil registry must be inert and
// allocation-free.
func TestDisabledRegistryZeroAlloc(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	h := reg.Histogram("y")
	var tr *Tracer
	now := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		c.SetMax(9)
		h.Observe(time.Millisecond)
		tr.Span(7, 7, "ground", now, time.Millisecond, "")
		tr.Begin(7, now)
		tr.Finish(7, now)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v allocs/op, want 0", allocs)
	}
	if c.Load() != 0 {
		t.Fatal("nil counter must stay 0")
	}
}

// TestEnabledObserveZeroAlloc: even enabled, counter adds and histogram
// observes are allocation-free (the hot path never builds garbage).
func TestEnabledObserveZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	h := reg.Histogram("lat")
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		h.Observe(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled observe allocated %v allocs/op, want 0", allocs)
	}
}

func TestCounterSetMax(t *testing.T) {
	var c Counter
	c.SetMax(5)
	c.SetMax(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("SetMax: got %d want 5", got)
	}
	c.SetMax(8)
	if got := c.Load(); got != 8 {
		t.Fatalf("SetMax: got %d want 8", got)
	}
}

func TestRegistrySnapshotAndGauge(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("commits").Add(3)
	ext := int64(41)
	reg.Gauge("rows_streamed", func() int64 { return ext })
	reg.Histogram("answer").Observe(2 * time.Millisecond)
	s := reg.Snapshot()
	if s.Counters["commits"] != 3 || s.Counters["rows_streamed"] != 41 {
		t.Fatalf("snapshot counters wrong: %+v", s.Counters)
	}
	hs, ok := s.Histograms["answer"]
	if !ok || hs.Count != 1 || hs.P50MS <= 0 {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	// Same name twice returns the same counter.
	if reg.Counter("commits") != reg.Counter("commits") {
		t.Fatal("Counter must be idempotent per name")
	}
	names := reg.Names()
	want := []string{"answer"} // histograms are not in Names
	_ = want
	if len(names) != 2 || names[0] != "commits" || names[1] != "rows_streamed" {
		t.Fatalf("Names: %v", names)
	}
}

func TestTracerMergeAndActors(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	base := time.Now()
	tr.Begin(10, base)
	tr.Begin(20, base.Add(time.Millisecond))
	tr.Span(10, 10, "submit", base, time.Millisecond, "")
	tr.Span(20, 20, "submit", base.Add(time.Millisecond), time.Millisecond, "")

	canon := tr.Merge([]uint64{20, 10})
	if canon != 10 {
		t.Fatalf("canonical id: got %d want 10 (min)", canon)
	}
	// Spans recorded against the merged-away id land on the canonical.
	tr.Span(20, 20, "ground", base.Add(2*time.Millisecond), time.Millisecond, "round=1")
	tr.Span(10, 10, "commit", base.Add(3*time.Millisecond), time.Millisecond, "")
	if got := tr.Canonical(20); got != 10 {
		t.Fatalf("Canonical(20)=%d want 10", got)
	}

	// A merged trace finishes on the LAST member's Finish: the first one
	// (via the alias) leaves it live so the partner's remaining spans can
	// still land.
	tr.Finish(20, base.Add(4*time.Millisecond))
	if len(tr.Recent()) != 0 {
		t.Fatal("trace rang after one of two member finishes")
	}
	tr.Span(10, 10, "answer", base.Add(4*time.Millisecond), time.Millisecond, "")
	tr.Finish(10, base.Add(5*time.Millisecond))
	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent: %d traces, want 1", len(recent))
	}
	trace := recent[0]
	if trace.ID != 10 || len(trace.Aliases) != 1 || trace.Aliases[0] != 20 {
		t.Fatalf("merged trace wrong: id=%d aliases=%v", trace.ID, trace.Aliases)
	}
	actors := map[uint64]int{}
	for _, s := range trace.Spans {
		actors[s.Actor]++
	}
	if actors[10] != 3 || actors[20] != 2 {
		t.Fatalf("span actors wrong: %v (spans %+v)", actors, trace.Spans)
	}
	// Get resolves both ids to the same finished trace.
	if got, ok := tr.Get(20); !ok || got.ID != 10 {
		t.Fatalf("Get(20): ok=%v id=%d", ok, got.ID)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 4})
	base := time.Now()
	for i := uint64(1); i <= 10; i++ {
		tr.Span(i, i, "exec", base, time.Microsecond, "")
		tr.Finish(i, base.Add(time.Millisecond))
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring: %d traces, want 4", len(recent))
	}
	if recent[0].ID != 10 || recent[3].ID != 7 {
		t.Fatalf("ring order wrong: first=%d last=%d", recent[0].ID, recent[3].ID)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(TracerOptions{SlowQuery: 10 * time.Millisecond, SlowSpan: 5 * time.Millisecond, Log: &buf})
	base := time.Now()
	tr.Begin(3, base)
	tr.Span(3, 3, "ground", base, 7*time.Millisecond, "round=1 rows=99")
	tr.Span(3, 3, "commit", base.Add(7*time.Millisecond), time.Millisecond, "")
	tr.Finish(3, base.Add(20*time.Millisecond))

	out := buf.String()
	if !strings.Contains(out, "slow span trace=3") || !strings.Contains(out, "round=1 rows=99") {
		t.Fatalf("slow-span line missing:\n%s", out)
	}
	if !strings.Contains(out, "trace 3 total=20.000ms") || !strings.Contains(out, "commit") {
		t.Fatalf("slow-query span tree missing:\n%s", out)
	}

	// Under threshold: nothing logged.
	buf.Reset()
	tr.Span(4, 4, "exec", base, time.Millisecond, "")
	tr.Finish(4, base.Add(2*time.Millisecond))
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged:\n%s", buf.String())
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("commits").Add(7)
	reg.Histogram("answer").Observe(3 * time.Millisecond)
	tr := NewTracer(TracerOptions{})
	base := time.Now()
	tr.Span(5, 5, "exec", base, time.Millisecond, "")
	tr.Finish(5, base.Add(time.Millisecond))

	mux := DebugMux(reg, tr, func() any { return map[string]int{"submitted": 1} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var buf strings.Builder
		if _, err := jsonDecodeCheck(resp.Body, &buf); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", path, err, buf.String())
		}
		return []byte(buf.String())
	}

	body := get("/metrics")
	if !strings.Contains(string(body), `"commits": 7`) || !strings.Contains(string(body), `"p99_ms"`) {
		t.Fatalf("/metrics payload wrong:\n%s", body)
	}
	body = get("/traces/recent")
	if !strings.Contains(string(body), `"id": 5`) {
		t.Fatalf("/traces/recent payload wrong:\n%s", body)
	}
	body = get("/traces/get?id=5")
	if !strings.Contains(string(body), `"name": "exec"`) {
		t.Fatalf("/traces/get payload wrong:\n%s", body)
	}
	// /debug/vars is expvar's own JSON.
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("/debug/vars: %v %v", err, resp)
	}
	resp.Body.Close()
}

// jsonDecodeCheck reads r fully into buf and verifies it is valid JSON.
func jsonDecodeCheck(r interface{ Read([]byte) (int, error) }, buf *strings.Builder) (any, error) {
	b := make([]byte, 0, 4096)
	tmp := make([]byte, 4096)
	for {
		n, err := r.Read(tmp)
		b = append(b, tmp[:n]...)
		if err != nil {
			break
		}
	}
	buf.Write(b)
	var v any
	return v, json.Unmarshal(b, &v)
}
