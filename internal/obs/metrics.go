// Package obs is the engine's observability layer: a lock-free metrics
// registry (counters + log-spaced latency histograms), a lifecycle tracer
// (per-query span trees with entanglement-aware merging), and a debug HTTP
// surface. Every type is nil-safe: a nil *Registry hands out nil *Counter
// and *Histogram receivers whose methods are inert, so instrumented hot
// paths cost nothing — no branches beyond the nil check, no allocations —
// when observability is disabled.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic (or max-tracking) atomic counter. The zero of
// usefulness: a nil *Counter accepts Add/SetMax/Load as no-ops, so call
// sites never guard.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// SetMax raises the counter to v if v is greater (high-water-mark
// semantics). No-op on a nil receiver.
func (c *Counter) SetMax(v int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Store sets the counter to v. No-op on a nil receiver.
func (c *Counter) Store(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Load returns the current value; 0 on a nil receiver.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram bucket layout: log-spaced duration bounds from 1µs to ~1h,
// four buckets per octave (bound ratio 2^(1/4) ≈ 1.19), so any quantile
// estimate is within a ×1.19 factor of the exact sample. Two overflow
// ends catch out-of-range observations.
const bucketsPerOctave = 4

var bucketBounds = makeBounds()

func makeBounds() []int64 {
	const minNS = int64(time.Microsecond)
	const maxNS = int64(time.Hour)
	var out []int64
	// Geometric progression: each octave [b, 2b) split into
	// bucketsPerOctave geometric steps.
	for b := minNS; b < maxNS; b *= 2 {
		for i := 0; i < bucketsPerOctave; i++ {
			// bound = b * 2^(i/bucketsPerOctave), computed in float then
			// rounded: exactness of bounds does not matter, only that they
			// are sorted and the ratio between neighbors is ~2^(1/4).
			f := float64(b)
			for j := 0; j < i; j++ {
				f *= 1.189207115002721 // 2^(1/4)
			}
			out = append(out, int64(f))
		}
	}
	out = append(out, maxNS)
	return out
}

// Histogram is a fixed-bucket latency histogram with atomic per-bucket
// counts. Observe is lock-free and allocation-free; quantile extraction
// walks the bucket array. A nil *Histogram is inert.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	// buckets[i] counts observations d with bucketBounds[i-1] <= d <
	// bucketBounds[i]; buckets[0] is the underflow (< 1µs) bucket and the
	// last is overflow (>= 1h).
	buckets []atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(bucketBounds)+1)}
}

// Observe records one duration. No-op on a nil receiver; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// bucketIndex maps a duration in ns to its bucket. Binary search over the
// precomputed bounds: ~9 comparisons, no allocation.
func bucketIndex(ns int64) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns < bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns an estimate of the q-quantile (0 < q < 1) of the
// observed durations. The estimate is the geometric midpoint of the
// bucket containing the quantile rank, so it is within one bucket ratio
// (×2^(1/4)) of the exact order statistic. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// Nearest-rank: the ceil(q*N)-th order statistic, so high quantiles of
	// small samples land on the large observations (p99 of 2 samples is the
	// max, not the min).
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(len(h.buckets) - 1)
}

// bucketMid returns the geometric midpoint of bucket i's bounds.
func bucketMid(i int) time.Duration {
	switch {
	case i == 0:
		return time.Duration(bucketBounds[0] / 2)
	case i >= len(bucketBounds):
		return time.Duration(bucketBounds[len(bucketBounds)-1])
	default:
		// Geometric mean of the bounds: sqrt(lo*hi), computed in floats —
		// both bounds fit float64 exactly enough for an estimate that is
		// anyway only bucket-accurate.
		lo, hi := float64(bucketBounds[i-1]), float64(bucketBounds[i])
		return time.Duration(int64(math.Sqrt(lo * hi)))
	}
}

// HistogramSnapshot is one histogram's summary in serializable form.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	MaxMS float64 `json:"max_ms"` // upper bound of the highest non-empty bucket
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	s.SumMS = float64(h.sum.Load()) / 1e6
	s.P50MS = float64(h.Quantile(0.50)) / 1e6
	s.P99MS = float64(h.Quantile(0.99)) / 1e6
	s.P999 = float64(h.Quantile(0.999)) / 1e6
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			s.MaxMS = float64(bucketMid(i)) / 1e6
			break
		}
	}
	return s
}

// Registry names and owns counters, gauges, and histograms. Registration
// takes a mutex; the handed-out Counter/Histogram pointers are lock-free
// thereafter. A nil *Registry hands out nil instruments, so a component
// built against a disabled registry is fully inert.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	hists  map[string]*Histogram
	gauges map[string]func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (an inert counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (inert) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Gauge registers a callback sampled at snapshot time — the bridge for
// values owned elsewhere (e.g. a streaming pipeline's own atomics). No-op
// on a nil registry.
func (r *Registry) Gauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Snapshot is one consistent read of the whole registry: every counter,
// gauge, and histogram sampled in a single pass under the registration
// lock. Counters registered concurrently with the snapshot appear in the
// next one.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot samples every instrument in one pass. Returns an empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Load()
	}
	for name, fn := range r.gauges {
		s.Counters[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns the registered counter and gauge names, sorted — for
// deterministic rendering in tests and the shell.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.ctrs)+len(r.gauges))
	for name := range r.ctrs {
		out = append(out, name)
	}
	for name := range r.gauges {
		if _, dup := r.ctrs[name]; !dup {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
