package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one completed lifecycle stage of a traced query. Spans are
// recorded flat at completion time; the tree structure is implicit in
// (Actor, Start) — every span belonging to one original query shares its
// Actor even after the trace merges with entangled partners.
type Span struct {
	Name  string  `json:"name"`
	Actor uint64  `json:"actor"`          // original trace id of the query this span belongs to
	Start float64 `json:"start_ms"`       // offset from trace begin, milliseconds
	DurMS float64 `json:"dur_ms"`         // span duration, milliseconds
	Shard int     `json:"shard,omitempty"` // shard that recorded the span (sharded deployments)
	Note  string  `json:"note,omitempty"` // free-form stage detail (round=2 rows=40 ...)
}

// Trace is one query lifecycle (or several, once entanglement merges
// them). It is mutated only under the owning Tracer's lock.
type Trace struct {
	ID      uint64    `json:"id"`
	Begin   time.Time `json:"begin"`
	Spans   []Span    `json:"spans"`
	Aliases []uint64  `json:"aliases,omitempty"` // trace ids merged into this one
	done    bool
	ends    int // Finish calls received; a merged trace needs one per member
	finish  time.Time
}

// TotalMS is the wall time from trace begin to finish (or to the end of
// the last span while live).
func (t *Trace) TotalMS() float64 {
	if t.done {
		return float64(t.finish.Sub(t.Begin)) / 1e6
	}
	var maxEnd float64
	for _, s := range t.Spans {
		if end := s.Start + s.DurMS; end > maxEnd {
			maxEnd = end
		}
	}
	return maxEnd
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// RingSize bounds the recent-trace ring (default 256).
	RingSize int
	// SlowQuery logs a finished trace's full span tree when its total
	// duration meets the threshold. Zero disables.
	SlowQuery time.Duration
	// SlowSpan logs any single span (e.g. one ground round) meeting the
	// threshold as it is recorded. Zero disables.
	SlowSpan time.Duration
	// Log receives slow-query/slow-span lines (default: discarded).
	Log io.Writer
	// Shard stamps every recorded span with the owning shard id, so a
	// cross-shard trace shows which process did what. Zero (the
	// single-process default) leaves spans unstamped.
	Shard int
}

// Tracer holds live traces and a bounded ring of recently finished ones.
// All methods are nil-safe; a span recorded against trace id 0 is
// dropped, so untraced requests pay only the id==0 comparison.
type Tracer struct {
	mu    sync.Mutex
	live  map[uint64]*Trace
	alias map[uint64]uint64 // merged id -> canonical id
	ring  []*Trace          // most recent last
	opts  TracerOptions
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	return &Tracer{
		live:  make(map[uint64]*Trace),
		alias: make(map[uint64]uint64),
		opts:  opts,
	}
}

// resolve follows the alias chain to the canonical live trace, creating
// it when id is unknown (first span wins the begin timestamp). Caller
// holds t.mu.
func (t *Tracer) resolve(id uint64, begin time.Time) *Trace {
	for {
		canon, ok := t.alias[id]
		if !ok {
			break
		}
		id = canon
	}
	tr := t.live[id]
	if tr == nil {
		tr = &Trace{ID: id, Begin: begin}
		t.live[id] = tr
	}
	return tr
}

// Begin establishes a trace's start time. Optional — the first recorded
// span creates the trace too — but calling it at mint time anchors span
// offsets at query arrival rather than first instrumented stage.
func (t *Tracer) Begin(id uint64, at time.Time) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	t.resolve(id, at)
	t.mu.Unlock()
}

// Span records one completed stage. actor attributes the span to its
// original query inside a merged trace; pass actor == id when unmerged.
func (t *Tracer) Span(id, actor uint64, name string, start time.Time, d time.Duration, note string) {
	if t == nil || id == 0 {
		return
	}
	if actor == 0 {
		actor = id
	}
	t.mu.Lock()
	tr := t.resolve(id, start)
	sp := Span{
		Name:  name,
		Actor: actor,
		Start: float64(start.Sub(tr.Begin)) / 1e6,
		DurMS: float64(d) / 1e6,
		Shard: t.opts.Shard,
		Note:  note,
	}
	tr.Spans = append(tr.Spans, sp)
	slow := t.opts.SlowSpan > 0 && d >= t.opts.SlowSpan
	w := t.opts.Log
	t.mu.Unlock()
	if slow && w != nil {
		fmt.Fprintf(w, "obs: slow span trace=%d actor=%d %s %.3fms %s\n", tr.ID, actor, name, sp.DurMS, note)
	}
}

// Merge unions the given traces under the smallest id, which becomes (or
// stays) the canonical trace; the others become aliases and their spans
// move over. Ids equal to 0 are ignored. Returns the canonical id (0 if
// none given or the tracer is nil).
func (t *Tracer) Merge(ids []uint64) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var canon *Trace
	for _, id := range ids {
		if id == 0 {
			continue
		}
		tr := t.resolve(id, time.Now())
		if canon == nil || tr == canon {
			canon = tr
			continue
		}
		if tr.ID < canon.ID {
			canon, tr = tr, canon
		}
		// Fold tr into canon: spans keep their actors; offsets re-anchor
		// on the canonical begin time.
		shift := float64(tr.Begin.Sub(canon.Begin)) / 1e6
		for _, s := range tr.Spans {
			s.Start += shift
			canon.Spans = append(canon.Spans, s)
		}
		canon.Aliases = append(canon.Aliases, tr.ID)
		canon.Aliases = append(canon.Aliases, tr.Aliases...)
		for _, a := range tr.Aliases {
			t.alias[a] = canon.ID
		}
		t.alias[tr.ID] = canon.ID
		delete(t.live, tr.ID)
	}
	if canon == nil {
		return 0
	}
	return canon.ID
}

// Export returns a copy of a live trace's begin time and spans for
// shipping to another process's tracer (the coordinator of a cross-shard
// group). The trace stays live locally. ok is false for unknown ids.
func (t *Tracer) Export(id uint64) (begin time.Time, spans []Span, ok bool) {
	if t == nil || id == 0 {
		return time.Time{}, nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	canon := id
	for {
		c, aliased := t.alias[canon]
		if !aliased {
			break
		}
		canon = c
	}
	tr := t.live[canon]
	if tr == nil {
		return time.Time{}, nil, false
	}
	return tr.Begin, append([]Span(nil), tr.Spans...), true
}

// Absorb folds spans exported from another process into the trace id
// resolves to here, re-anchoring their offsets from the remote begin time
// to the local trace's. Unknown ids create the trace (begin = remote
// begin), so a coordinator can absorb a participant's lifecycle before
// merging the group's traces into one.
func (t *Tracer) Absorb(id uint64, begin time.Time, spans []Span) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.resolve(id, begin)
	shift := float64(begin.Sub(tr.Begin)) / 1e6
	for _, s := range spans {
		s.Start += shift
		tr.Spans = append(tr.Spans, s)
	}
}

// Canonical resolves id through merges to the trace id it now lives
// under. Returns id itself when unmerged (or tracer nil).
func (t *Tracer) Canonical(id uint64) uint64 {
	if t == nil || id == 0 {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		canon, ok := t.alias[id]
		if !ok {
			return id
		}
		id = canon
	}
}

// Finish completes a trace: it moves from the live set to the recent
// ring and, when it met the slow-query threshold, its full span tree is
// logged. Finishing an alias finishes the canonical trace; finishing an
// unknown id is a no-op.
//
// A merged trace has several members, and each settles — and finishes —
// independently; the trace leaves the live set only on the LAST member's
// Finish (one call per member: itself plus one per alias), so an early
// finisher cannot ring the trace while its partner's spans are still
// being recorded.
func (t *Tracer) Finish(id uint64, at time.Time) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	canon := id
	for {
		c, ok := t.alias[canon]
		if !ok {
			break
		}
		canon = c
	}
	tr := t.live[canon]
	if tr == nil {
		t.mu.Unlock()
		return
	}
	tr.ends++
	if tr.ends < 1+len(tr.Aliases) {
		t.mu.Unlock()
		return
	}
	tr.done = true
	tr.finish = at
	delete(t.live, canon)
	t.ring = append(t.ring, tr)
	if over := len(t.ring) - t.opts.RingSize; over > 0 {
		t.ring = append(t.ring[:0], t.ring[over:]...)
	}
	slow := t.opts.SlowQuery > 0 && at.Sub(tr.Begin) >= t.opts.SlowQuery
	w := t.opts.Log
	t.mu.Unlock()
	if slow && w != nil {
		fmt.Fprint(w, FormatTrace(tr))
	}
}

// Recent returns copies of the most recently finished traces, newest
// first. Nil-safe.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		out = append(out, snapshotTrace(t.ring[i]))
	}
	return out
}

// Get returns a copy of the trace id resolves to — live or recent —
// and whether it was found.
func (t *Tracer) Get(id uint64) (Trace, bool) {
	if t == nil || id == 0 {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	canon := id
	for {
		c, ok := t.alias[canon]
		if !ok {
			break
		}
		canon = c
	}
	if tr := t.live[canon]; tr != nil {
		return snapshotTrace(tr), true
	}
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].ID == canon {
			return snapshotTrace(t.ring[i]), true
		}
	}
	return Trace{}, false
}

// snapshotTrace deep-copies the mutable slices so callers can hold the
// result outside the lock.
func snapshotTrace(tr *Trace) Trace {
	cp := *tr
	cp.Spans = append([]Span(nil), tr.Spans...)
	cp.Aliases = append([]uint64(nil), tr.Aliases...)
	return cp
}

// FormatTrace renders a span tree: spans grouped by actor, each actor's
// spans in start order — the slow-query log line format and the shell's
// \trace rendering.
func FormatTrace(tr *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d total=%.3fms spans=%d", tr.ID, tr.TotalMS(), len(tr.Spans))
	if len(tr.Aliases) > 0 {
		fmt.Fprintf(&b, " merged=%v", tr.Aliases)
	}
	b.WriteByte('\n')
	byActor := map[uint64][]Span{}
	var actors []uint64
	for _, s := range tr.Spans {
		if _, seen := byActor[s.Actor]; !seen {
			actors = append(actors, s.Actor)
		}
		byActor[s.Actor] = append(byActor[s.Actor], s)
	}
	sort.Slice(actors, func(i, j int) bool { return actors[i] < actors[j] })
	for _, a := range actors {
		fmt.Fprintf(&b, "  actor %d\n", a)
		spans := byActor[a]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			fmt.Fprintf(&b, "    %-10s +%.3fms %.3fms", s.Name, s.Start, s.DurMS)
			if s.Note != "" {
				b.WriteString("  " + s.Note)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
