package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Trace id minting. An id must be nonzero (zero means "untraced" on every
// path) and collision-free enough that two clients tracing concurrently
// never merge by accident: the high 40 bits are a per-process random base
// and the low 24 bits an atomic sequence, so one process mints up to 16M
// distinct ids and separate processes are randomized apart.

var (
	mintOnce sync.Once
	mintBase uint64
	mintSeq  atomic.Uint64
)

// MintID returns a fresh nonzero trace id.
func MintID() uint64 {
	mintOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			mintBase = binary.LittleEndian.Uint64(b[:])
		} else {
			mintBase = uint64(time.Now().UnixNano())
		}
		mintBase &^= 0xffffff // low 24 bits carry the sequence
	})
	id := mintBase + mintSeq.Add(1)
	if id == 0 {
		id = 1
	}
	return id
}
