package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// DebugMux builds the -debug-addr HTTP surface:
//
//	/metrics        registry snapshot (counters + histogram percentiles),
//	                plus the legacy stats snapshot when statsFn is set
//	/traces/recent  recently finished traces, newest first
//	/traces/get?id= one trace (live or recent) by id, following merges
//	/debug/pprof/*  net/http/pprof
//	/debug/vars     expvar
//
// Any argument may be nil; the corresponding endpoint serves an empty
// document rather than 404, so smoke tests can assert well-formed JSON
// unconditionally.
func DebugMux(reg *Registry, tr *Tracer, statsFn func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		doc := struct {
			Metrics Snapshot `json:"metrics"`
			Stats   any      `json:"stats,omitempty"`
		}{Metrics: reg.Snapshot()}
		if statsFn != nil {
			doc.Stats = statsFn()
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		traces := tr.Recent()
		if traces == nil {
			traces = []Trace{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/traces/get", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		trc, ok := tr.Get(id)
		if !ok {
			http.Error(w, "unknown trace", http.StatusNotFound)
			return
		}
		writeJSON(w, trc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
