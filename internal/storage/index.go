package storage

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// hashIndex is an equality index over one or more columns of a table. It is
// maintained inline by Insert/Update/Delete while the table mutex is held,
// so it needs no locking of its own.
type hashIndex struct {
	name    string
	columns []int // column positions in the table schema
	buckets map[string][]RowID
}

func newHashIndex(name string, columns []int) *hashIndex {
	return &hashIndex{name: name, columns: columns, buckets: make(map[string][]RowID)}
}

func (ix *hashIndex) keyFor(row types.Tuple) string {
	key := make(types.Tuple, len(ix.columns))
	for i, c := range ix.columns {
		key[i] = row[c]
	}
	return key.Key()
}

func (ix *hashIndex) insert(id RowID, row types.Tuple) {
	k := ix.keyFor(row)
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *hashIndex) remove(id RowID, row types.Tuple) {
	k := ix.keyFor(row)
	ids := ix.buckets[k]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = ids
	}
}

func (ix *hashIndex) clear() { ix.buckets = make(map[string][]RowID) }

// CreateIndex builds an equality index named name over the given columns.
// The index is populated from existing rows.
func (t *Table) CreateIndex(name string, columns ...string) error {
	cols := make([]int, 0, len(columns))
	for _, c := range columns {
		i := t.schema.Index(c)
		if i < 0 {
			return fmt.Errorf("storage: index %s: no column %q in table %s", name, c, t.name)
		}
		cols = append(cols, i)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[name]; ok {
		return fmt.Errorf("storage: index %s already exists on %s", name, t.name)
	}
	ix := newHashIndex(name, cols)
	for id, row := range t.rows {
		ix.insert(id, row)
	}
	t.indexes[name] = ix
	return nil
}

// HasIndexOn reports whether an equality index exists whose leading columns
// are exactly the given columns (order-sensitive).
func (t *Table) HasIndexOn(columns ...string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.findIndex(columns) != nil
}

func (t *Table) findIndex(columns []string) *hashIndex {
	want := make([]int, 0, len(columns))
	for _, c := range columns {
		i := t.schema.Index(c)
		if i < 0 {
			return nil
		}
		want = append(want, i)
	}
	for _, ix := range t.indexes {
		if len(ix.columns) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if ix.columns[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// IndexInfo describes an index for catalog inspection and WAL replay.
type IndexInfo struct {
	Name    string
	Columns []string
}

// Indexes returns metadata for every index on the table, sorted by name.
func (t *Table) Indexes() []IndexInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexInfo, 0, len(t.indexes))
	for name, ix := range t.indexes {
		cols := make([]string, len(ix.columns))
		for i, c := range ix.columns {
			cols[i] = t.schema.Columns[c].Name
		}
		out = append(out, IndexInfo{Name: name, Columns: cols})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the RowIDs of rows whose given columns equal key, using an
// index when one matches, otherwise a scan. Results are in ascending RowID
// order for determinism.
func (t *Table) Lookup(columns []string, key types.Tuple) ([]RowID, error) {
	if len(columns) != len(key) {
		return nil, fmt.Errorf("storage: lookup on %s: %d columns vs %d key values", t.name, len(columns), len(key))
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ix := t.findIndex(columns); ix != nil {
		ids := ix.buckets[key.Key()]
		out := make([]RowID, len(ids))
		copy(out, ids)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	// Fallback scan.
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx := t.schema.Index(c)
		if idx < 0 {
			return nil, fmt.Errorf("storage: lookup on %s: no column %q", t.name, c)
		}
		cols[i] = idx
	}
	var out []RowID
	for id, row := range t.rows {
		match := true
		for i, c := range cols {
			if !row[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
