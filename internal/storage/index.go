package storage

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// hashIndex is an equality index over one or more columns of a table. With
// version chains an index entry means "some stored version of this row has
// this key" — entries are added when versions are installed and removed
// only when rollback or GC drops the last version carrying the key. Lookups
// therefore filter candidates through the reader's visibility check. The
// index is maintained while the table mutex is held, so it needs no locking
// of its own.
type hashIndex struct {
	name    string
	columns []int // column positions in the table schema
	buckets map[string][]RowID
}

func newHashIndex(name string, columns []int) *hashIndex {
	return &hashIndex{name: name, columns: columns, buckets: make(map[string][]RowID)}
}

func (ix *hashIndex) keyFor(row types.Tuple) string {
	key := make(types.Tuple, len(ix.columns))
	for i, c := range ix.columns {
		key[i] = row[c]
	}
	return key.Key()
}

// insert records id under the row's key; a row id appears at most once
// per bucket no matter how many of its versions share the key. fresh
// means the caller knows this is the row's first version, so the dedup
// scan (O(bucket length)) is skipped — bulk loads stay linear.
func (ix *hashIndex) insert(id RowID, row types.Tuple, fresh bool) {
	k := ix.keyFor(row)
	if !fresh {
		for _, got := range ix.buckets[k] {
			if got == id {
				return
			}
		}
	}
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *hashIndex) remove(id RowID, row types.Tuple) {
	k := ix.keyFor(row)
	ids := ix.buckets[k]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = ids
	}
}

func (ix *hashIndex) clear() { ix.buckets = make(map[string][]RowID) }

// CreateIndex builds an equality index named name over the given columns.
// The index is populated from existing versions.
func (t *Table) CreateIndex(name string, columns ...string) error {
	cols := make([]int, 0, len(columns))
	for _, c := range columns {
		i := t.schema.Index(c)
		if i < 0 {
			return fmt.Errorf("storage: index %s: no column %q in table %s", name, c, t.name)
		}
		cols = append(cols, i)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[name]; ok {
		return fmt.Errorf("storage: index %s already exists on %s", name, t.name)
	}
	ix := newHashIndex(name, cols)
	for id, vs := range t.rows {
		first := true
		for _, v := range vs {
			if v.row != nil {
				ix.insert(id, v.row, first)
				first = false
			}
		}
	}
	t.indexes[name] = ix
	return nil
}

// HasIndexOn reports whether an equality index exists whose leading columns
// are exactly the given columns (order-sensitive).
func (t *Table) HasIndexOn(columns ...string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.findIndex(columns) != nil
}

func (t *Table) findIndex(columns []string) *hashIndex {
	want := make([]int, 0, len(columns))
	for _, c := range columns {
		i := t.schema.Index(c)
		if i < 0 {
			return nil
		}
		want = append(want, i)
	}
	for _, ix := range t.indexes {
		if len(ix.columns) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if ix.columns[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// IndexInfo describes an index for catalog inspection and WAL replay.
type IndexInfo struct {
	Name    string
	Columns []string
}

// Indexes returns metadata for every index on the table, sorted by name.
func (t *Table) Indexes() []IndexInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexInfo, 0, len(t.indexes))
	for name, ix := range t.indexes {
		cols := make([]string, len(ix.columns))
		for i, c := range ix.columns {
			cols[i] = t.schema.Columns[c].Name
		}
		out = append(out, IndexInfo{Name: name, Columns: cols})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookupResolved returns the (RowID, visible row) pairs whose visible row
// (per resolve) equals key on the given columns, using an index for the
// candidate set when one matches. Results are in ascending RowID order for
// determinism; rows are shared references into the chains — callers clone
// before releasing the lock. Caller holds t.mu (read).
func (t *Table) lookupResolved(columns []string, key types.Tuple, resolve func([]version) (types.Tuple, bool)) ([]RowID, []types.Tuple, error) {
	if len(columns) != len(key) {
		return nil, nil, fmt.Errorf("storage: lookup on %s: %d columns vs %d key values", t.name, len(columns), len(key))
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		idx := t.schema.Index(c)
		if idx < 0 {
			return nil, nil, fmt.Errorf("storage: lookup on %s: no column %q", t.name, c)
		}
		cols[i] = idx
	}
	match := func(row types.Tuple) bool {
		for i, c := range cols {
			if !row[c].Equal(key[i]) {
				return false
			}
		}
		return true
	}
	var ids []RowID
	var rows []types.Tuple
	add := func(id RowID, vs []version) {
		if row, ok := resolve(vs); ok && match(row) {
			ids = append(ids, id)
			rows = append(rows, row)
		}
	}
	if ix := t.findIndex(columns); ix != nil {
		// Candidates from the bucket may carry the key only in an invisible
		// version; re-check against the visible row.
		for _, id := range ix.buckets[key.Key()] {
			add(id, t.rows[id])
		}
	} else {
		for id, vs := range t.rows {
			add(id, vs)
		}
	}
	sort.Sort(&idRowSort{ids: ids, rows: rows})
	return ids, rows, nil
}

// idRowSort sorts parallel (id, row) slices by RowID.
type idRowSort struct {
	ids  []RowID
	rows []types.Tuple
}

func (s *idRowSort) Len() int           { return len(s.ids) }
func (s *idRowSort) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *idRowSort) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// findIndexByCols returns an index whose column-position set equals cols
// (order-insensitive: a hash index answers an equality probe over its
// column set no matter how the probe spells the columns). Caller holds
// t.mu (read).
func (t *Table) findIndexByCols(cols []int) *hashIndex {
	for _, ix := range t.indexes {
		if len(ix.columns) != len(cols) {
			continue
		}
		match := true
		for _, c := range ix.columns {
			found := false
			for _, want := range cols {
				if c == want {
					found = true
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// HasIndexForCols reports whether an equality probe over the given column
// positions (any order, no duplicates) is index-accelerated. The grounding
// planner uses it to decide whether an equality-bound atom probes or scans.
func (t *Table) HasIndexForCols(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.findIndexByCols(cols) != nil
}

// MatchAsOf returns the rows visible to snap whose column positions cols
// equal vals, cloned, in RowID order — the visibility-aware indexed lookup
// the grounding hot path probes instead of materializing the whole table.
// When an index covers the column set the candidates come from its bucket;
// otherwise every chain is filtered (the scan fallback), so the result is
// identical either way.
func (t *Table) MatchAsOf(snap Snapshot, cols []int, vals []types.Value) ([]types.Tuple, error) {
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("storage: match on %s: %d columns vs %d values", t.name, len(cols), len(vals))
	}
	width := len(t.schema.Columns)
	for _, c := range cols {
		if c < 0 || c >= width {
			return nil, fmt.Errorf("storage: match on %s: column position %d out of range", t.name, c)
		}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	match := func(row types.Tuple) bool {
		for i, c := range cols {
			if !row[c].Equal(vals[i]) {
				return false
			}
		}
		return true
	}
	var ids []RowID
	var rows []types.Tuple
	add := func(id RowID, vs []version) {
		if row, ok := visibleAt(vs, snap); ok && match(row) {
			ids = append(ids, id)
			rows = append(rows, row)
		}
	}
	if ix := t.findIndexByCols(cols); ix != nil {
		// Build the bucket key in the index's own column order; bucket
		// candidates may carry the key only in an invisible version, so the
		// visible row is re-checked by match.
		key := make(types.Tuple, len(ix.columns))
		for i, c := range ix.columns {
			for j, probe := range cols {
				if probe == c {
					key[i] = vals[j]
					break
				}
			}
		}
		for _, id := range ix.buckets[key.Key()] {
			add(id, t.rows[id])
		}
	} else {
		for id, vs := range t.rows {
			add(id, vs)
		}
	}
	sort.Sort(&idRowSort{ids: ids, rows: rows})
	for i, row := range rows {
		rows[i] = row.Clone()
	}
	return rows, nil
}

// LookupTx returns the RowIDs of rows whose given columns equal key in
// reader's current-state view.
func (t *Table) LookupTx(reader uint64, columns []string, key types.Tuple) ([]RowID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids, _, err := t.lookupResolved(columns, key, func(vs []version) (types.Tuple, bool) {
		return latestVisible(vs, reader)
	})
	return ids, err
}

// Lookup returns the RowIDs of rows whose given columns equal key in the
// latest committed state.
func (t *Table) Lookup(columns []string, key types.Tuple) ([]RowID, error) {
	return t.LookupTx(0, columns, key)
}

// LookupAsOf returns the RowIDs of rows whose given columns equal key as
// seen by snap — the lock-free indexed read.
func (t *Table) LookupAsOf(snap Snapshot, columns []string, key types.Tuple) ([]RowID, error) {
	ids, _, err := t.LookupRowsAsOf(snap, columns, key)
	return ids, err
}

// LookupRowsAsOf is LookupAsOf returning the visible rows as well (cloned),
// resolved in the same single pass under one lock acquisition — the hot
// path of snapshot-isolated point reads.
func (t *Table) LookupRowsAsOf(snap Snapshot, columns []string, key types.Tuple) ([]RowID, []types.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids, rows, err := t.lookupResolved(columns, key, func(vs []version) (types.Tuple, bool) {
		return visibleAt(vs, snap)
	})
	if err != nil {
		return nil, nil, err
	}
	for i, row := range rows {
		rows[i] = row.Clone()
	}
	return ids, rows, nil
}
