// Package storage implements the in-memory multi-version heap-table store
// underlying the engine: a catalog of tables, per-RowID version chains
// stamped with commit sequence numbers (CSNs), and equality hash indexes.
// It plays the role MySQL/InnoDB plays under the paper's middle-tier
// prototype — with InnoDB-style MVCC instead of a single row image.
//
// Storage is oblivious to concurrency control policy: write serialization
// (X locks) lives in internal/lock + internal/txn, durability in
// internal/wal. What storage provides is the mechanism both read paths
// share:
//
//   - the locked path (Strict 2PL) reads the newest committed version (plus
//     the reader's own uncommitted writes) via the *Tx methods;
//   - the lock-free path reads through a Snapshot via the *AsOf methods —
//     no lock-manager traffic at all.
//
// Writers install uncommitted versions tagged with their transaction id;
// Stamp turns them into committed versions at a CSN, Rollback removes them.
// GC prunes versions no active snapshot can reach.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// RowID identifies a row within a table. RowIDs are never reused, so an
// undo of a delete can reinstate the row under its original identity.
type RowID int64

// InvalidRowID is returned by operations that fail to locate a row.
const InvalidRowID RowID = -1

// Table is a heap of row version chains with a fixed schema. All methods
// are safe for concurrent use.
type Table struct {
	name   string
	schema *types.Schema

	mu       sync.RWMutex
	rows     map[RowID][]version // oldest-first version chains
	nextID   RowID
	indexes  map[string]*hashIndex // by index name
	lastCSN  uint64                // newest CSN stamped into this table
	versions int                   // live version count (GC accounting)

	scans atomic.Int64 // full-table scans served (round-scan-cache accounting)
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[RowID][]version),
		indexes: make(map[string]*hashIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Len returns the number of rows live in the latest committed state.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, vs := range t.rows {
		if _, ok := latestVisible(vs, 0); ok {
			n++
		}
	}
	return n
}

// LastCSN returns the newest commit sequence number stamped into this
// table. Evaluation rounds use it to validate that a grounding snapshot is
// still current when quasi-read locks are taken.
func (t *Table) LastCSN() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastCSN
}

// VersionCount returns the total number of stored versions (live rows,
// superseded images, tombstones, uncommitted writes).
func (t *Table) VersionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.versions
}

// appendVersion installs a version at the chain tail and indexes its key.
// Caller holds t.mu.
func (t *Table) appendVersion(id RowID, v version) {
	fresh := len(t.rows[id]) == 0
	t.rows[id] = append(t.rows[id], v)
	t.versions++
	if v.row != nil {
		for _, idx := range t.indexes {
			idx.insert(id, v.row, fresh)
		}
	}
	if v.committed() && v.csn > t.lastCSN {
		t.lastCSN = v.csn
	}
}

// --- write path -----------------------------------------------------------
//
// The transactional mutators install uncommitted versions (txID != 0) that
// Stamp or Rollback later resolve. The legacy mutators (Insert, InsertAt,
// Update, Delete) write committed versions at CSN 0 — "committed since
// forever", visible to every snapshot — which is what bulk loaders,
// checkpoint restore, and storage-level tests want.

// insertVersion validates and stores a new row under a fresh RowID. A
// txID of 0 with a real csn is the load/replay path; txID != 0 with
// uncommittedCSN is the transactional path.
func (t *Table) insertVersion(row types.Tuple, txID, csn uint64) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return InvalidRowID, fmt.Errorf("storage: insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.appendVersion(id, version{csn: csn, tx: txID, row: row.Clone()})
	return id, nil
}

// Insert stores a new row as committed-at-load (CSN 0), returning its
// RowID. Transactions use InsertTx instead.
func (t *Table) Insert(row types.Tuple) (RowID, error) {
	return t.insertVersion(row, 0, 0)
}

// InsertTx stores a new row as an uncommitted version of txID.
func (t *Table) InsertTx(txID uint64, row types.Tuple) (RowID, error) {
	return t.insertVersion(row, txID, uncommittedCSN)
}

// InsertAt reinstates a row under a specific RowID (used by snapshot
// restore and replay). It fails if the RowID is live in the latest
// committed state.
func (t *Table) InsertAt(id RowID, row types.Tuple) error {
	return t.InsertAtCSN(id, row, 0)
}

// InsertAtCSN reinstates a row under a specific RowID as a version
// committed at csn (WAL replay stamps the recovered commit order this way).
func (t *Table) InsertAtCSN(id RowID, row types.Tuple, csn uint64) error {
	if err := t.schema.Validate(row); err != nil {
		return fmt.Errorf("storage: insert-at into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := latestVisible(t.rows[id], 0); live {
		return fmt.Errorf("storage: %s row %d already exists", t.name, id)
	}
	t.appendVersion(id, version{csn: csn, row: row.Clone()})
	if id >= t.nextID {
		t.nextID = id + 1
	}
	return nil
}

// updateVersion appends a replacement version, returning the previous
// image seen by (txID)'s current-state view.
func (t *Table) updateVersion(id RowID, row types.Tuple, txID, csn uint64) (types.Tuple, error) {
	if err := t.schema.Validate(row); err != nil {
		return nil, fmt.Errorf("storage: update %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, live := latestVisible(t.rows[id], txID)
	if !live {
		return nil, fmt.Errorf("storage: %s row %d not found", t.name, id)
	}
	t.appendVersion(id, version{csn: csn, tx: txID, row: row.Clone()})
	return old, nil
}

// Update replaces the row at id with a committed-at-load version,
// returning the previous image. Transactions use UpdateTx.
func (t *Table) Update(id RowID, row types.Tuple) (types.Tuple, error) {
	return t.updateVersion(id, row, 0, 0)
}

// UpdateTx replaces the row at id with an uncommitted version of txID.
func (t *Table) UpdateTx(txID uint64, id RowID, row types.Tuple) (types.Tuple, error) {
	return t.updateVersion(id, row, txID, uncommittedCSN)
}

// UpdateCSN replaces the row at id with a version committed at csn (WAL
// replay).
func (t *Table) UpdateCSN(id RowID, row types.Tuple, csn uint64) (types.Tuple, error) {
	return t.updateVersion(id, row, 0, csn)
}

// deleteVersion appends a tombstone, returning the deleted image.
func (t *Table) deleteVersion(id RowID, txID, csn uint64) (types.Tuple, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, live := latestVisible(t.rows[id], txID)
	if !live {
		return nil, fmt.Errorf("storage: %s row %d not found", t.name, id)
	}
	t.appendVersion(id, version{csn: csn, tx: txID})
	return old, nil
}

// Delete removes the row at id (committed-at-load tombstone), returning
// the deleted image. Transactions use DeleteTx.
func (t *Table) Delete(id RowID) (types.Tuple, error) {
	return t.deleteVersion(id, 0, 0)
}

// DeleteTx removes the row at id as an uncommitted tombstone of txID.
func (t *Table) DeleteTx(txID uint64, id RowID) (types.Tuple, error) {
	return t.deleteVersion(id, txID, uncommittedCSN)
}

// DeleteCSN removes the row at id with a tombstone committed at csn (WAL
// replay).
func (t *Table) DeleteCSN(id RowID, csn uint64) (types.Tuple, error) {
	return t.deleteVersion(id, 0, csn)
}

// Stamp marks every uncommitted version txID holds on row id as committed
// at csn. The transaction layer calls it once per written row at commit,
// after the commit record is logged.
func (t *Table) Stamp(txID uint64, id RowID, csn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	vs := t.rows[id]
	for i := range vs {
		if !vs[i].committed() && vs[i].tx == txID {
			vs[i].csn = csn
		}
	}
	if csn > t.lastCSN {
		t.lastCSN = csn
	}
}

// Rollback removes every uncommitted version txID holds on row id (abort).
// Index entries whose keys no longer appear in the chain are dropped; an
// emptied chain disappears entirely.
func (t *Table) Rollback(txID uint64, id RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	vs := t.rows[id]
	kept := vs[:0]
	var removed []types.Tuple
	for _, v := range vs {
		if !v.committed() && v.tx == txID {
			if v.row != nil {
				removed = append(removed, v.row)
			}
			t.versions--
			continue
		}
		kept = append(kept, v)
	}
	if len(removed) == 0 && len(kept) == len(vs) {
		return
	}
	if len(kept) == 0 {
		delete(t.rows, id)
	} else {
		t.rows[id] = kept
	}
	t.unindexOrphans(id, kept, removed)
}

// unindexOrphans drops index entries for removed versions whose keys no
// longer appear anywhere in the retained chain. Caller holds t.mu.
func (t *Table) unindexOrphans(id RowID, kept []version, removed []types.Tuple) {
	if len(removed) == 0 || len(t.indexes) == 0 {
		return
	}
	for _, idx := range t.indexes {
		live := make(map[string]bool, len(kept))
		for _, v := range kept {
			if v.row != nil {
				live[idx.keyFor(v.row)] = true
			}
		}
		seen := make(map[string]bool, len(removed))
		for _, row := range removed {
			k := idx.keyFor(row)
			if live[k] || seen[k] {
				continue
			}
			seen[k] = true
			idx.remove(id, row)
		}
	}
}

// --- read paths -----------------------------------------------------------

// GetTx returns a copy of the row as seen by reader's current-state view:
// the newest committed version, or reader's own uncommitted write. Under
// Strict 2PL the caller's locks make this the serializable read.
func (t *Table) GetTx(reader uint64, id RowID) (types.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := latestVisible(t.rows[id], reader)
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// Get returns a copy of the row in the latest committed state.
func (t *Table) Get(id RowID) (types.Tuple, bool) { return t.GetTx(0, id) }

// GetAsOf returns a copy of the row as seen by snap.
func (t *Table) GetAsOf(snap Snapshot, id RowID) (types.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := visibleAt(t.rows[id], snap)
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// ScanCount returns the number of full-table scans this table has served.
// The round-scan-cache regression tests use it to assert that an evaluation
// round with k queries over one table materializes exactly one snapshot
// scan.
func (t *Table) ScanCount() int64 { return t.scans.Load() }

// scanResolved iterates chains in RowID order, resolving each through
// resolve, and calls fn on live rows. Caller must not retain or mutate the
// tuple; returning false stops the scan. The table lock is held across the
// scan, so fn must not call back into the table.
func (t *Table) scanResolved(resolve func([]version) (types.Tuple, bool), fn func(id RowID, row types.Tuple) bool) {
	t.scans.Add(1)
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		row, ok := resolve(t.rows[id])
		if !ok {
			continue
		}
		if !fn(id, row) {
			break
		}
	}
	t.mu.RUnlock()
}

// ScanTx calls fn for every row of reader's current-state view in RowID
// order.
func (t *Table) ScanTx(reader uint64, fn func(id RowID, row types.Tuple) bool) {
	t.scanResolved(func(vs []version) (types.Tuple, bool) { return latestVisible(vs, reader) }, fn)
}

// Scan calls fn for every row of the latest committed state in RowID order.
func (t *Table) Scan(fn func(id RowID, row types.Tuple) bool) { t.ScanTx(0, fn) }

// ScanAsOf calls fn for every row visible to snap in RowID order — the
// lock-free snapshot read that grounding rounds and snapshot-isolated
// transactions use.
func (t *Table) ScanAsOf(snap Snapshot, fn func(id RowID, row types.Tuple) bool) {
	t.scanResolved(func(vs []version) (types.Tuple, bool) { return visibleAt(vs, snap) }, fn)
}

// All returns a deterministic snapshot of the latest committed state in
// RowID order.
func (t *Table) All() []types.Tuple {
	var out []types.Tuple
	t.Scan(func(_ RowID, row types.Tuple) bool {
		out = append(out, row.Clone())
		return true
	})
	return out
}

// AllAsOf returns every row visible to snap, cloned, in RowID order.
func (t *Table) AllAsOf(snap Snapshot) []types.Tuple {
	return t.AppendAllAsOf(snap, nil)
}

// AppendAllAsOf appends every row visible to snap (cloned, RowID order) to
// buf and returns the extended slice — the allocation-lean variant the
// evaluation round's scan cache uses to recycle its per-round buffers
// instead of growing a fresh slice every round.
func (t *Table) AppendAllAsOf(snap Snapshot, buf []types.Tuple) []types.Tuple {
	t.ScanAsOf(snap, func(_ RowID, row types.Tuple) bool {
		buf = append(buf, row.Clone())
		return true
	})
	return buf
}

// CommittedCSN returns the CSN of the newest committed version of id
// (tombstones included) — the first-committer-wins conflict check: a
// snapshot-isolated writer whose snapshot is older than this CSN lost the
// race.
func (t *Table) CommittedCSN(id RowID) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	vs := t.rows[id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].committed() {
			return vs[i].csn, true
		}
	}
	return 0, false
}

// Truncate removes all rows and versions (used by recovery before replay).
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = make(map[RowID][]version)
	t.versions = 0
	for _, idx := range t.indexes {
		idx.clear()
	}
}

// GC prunes versions that no current or future snapshot can reach, given
// that every active snapshot's CSN is at least watermark: for each chain
// the newest committed version at or below the watermark is the boundary —
// everything older is dropped, and a boundary tombstone is dropped too
// (absence of a version reads the same as a tombstone). Uncommitted
// versions are always retained. Returns the number of versions pruned.
func (t *Table) GC(watermark uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pruned := 0
	for id, vs := range t.rows {
		boundary := -1
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].committed() && vs[i].csn <= watermark {
				boundary = i
				break
			}
		}
		if boundary < 0 {
			continue
		}
		keepFrom := boundary
		if vs[boundary].row == nil {
			keepFrom = boundary + 1 // boundary tombstone conveys nothing
		}
		if keepFrom == 0 {
			continue
		}
		kept := append([]version(nil), vs[keepFrom:]...)
		var removed []types.Tuple
		for _, v := range vs[:keepFrom] {
			if v.row != nil {
				removed = append(removed, v.row)
			}
		}
		pruned += keepFrom
		t.versions -= keepFrom
		if len(kept) == 0 {
			delete(t.rows, id)
		} else {
			t.rows[id] = kept
		}
		t.unindexOrphans(id, kept, removed)
	}
	return pruned
}
