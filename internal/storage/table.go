// Package storage implements the in-memory heap-table store underlying the
// engine: a catalog of tables, slotted rows addressed by RowID, and
// equality hash indexes. It plays the role MySQL/InnoDB plays under the
// paper's middle-tier prototype.
//
// Storage itself is oblivious to transactions: concurrency control (Strict
// 2PL) lives in internal/lock + internal/txn, and durability in
// internal/wal. Tables are safe for concurrent use; the transaction layer
// is responsible for serializing conflicting access through locks.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// RowID identifies a row within a table. RowIDs are never reused, so an
// undo of a delete can reinstate the row under its original identity.
type RowID int64

// InvalidRowID is returned by operations that fail to locate a row.
const InvalidRowID RowID = -1

// Table is a heap of rows with a fixed schema. All methods are safe for
// concurrent use.
type Table struct {
	name   string
	schema *types.Schema

	mu      sync.RWMutex
	rows    map[RowID]types.Tuple
	nextID  RowID
	indexes map[string]*hashIndex // by index name
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[RowID]types.Tuple),
		indexes: make(map[string]*hashIndex),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert validates and stores a new row, returning its RowID.
func (t *Table) Insert(row types.Tuple) (RowID, error) {
	if err := t.schema.Validate(row); err != nil {
		return InvalidRowID, fmt.Errorf("storage: insert into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.rows[id] = row.Clone()
	for _, idx := range t.indexes {
		idx.insert(id, row)
	}
	return id, nil
}

// InsertAt reinstates a row under a specific RowID (used by undo and WAL
// replay). It fails if the RowID is occupied.
func (t *Table) InsertAt(id RowID, row types.Tuple) error {
	if err := t.schema.Validate(row); err != nil {
		return fmt.Errorf("storage: insert-at into %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[id]; ok {
		return fmt.Errorf("storage: %s row %d already exists", t.name, id)
	}
	t.rows[id] = row.Clone()
	if id >= t.nextID {
		t.nextID = id + 1
	}
	for _, idx := range t.indexes {
		idx.insert(id, row)
	}
	return nil
}

// Get returns a copy of the row, or ok=false if absent.
func (t *Table) Get(id RowID) (types.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// Update replaces the row at id, returning the previous image.
func (t *Table) Update(id RowID, row types.Tuple) (types.Tuple, error) {
	if err := t.schema.Validate(row); err != nil {
		return nil, fmt.Errorf("storage: update %s: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("storage: %s row %d not found", t.name, id)
	}
	for _, idx := range t.indexes {
		idx.remove(id, old)
		idx.insert(id, row)
	}
	t.rows[id] = row.Clone()
	return old, nil
}

// Delete removes the row at id, returning the deleted image.
func (t *Table) Delete(id RowID) (types.Tuple, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("storage: %s row %d not found", t.name, id)
	}
	delete(t.rows, id)
	for _, idx := range t.indexes {
		idx.remove(id, old)
	}
	return old, nil
}

// Scan calls fn for every row in RowID order. fn receives a shared
// reference — it must not retain or mutate the tuple. Returning false stops
// the scan. The table lock is held across the scan, so fn must not call
// back into the table.
func (t *Table) Scan(fn func(id RowID, row types.Tuple) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !fn(id, t.rows[id]) {
			break
		}
	}
	t.mu.RUnlock()
}

// All returns a deterministic snapshot of all rows in RowID order.
func (t *Table) All() []types.Tuple {
	out := make([]types.Tuple, 0, t.Len())
	t.Scan(func(_ RowID, row types.Tuple) bool {
		out = append(out, row.Clone())
		return true
	})
	return out
}

// Truncate removes all rows (used by recovery before replay).
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = make(map[RowID]types.Tuple)
	for _, idx := range t.indexes {
		idx.clear()
	}
}
