package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// Catalog is the set of tables in a database. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table // keyed by lower-case name
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func canonical(name string) string {
	// Table names are case-insensitive, as in MySQL's default collation for
	// the workloads in the paper.
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Create adds a new table, failing if the name is taken.
func (c *Catalog) Create(name string, schema *types.Schema) (*Table, error) {
	key := canonical(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("storage: table %s already exists", name)
	}
	t := NewTable(name, schema)
	c.tables[key] = t
	return t, nil
}

// Get returns the named table or an error.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[canonical(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[canonical(name)]
	return ok
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	key := canonical(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("storage: no such table %s", name)
	}
	delete(c.tables, key)
	return nil
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}
