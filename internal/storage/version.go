package storage

import "repro/internal/types"

// Multi-version storage: every RowID maps to a chain of row versions, each
// stamped with the commit sequence number (CSN) of the transaction that
// produced it. Uncommitted versions carry the writer's transaction id
// instead; commit stamps them with the allocated CSN, abort removes them.
// Readers resolve a chain against a Snapshot — the lock-free read path that
// replaces shared locks for snapshot-isolated transactions and for
// entangled-query grounding rounds.

// Snapshot is a consistent point-in-time view of the database: the newest
// CSN whose effects are visible, plus (optionally) the transaction whose
// own uncommitted writes are visible. The zero Snapshot sees only
// bulk-loaded data (CSN 0).
type Snapshot struct {
	// CSN is the highest commit sequence number visible to this snapshot.
	CSN uint64
	// Self is the transaction whose uncommitted versions are visible (a
	// transaction always reads its own writes); 0 for pure observers.
	Self uint64
}

// uncommittedCSN marks a version whose writer has not committed yet.
const uncommittedCSN = ^uint64(0)

// version is one entry of a row's version chain. A nil row is a delete
// tombstone.
type version struct {
	csn uint64 // commit sequence number; uncommittedCSN while the writer is active
	tx  uint64 // writer transaction id (meaningful while uncommitted)
	row types.Tuple
}

func (v *version) committed() bool { return v.csn != uncommittedCSN }

// chains are stored oldest-first; appends go at the tail and visibility
// walks from the tail (newest) backward.

// latestVisible resolves a chain for a "current state" reader: the newest
// version that is committed or written by self. This is what the Strict-2PL
// read path observes — locks guarantee no other transaction's uncommitted
// version can sit above the one returned.
func latestVisible(vs []version, self uint64) (types.Tuple, bool) {
	for i := len(vs) - 1; i >= 0; i-- {
		v := &vs[i]
		if v.committed() || v.tx == self {
			return v.row, v.row != nil
		}
	}
	return nil, false
}

// visibleAt resolves a chain against a snapshot: the newest version that
// either committed at or before the snapshot's CSN or belongs to the
// snapshot's own transaction.
func visibleAt(vs []version, snap Snapshot) (types.Tuple, bool) {
	for i := len(vs) - 1; i >= 0; i-- {
		v := &vs[i]
		if (v.committed() && v.csn <= snap.CSN) || (!v.committed() && v.tx == snap.Self) {
			return v.row, v.row != nil
		}
	}
	return nil, false
}
