package storage

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// Streaming read path: cursors pull a table's snapshot-visible rows in
// RowID order in caller-paced batches, instead of materializing the whole
// relation the way AllAsOf/MatchAsOf do. A cursor captures the table's
// chain ids once at open (8 bytes per chain, not a cloned tuple) and
// resolves visibility per batch under a short read lock, so grounding a
// million-row table holds one batch of row references at a time.
//
// Returned rows alias stored version tuples. Versions are immutable once
// installed (writers only append to chains), so the references stay valid
// indefinitely — but callers must not mutate them and must copy any value
// they retain past the batch, because the batch buffer itself is reused.
//
// Snapshot stability makes the captured id list sound: chains appended
// after the capture hold only versions invisible to the cursor's snapshot
// (their CSNs postdate it, or they are uncommitted by someone else), and a
// chain removed after the capture (rollback, GC below the snapshot
// watermark) resolves to "not visible" exactly as a live tombstone would.
// A cursor therefore enumerates precisely the rows ScanAsOf would, in the
// same order, no matter how the pulls interleave with concurrent commits.

// ScanCursor streams one table's rows visible to a snapshot, in RowID
// order. Not safe for concurrent use; Clone independent cursors instead.
type ScanCursor struct {
	tbl  *Table
	snap Snapshot
	ids  []RowID // all chain ids at open, sorted ascending (shared, read-only)
	pos  int
}

// ScanCursorAsOf opens a cursor over the rows visible to snap. The open
// captures and sorts the table's chain ids and counts as one scan for
// ScanCount accounting; the per-batch visibility resolution does not.
func (t *Table) ScanCursorAsOf(snap Snapshot) *ScanCursor {
	t.scans.Add(1)
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &ScanCursor{tbl: t, snap: snap, ids: ids}
}

// Clone returns an independent cursor over the same captured ids, reading
// through snap. An evaluation round captures each table once and hands
// every pending query its own clone (with its own Snapshot.Self), so k
// queries over one table pay one capture, not k.
func (c *ScanCursor) Clone(snap Snapshot) *ScanCursor {
	return &ScanCursor{tbl: c.tbl, snap: snap, ids: c.ids}
}

// Next appends up to max rows to buf and returns the extended slice; no
// growth means the cursor is exhausted. The error is always nil here and
// exists so future disk-backed cursors can fail mid-stream.
func (c *ScanCursor) Next(buf []types.Tuple, max int) ([]types.Tuple, error) {
	if max <= 0 {
		max = 1
	}
	want := len(buf) + max
	c.tbl.mu.RLock()
	for c.pos < len(c.ids) && len(buf) < want {
		id := c.ids[c.pos]
		c.pos++
		if row, ok := visibleAt(c.tbl.rows[id], c.snap); ok {
			buf = append(buf, row)
		}
	}
	c.tbl.mu.RUnlock()
	return buf, nil
}

// Rewind resets the cursor to the first row without re-capturing ids.
func (c *ScanCursor) Rewind() { c.pos = 0 }

// ProbeCursor streams the rows visible to a snapshot whose column
// positions cols equal vals, in RowID order — the streaming counterpart of
// MatchAsOf. When an index covers the column set, candidates come from its
// bucket; otherwise every chain is filtered (the scan fallback), so the
// enumeration is identical either way.
type ProbeCursor struct {
	tbl  *Table
	snap Snapshot
	cols []int
	vals []types.Value
	ids  []RowID // candidate chain ids, sorted ascending
	pos  int
}

// ProbeCursor opens an equality-probe cursor. The candidate ids are
// captured (and, for index buckets, copied) at open; visibility and the
// equality predicate are re-checked per batch against the visible row,
// because a bucket candidate may carry the key only in an invisible
// version.
func (t *Table) ProbeCursor(snap Snapshot, cols []int, vals []types.Value) (*ProbeCursor, error) {
	if len(cols) != len(vals) {
		return nil, fmt.Errorf("storage: probe on %s: %d columns vs %d values", t.name, len(cols), len(vals))
	}
	width := len(t.schema.Columns)
	for _, c := range cols {
		if c < 0 || c >= width {
			return nil, fmt.Errorf("storage: probe on %s: column position %d out of range", t.name, c)
		}
	}
	t.mu.RLock()
	var ids []RowID
	if ix := t.findIndexByCols(cols); ix != nil {
		// Bucket key in the index's own column order; the bucket slice is
		// mutated under the table's write lock, so copy under the read lock.
		key := make(types.Tuple, len(ix.columns))
		for i, c := range ix.columns {
			for j, probe := range cols {
				if probe == c {
					key[i] = vals[j]
					break
				}
			}
		}
		ids = append(ids, ix.buckets[key.Key()]...)
	} else {
		ids = make([]RowID, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &ProbeCursor{tbl: t, snap: snap, cols: cols, vals: vals, ids: ids}, nil
}

// Next appends up to max matching rows to buf and returns the extended
// slice; no growth means the cursor is exhausted.
func (c *ProbeCursor) Next(buf []types.Tuple, max int) ([]types.Tuple, error) {
	if max <= 0 {
		max = 1
	}
	want := len(buf) + max
	c.tbl.mu.RLock()
	for c.pos < len(c.ids) && len(buf) < want {
		id := c.ids[c.pos]
		c.pos++
		row, ok := visibleAt(c.tbl.rows[id], c.snap)
		if !ok {
			continue
		}
		match := true
		for i, col := range c.cols {
			if !row[col].Equal(c.vals[i]) {
				match = false
				break
			}
		}
		if match {
			buf = append(buf, row)
		}
	}
	c.tbl.mu.RUnlock()
	return buf, nil
}

// Rewind resets the cursor to the first candidate.
func (c *ProbeCursor) Rewind() { c.pos = 0 }
