package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func flightsSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "fno", Type: types.KindInt},
		types.Column{Name: "fdate", Type: types.KindDate},
		types.Column{Name: "dest", Type: types.KindString},
	)
}

func TestInsertGetUpdateDelete(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	row := types.Tuple{types.Int(122), types.MustDate("2011-05-03"), types.Str("LA")}
	id, err := tbl.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(id)
	if !ok || !got.Equal(row) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	// Updates return the old image.
	newRow := types.Tuple{types.Int(122), types.MustDate("2011-05-04"), types.Str("LA")}
	old, err := tbl.Update(id, newRow)
	if err != nil {
		t.Fatal(err)
	}
	if !old.Equal(row) {
		t.Errorf("old image = %v, want %v", old, row)
	}
	got, _ = tbl.Get(id)
	if !got.Equal(newRow) {
		t.Errorf("after update = %v", got)
	}
	// Deletes return the deleted image.
	del, err := tbl.Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Equal(newRow) {
		t.Errorf("deleted image = %v", del)
	}
	if _, ok := tbl.Get(id); ok {
		t.Error("row still present after delete")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestInsertValidatesSchema(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	if _, err := tbl.Insert(types.Tuple{types.Str("oops")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tbl.Insert(types.Tuple{types.Str("oops"), types.Date(0), types.Str("LA")}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestUpdateDeleteMissingRow(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	if _, err := tbl.Update(99, types.Tuple{types.Int(1), types.Date(0), types.Str("LA")}); err == nil {
		t.Error("update of missing row accepted")
	}
	if _, err := tbl.Delete(99); err == nil {
		t.Error("delete of missing row accepted")
	}
}

func TestInsertAtReinstatesIdentity(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	row := types.Tuple{types.Int(122), types.Date(0), types.Str("LA")}
	id, _ := tbl.Insert(row)
	if _, err := tbl.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertAt(id, row); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(id)
	if !ok || !got.Equal(row) {
		t.Fatal("row not reinstated under original id")
	}
	if err := tbl.InsertAt(id, row); err == nil {
		t.Error("InsertAt over occupied id accepted")
	}
	// RowIDs must not be reused after InsertAt bumps the counter.
	id2, _ := tbl.Insert(row)
	if id2 == id {
		t.Error("RowID reused")
	}
}

func TestInsertIsolatesCallerSlice(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	row := types.Tuple{types.Int(122), types.Date(0), types.Str("LA")}
	id, _ := tbl.Insert(row)
	row[0] = types.Int(999) // caller mutates its slice after insert
	got, _ := tbl.Get(id)
	if got[0].Int64() != 122 {
		t.Error("table stored a shared reference to caller's tuple")
	}
}

func TestScanDeterministicOrder(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(types.Tuple{types.Int(int64(i)), types.Date(0), types.Str("LA")}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int64
	tbl.Scan(func(_ RowID, row types.Tuple) bool {
		seen = append(seen, row[0].Int64())
		return true
	})
	for i, v := range seen {
		if v != int64(i) {
			t.Fatalf("scan order not RowID order: %v", seen)
		}
	}
	// Early stop.
	count := 0
	tbl.Scan(func(_ RowID, _ types.Tuple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("scan did not stop early: %d", count)
	}
}

func TestIndexLookup(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	if err := tbl.CreateIndex("by_dest", "dest"); err != nil {
		t.Fatal(err)
	}
	ids := make([]RowID, 0, 4)
	for i, dest := range []string{"LA", "Paris", "LA", "LA"} {
		id, _ := tbl.Insert(types.Tuple{types.Int(int64(100 + i)), types.Date(0), types.Str(dest)})
		ids = append(ids, id)
	}
	la, err := tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
	if err != nil {
		t.Fatal(err)
	}
	if len(la) != 3 {
		t.Fatalf("LA rows = %v", la)
	}
	// Update moves index entries.
	row, _ := tbl.Get(ids[1])
	row[2] = types.Str("LA")
	if _, err := tbl.Update(ids[1], row); err != nil {
		t.Fatal(err)
	}
	la, _ = tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
	if len(la) != 4 {
		t.Fatalf("after update LA rows = %v", la)
	}
	// Delete removes index entries.
	if _, err := tbl.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	la, _ = tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
	if len(la) != 3 {
		t.Fatalf("after delete LA rows = %v", la)
	}
	paris, _ := tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("Paris")})
	if len(paris) != 0 {
		t.Fatalf("Paris rows = %v", paris)
	}
}

func TestLookupWithoutIndexFallsBackToScan(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	tbl.Insert(types.Tuple{types.Int(122), types.Date(0), types.Str("LA")})
	tbl.Insert(types.Tuple{types.Int(123), types.Date(0), types.Str("Paris")})
	ids, err := tbl.Lookup([]string{"fno"}, types.Tuple{types.Int(123)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	if _, err := tbl.Lookup([]string{"bogus"}, types.Tuple{types.Int(1)}); err == nil {
		t.Error("lookup on missing column accepted")
	}
	if _, err := tbl.Lookup([]string{"fno"}, types.Tuple{}); err == nil {
		t.Error("column/key arity mismatch accepted")
	}
}

func TestIndexErrors(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	if err := tbl.CreateIndex("bad", "bogus"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := tbl.CreateIndex("x", "dest"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("x", "fno"); err == nil {
		t.Error("duplicate index name accepted")
	}
	if !tbl.HasIndexOn("dest") {
		t.Error("HasIndexOn(dest) = false")
	}
	if tbl.HasIndexOn("fno") {
		t.Error("HasIndexOn(fno) = true")
	}
}

func TestIndexBuiltFromExistingRows(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	tbl.Insert(types.Tuple{types.Int(122), types.Date(0), types.Str("LA")})
	tbl.Insert(types.Tuple{types.Int(123), types.Date(1), types.Str("LA")})
	if err := tbl.CreateIndex("by_dest", "dest"); err != nil {
		t.Fatal(err)
	}
	ids, _ := tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
	if len(ids) != 2 {
		t.Fatalf("index not backfilled: %v", ids)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("Flights", flightsSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("FLIGHTS", flightsSchema()); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if !c.Has("flights") {
		t.Error("Has(flights) = false")
	}
	tbl, err := c.Get("fLiGhTs")
	if err != nil || tbl.Name() != "Flights" {
		t.Errorf("Get = %v, %v", tbl, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("Get missing table accepted")
	}
	c.Create("Airlines", types.NewSchema(types.Column{Name: "fno", Type: types.KindInt}))
	names := c.Names()
	if len(names) != 2 || names[0] != "Airlines" || names[1] != "Flights" {
		t.Errorf("Names = %v", names)
	}
	if err := c.Drop("flights"); err != nil {
		t.Fatal(err)
	}
	if c.Has("Flights") {
		t.Error("table present after drop")
	}
	if err := c.Drop("flights"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestTruncate(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	tbl.CreateIndex("by_dest", "dest")
	tbl.Insert(types.Tuple{types.Int(122), types.Date(0), types.Str("LA")})
	tbl.Truncate()
	if tbl.Len() != 0 {
		t.Error("rows survive truncate")
	}
	ids, _ := tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
	if len(ids) != 0 {
		t.Error("index entries survive truncate")
	}
}

func TestConcurrentInsertsAndScans(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	tbl.CreateIndex("by_dest", "dest")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tbl.Insert(types.Tuple{types.Int(int64(g*1000 + i)), types.Date(0), types.Str("LA")})
				tbl.Scan(func(_ RowID, _ types.Tuple) bool { return false })
				tbl.Lookup([]string{"dest"}, types.Tuple{types.Str("LA")})
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", tbl.Len())
	}
}

func TestLookupMatchesScanQuick(t *testing.T) {
	// Property: for random data, indexed lookup returns exactly the rows a
	// full scan predicate would.
	f := func(dests []uint8) bool {
		tbl := NewTable("T", flightsSchema())
		tbl.CreateIndex("by_dest", "dest")
		names := []string{"LA", "Paris", "NYC"}
		for i, d := range dests {
			tbl.Insert(types.Tuple{types.Int(int64(i)), types.Date(0), types.Str(names[int(d)%len(names)])})
		}
		for _, want := range names {
			ids, err := tbl.Lookup([]string{"dest"}, types.Tuple{types.Str(want)})
			if err != nil {
				return false
			}
			var scan []RowID
			tbl.Scan(func(id RowID, row types.Tuple) bool {
				if row[2].Str64() == want {
					scan = append(scan, id)
				}
				return true
			})
			if len(ids) != len(scan) {
				return false
			}
			for i := range ids {
				if ids[i] != scan[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
