package storage

import (
	"testing"

	"repro/internal/types"
)

func kv(id int64, town string) types.Tuple {
	return types.Tuple{types.Int(id), types.Str(town)}
}

func townSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "town", Type: types.KindString},
	)
}

func TestUncommittedVersionInvisibleUntilStamped(t *testing.T) {
	tbl := NewTable("T", townSchema())
	id, err := tbl.InsertTx(7, kv(1, "SFO"))
	if err != nil {
		t.Fatal(err)
	}
	// Invisible to committed-state readers and to snapshots...
	if _, ok := tbl.Get(id); ok {
		t.Error("uncommitted insert visible to committed-state reader")
	}
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 99}, id); ok {
		t.Error("uncommitted insert visible to foreign snapshot")
	}
	// ...but visible to its own writer, with and without a snapshot.
	if _, ok := tbl.GetTx(7, id); !ok {
		t.Error("writer cannot read its own uncommitted insert")
	}
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 0, Self: 7}, id); !ok {
		t.Error("writer's snapshot hides its own uncommitted insert")
	}
	tbl.Stamp(7, id, 5)
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 4}, id); ok {
		t.Error("commit at CSN 5 visible to snapshot at 4")
	}
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 5}, id); !ok {
		t.Error("commit at CSN 5 invisible to snapshot at 5")
	}
	if got := tbl.LastCSN(); got != 5 {
		t.Errorf("LastCSN = %d, want 5", got)
	}
}

func TestSnapshotSeesOldVersionAfterUpdateAndDelete(t *testing.T) {
	tbl := NewTable("T", townSchema())
	id, _ := tbl.InsertTx(1, kv(1, "SFO"))
	tbl.Stamp(1, id, 1)
	if _, err := tbl.UpdateTx(2, id, kv(1, "NYC")); err != nil {
		t.Fatal(err)
	}
	tbl.Stamp(2, id, 2)
	old, ok := tbl.GetAsOf(Snapshot{CSN: 1}, id)
	if !ok || old[1].Str64() != "SFO" {
		t.Fatalf("snapshot at 1 sees %v, want SFO", old)
	}
	cur, ok := tbl.GetAsOf(Snapshot{CSN: 2}, id)
	if !ok || cur[1].Str64() != "NYC" {
		t.Fatalf("snapshot at 2 sees %v, want NYC", cur)
	}
	if _, err := tbl.DeleteTx(3, id); err != nil {
		t.Fatal(err)
	}
	tbl.Stamp(3, id, 3)
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 2}, id); !ok {
		t.Error("snapshot at 2 lost the row after a later delete")
	}
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 3}, id); ok {
		t.Error("snapshot at 3 sees a deleted row")
	}
	if csn, ok := tbl.CommittedCSN(id); !ok || csn != 3 {
		t.Errorf("CommittedCSN = %d, %v, want 3", csn, ok)
	}
}

func TestRollbackRemovesUncommittedVersions(t *testing.T) {
	tbl := NewTable("T", townSchema())
	tbl.CreateIndex("by_town", "town")
	id, _ := tbl.InsertTx(1, kv(1, "SFO"))
	tbl.Stamp(1, id, 1)
	if _, err := tbl.UpdateTx(2, id, kv(1, "NYC")); err != nil {
		t.Fatal(err)
	}
	tbl.Rollback(2, id)
	row, ok := tbl.Get(id)
	if !ok || row[1].Str64() != "SFO" {
		t.Fatalf("after rollback row = %v, want SFO", row)
	}
	if ids, _ := tbl.Lookup([]string{"town"}, types.Tuple{types.Str("NYC")}); len(ids) != 0 {
		t.Errorf("rolled-back key still matches: %v", ids)
	}
	// Rolling back an uncommitted insert removes the chain entirely.
	id2, _ := tbl.InsertTx(3, kv(2, "LAX"))
	tbl.Rollback(3, id2)
	if _, ok := tbl.GetTx(3, id2); ok {
		t.Error("rolled-back insert still readable by its writer")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestIndexedLookupFiltersByVisibility(t *testing.T) {
	tbl := NewTable("T", townSchema())
	tbl.CreateIndex("by_town", "town")
	id, _ := tbl.InsertTx(1, kv(1, "SFO"))
	tbl.Stamp(1, id, 1)
	if _, err := tbl.UpdateTx(2, id, kv(1, "NYC")); err != nil {
		t.Fatal(err)
	}
	tbl.Stamp(2, id, 2)
	// Old snapshot finds the row under its old key, not its new one.
	oldSnap := Snapshot{CSN: 1}
	if ids, _ := tbl.LookupAsOf(oldSnap, []string{"town"}, types.Tuple{types.Str("SFO")}); len(ids) != 1 {
		t.Errorf("old snapshot lookup(SFO) = %v, want the row", ids)
	}
	if ids, _ := tbl.LookupAsOf(oldSnap, []string{"town"}, types.Tuple{types.Str("NYC")}); len(ids) != 0 {
		t.Errorf("old snapshot lookup(NYC) = %v, want none", ids)
	}
	newSnap := Snapshot{CSN: 2}
	if ids, _ := tbl.LookupAsOf(newSnap, []string{"town"}, types.Tuple{types.Str("NYC")}); len(ids) != 1 {
		t.Errorf("new snapshot lookup(NYC) = %v, want the row", ids)
	}
	if ids, _ := tbl.LookupAsOf(newSnap, []string{"town"}, types.Tuple{types.Str("SFO")}); len(ids) != 0 {
		t.Errorf("new snapshot lookup(SFO) = %v, want none", ids)
	}
}

func TestScanAsOfIsStableAgainstLaterCommits(t *testing.T) {
	tbl := NewTable("T", townSchema())
	for i := int64(0); i < 5; i++ {
		id, _ := tbl.InsertTx(1, kv(i, "SFO"))
		tbl.Stamp(1, id, 1)
	}
	snap := Snapshot{CSN: 1}
	id, _ := tbl.InsertTx(2, kv(99, "NYC"))
	tbl.Stamp(2, id, 2)
	if got := len(tbl.AllAsOf(snap)); got != 5 {
		t.Errorf("snapshot scan sees %d rows, want 5", got)
	}
	if got := len(tbl.All()); got != 6 {
		t.Errorf("latest scan sees %d rows, want 6", got)
	}
}

func TestGCPrunesBelowWatermark(t *testing.T) {
	tbl := NewTable("T", townSchema())
	tbl.CreateIndex("by_town", "town")
	id, _ := tbl.InsertTx(1, kv(1, "SFO"))
	tbl.Stamp(1, id, 1)
	for i, town := range []string{"NYC", "LAX", "SEA"} {
		if _, err := tbl.UpdateTx(uint64(i+2), id, kv(1, town)); err != nil {
			t.Fatal(err)
		}
		tbl.Stamp(uint64(i+2), id, uint64(i+2))
	}
	if got := tbl.VersionCount(); got != 4 {
		t.Fatalf("VersionCount = %d, want 4", got)
	}
	// Watermark 3 keeps the version at CSN 3 (the boundary a snapshot at 3
	// still reads) and everything newer.
	if pruned := tbl.GC(3); pruned != 2 {
		t.Errorf("GC pruned %d, want 2", pruned)
	}
	if row, ok := tbl.GetAsOf(Snapshot{CSN: 3}, id); !ok || row[1].Str64() != "LAX" {
		t.Errorf("boundary snapshot sees %v, want LAX", row)
	}
	if ids, _ := tbl.Lookup([]string{"town"}, types.Tuple{types.Str("SFO")}); len(ids) != 0 {
		t.Errorf("pruned key still indexed: %v", ids)
	}
	// A committed tombstone below the watermark removes the chain entirely.
	id2, _ := tbl.InsertTx(10, kv(2, "OAK"))
	tbl.Stamp(10, id2, 10)
	if _, err := tbl.DeleteTx(11, id2); err != nil {
		t.Fatal(err)
	}
	tbl.Stamp(11, id2, 11)
	tbl.GC(11)
	if _, ok := tbl.GetAsOf(Snapshot{CSN: 11}, id2); ok {
		t.Error("deleted chain still visible after GC")
	}
	if ids, _ := tbl.Lookup([]string{"town"}, types.Tuple{types.Str("OAK")}); len(ids) != 0 {
		t.Errorf("deleted chain still indexed: %v", ids)
	}
}

func TestGCRetainsUncommittedVersions(t *testing.T) {
	tbl := NewTable("T", townSchema())
	id, _ := tbl.InsertTx(1, kv(1, "SFO"))
	tbl.Stamp(1, id, 1)
	if _, err := tbl.UpdateTx(2, id, kv(1, "NYC")); err != nil {
		t.Fatal(err)
	}
	tbl.GC(100)
	if row, ok := tbl.GetTx(2, id); !ok || row[1].Str64() != "NYC" {
		t.Errorf("uncommitted version lost by GC: %v, %v", row, ok)
	}
	tbl.Stamp(2, id, 101)
	if row, ok := tbl.Get(id); !ok || row[1].Str64() != "NYC" {
		t.Errorf("stamped version after GC: %v, %v", row, ok)
	}
}
