package storage

import (
	"testing"

	"repro/internal/types"
)

// cursorTable builds a table with a version-chain zoo: committed-at-load
// rows, rows committed at later CSNs, an update chain, a committed delete,
// and uncommitted writes of transaction 7 (an insert and a delete), so
// snapshot resolution has real work at every visibility boundary.
func cursorTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("Flights", flightsSchema())
	mustInsert := func(fno int64, date, dest string) RowID {
		id, err := tbl.Insert(types.Tuple{types.Int(fno), types.MustDate(date), types.Str(dest)})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mustInsert(122, "2011-05-03", "LA")
	idB := mustInsert(123, "2011-05-03", "LA")
	idC := mustInsert(124, "2011-05-03", "LA")

	// Row B updated at CSN 10 (dest changes), row C deleted at CSN 20.
	if _, err := tbl.UpdateCSN(idB, types.Tuple{types.Int(123), types.MustDate("2011-05-03"), types.Str("Paris")}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DeleteCSN(idC, 20); err != nil {
		t.Fatal(err)
	}
	// A row born at CSN 15.
	if err := tbl.InsertAtCSN(RowID(50), types.Tuple{types.Int(235), types.MustDate("2011-05-05"), types.Str("Paris")}, 15); err != nil {
		t.Fatal(err)
	}
	// Transaction 7: an uncommitted insert and an uncommitted delete of A.
	if _, err := tbl.InsertTx(7, types.Tuple{types.Int(300), types.MustDate("2011-05-06"), types.Str("Tokyo")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.DeleteTx(7, RowID(0)); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func collectAsOf(tbl *Table, snap Snapshot) []types.Tuple {
	var out []types.Tuple
	tbl.ScanAsOf(snap, func(_ RowID, row types.Tuple) bool {
		out = append(out, row.Clone())
		return true
	})
	return out
}

func drainCursor(t *testing.T, c *ScanCursor, batch int) []types.Tuple {
	t.Helper()
	var out []types.Tuple
	buf := make([]types.Tuple, 0, batch)
	for {
		got, err := c.Next(buf[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			return out
		}
		for _, row := range got {
			out = append(out, row.Clone())
		}
	}
}

func tuplesEqual(a, b []types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestScanCursorMatchesScanAsOf: across snapshot CSNs, Self views, and
// batch sizes, batch pulls must enumerate exactly the rows ScanAsOf yields,
// in the same order.
func TestScanCursorMatchesScanAsOf(t *testing.T) {
	tbl := cursorTable(t)
	snaps := []Snapshot{
		{CSN: 0}, {CSN: 5}, {CSN: 10}, {CSN: 15}, {CSN: 20}, {CSN: 99},
		{CSN: 99, Self: 7}, // tx 7's view: own insert visible, own delete hides row A
	}
	for _, snap := range snaps {
		want := collectAsOf(tbl, snap)
		for _, batch := range []int{1, 2, 3, 7, 64} {
			got := drainCursor(t, tbl.ScanCursorAsOf(snap), batch)
			if !tuplesEqual(got, want) {
				t.Errorf("snap %+v batch %d: cursor %v, want %v", snap, batch, got, want)
			}
		}
	}
}

// TestScanCursorRewind: Rewind replays the identical enumeration without a
// fresh capture (no extra scan counted).
func TestScanCursorRewind(t *testing.T) {
	tbl := cursorTable(t)
	snap := Snapshot{CSN: 99}
	cur := tbl.ScanCursorAsOf(snap)
	first := drainCursor(t, cur, 2)
	scansAfterOpen := tbl.ScanCount()
	cur.Rewind()
	second := drainCursor(t, cur, 3)
	if !tuplesEqual(first, second) {
		t.Errorf("rewound enumeration %v != first %v", second, first)
	}
	if got := tbl.ScanCount(); got != scansAfterOpen {
		t.Errorf("Rewind recaptured: scans %d -> %d", scansAfterOpen, got)
	}
}

// TestScanCursorCloneSharesCapture: N clones of one base cursor cost one
// scan capture total, yet resolve visibility through their own snapshots —
// the round cursor cache's contract.
func TestScanCursorCloneSharesCapture(t *testing.T) {
	tbl := cursorTable(t)
	before := tbl.ScanCount()
	base := tbl.ScanCursorAsOf(Snapshot{CSN: 99})
	shared := drainCursor(t, base.Clone(Snapshot{CSN: 99}), 4)
	private := drainCursor(t, base.Clone(Snapshot{CSN: 99, Self: 7}), 4)
	if got := tbl.ScanCount() - before; got != 1 {
		t.Errorf("scan captures = %d, want 1", got)
	}
	if tuplesEqual(shared, private) {
		t.Error("Self view should differ from committed view (uncommitted insert + delete)")
	}
	if !tuplesEqual(shared, collectAsOf(tbl, Snapshot{CSN: 99})) {
		t.Errorf("shared clone diverged from ScanAsOf")
	}
	if !tuplesEqual(private, collectAsOf(tbl, Snapshot{CSN: 99, Self: 7})) {
		t.Errorf("Self clone diverged from ScanAsOf")
	}
}

// TestScanCursorStableUnderConcurrentCommits: rows committed after the
// cursor's snapshot CSN — even mid-iteration — must never surface, and the
// pre-capture rows must all surface. (Chain ids are captured at open;
// visibility is resolved per batch.)
func TestScanCursorStableUnderConcurrentCommits(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	for i := int64(0); i < 10; i++ {
		if _, err := tbl.Insert(types.Tuple{types.Int(i), types.MustDate("2011-05-03"), types.Str("LA")}); err != nil {
			t.Fatal(err)
		}
	}
	snap := Snapshot{CSN: 5}
	cur := tbl.ScanCursorAsOf(snap)
	first, err := cur.Next(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A "later transaction" commits at CSN 8 > snap.CSN mid-iteration.
	if err := tbl.InsertAtCSN(RowID(100), types.Tuple{types.Int(999), types.MustDate("2011-05-09"), types.Str("NYC")}, 8); err != nil {
		t.Fatal(err)
	}
	rest := drainCursor(t, cur, 4)
	got := append(append([]types.Tuple{}, first...), rest...)
	if len(got) != 10 {
		t.Fatalf("saw %d rows, want the 10 pre-snapshot rows only", len(got))
	}
	for _, row := range got {
		if row[0].Int64() == 999 {
			t.Error("post-snapshot commit leaked into cursor")
		}
	}
}

func drainProbe(t *testing.T, c *ProbeCursor, batch int) []types.Tuple {
	t.Helper()
	var out []types.Tuple
	buf := make([]types.Tuple, 0, batch)
	for {
		got, err := c.Next(buf[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			return out
		}
		for _, row := range got {
			out = append(out, row.Clone())
		}
	}
}

// TestProbeCursorMatchesMatchAsOf: with and without a covering index, batch
// probe pulls must enumerate exactly MatchAsOf's rows in the same order.
func TestProbeCursorMatchesMatchAsOf(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		tbl := cursorTable(t)
		if indexed {
			if err := tbl.CreateIndex("by_dest", "dest"); err != nil {
				t.Fatal(err)
			}
		}
		for _, snap := range []Snapshot{{CSN: 5}, {CSN: 99}, {CSN: 99, Self: 7}} {
			for _, dest := range []string{"LA", "Paris", "Tokyo", "Nowhere"} {
				cols, vals := []int{2}, []types.Value{types.Str(dest)}
				want, err := tbl.MatchAsOf(snap, cols, vals)
				if err != nil {
					t.Fatal(err)
				}
				for _, batch := range []int{1, 3, 64} {
					cur, err := tbl.ProbeCursor(snap, cols, vals)
					if err != nil {
						t.Fatal(err)
					}
					got := drainProbe(t, cur, batch)
					if !tuplesEqual(got, want) {
						t.Errorf("indexed=%v snap %+v dest %s batch %d: cursor %v, want %v",
							indexed, snap, dest, batch, got, want)
					}
				}
			}
		}
	}
}

// TestProbeCursorRejectsBadArgs mirrors MatchAsOf's argument validation.
func TestProbeCursorRejectsBadArgs(t *testing.T) {
	tbl := cursorTable(t)
	if _, err := tbl.ProbeCursor(Snapshot{}, []int{0, 1}, []types.Value{types.Int(1)}); err == nil {
		t.Error("cols/vals arity mismatch accepted")
	}
	if _, err := tbl.ProbeCursor(Snapshot{}, []int{9}, []types.Value{types.Int(1)}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

// TestScanCursorNextZeroAlloc gates the cursor pull hot path: a warm Next
// into a pre-sized buffer performs no allocations — rows are references
// into the immutable version chains, never clones.
func TestScanCursorNextZeroAlloc(t *testing.T) {
	tbl := NewTable("Flights", flightsSchema())
	for i := int64(0); i < 4096; i++ {
		if _, err := tbl.Insert(types.Tuple{types.Int(i), types.MustDate("2011-05-03"), types.Str("LA")}); err != nil {
			t.Fatal(err)
		}
	}
	cur := tbl.ScanCursorAsOf(Snapshot{CSN: 0})
	buf := make([]types.Tuple, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		got, err := cur.Next(buf[:0], 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			cur.Rewind()
		}
	})
	if allocs != 0 {
		t.Errorf("ScanCursor.Next allocates %.1f objects per pull, want 0", allocs)
	}

	pcur, err := tbl.ProbeCursor(Snapshot{CSN: 0}, []int{2}, []types.Value{types.Str("LA")})
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		got, err := pcur.Next(buf[:0], 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			pcur.Rewind()
		}
	})
	if allocs != 0 {
		t.Errorf("ProbeCursor.Next allocates %.1f objects per pull, want 0", allocs)
	}
}
