package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

// Cross-codec property: for every wire message, the binary codec and the
// JSON codec decode to the same struct. The JSON path is the v1 protocol
// that every remote test already exercises end to end, so it acts as the
// oracle; the binary path must be observationally identical, including
// the err_code sentinel mapping that errors.Is depends on.

// genValue draws one types.Value covering every kind, with zero/empty and
// extreme edge cases. Dates stay within years JSON can round-trip (the
// JSON codec ships dates in display form).
func genValue(rng *rand.Rand) types.Value {
	switch rng.Intn(12) {
	case 0:
		return types.Null()
	case 1:
		return types.Int(0)
	case 2:
		return types.Int(math.MaxInt64)
	case 3:
		return types.Int(math.MinInt64)
	case 4:
		return types.Int(rng.Int63() - rng.Int63())
	case 5:
		return types.Str("")
	case 6:
		return types.Str("héllo – 世界 \x00\n\"")
	case 7:
		return types.Str(randString(rng, rng.Intn(40)))
	case 8:
		return types.Bool(true)
	case 9:
		return types.Bool(false)
	case 10:
		return types.Date(int64(rng.Intn(80000) - 20000)) // ~1915..2189
	default:
		return types.Date(0)
	}
}

// alphabet is drawn per rune so generated strings are valid UTF-8: the
// JSON oracle cannot carry invalid UTF-8 (encoding/json substitutes
// U+FFFD), and the protocol never does — SQL text and error strings are
// Go strings. Control bytes, quotes, and multibyte runes all appear.
var alphabet = []rune("abcdefghijklmnopqrstuvwxyzABC =',;\"\\{}[]\x00\n\x7fé世–")

func randString(rng *rand.Rand, n int) string {
	b := make([]rune, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, alphabet[rng.Intn(len(alphabet))])
	}
	return string(b)
}

func genTuple(rng *rand.Rand) types.Tuple {
	t := make(types.Tuple, 0, rng.Intn(5))
	for i := 0; i < cap(t); i++ {
		t = append(t, genValue(rng))
	}
	return t
}

var allOps = []string{
	OpPing, OpExec, OpDDL, OpSubmit, OpWait, OpPoll,
	OpSessionOpen, OpSessionExec, OpSessionClose, OpStats, OpTables, OpHello,
	OpMetrics, OpTrace,
}

var allErrCodes = []string{
	"", ErrCodeTimeout, ErrCodeEngineClosed, ErrCodeRolledBack, ErrCodeDraining,
	ErrCodeOverloaded,
}

func genRequest(rng *rand.Rand) Request {
	return Request{
		ID:      rng.Uint64() >> uint(rng.Intn(64)),
		Op:      allOps[rng.Intn(len(allOps))],
		SQL:     randString(rng, rng.Intn(60)),
		Handle:  rng.Uint64() >> uint(rng.Intn(64)),
		Session: rng.Uint64() >> uint(rng.Intn(64)),
		Codec:   []string{"", CodecJSON, CodecBinary}[rng.Intn(3)],
		Idem:    rng.Uint64() >> uint(rng.Intn(64)),
		Client:  []string{"", randString(rng, 1+rng.Intn(16))}[rng.Intn(2)],
		Trace:   []uint64{0, rng.Uint64() >> uint(rng.Intn(64))}[rng.Intn(2)],
	}
}

func genResult(rng *rand.Rand) *Result {
	res := &Result{RowsAffected: rng.Intn(100) - 10}
	for i := rng.Intn(4); i > 0; i-- {
		res.Columns = append(res.Columns, randString(rng, rng.Intn(12)))
	}
	for i := rng.Intn(5); i > 0; i-- {
		res.Rows = append(res.Rows, genTuple(rng))
	}
	return res
}

func genResponse(rng *rand.Rand) Response {
	resp := Response{
		ID:      rng.Uint64() >> uint(rng.Intn(64)),
		OK:      rng.Intn(2) == 0,
		Error:   randString(rng, rng.Intn(30)),
		ErrCode: allErrCodes[rng.Intn(len(allErrCodes))],
		Version: rng.Intn(5),
		Codec:   []string{"", CodecJSON, CodecBinary}[rng.Intn(3)],
		Handle:  rng.Uint64() >> uint(rng.Intn(64)),
		Session: rng.Uint64() >> uint(rng.Intn(64)),
		Done:    rng.Intn(2) == 0,
		Trace:   []uint64{0, rng.Uint64() >> uint(rng.Intn(64))}[rng.Intn(2)],
	}
	if rng.Intn(3) == 0 {
		resp.Result = genResult(rng)
	}
	if rng.Intn(3) == 0 {
		resp.Outcome = &Outcome{
			Status:   []string{"COMMITTED", "ROLLED-BACK", "TIMED-OUT", "FAILED", ""}[rng.Intn(5)],
			Error:    randString(rng, rng.Intn(20)),
			ErrCode:  allErrCodes[rng.Intn(len(allErrCodes))],
			Attempts: rng.Intn(50),
		}
	}
	if rng.Intn(4) == 0 {
		resp.Stats = json.RawMessage(fmt.Sprintf(`{"commits":%d,"runs":%d}`, rng.Intn(1000), rng.Intn(100)))
	}
	for i := rng.Intn(3); i > 0; i-- {
		resp.Tables = append(resp.Tables, TableInfo{
			Name:   randString(rng, 1+rng.Intn(10)),
			Schema: randString(rng, rng.Intn(30)),
			Rows:   rng.Intn(10000),
		})
	}
	return resp
}

// frameRoundTrip encodes msg as one frame with codec c and reads the
// payload back through the shared frame layer.
func framePayload(t *testing.T, frame []byte) []byte {
	t.Helper()
	payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("re-read frame: %v", err)
	}
	return payload
}

func TestCodecCrossPropertyRequests(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 3000; i++ {
		req := genRequest(rng)

		jf, err := JSON.AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatalf("#%d json encode: %v", i, err)
		}
		bf, err := Binary.AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatalf("#%d binary encode: %v", i, err)
		}
		var viaJSON, viaBinary Request
		if err := JSON.DecodeRequest(framePayload(t, jf), &viaJSON); err != nil {
			t.Fatalf("#%d json decode: %v", i, err)
		}
		if err := Binary.DecodeRequest(framePayload(t, bf), &viaBinary); err != nil {
			t.Fatalf("#%d binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Fatalf("#%d request diverges:\n json:   %+v\n binary: %+v\n orig:   %+v", i, viaJSON, viaBinary, req)
		}
		if !reflect.DeepEqual(viaBinary, req) {
			t.Fatalf("#%d binary not lossless:\n got:  %+v\n want: %+v", i, viaBinary, req)
		}
	}
}

func TestCodecCrossPropertyResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 3000; i++ {
		resp := genResponse(rng)

		jf, err := JSON.AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatalf("#%d json encode: %v", i, err)
		}
		bf, err := Binary.AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatalf("#%d binary encode: %v", i, err)
		}
		var viaJSON, viaBinary Response
		if err := JSON.DecodeResponse(framePayload(t, jf), &viaJSON); err != nil {
			t.Fatalf("#%d json decode: %v", i, err)
		}
		if err := Binary.DecodeResponse(framePayload(t, bf), &viaBinary); err != nil {
			t.Fatalf("#%d binary decode: %v", i, err)
		}
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Fatalf("#%d response diverges:\n json:   %+v\n binary: %+v\n orig:   %+v", i, viaJSON, viaBinary, resp)
		}
	}
}

// TestCodecSentinelErrorsSurviveBinary pins the err_code chain end to end:
// an engine sentinel encoded on the server side must satisfy errors.Is
// after a binary round trip, exactly as it does after a JSON one.
func TestCodecSentinelErrorsSurviveBinary(t *testing.T) {
	sentinels := []error{core.ErrTimeout, core.ErrEngineClosed, core.ErrRolledBack, core.ErrDraining}
	for _, sentinel := range sentinels {
		o := core.Outcome{Status: core.StatusTimedOut, Err: fmt.Errorf("wrapped: %w", sentinel), Attempts: 3}
		resp := Response{ID: 7, OK: true, Done: true, Outcome: FromOutcome(o)}
		for _, c := range []Codec{JSON, Binary} {
			frame, err := c.AppendResponseFrame(nil, &resp)
			if err != nil {
				t.Fatalf("%s encode: %v", c.Name(), err)
			}
			var got Response
			if err := c.DecodeResponse(framePayload(t, frame), &got); err != nil {
				t.Fatalf("%s decode: %v", c.Name(), err)
			}
			if got.Outcome == nil {
				t.Fatalf("%s: outcome lost", c.Name())
			}
			back := got.Outcome.ToOutcome()
			if !errors.Is(back.Err, sentinel) {
				t.Errorf("%s: errors.Is lost for %v: got %v", c.Name(), sentinel, back.Err)
			}
			if back.Attempts != 3 || back.Status != core.StatusTimedOut {
				t.Errorf("%s: outcome fields drifted: %+v", c.Name(), back)
			}
		}
	}
}

// TestBinaryEncodeExactSize pins the ≤1-alloc discipline: the encoder's
// size computation must match the bytes actually emitted, and encoding
// into a pre-sized buffer must not allocate.
func TestBinaryEncodeExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 500; i++ {
		resp := genResponse(rng)
		frame, err := Binary.AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatal(err)
		}
		if want := headerSize + binaryResponseSize(&resp); len(frame) != want {
			t.Fatalf("#%d size mismatch: frame %d bytes, computed %d", i, len(frame), want)
		}
		req := genRequest(rng)
		frame, err = Binary.AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		if want := headerSize + binaryRequestSize(&req); len(frame) != want {
			t.Fatalf("#%d request size mismatch: frame %d bytes, computed %d", i, len(frame), want)
		}
	}

	resp := Response{ID: 42, OK: true, Result: &Result{
		Columns: []string{"who"},
		Rows:    []types.Tuple{{types.Str("LA")}, {types.Int(7)}},
	}}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := Binary.AppendResponseFrame(buf, &resp)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if allocs > 0 {
		t.Errorf("encode into pre-sized buffer allocates %v times", allocs)
	}
}

// TestBinaryTraceOptionality pins the compat contract of the trace field:
// a Trace=0 request encodes to exactly the PR 6 byte layout (no trailing
// uvarint at all), a traced frame round-trips, and attaching a trace to
// the encode hot path costs zero allocations either way.
func TestBinaryTraceOptionality(t *testing.T) {
	base := Request{ID: 9, Op: OpSubmit, SQL: "BEGIN; COMMIT"}
	traced := base
	traced.Trace = 0xdeadbeefcafe

	plain, err := Binary.AppendRequestFrame(nil, &base)
	if err != nil {
		t.Fatal(err)
	}
	withTrace, err := Binary.AppendRequestFrame(nil, &traced)
	if err != nil {
		t.Fatal(err)
	}
	plainPayload := framePayload(t, plain)
	tracedPayload := framePayload(t, withTrace)
	if want := len(plainPayload) + uvlen(traced.Trace); len(tracedPayload) != want {
		t.Fatalf("traced payload %d bytes, want plain %d + uvarint %d", len(tracedPayload), len(plainPayload), uvlen(traced.Trace))
	}
	if !bytes.Equal(tracedPayload[:len(plainPayload)], plainPayload) {
		t.Fatal("traced payload does not extend the plain encoding byte-for-byte")
	}
	var back Request
	if err := Binary.DecodeRequest(framePayload(t, withTrace), &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != traced.Trace {
		t.Fatalf("trace id lost: got %#x want %#x", back.Trace, traced.Trace)
	}
	var backPlain Request
	if err := Binary.DecodeRequest(framePayload(t, plain), &backPlain); err != nil {
		t.Fatal(err)
	}
	if backPlain.Trace != 0 {
		t.Fatalf("traceless frame decoded trace %#x", backPlain.Trace)
	}

	for name, req := range map[string]*Request{"absent": &base, "present": &traced} {
		buf := make([]byte, 0, 4096)
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := Binary.AppendRequestFrame(buf, req); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("request encode (trace %s) allocates %v times", name, allocs)
		}
	}
}

// TestBinaryDecodeRejectsLyingCounts: a frame whose element count
// announces more elements than the payload has bytes must be rejected
// before any allocation sized by that count.
func TestBinaryDecodeRejectsLyingCounts(t *testing.T) {
	resp := Response{ID: 1, OK: true, Result: &Result{Rows: []types.Tuple{{types.Int(1)}}}}
	frame, err := Binary.AppendResponseFrame(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	payload := framePayload(t, frame)
	// Corrupt every single byte in turn; decode must fail cleanly or
	// succeed, never panic or over-allocate.
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xff
		var got Response
		_ = Binary.DecodeResponse(mut, &got)
	}
	// A directly lying row count: uvarint 2^62 rows in a tiny payload.
	var r Response
	lying := []byte{1 /*id*/, respFlagResult | respFlagOK /*flags*/, 0 /*version*/, 0, 0, 0, 0, 0 /*hdl,ses,strs*/, 0 /*ncols*/}
	lying = append(lying, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f) // nrows = huge
	if err := Binary.DecodeResponse(lying, &r); err == nil {
		t.Fatal("lying row count decoded without error")
	}
	// Truncations of a valid payload must all error (or stop cleanly),
	// never panic.
	for i := 0; i < len(payload); i++ {
		var got Response
		_ = Binary.DecodeResponse(payload[:i], &got)
	}
}
