package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/types"
)

// The binary payload encoding ("wire protocol v2"). Layout discipline
// follows types.EncodeTuple: every message's encoded size is computed
// exactly before encoding, so one frame is one grow (≤1 allocation) and
// the length prefix is written without buffering the payload separately.
//
// Integers are varints (uvarint for IDs/counts, zig-zag varint for
// signed fields), strings and byte blobs are length-prefixed, tuples use
// the types package's self-describing value encoding — the same bytes the
// WAL writes. Optional response sections are gated by a flags byte.
//
// Request payload:
//
//	u8      opcode
//	uvarint id
//	uvarint handle
//	uvarint session
//	uvarint idem
//	string  sql
//	string  codec
//	string  client
//	[uvarint trace]  — present only when Trace != 0; decoders read it iff
//	                   payload bytes remain, so a traceless frame is
//	                   byte-identical to the PR 6 encoding
//
// Response payload:
//
//	uvarint id
//	u8      flags (bit0 OK, bit1 Done, bit2 Result, bit3 Outcome,
//	               bit4 Stats, bit5 Tables, bit6 Trace)
//	varint  version
//	uvarint handle
//	uvarint session
//	string  error
//	string  err_code
//	string  codec
//	[Result]  uvarint ncols, ncols×string; uvarint nrows, nrows×tuple;
//	          varint rows_affected
//	[Outcome] string status; string error; string err_code; varint attempts
//	[Stats]   bytes (raw JSON, opaque to the codec)
//	[Tables]  uvarint n, n×(string name; string schema; varint rows)
//	[Trace]   uvarint trace id
//
// Decoding is strict: unknown opcodes, truncated fields, element counts
// exceeding the remaining payload (rejected before allocating), and
// trailing garbage are all errors. The fuzz wall in binary_fuzz_test.go
// holds the decoder to "never panic, never over-allocate".

// Binary opcodes, one per Op* string.
const (
	opcodePing         = 1
	opcodeExec         = 2
	opcodeDDL          = 3
	opcodeSubmit       = 4
	opcodeWait         = 5
	opcodePoll         = 6
	opcodeSessionOpen  = 7
	opcodeSessionExec  = 8
	opcodeSessionClose = 9
	opcodeStats        = 10
	opcodeTables       = 11
	opcodeHello        = 12
	opcodeMetrics      = 13
	opcodeTrace        = 14
	opcodePlacement    = 15
	opcodeShardOffer   = 16
	opcodeShardPrepare = 17
	opcodeShardVote    = 18
	opcodeShardDecide  = 19
	opcodeShardStatus  = 20
)

func opcodeOf(op string) (byte, bool) {
	switch op {
	case OpPing:
		return opcodePing, true
	case OpExec:
		return opcodeExec, true
	case OpDDL:
		return opcodeDDL, true
	case OpSubmit:
		return opcodeSubmit, true
	case OpWait:
		return opcodeWait, true
	case OpPoll:
		return opcodePoll, true
	case OpSessionOpen:
		return opcodeSessionOpen, true
	case OpSessionExec:
		return opcodeSessionExec, true
	case OpSessionClose:
		return opcodeSessionClose, true
	case OpStats:
		return opcodeStats, true
	case OpTables:
		return opcodeTables, true
	case OpHello:
		return opcodeHello, true
	case OpMetrics:
		return opcodeMetrics, true
	case OpTrace:
		return opcodeTrace, true
	case OpPlacement:
		return opcodePlacement, true
	case OpShardOffer:
		return opcodeShardOffer, true
	case OpShardPrepare:
		return opcodeShardPrepare, true
	case OpShardVote:
		return opcodeShardVote, true
	case OpShardDecide:
		return opcodeShardDecide, true
	case OpShardStatus:
		return opcodeShardStatus, true
	}
	return 0, false
}

func opOf(code byte) (string, bool) {
	switch code {
	case opcodePing:
		return OpPing, true
	case opcodeExec:
		return OpExec, true
	case opcodeDDL:
		return OpDDL, true
	case opcodeSubmit:
		return OpSubmit, true
	case opcodeWait:
		return OpWait, true
	case opcodePoll:
		return OpPoll, true
	case opcodeSessionOpen:
		return OpSessionOpen, true
	case opcodeSessionExec:
		return OpSessionExec, true
	case opcodeSessionClose:
		return OpSessionClose, true
	case opcodeStats:
		return OpStats, true
	case opcodeTables:
		return OpTables, true
	case opcodeHello:
		return OpHello, true
	case opcodeMetrics:
		return OpMetrics, true
	case opcodeTrace:
		return OpTrace, true
	case opcodePlacement:
		return OpPlacement, true
	case opcodeShardOffer:
		return OpShardOffer, true
	case opcodeShardPrepare:
		return OpShardPrepare, true
	case opcodeShardVote:
		return OpShardVote, true
	case opcodeShardDecide:
		return OpShardDecide, true
	case opcodeShardStatus:
		return OpShardStatus, true
	}
	return "", false
}

// Response flag bits.
const (
	respFlagOK      = 1 << 0
	respFlagDone    = 1 << 1
	respFlagResult  = 1 << 2
	respFlagOutcome = 1 << 3
	respFlagStats   = 1 << 4
	respFlagTables  = 1 << 5
	respFlagTrace   = 1 << 6
)

// --- sizes ---------------------------------------------------------------

func uvlen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func vlen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvlen(ux)
}

func strSize(s string) int { return uvlen(uint64(len(s))) + len(s) }

func binaryRequestSize(r *Request) int {
	n := 1 + uvlen(r.ID) + uvlen(r.Handle) + uvlen(r.Session) +
		uvlen(r.Idem) + strSize(r.SQL) + strSize(r.Codec) + strSize(r.Client)
	if r.Trace != 0 {
		n += uvlen(r.Trace)
	}
	return n
}

func binaryResultSize(res *Result) int {
	n := uvlen(uint64(len(res.Columns)))
	for _, c := range res.Columns {
		n += strSize(c)
	}
	n += uvlen(uint64(len(res.Rows)))
	for _, t := range res.Rows {
		n += t.EncodedSize()
	}
	return n + vlen(int64(res.RowsAffected))
}

func binaryResponseSize(r *Response) int {
	n := uvlen(r.ID) + 1 + vlen(int64(r.Version)) + uvlen(r.Handle) +
		uvlen(r.Session) + strSize(r.Error) + strSize(r.ErrCode) + strSize(r.Codec)
	if r.Result != nil {
		n += binaryResultSize(r.Result)
	}
	if r.Outcome != nil {
		o := r.Outcome
		n += strSize(o.Status) + strSize(o.Error) + strSize(o.ErrCode) + vlen(int64(o.Attempts))
	}
	if len(r.Stats) > 0 {
		n += uvlen(uint64(len(r.Stats))) + len(r.Stats)
	}
	if len(r.Tables) > 0 {
		n += uvlen(uint64(len(r.Tables)))
		for _, t := range r.Tables {
			n += strSize(t.Name) + strSize(t.Schema) + vlen(int64(t.Rows))
		}
	}
	if r.Trace != 0 {
		n += uvlen(r.Trace)
	}
	return n
}

// --- encode --------------------------------------------------------------

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type binaryCodec struct{}

func (binaryCodec) Name() string { return CodecBinary }

func (binaryCodec) AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	opcode, ok := opcodeOf(req.Op)
	if !ok {
		return buf, fmt.Errorf("%w: unknown op %q", ErrEncode, req.Op)
	}
	size := binaryRequestSize(req)
	if size > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	out := grow(buf, headerSize+size)
	out = appendUint32(out, uint32(size))
	out = append(out, opcode)
	out = binary.AppendUvarint(out, req.ID)
	out = binary.AppendUvarint(out, req.Handle)
	out = binary.AppendUvarint(out, req.Session)
	out = binary.AppendUvarint(out, req.Idem)
	out = appendStr(out, req.SQL)
	out = appendStr(out, req.Codec)
	out = appendStr(out, req.Client)
	if req.Trace != 0 {
		out = binary.AppendUvarint(out, req.Trace)
	}
	return out, nil
}

func (binaryCodec) AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	size := binaryResponseSize(resp)
	if size > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	var flags byte
	if resp.OK {
		flags |= respFlagOK
	}
	if resp.Done {
		flags |= respFlagDone
	}
	if resp.Result != nil {
		flags |= respFlagResult
	}
	if resp.Outcome != nil {
		flags |= respFlagOutcome
	}
	if len(resp.Stats) > 0 {
		flags |= respFlagStats
	}
	if len(resp.Tables) > 0 {
		flags |= respFlagTables
	}
	if resp.Trace != 0 {
		flags |= respFlagTrace
	}
	out := grow(buf, headerSize+size)
	out = appendUint32(out, uint32(size))
	out = binary.AppendUvarint(out, resp.ID)
	out = append(out, flags)
	out = binary.AppendVarint(out, int64(resp.Version))
	out = binary.AppendUvarint(out, resp.Handle)
	out = binary.AppendUvarint(out, resp.Session)
	out = appendStr(out, resp.Error)
	out = appendStr(out, resp.ErrCode)
	out = appendStr(out, resp.Codec)
	if resp.Result != nil {
		res := resp.Result
		out = binary.AppendUvarint(out, uint64(len(res.Columns)))
		for _, c := range res.Columns {
			out = appendStr(out, c)
		}
		out = binary.AppendUvarint(out, uint64(len(res.Rows)))
		for _, t := range res.Rows {
			out = types.EncodeTuple(out, t)
		}
		out = binary.AppendVarint(out, int64(res.RowsAffected))
	}
	if resp.Outcome != nil {
		o := resp.Outcome
		out = appendStr(out, o.Status)
		out = appendStr(out, o.Error)
		out = appendStr(out, o.ErrCode)
		out = binary.AppendVarint(out, int64(o.Attempts))
	}
	if len(resp.Stats) > 0 {
		out = binary.AppendUvarint(out, uint64(len(resp.Stats)))
		out = append(out, resp.Stats...)
	}
	if len(resp.Tables) > 0 {
		out = binary.AppendUvarint(out, uint64(len(resp.Tables)))
		for _, t := range resp.Tables {
			out = appendStr(out, t.Name)
			out = appendStr(out, t.Schema)
			out = binary.AppendVarint(out, int64(t.Rows))
		}
	}
	if resp.Trace != 0 {
		out = binary.AppendUvarint(out, resp.Trace)
	}
	return out, nil
}

// --- decode --------------------------------------------------------------

// breader is a bounds-checked payload reader. The first failure sticks;
// every accessor after it returns a zero value, so decode functions read
// straight through and check err once.
type breader struct {
	buf []byte
	pos int
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary decode: "+format, args...)
	}
}

func (r *breader) remaining() int { return len(r.buf) - r.pos }

func (r *breader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *breader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *breader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// raw reads a length-prefixed byte blob (copied out of the frame buffer).
func (r *breader) raw() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("blob length %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	b := append([]byte(nil), r.buf[r.pos:r.pos+int(n)]...)
	r.pos += int(n)
	return b
}

// count reads an element count and rejects counts that cannot fit in the
// remaining payload (every element is at least one byte), so a lying
// count cannot trigger a huge allocation.
func (r *breader) count(what string) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.remaining()) {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, r.remaining())
		return 0
	}
	return int(n)
}

func (r *breader) tuple() types.Tuple {
	if r.err != nil {
		return nil
	}
	t, n, err := types.DecodeTuple(r.buf[r.pos:])
	if err != nil {
		r.fail("tuple: %v", err)
		return nil
	}
	r.pos += n
	return t
}

// done returns the sticky error, or a trailing-garbage error if the
// payload was not fully consumed.
func (r *breader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("wire: binary decode: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

func (binaryCodec) DecodeRequest(payload []byte, req *Request) error {
	r := breader{buf: payload}
	opcode := r.u8()
	op, known := opOf(opcode)
	if r.err == nil && !known {
		r.fail("unknown opcode %d", opcode)
	}
	req.Op = op
	req.ID = r.uvarint()
	req.Handle = r.uvarint()
	req.Session = r.uvarint()
	req.Idem = r.uvarint()
	req.SQL = r.str()
	req.Codec = r.str()
	req.Client = r.str()
	// Optional trailing trace id: a PR 6 encoder simply never writes it,
	// and "read iff bytes remain" keeps the strict no-trailing-garbage
	// rule intact — anything after the trace uvarint still fails done().
	req.Trace = 0
	if r.err == nil && r.remaining() > 0 {
		req.Trace = r.uvarint()
	}
	return r.done()
}

func (binaryCodec) DecodeResponse(payload []byte, resp *Response) error {
	r := breader{buf: payload}
	resp.ID = r.uvarint()
	flags := r.u8()
	resp.OK = flags&respFlagOK != 0
	resp.Done = flags&respFlagDone != 0
	resp.Version = int(r.varint())
	resp.Handle = r.uvarint()
	resp.Session = r.uvarint()
	resp.Error = r.str()
	resp.ErrCode = r.str()
	resp.Codec = r.str()
	resp.Result = nil
	resp.Outcome = nil
	resp.Stats = nil
	resp.Tables = nil
	if flags&respFlagResult != 0 {
		res := &Result{}
		if n := r.count("column"); n > 0 {
			res.Columns = make([]string, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				res.Columns = append(res.Columns, r.str())
			}
		}
		if n := r.count("row"); n > 0 {
			res.Rows = make([]types.Tuple, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				res.Rows = append(res.Rows, r.tuple())
			}
		}
		res.RowsAffected = int(r.varint())
		resp.Result = res
	}
	if flags&respFlagOutcome != 0 {
		o := &Outcome{}
		o.Status = r.str()
		o.Error = r.str()
		o.ErrCode = r.str()
		o.Attempts = int(r.varint())
		resp.Outcome = o
	}
	if flags&respFlagStats != 0 {
		resp.Stats = json.RawMessage(r.raw())
	}
	if flags&respFlagTables != 0 {
		if n := r.count("table"); n > 0 {
			resp.Tables = make([]TableInfo, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				var t TableInfo
				t.Name = r.str()
				t.Schema = r.str()
				t.Rows = int(r.varint())
				resp.Tables = append(resp.Tables, t)
			}
		}
	}
	resp.Trace = 0
	if flags&respFlagTrace != 0 {
		resp.Trace = r.uvarint()
	}
	return r.done()
}
