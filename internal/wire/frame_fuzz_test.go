package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame decoder: it must
// never panic and never allocate past MaxFrameSize, whatever the length
// prefix claims. A server's read loop runs this code against untrusted
// input, so this is the protocol's safety boundary.
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid frame, truncations, a lying header, an oversized
	// header, and garbage.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, Request{ID: 1, Op: OpPing}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:3])
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	var lying [8]byte
	binary.BigEndian.PutUint32(lying[:], 1<<31)
	f.Add(lying[:])
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n")) // wrong protocol entirely

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				break
			}
			// A successfully framed payload must decode (or fail) without
			// panicking.
			var req Request
			_ = decodeInto(payload, &req)
		}
	})
}

func decodeInto(payload []byte, v any) error {
	return ReadInto(bytes.NewReader(frameOf(payload)), v)
}

// frameOf re-frames a payload so ReadInto exercises the decode path.
func frameOf(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}
