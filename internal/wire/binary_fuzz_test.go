package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzBinaryFrame holds the binary codec to the same safety contract as
// FuzzReadFrame holds the JSON one: arbitrary bytes fed through the frame
// reader and both binary decoders must never panic, and lying length
// prefixes or element counts must be rejected before any allocation they
// would size. This is the untrusted-input boundary of the negotiated fast
// path — after a hello, a server's read loop runs exactly this code.
func FuzzBinaryFrame(f *testing.F) {
	// Corpus: valid frames from the cross-property generator (requests and
	// responses with every value kind), their truncations, a frame with a
	// lying header, concatenated frames, and garbage.
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 8; i++ {
		req := genRequest(rng)
		frame, err := Binary.AppendRequestFrame(nil, &req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
		resp := genResponse(rng)
		frame2, err := Binary.AppendResponseFrame(nil, &resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame2)
		f.Add(append(append([]byte(nil), frame...), frame2...))
		if len(frame2) > headerSize+2 {
			f.Add(frame2[:headerSize+2])
		}
	}
	var lying [12]byte
	binary.BigEndian.PutUint32(lying[:], 1<<31) // oversized announced payload
	f.Add(lying[:])
	var hugeCount bytes.Buffer
	hugeCount.Write([]byte{0, 0, 0, 11, 1, respFlagResult, 0, 0, 0, 0, 0, 0})
	hugeCount.Write([]byte{0xff, 0xff, 0x3f}) // column count far past payload end
	f.Add(hugeCount.Bytes())
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				break
			}
			// Each well-framed payload goes through both decoders: a server
			// decodes requests, a client decodes responses, and a hostile
			// peer controls the bytes either way.
			var req Request
			if err := Binary.DecodeRequest(payload, &req); err == nil {
				// A successfully decoded request must re-encode: decode is
				// the inverse of encode on its own image.
				if _, err := Binary.AppendRequestFrame(nil, &req); err != nil {
					t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
				}
			}
			var resp Response
			if err := Binary.DecodeResponse(payload, &resp); err == nil {
				if _, err := Binary.AppendResponseFrame(nil, &resp); err != nil {
					t.Fatalf("decoded response does not re-encode: %+v: %v", resp, err)
				}
			}
		}
	})
}
