package wire

import (
	"encoding/json"
	"fmt"
)

// A Codec turns Request/Response payloads into frame bytes and back. The
// frame envelope (4-byte big-endian length prefix, MaxFrameSize cap) is
// shared; only the payload encoding differs. Connections negotiate a codec
// with OpHello and then use one Codec for their whole lifetime in each
// direction.
//
// The Append*Frame methods append a complete frame (header + payload) to
// buf so a writer can coalesce many frames into one buffer and flush them
// with a single Write. On error buf is returned unchanged — nothing
// half-encoded reaches the stream, so the caller may substitute a
// different frame (e.g. an error response).
type Codec interface {
	// Name is the negotiated codec name (CodecJSON or CodecBinary).
	Name() string
	// AppendRequestFrame appends one framed request to buf.
	AppendRequestFrame(buf []byte, req *Request) ([]byte, error)
	// DecodeRequest decodes one request payload (as returned by ReadFrame).
	DecodeRequest(payload []byte, req *Request) error
	// AppendResponseFrame appends one framed response to buf.
	AppendResponseFrame(buf []byte, resp *Response) ([]byte, error)
	// DecodeResponse decodes one response payload.
	DecodeResponse(payload []byte, resp *Response) error
}

// JSON is the debugging and fallback codec: framed JSON documents, the
// protocol of PR 4. The shell keeps using it so sessions stay readable
// with netcat.
var JSON Codec = jsonCodec{}

// Binary is the negotiated fast-path codec: exact-size binary payloads
// built on the types package's value encoding.
var Binary Codec = binaryCodec{}

// CodecByName resolves a negotiated codec name ("" means JSON, the
// connection's starting state).
func CodecByName(name string) (Codec, error) {
	switch name {
	case CodecJSON, "":
		return JSON, nil
	case CodecBinary:
		return Binary, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q", name)
	}
}

type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }

// appendJSONFrame marshals v and appends header + payload.
func appendJSONFrame(buf []byte, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return buf, fmt.Errorf("%w: %v", ErrEncode, err)
	}
	if len(payload) > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	buf = grow(buf, headerSize+len(payload))
	buf = appendUint32(buf, uint32(len(payload)))
	return append(buf, payload...), nil
}

func (jsonCodec) AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	return appendJSONFrame(buf, req)
}

func (jsonCodec) DecodeRequest(payload []byte, req *Request) error {
	if err := json.Unmarshal(payload, req); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}

func (jsonCodec) AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	return appendJSONFrame(buf, resp)
}

func (jsonCodec) DecodeResponse(payload []byte, resp *Response) error {
	if err := json.Unmarshal(payload, resp); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}

// grow ensures buf has room for need more bytes with at most one
// allocation (mirrors types.grow).
func grow(buf []byte, need int) []byte {
	if cap(buf)-len(buf) >= need {
		return buf
	}
	grown := make([]byte, len(buf), len(buf)+need)
	copy(grown, buf)
	return grown
}

func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
