// Package wire defines the network protocol between youtopia-serve and
// entangle/client: length-prefixed frames over a byte stream, with a
// payload codec negotiated per connection.
//
// Framing is deliberately minimal — a 4-byte big-endian payload length
// followed by one payload. Every connection starts with JSON payloads
// (the Request/Response types in messages.go), so a session can be
// driven (and debugged) from any language with a socket and a JSON
// library; a client may negotiate the compact binary codec (binary.go)
// with a "hello" first request, see Codec in codec.go. Stdlib only.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame's payload. A peer announcing a larger
// frame is malformed (or hostile); readers reject the length before
// allocating, so garbage length prefixes cannot trigger huge allocations.
const MaxFrameSize = 8 << 20 // 8 MiB

// ErrFrameTooLarge is returned for frames whose announced payload exceeds
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrEncode is wrapped around marshal failures in WriteFrame. Both it and
// ErrFrameTooLarge are reported before any byte reaches the stream, so the
// caller may safely substitute a different frame (e.g. an error response).
var ErrEncode = errors.New("wire: encode")

// headerSize is the length-prefix size in bytes.
const headerSize = 4

// WriteFrame marshals v and writes one frame. Safe for any JSON-
// serializable v; the caller serializes concurrent writers.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrEncode, err)
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[headerSize:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame's payload. io.EOF is returned unwrapped on a
// clean close (no bytes read); a connection dying mid-frame returns
// io.ErrUnexpectedEOF. Oversized frames return ErrFrameTooLarge without
// reading (or allocating) the payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return payload, nil
}

// ReadFrameBuf is ReadFrame with a caller-owned scratch buffer: the
// returned payload aliases buf when it fits, so the caller may reuse buf
// for the next frame only after it is done with the payload. Both codecs'
// Decode* methods copy everything they keep out of the payload, so a
// read loop decoding each frame before reading the next can recycle one
// buffer for the life of the connection.
func ReadFrameBuf(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return payload, nil
}

// ReadInto reads one frame and unmarshals it into v.
func ReadInto(r io.Reader, v any) error {
	payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: decode frame: %w", err)
	}
	return nil
}
