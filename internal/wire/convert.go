package wire

import (
	"errors"

	"repro/internal/core"
)

// Conversions between engine types and their wire forms, shared by the
// server (encode) and the client (decode) so sentinel errors and statuses
// survive the trip: errors.Is(o.Err, core.ErrTimeout) holds on the client
// exactly when it held on the server.

// ErrOverloaded is returned when the server's admission control sheds a
// request instead of queueing it. It is retryable by construction: a shed
// request was never dispatched, so retrying it (with backoff) is safe for
// every op, idempotent or not.
var ErrOverloaded = errors.New("server overloaded, retry later")

// ErrUnknownSession is returned for a session id the server no longer
// tracks. Interactive sessions are connection-scoped: when a connection
// dies its sessions roll back, so a self-healed client holding a stale id
// sees this error and must open a fresh session (the shell does exactly
// that).
var ErrUnknownSession = errors.New("unknown session")

// CodeForError returns the wire code for an engine sentinel error ("" for
// other errors, which travel as plain text).
func CodeForError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrOverloaded):
		return ErrCodeOverloaded
	case errors.Is(err, ErrUnknownSession):
		return ErrCodeUnknownSession
	case errors.Is(err, core.ErrDraining):
		return ErrCodeDraining
	case errors.Is(err, core.ErrTimeout):
		return ErrCodeTimeout
	case errors.Is(err, core.ErrEngineClosed):
		return ErrCodeEngineClosed
	case errors.Is(err, core.ErrRolledBack):
		return ErrCodeRolledBack
	default:
		return ""
	}
}

// ErrorForCode inverts CodeForError; for unknown codes it falls back to a
// plain error built from text.
func ErrorForCode(code, text string) error {
	switch code {
	case ErrCodeOverloaded:
		return ErrOverloaded
	case ErrCodeUnknownSession:
		return ErrUnknownSession
	case ErrCodeDraining:
		return core.ErrDraining
	case ErrCodeTimeout:
		return core.ErrTimeout
	case ErrCodeEngineClosed:
		return core.ErrEngineClosed
	case ErrCodeRolledBack:
		return core.ErrRolledBack
	}
	if text == "" {
		return nil
	}
	return errors.New(text)
}

// FromOutcome renders a core outcome in wire form.
func FromOutcome(o core.Outcome) *Outcome {
	out := &Outcome{Status: o.Status.String(), Attempts: o.Attempts}
	if o.Err != nil {
		out.Error = o.Err.Error()
		out.ErrCode = CodeForError(o.Err)
	}
	return out
}

// ToOutcome rebuilds the core outcome on the client side.
func (o *Outcome) ToOutcome() core.Outcome {
	out := core.Outcome{Attempts: o.Attempts, Err: ErrorForCode(o.ErrCode, o.Error)}
	switch o.Status {
	case core.StatusCommitted.String():
		out.Status = core.StatusCommitted
	case core.StatusRolledBack.String():
		out.Status = core.StatusRolledBack
	case core.StatusTimedOut.String():
		out.Status = core.StatusTimedOut
	default:
		out.Status = core.StatusFailed
	}
	return out
}
