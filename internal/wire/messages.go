package wire

import (
	"encoding/json"

	"repro/internal/storage"
	"repro/internal/types"
)

// ProtocolVersion is bumped on incompatible frame-shape changes; Ping
// responses carry it so clients can detect mismatched servers. Version 1
// is the JSON-framed protocol of PR 4; the binary codec is negotiated on
// top of it (OpHello) without changing the version, so a v1 JSON peer
// still interoperates.
const ProtocolVersion = 1

// Codec names negotiated by OpHello. A connection always starts in JSON
// (so a hello is readable by any server, and a server that never sees a
// hello keeps speaking JSON to legacy clients); both directions switch to
// the agreed codec immediately after the hello response.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// Request ops. One TCP connection carries any mix; the server answers each
// request with exactly one Response bearing the same ID, not necessarily
// in order (a Wait parks server-side while later requests proceed).
const (
	// OpPing: liveness + protocol version check.
	OpPing = "ping"
	// OpExec: run a classical SQL script (autocommit; DDL allowed) and
	// return the last statement's result. Entangled queries are rejected —
	// they need OpSubmit so the run scheduler can coordinate them.
	OpExec = "exec"
	// OpDDL: run a DDL-only script (CREATE TABLE / CREATE INDEX).
	OpDDL = "ddl"
	// OpSubmit: submit a (typically BEGIN...COMMIT, possibly entangled)
	// script to the run scheduler; returns a server-side handle id
	// immediately.
	OpSubmit = "submit"
	// OpWait: block until the handle's program completes; returns its
	// Outcome.
	OpWait = "wait"
	// OpPoll: non-blocking completion check on a handle.
	OpPoll = "poll"
	// OpSessionOpen: open an interactive session (statement-at-a-time
	// classical transactions: BEGIN/COMMIT/ROLLBACK, host variables).
	OpSessionOpen = "session_open"
	// OpSessionExec: execute statements in an interactive session.
	OpSessionExec = "session_exec"
	// OpSessionClose: close an interactive session (open transaction rolls
	// back).
	OpSessionClose = "session_close"
	// OpStats: engine counter snapshot (the \stats frame).
	OpStats = "stats"
	// OpTables: catalog listing.
	OpTables = "tables"
	// OpHello: codec negotiation. Must be the first request on a
	// connection, always JSON-framed; the response names the codec both
	// sides speak from then on. A PR 4 server answers it with
	// "unknown op" and the client falls back to JSON.
	OpHello = "hello"
	// OpMetrics: observability registry snapshot — counters plus latency
	// histogram percentiles (obs.Registry.Snapshot), carried as raw JSON
	// in Response.Stats. Distinct from OpStats, which renders the legacy
	// entangle.StatsSnapshot counter set.
	OpMetrics = "metrics"
	// OpTrace: fetch one trace's span tree by id (Request.Handle carries
	// the trace id — it is the same "server-side opaque u64" shape a
	// handle is, so the binary frame needs no new field). The rendered
	// obs.Trace rides in Response.Stats as raw JSON; unknown ids answer
	// OK=false.
	OpTrace = "trace"

	// Sharding ops (PR 10). Payloads are the internal/dist message structs
	// rendered as JSON — requests carry theirs in Request.SQL, responses in
	// Response.Stats — so the binary codec needs no new frame fields and a
	// JSON peer sees ordinary requests. Server-to-server traffic (offer /
	// prepare / vote / decide) reuses the same client protocol: each serve
	// process dials its peers like any client would.

	// OpPlacement: fetch the cluster's versioned shard placement map
	// (shard.Map as JSON in Response.Stats). Clients call it once at pool
	// dial time and re-fetch when a routed request misses.
	OpPlacement = "placement"
	// OpShardOffer: participant → coordinator. A dist.Offer for a query
	// blocked with no local partner.
	OpShardOffer = "shard_offer"
	// OpShardPrepare: coordinator → participant. A dist.Prepare delivering
	// a tentative cross-shard answer for revalidation.
	OpShardPrepare = "shard_prepare"
	// OpShardVote: participant → coordinator. A dist.Vote (yes = parked and
	// prepared durably; no = validation failed).
	OpShardVote = "shard_vote"
	// OpShardDecide: coordinator → participant. A dist.Decide carrying the
	// logged group verdict.
	OpShardDecide = "shard_decide"
	// OpShardStatus: participant → coordinator. Inquire a group's verdict
	// (Request.Handle carries the group id; dist.Status returns in
	// Response.Stats). Recovery uses it to resolve in-doubt groups.
	OpShardStatus = "shard_status"
)

// Request is the client→server frame payload.
type Request struct {
	ID      uint64 `json:"id"`
	Op      string `json:"op"`
	SQL     string `json:"sql,omitempty"`     // exec / ddl / submit / session_exec
	Handle  uint64 `json:"handle,omitempty"`  // wait / poll
	Session uint64 `json:"session,omitempty"` // session_exec / session_close
	Codec   string `json:"codec,omitempty"`   // hello: codec the client wants
	Idem    uint64 `json:"idem,omitempty"`    // client-assigned idempotency id (0 = none)
	Client  string `json:"client,omitempty"`  // hello: stable client identity for dedup across reconnects
	Trace   uint64 `json:"trace,omitempty"`   // lifecycle trace id (0 = untraced; see internal/obs)
}

// Response is the server→client frame payload. Exactly one per request,
// correlated by ID. OK false carries Error (and ErrCode when the error is
// one of the engine's sentinel conditions).
//
// One exception to the correlation rule: a well-framed request whose JSON
// cannot be decoded at all has an unrecoverable ID, so the server answers
// with ID 0 and then closes the connection (the stream can no longer be
// trusted). Clients should treat an ID-0 error response as fatal to the
// connection, not to any particular request.
type Response struct {
	ID      uint64 `json:"id"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	ErrCode string `json:"err_code,omitempty"`

	Version int             `json:"version,omitempty"` // ping / hello
	Codec   string          `json:"codec,omitempty"`   // hello: codec the server chose
	Result  *Result         `json:"result,omitempty"`  // exec / session_exec
	Handle  uint64          `json:"handle,omitempty"`  // submit
	Session uint64          `json:"session,omitempty"` // session_open
	Done    bool            `json:"done,omitempty"`    // poll: outcome present
	Outcome *Outcome        `json:"outcome,omitempty"` // wait / poll
	Stats   json.RawMessage `json:"stats,omitempty"`   // stats / metrics / trace payloads
	Tables  []TableInfo     `json:"tables,omitempty"`  // tables

	// Trace echoes the request's trace id — canonicalized, so after an
	// entanglement merge the client learns which trace its spans now live
	// under. Zero when the request was untraced; JSON peers that predate
	// the field simply never see it (omitempty), and the binary codec
	// gates it behind a flags bit, so absent = zero bytes on the wire.
	Trace uint64 `json:"trace,omitempty"`
}

// Result is a query result in wire form; rows reuse the value encoding of
// internal/types (see types/json.go).
type Result struct {
	Columns      []string      `json:"columns,omitempty"`
	Rows         []types.Tuple `json:"rows,omitempty"`
	RowsAffected int           `json:"rows_affected,omitempty"`
}

// Outcome is a program's final disposition in wire form. Status is the
// core.Status string (COMMITTED, ROLLED-BACK, TIMED-OUT, FAILED).
type Outcome struct {
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	ErrCode  string `json:"err_code,omitempty"`
	Attempts int    `json:"attempts"`
}

// ErrCode values let the client map sentinel failures back onto the
// engine's error variables, so errors.Is works across the wire.
const (
	ErrCodeTimeout      = "timeout"       // core.ErrTimeout
	ErrCodeEngineClosed = "engine_closed" // core.ErrEngineClosed
	ErrCodeRolledBack   = "rolled_back"   // core.ErrRolledBack
	ErrCodeDraining     = "draining"      // core.ErrDraining
	ErrCodeOverloaded   = "overloaded"    // wire.ErrOverloaded (admission control shed)

	// ErrCodeUnknownSession marks a session id the server no longer knows —
	// the connection that owned it died (sessions are connection-scoped and
	// roll back on disconnect) and the client reconnected underneath it.
	// Typed so callers can open a fresh session instead of parsing text.
	ErrCodeUnknownSession = "unknown_session" // wire.ErrUnknownSession
)

// TableInfo is one catalog entry.
type TableInfo struct {
	Name   string `json:"name"`
	Schema string `json:"schema"`
	Rows   int    `json:"rows"`
}

// TableInfos renders a catalog in wire form — one shared implementation
// for the server's tables frame and the shell's embedded \tables, so the
// two listings cannot drift.
func TableInfos(cat *storage.Catalog) []TableInfo {
	var out []TableInfo
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			continue // dropped between Names and Get
		}
		out = append(out, TableInfo{Name: name, Schema: tbl.Schema().String(), Rows: tbl.Len()})
	}
	return out
}
