package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{ID: 7, Op: OpSubmit, SQL: "BEGIN TRANSACTION; COMMIT;"}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp := Response{ID: 7, OK: true, Handle: 3, Result: &Result{
		Columns: []string{"name", "fno"},
		Rows:    []types.Tuple{{types.Str("Mickey"), types.Int(122)}},
	}}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}

	var gotReq Request
	if err := ReadInto(&buf, &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("request round trip: %+v != %+v", gotReq, req)
	}
	var gotResp Response
	if err := ReadInto(&buf, &gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.ID != 7 || !gotResp.OK || gotResp.Handle != 3 {
		t.Fatalf("response round trip: %+v", gotResp)
	}
	if len(gotResp.Result.Rows) != 1 || !gotResp.Result.Rows[0][1].Equal(types.Int(122)) {
		t.Fatalf("result rows: %+v", gotResp.Result)
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	// Header promises 100 bytes; stream has 3.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.Write([]byte("abc"))
	if _, err := ReadFrame(&buf); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated payload: %v", err)
	}
	// Truncated header.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil || err == io.EOF {
		t.Fatalf("truncated header: %v", err)
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestWriteFrameOversized(t *testing.T) {
	huge := Response{Error: string(make([]byte, MaxFrameSize+1))}
	if err := WriteFrame(io.Discard, huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
}
