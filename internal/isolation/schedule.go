// Package isolation is an executable formalization of entangled isolation
// (§3.3 and Appendix C of the paper): schedules over read, write,
// grounding-read, quasi-read, entangle, commit, and abort operations; the
// validity constraints of Appendix C.1; quasi-read derivation; the conflict
// graph; the anomaly-based definition of entangled isolation (Requirements
// C.2–C.4); and oracle-serializability (Appendix C.3).
//
// Theorem 3.6 — every entangled-isolated schedule is oracle-serializable —
// is checked by property tests in this package, and integration tests use
// a Recorder attached to the engine to verify that the live system emits
// entangled-isolated schedules at full isolation.
package isolation

import (
	"fmt"
	"strings"
)

// OpKind enumerates schedule operations.
type OpKind int

// Schedule operation kinds (Appendix C.1).
const (
	OpRead     OpKind = iota // R_i(x)
	OpGround                 // RG_i(x): grounding read for an entangled query
	OpQuasi                  // RQ_i(x): derived quasi-read (information flow)
	OpWrite                  // W_i(x)
	OpEntangle               // E^k_{i,j,...}
	OpCommit                 // C_i
	OpAbort                  // A_i
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "R"
	case OpGround:
		return "RG"
	case OpQuasi:
		return "RQ"
	case OpWrite:
		return "W"
	case OpEntangle:
		return "E"
	case OpCommit:
		return "C"
	case OpAbort:
		return "A"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one schedule operation.
type Op struct {
	Kind OpKind
	Tx   int    // transaction id (R/RG/RQ/W/C/A)
	Obj  string // object (R/RG/RQ/W)
	EID  int    // entanglement operation id (Entangle)
	Txs  []int  // participants (Entangle)
}

// R, RG, RQ, W, E, C, A are constructors for readable test schedules.
func R(tx int, obj string) Op  { return Op{Kind: OpRead, Tx: tx, Obj: obj} }
func RG(tx int, obj string) Op { return Op{Kind: OpGround, Tx: tx, Obj: obj} }
func RQ(tx int, obj string) Op { return Op{Kind: OpQuasi, Tx: tx, Obj: obj} }
func W(tx int, obj string) Op  { return Op{Kind: OpWrite, Tx: tx, Obj: obj} }
func E(id int, txs ...int) Op  { return Op{Kind: OpEntangle, EID: id, Txs: txs} }
func C(tx int) Op              { return Op{Kind: OpCommit, Tx: tx} }
func A(tx int) Op              { return Op{Kind: OpAbort, Tx: tx} }

// Schedule is a sequence of operations.
type Schedule struct {
	Ops []Op
}

// String renders the schedule compactly, e.g. "RG1(x) E1{1,2} W1(z) C1 C2".
func (s *Schedule) String() string {
	var b strings.Builder
	for i, op := range s.Ops {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch op.Kind {
		case OpEntangle:
			fmt.Fprintf(&b, "E%d{", op.EID)
			for j, t := range op.Txs {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", t)
			}
			b.WriteByte('}')
		case OpCommit, OpAbort:
			fmt.Fprintf(&b, "%s%d", op.Kind, op.Tx)
		default:
			fmt.Fprintf(&b, "%s%d(%s)", op.Kind, op.Tx, op.Obj)
		}
	}
	return b.String()
}

// Transactions returns the distinct transaction ids in order of first
// appearance.
func (s *Schedule) Transactions() []int {
	seen := make(map[int]bool)
	var out []int
	add := func(tx int) {
		if !seen[tx] {
			seen[tx] = true
			out = append(out, tx)
		}
	}
	for _, op := range s.Ops {
		if op.Kind == OpEntangle {
			for _, t := range op.Txs {
				add(t)
			}
		} else {
			add(op.Tx)
		}
	}
	return out
}

// Committed returns the set of committed transactions.
func (s *Schedule) Committed() map[int]bool {
	out := make(map[int]bool)
	for _, op := range s.Ops {
		if op.Kind == OpCommit {
			out[op.Tx] = true
		}
	}
	return out
}

// Validate checks the Appendix C.1 validity constraints:
//
//  1. every transaction has exactly one of {A_i, C_i} (complete schedules),
//  2. the abort/commit is the transaction's last operation,
//  3. every grounding read is followed by an entanglement operation
//     involving the transaction or by its abort,
//  4. between a grounding read and that next entanglement/abort the
//     transaction performs only further grounding reads (evaluation calls
//     are blocking). Derived quasi-reads are also permitted in the
//     interval, since they are defined to occur simultaneously with the
//     grounding reads.
func (s *Schedule) Validate() error {
	outcome := make(map[int]OpKind)
	outcomePos := make(map[int]int)
	lastPos := make(map[int]int)
	for i, op := range s.Ops {
		switch op.Kind {
		case OpCommit, OpAbort:
			if k, dup := outcome[op.Tx]; dup {
				return fmt.Errorf("isolation: transaction %d has both %v and %v", op.Tx, k, op.Kind)
			}
			outcome[op.Tx] = op.Kind
			outcomePos[op.Tx] = i
			lastPos[op.Tx] = i
		case OpEntangle:
			for _, t := range op.Txs {
				lastPos[t] = i
			}
		default:
			lastPos[op.Tx] = i
		}
	}
	for _, tx := range s.Transactions() {
		k, ok := outcome[tx]
		if !ok {
			return fmt.Errorf("isolation: transaction %d has no commit or abort", tx)
		}
		if outcomePos[tx] != lastPos[tx] {
			return fmt.Errorf("isolation: transaction %d has operations after its %v", tx, k)
		}
	}
	// Grounding-read discipline.
	for i, op := range s.Ops {
		if op.Kind != OpGround {
			continue
		}
		tx := op.Tx
		resolved := false
		for j := i + 1; j < len(s.Ops); j++ {
			next := s.Ops[j]
			if next.Kind == OpEntangle {
				for _, t := range next.Txs {
					if t == tx {
						resolved = true
					}
				}
				if resolved {
					break
				}
				continue
			}
			if next.Tx != tx {
				continue
			}
			switch next.Kind {
			case OpGround, OpQuasi:
				// allowed in the interval
			case OpAbort:
				resolved = true
			default:
				return fmt.Errorf("isolation: transaction %d performs %v(%s) between a grounding read and entanglement", tx, next.Kind, next.Obj)
			}
			if resolved {
				break
			}
		}
		if !resolved {
			return fmt.Errorf("isolation: grounding read by transaction %d has no subsequent entanglement or abort", tx)
		}
	}
	return nil
}

// WithQuasiReads returns a copy of the schedule with quasi-reads made
// explicit (Appendix C.2.1): whenever transaction i performs a grounding
// read on x and subsequently participates in entanglement operation k, every
// other participant of k performs a simultaneous quasi-read on x — inserted
// immediately after the grounding read. Grounding reads not followed by an
// entanglement (the transaction aborted instead) induce no quasi-reads.
// Existing quasi-reads are preserved.
func (s *Schedule) WithQuasiReads() *Schedule {
	out := &Schedule{Ops: make([]Op, 0, len(s.Ops))}
	for i, op := range s.Ops {
		out.Ops = append(out.Ops, op)
		if op.Kind != OpGround {
			continue
		}
		// Find this transaction's next entanglement op.
		var partners []int
		for j := i + 1; j < len(s.Ops); j++ {
			next := s.Ops[j]
			if next.Kind == OpEntangle {
				mine := false
				for _, t := range next.Txs {
					if t == op.Tx {
						mine = true
						break
					}
				}
				if mine {
					for _, t := range next.Txs {
						if t != op.Tx {
							partners = append(partners, t)
						}
					}
					break
				}
			}
			if (next.Kind == OpAbort || next.Kind == OpCommit) && next.Tx == op.Tx {
				break
			}
		}
		for _, p := range partners {
			out.Ops = append(out.Ops, RQ(p, op.Obj))
		}
	}
	return out
}
