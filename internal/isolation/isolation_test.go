package isolation

import (
	"math/rand"
	"strings"
	"testing"
)

// appendixSchedule is the example schedule of Appendix C.1:
// RG1(x) RG2(y) R3(z) E1{1,2} W1(z) W2(w) C1 C2 C3.
func appendixSchedule() *Schedule {
	return &Schedule{Ops: []Op{
		RG(1, "x"), RG(2, "y"), R(3, "z"), E(1, 1, 2), W(1, "z"), W(2, "w"), C(1), C(2), C(3),
	}}
}

func TestValidateAppendixExample(t *testing.T) {
	if err := appendixSchedule().Validate(); err != nil {
		t.Fatalf("appendix schedule invalid: %v", err)
	}
}

func TestValidateRejectsDoubleOutcome(t *testing.T) {
	s := &Schedule{Ops: []Op{R(1, "x"), C(1), A(1)}}
	if err := s.Validate(); err == nil {
		t.Fatal("double outcome accepted")
	}
}

func TestValidateRejectsMissingOutcome(t *testing.T) {
	s := &Schedule{Ops: []Op{R(1, "x")}}
	if err := s.Validate(); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestValidateRejectsOpsAfterCommit(t *testing.T) {
	s := &Schedule{Ops: []Op{C(1), R(1, "x"), A(2), C(2)}}
	if err := s.Validate(); err == nil {
		t.Fatal("op after commit accepted")
	}
}

func TestValidateRejectsUnresolvedGroundingRead(t *testing.T) {
	s := &Schedule{Ops: []Op{RG(1, "x"), C(1)}}
	if err := s.Validate(); err == nil {
		t.Fatal("grounding read without entanglement accepted")
	}
}

func TestValidateRejectsWorkBetweenGroundAndEntangle(t *testing.T) {
	s := &Schedule{Ops: []Op{RG(1, "x"), W(1, "y"), E(1, 1), C(1)}}
	if err := s.Validate(); err == nil {
		t.Fatal("write between grounding read and entanglement accepted")
	}
	// More grounding reads in the interval are fine.
	s2 := &Schedule{Ops: []Op{RG(1, "x"), RG(1, "y"), E(1, 1), C(1)}}
	if err := s2.Validate(); err != nil {
		t.Fatalf("grounding reads in interval rejected: %v", err)
	}
	// Abort resolves the grounding read too.
	s3 := &Schedule{Ops: []Op{RG(1, "x"), A(1)}}
	if err := s3.Validate(); err != nil {
		t.Fatalf("abort after grounding read rejected: %v", err)
	}
}

func TestWithQuasiReadsAppendix(t *testing.T) {
	// Appendix C.2.1 rewrites the example as
	// (RG1(x) RQ2(x)) (RG2(y) RQ1(y)) R3(z) E1 W1(z) W2(w) C1 C2 C3.
	sq := appendixSchedule().WithQuasiReads()
	want := "RG1(x) RQ2(x) RG2(y) RQ1(y) R3(z) E1{1,2} W1(z) W2(w) C1 C2 C3"
	if got := sq.String(); got != want {
		t.Fatalf("got  %s\nwant %s", got, want)
	}
}

func TestQuasiReadsNotDerivedAfterAbort(t *testing.T) {
	// A grounding read with no subsequent entanglement (abort) induces no
	// quasi-reads (Appendix C.2.1's pathological case).
	s := &Schedule{Ops: []Op{RG(1, "x"), A(1), R(2, "y"), C(2)}}
	sq := s.WithQuasiReads()
	for _, op := range sq.Ops {
		if op.Kind == OpQuasi {
			t.Fatalf("spurious quasi-read: %s", sq)
		}
	}
}

func TestConflictGraphBasics(t *testing.T) {
	// W1(x) R2(x): edge 1->2 only.
	s := &Schedule{Ops: []Op{W(1, "x"), R(2, "x"), C(1), C(2)}}
	g := ConflictGraph(s)
	if !g[1][2] || g[2][1] {
		t.Fatalf("graph = %v", g)
	}
	// Uncommitted transactions are excluded.
	s2 := &Schedule{Ops: []Op{W(1, "x"), R(2, "x"), A(1), C(2)}}
	g2 := ConflictGraph(s2)
	if len(g2[1]) != 0 {
		t.Fatalf("aborted tx in conflict graph: %v", g2)
	}
	// Reads do not conflict with reads.
	s3 := &Schedule{Ops: []Op{R(1, "x"), R(2, "x"), C(1), C(2)}}
	g3 := ConflictGraph(s3)
	if g3[1][2] || g3[2][1] {
		t.Fatalf("read-read conflict: %v", g3)
	}
}

func TestMixedGranularityConflicts(t *testing.T) {
	// A row write conflicts with a table read of its table.
	if !opsConflict(W(1, "Airlines/5"), R(2, "Airlines")) {
		t.Error("row write should conflict with table read")
	}
	if opsConflict(W(1, "Airlines/5"), R(2, "Flights")) {
		t.Error("row write conflicts with unrelated table read")
	}
	// Row writes conflict only on the same row.
	if opsConflict(W(1, "Airlines/5"), W(2, "Airlines/6")) {
		t.Error("different rows should not write-write conflict")
	}
	if !opsConflict(W(1, "Airlines/5"), W(2, "Airlines/5")) {
		t.Error("same row must conflict")
	}
}

func TestUnrepeatableReadDetected(t *testing.T) {
	// R1(x) W2(x) C2 R1(x) C1: classical unrepeatable read — cycle.
	s := &Schedule{Ops: []Op{R(1, "x"), W(2, "x"), C(2), R(1, "x"), C(1)}}
	if err := IsEntangledIsolated(s); err == nil {
		t.Fatal("unrepeatable read not detected")
	}
}

func TestDirtyReadFromAbortedDetected(t *testing.T) {
	s := &Schedule{Ops: []Op{W(1, "x"), R(2, "x"), A(1), C(2)}}
	if err := IsEntangledIsolated(s); err == nil {
		t.Fatal("read-from-aborted not detected")
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// R1(x) R2(x) W1(x) W2(x): edges 1->2 and 2->1.
	s := &Schedule{Ops: []Op{R(1, "x"), R(2, "x"), W(1, "x"), W(2, "x"), C(1), C(2)}}
	if err := IsEntangledIsolated(s); err == nil {
		t.Fatal("lost update not detected")
	}
}

// TestFigure3aWidowDetected is the widowed-transaction anomaly: Mickey (1)
// and Minnie (2) entangle; Minnie aborts during her booking; Mickey
// commits.
func TestFigure3aWidowDetected(t *testing.T) {
	s := &Schedule{Ops: []Op{
		RG(1, "Flights"), RG(2, "Flights"), E(1, 1, 2),
		W(1, "FlightBookings/1"), W(2, "FlightBookings/2"),
		A(2), C(1),
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	err := IsEntangledIsolated(s)
	if err == nil || !strings.Contains(err.Error(), "widowed") {
		t.Fatalf("widow not detected: %v", err)
	}
	// Group commit repairs it: both commit.
	s2 := &Schedule{Ops: []Op{
		RG(1, "Flights"), RG(2, "Flights"), E(1, 1, 2),
		W(1, "FlightBookings/1"), W(2, "FlightBookings/2"),
		C(2), C(1),
	}}
	if err := IsEntangledIsolated(s2); err != nil {
		t.Fatalf("group-committed schedule flagged: %v", err)
	}
	// Group abort is fine too.
	s3 := &Schedule{Ops: []Op{
		RG(1, "Flights"), RG(2, "Flights"), E(1, 1, 2),
		A(2), A(1),
	}}
	if err := IsEntangledIsolated(s3); err != nil {
		t.Fatalf("group-aborted schedule flagged: %v", err)
	}
}

// TestFigure3bUnrepeatableQuasiRead: Minnie (2) grounds on Flights and
// Airlines, Mickey (1) only on Flights; they entangle; Donald (3) adds a
// United flight; Mickey then reads Airlines himself. Mickey's derived
// quasi-read on Airlines before Donald's write plus his real read after it
// forms a cycle 1 -> 3 -> 1.
func TestFigure3bUnrepeatableQuasiRead(t *testing.T) {
	s := &Schedule{Ops: []Op{
		RG(1, "Flights"), RG(2, "Flights"), RG(2, "Airlines"), E(1, 1, 2),
		W(3, "Airlines/125"), C(3),
		R(1, "Airlines"), C(1), C(2),
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	err := IsEntangledIsolated(s)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("unrepeatable quasi-read not detected: %v", err)
	}
	// Without Donald's interference the same schedule is isolated.
	s2 := &Schedule{Ops: []Op{
		RG(1, "Flights"), RG(2, "Flights"), RG(2, "Airlines"), E(1, 1, 2),
		R(1, "Airlines"), C(1), C(2),
	}}
	if err := IsEntangledIsolated(s2); err != nil {
		t.Fatalf("clean schedule flagged: %v", err)
	}
}

func TestOracleSerializableAppendixExample(t *testing.T) {
	order, err := OracleSerializable(appendixSchedule())
	if err != nil {
		t.Fatalf("appendix schedule not oracle-serializable: %v", err)
	}
	// R3(z) precedes W1(z), so 3 must serialize before 1.
	pos := make(map[int]int)
	for i, tx := range order {
		pos[tx] = i
	}
	if pos[3] > pos[1] {
		t.Errorf("order %v violates conflict 3->1", order)
	}
}

func TestOracleSerializableRejectsCycle(t *testing.T) {
	s := &Schedule{Ops: []Op{R(1, "x"), W(2, "x"), C(2), R(1, "x"), C(1)}}
	if _, err := OracleSerializable(s); err == nil {
		t.Fatal("cyclic schedule declared serializable")
	}
}

func TestTopologicalOrderDeterministic(t *testing.T) {
	g := map[int]map[int]bool{1: {3: true}, 2: {3: true}, 3: {}}
	o1, err := TopologicalOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != 3 || o1[0] != 1 || o1[1] != 2 || o1[2] != 3 {
		t.Fatalf("order = %v", o1)
	}
}

// --- Theorem 3.6 property test -----------------------------------------

// genSchedule builds a random valid schedule: transactions 1 and 2 entangle
// (grounding reads then a shared entanglement op), transaction 3 is
// classical; tails of reads/writes are randomly interleaved and outcomes
// are random. Many generated schedules exhibit anomalies; the theorem is
// asserted on those that are entangled-isolated.
func genSchedule(rng *rand.Rand) *Schedule {
	objs := []string{"x", "y", "z"}
	pick := func() string { return objs[rng.Intn(len(objs))] }
	randOps := func(tx, n int) []Op {
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ops = append(ops, R(tx, pick()))
			} else {
				ops = append(ops, W(tx, pick()))
			}
		}
		return ops
	}
	// Sequences with a synchronization marker for the shared E op.
	markerE := Op{Kind: OpEntangle, EID: 1, Txs: []int{1, 2}}
	seq1 := []Op{RG(1, pick())}
	if rng.Intn(2) == 0 {
		seq1 = append(seq1, RG(1, pick()))
	}
	seq1 = append(seq1, markerE)
	seq1 = append(seq1, randOps(1, rng.Intn(3))...)
	seq2 := []Op{RG(2, pick()), markerE}
	seq2 = append(seq2, randOps(2, rng.Intn(3))...)
	seq3 := randOps(3, 1+rng.Intn(3))

	seqs := [][]Op{seq1, seq2, seq3}
	idx := []int{0, 0, 0}
	var out []Op
	for {
		// Determine pickable sequence heads.
		var pickable []int
		for s := range seqs {
			if idx[s] >= len(seqs[s]) {
				continue
			}
			head := seqs[s][idx[s]]
			if head.Kind == OpEntangle {
				// Only pickable when every participant is at its marker.
				ready := true
				for o := range seqs {
					if o == s {
						continue
					}
					if idx[o] < len(seqs[o]) && containsTx(head.Txs, o+1) &&
						!(seqs[o][idx[o]].Kind == OpEntangle) {
						ready = false
					}
				}
				if !ready {
					continue
				}
			}
			pickable = append(pickable, s)
		}
		if len(pickable) == 0 {
			break
		}
		s := pickable[rng.Intn(len(pickable))]
		head := seqs[s][idx[s]]
		if head.Kind == OpEntangle {
			// Consume the marker from every participant.
			for o := range seqs {
				if containsTx(head.Txs, o+1) && idx[o] < len(seqs[o]) && seqs[o][idx[o]].Kind == OpEntangle {
					idx[o]++
				}
			}
			out = append(out, head)
			continue
		}
		out = append(out, head)
		idx[s]++
	}
	// Outcomes: entangled pair may commit/abort independently (creating
	// widows), tx3 too.
	for _, tx := range []int{1, 2, 3} {
		if rng.Intn(4) == 0 {
			out = append(out, A(tx))
		} else {
			out = append(out, C(tx))
		}
	}
	return &Schedule{Ops: out}
}

func containsTx(txs []int, tx int) bool {
	for _, t := range txs {
		if t == tx {
			return true
		}
	}
	return false
}

// TestTheorem36 checks the paper's main result on thousands of random
// schedules: every entangled-isolated schedule is oracle-serializable.
func TestTheorem36(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	isolated, anomalous := 0, 0
	for i := 0; i < 5000; i++ {
		s := genSchedule(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("generator produced invalid schedule %s: %v", s, err)
		}
		if err := IsEntangledIsolated(s); err != nil {
			anomalous++
			continue
		}
		isolated++
		if _, err := OracleSerializable(s); err != nil {
			t.Fatalf("THEOREM 3.6 VIOLATION: isolated schedule %s not oracle-serializable: %v", s, err)
		}
	}
	if isolated < 500 {
		t.Errorf("only %d isolated schedules generated; test coverage too thin", isolated)
	}
	if anomalous < 500 {
		t.Errorf("only %d anomalous schedules generated; generator too tame", anomalous)
	}
	t.Logf("theorem held on %d isolated schedules (%d anomalous skipped)", isolated, anomalous)
}

// TestSerialSchedulesAlwaysIsolated: serial executions with a consistent
// oracle are the gold standard and must pass.
func TestSerialSchedulesAlwaysIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		objs := []string{"x", "y"}
		var ops []Op
		for tx := 1; tx <= 3; tx++ {
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				obj := objs[rng.Intn(len(objs))]
				if rng.Intn(2) == 0 {
					ops = append(ops, R(tx, obj))
				} else {
					ops = append(ops, W(tx, obj))
				}
			}
			ops = append(ops, C(tx))
		}
		s := &Schedule{Ops: ops}
		if err := IsEntangledIsolated(s); err != nil {
			t.Fatalf("serial schedule flagged: %s: %v", s, err)
		}
		if _, err := OracleSerializable(s); err != nil {
			t.Fatalf("serial schedule not serializable: %s: %v", s, err)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.GroundingRead(101, "Flights")
	r.GroundingRead(202, "Flights")
	r.QuasiRead(101, "Flights")
	r.QuasiRead(202, "Flights")
	r.Entangle(9, []uint64{101, 202})
	r.Write(101, "Res/1")
	r.Write(202, "Res/2")
	r.Commit(101)
	r.Commit(202)
	s := r.Schedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("recorded schedule invalid: %v (%s)", err, s)
	}
	if err := IsEntangledIsolated(s); err != nil {
		t.Fatalf("recorded schedule flagged: %v", err)
	}
	// Ids are densely renumbered.
	txs := s.Transactions()
	if len(txs) != 2 || txs[0] != 1 || txs[1] != 2 {
		t.Errorf("transactions = %v", txs)
	}
	// In-flight transactions are completed with aborts in the snapshot.
	r2 := NewRecorder()
	r2.Read(5, "x")
	s2 := r2.Schedule()
	if err := s2.Validate(); err != nil {
		t.Fatalf("snapshot not completed: %v", err)
	}
	r2.Reset()
	if len(r2.Schedule().Ops) != 0 {
		t.Error("reset did not clear")
	}
}

func TestScheduleStringRendering(t *testing.T) {
	s := appendixSchedule()
	want := "RG1(x) RG2(y) R3(z) E1{1,2} W1(z) W2(w) C1 C2 C3"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
